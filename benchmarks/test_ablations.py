"""Ablation benchmarks for LPPA's design choices.

Not figures from the paper — these quantify the mechanisms the paper
introduces but does not individually measure: pseudonym mixing (§V.C.3),
TTP re-validation vs batch charging (§V.B), the ``cr`` ciphertext
diversification (§V.B), and the shape of the zero-disguise law (§IV.C.3).
"""

from repro.experiments.ablations import (
    ablation_colocation,
    ablation_cr_expansion,
    ablation_crowd_mixing,
    ablation_disguise_policy,
    ablation_id_mixing,
    ablation_revalidation,
    ablation_winner_lists,
)
from repro.experiments.config import default_config
from repro.experiments.tables import format_table


def test_ablation_id_mixing(benchmark, record_table):
    config = default_config()
    rows = benchmark.pedantic(
        lambda: ablation_id_mixing(config), rounds=1, iterations=1
    )
    record_table(
        "ablation_id_mixing",
        format_table(
            rows,
            title="ID mixing (§V.C.3): linkage attack vs rounds observed",
        ),
    )
    # Linking more rounds shrinks the adversary's candidate set.
    assert rows[-1]["cells"] < rows[0]["cells"]


def test_ablation_winner_lists(benchmark, record_table):
    config = default_config()
    rows = benchmark.pedantic(
        lambda: ablation_winner_lists(config), rounds=1, iterations=1
    )
    record_table(
        "ablation_winner_lists",
        format_table(
            rows,
            title="Winner lists (§V.C.3): sound-but-slow BCM from published wins",
        ),
    )
    # The channel never fails (wins are genuine) and only tightens.
    assert all(row["failure_rate"] == 0.0 for row in rows)
    assert rows[-1]["cells"] <= rows[0]["cells"]


def test_ablation_revalidation(benchmark, record_table):
    config = default_config()
    rows = benchmark.pedantic(
        lambda: ablation_revalidation(config), rounds=1, iterations=1
    )
    record_table(
        "ablation_revalidation",
        format_table(
            rows, title="TTP charging mode (§V.B): batched vs revalidated"
        ),
    )
    batched = next(r for r in rows if r["charging"].startswith("batched"))
    revalidated = next(r for r in rows if r["charging"] == "revalidated")
    # Re-validation recovers performance but costs TTP round-trips.
    assert revalidated["satisfaction_ratio"] >= batched["satisfaction_ratio"]
    assert revalidated["ttp_rejections"] > batched["ttp_rejections"]


def test_ablation_cr_expansion(benchmark, record_table):
    rows = benchmark.pedantic(ablation_cr_expansion, rounds=1, iterations=1)
    record_table(
        "ablation_cr_expansion",
        format_table(
            rows, title="cr expansion (§V.B): masked-value collisions per channel"
        ),
    )
    by_cr = {row["cr"]: row["collisions"] for row in rows}
    assert by_cr[max(by_cr)] <= by_cr[min(by_cr)]


def test_ablation_crowd_mixing(benchmark, record_table):
    config = default_config()
    rows = benchmark.pedantic(
        lambda: ablation_crowd_mixing(config), rounds=1, iterations=1
    )
    record_table(
        "ablation_crowd_mixing",
        format_table(
            rows,
            title=(
                "Heterogeneous crowds (§IV.C.3): protectors vs opt-outs "
                "under the top-50% attacker"
            ),
        ),
    )
    # A growing protective crowd floods the rankings with forged bids and
    # leaves the attacker with ever less information about the opt-outs.
    optout_rows = [r for r in rows if r["optouts_cells"] != "-"]
    assert optout_rows[-1]["optouts_cells"] > optout_rows[0]["optouts_cells"]


def test_ablation_disguise_policy(benchmark, record_table):
    config = default_config()
    rows = benchmark.pedantic(
        lambda: ablation_disguise_policy(config), rounds=1, iterations=1
    )
    record_table(
        "ablation_disguise_policy",
        format_table(
            rows, title="Disguise law (§IV.C.3): linear-decreasing vs uniform"
        ),
    )
    assert {row["policy"] for row in rows} == {"linear-decreasing", "uniform"}


def test_ablation_colocation(benchmark, record_table):
    config = default_config()
    rows = benchmark.pedantic(
        lambda: ablation_colocation(config), rounds=1, iterations=1
    )
    record_table(
        "ablation_colocation",
        format_table(
            rows,
            title=(
                "Conflict-graph side channel: anchor (sybil) density vs "
                "localisation (no bids used; disguises irrelevant)"
            ),
        ),
    )
    assert all(row["failure_rate"] == 0.0 for row in rows)
    assert rows[-1]["cells"] < rows[0]["cells"]
