"""Fig. 1(b): the coverage map of one channel.

The paper shows the Google-Earth coverage contour of channel KTBV-LD over
Los Angeles; our stand-in is the synthetic coverage of one boundary channel
over Area 3, rendered as ASCII ('#' = protected PU coverage, '.' = usable
white space) together with its availability statistics.
"""

from repro.geo.datasets import make_coverage_map


def _first_boundary_channel(coverage_map):
    for cov in coverage_map.channels:
        if 0.05 < cov.availability_fraction() < 0.95:
            return cov.channel
    return 0


def test_fig1b_coverage_map(benchmark, record_table):
    coverage_map = benchmark.pedantic(
        lambda: make_coverage_map(3, n_channels=30), rounds=1, iterations=1
    )
    channel = _first_boundary_channel(coverage_map)
    cov = coverage_map.channels[channel]
    art = coverage_map.ascii_map(channel)
    header = (
        f"Fig 1(b) stand-in: Area 3, channel {channel} "
        f"(availability {cov.availability_fraction():.2%}, "
        f"threshold {cov.threshold_dbm} dBm)"
    )
    # Downsample 100x100 -> 50x50 for a readable text figure.
    lines = art.split("\n")
    small = "\n".join("".join(line[::2]) for line in lines[::2])
    record_table("fig1b_coverage_map", f"{header}\n{small}")
    assert 0.05 < cov.availability_fraction() < 0.95
