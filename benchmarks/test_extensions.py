"""Extension experiments: §IV.C.1 leak quantifiers, §V.C.1 truthfulness,
§V.C.2 TTP batching.

Not figures from the paper — these regenerate the *claims the paper makes
in prose* as measured tables.
"""

import random

from repro.analysis.security import (
    cardinality_rank_correlation,
    cross_channel_linkability,
    frequency_zero_guess,
)
from repro.crypto.keys import generate_keyring
from repro.experiments.config import default_config
from repro.experiments.tables import format_table
from repro.experiments.truthfulness import shading_experiment
from repro.lppa.batching import TtpSchedule, simulate_charging
from repro.lppa.bids_advanced import BidScale, submit_bids_advanced
from repro.lppa.bids_basic import submit_bids_basic


def _leak_rows():
    """Quantify the three §IV.C.1 leaks on basic vs advanced submissions."""
    keyring = generate_keyring(b"leak-bench", 4, rd=4, cr=8)
    scale = BidScale(bmax=30, rd=4, cr=8)
    rng = random.Random(0)
    bid_rows = [
        [rng.choice([0, 0, 0, rng.randint(1, 30)]) for _ in range(4)]
        for _ in range(25)
    ]
    basic = [
        submit_bids_basic(u, row, keyring, 30, rng)
        for u, row in enumerate(bid_rows)
    ]
    advanced = [
        submit_bids_advanced(u, row, keyring, scale, rng)[0]
        for u, row in enumerate(bid_rows)
    ]
    n_zeros = sum(1 for row in bid_rows for b in row if b == 0)
    rows = []
    for name, subs in (("basic", basic), ("advanced", advanced)):
        guessed, multiplicity = frequency_zero_guess(subs)
        rows.append(
            {
                "scheme": name,
                "modal_family_multiplicity": multiplicity,
                "zeros_total": n_zeros,
                "cardinality_corr": round(
                    cardinality_rank_correlation(subs, bid_rows, channel=0), 3
                ),
                "cross_channel_linkable": round(
                    cross_channel_linkability(subs), 3
                ),
            }
        )
    return rows


def test_leak_quantifiers(benchmark, record_table):
    rows = benchmark.pedantic(_leak_rows, rounds=1, iterations=1)
    record_table(
        "extension_leaks",
        format_table(rows, title="§IV.C.1 leaks: basic vs advanced scheme"),
    )
    basic, advanced = rows
    assert basic["cross_channel_linkable"] == 1.0
    assert advanced["cross_channel_linkable"] == 0.0
    assert advanced["modal_family_multiplicity"] < basic[
        "modal_family_multiplicity"
    ]


def test_truthfulness_shading(benchmark, record_table):
    config = default_config()
    rows = benchmark.pedantic(
        lambda: shading_experiment(config, n_rounds=20), rounds=1, iterations=1
    )
    record_table(
        "extension_truthfulness",
        format_table(
            rows,
            title="§V.C.1 future work: bidder utility vs shading, per pricing rule",
        ),
    )
    truthful = next(row for row in rows if row["shade"] == 1.0)
    assert truthful["utility_first_price"] == 0.0
    assert truthful["utility_second_price"] >= 0.0


def test_cloaking_baseline(benchmark, record_table):
    from repro.experiments.cloaking_baseline import cloaking_comparison_table

    rows = benchmark.pedantic(
        lambda: cloaking_comparison_table(default_config()),
        rounds=1,
        iterations=1,
    )
    record_table(
        "extension_cloaking_baseline",
        format_table(
            rows,
            title=(
                "Defence baseline: location cloaking vs LPPA "
                "(dense world: 150 users, 20 channels, 2λ=10)"
            ),
        ),
    )
    lppa = rows[-1]
    assert lppa["violations"] == 0
    # At least one non-trivial cloak must break physics in the dense world.
    assert any(
        row["violations"] > 0
        for row in rows
        if row["defence"].startswith("cloak") and row["defence"] != "cloak 1x1"
    )


def test_paillier_baseline(benchmark, record_table):
    from repro.experiments.paillier_baseline import baseline_comparison_table

    rows = benchmark.pedantic(
        lambda: baseline_comparison_table(default_config()),
        rounds=1,
        iterations=1,
    )
    record_table(
        "extension_paillier_baseline",
        format_table(
            rows,
            title=(
                "Related work [7]: Paillier-based secure auction vs LPPA, "
                "communication (2048-bit keys, 3 auctioneers)"
            ),
        ),
    )
    for row in rows:
        assert row["overhead_x"] > 1.0


def test_masking_backends(benchmark, record_table):
    from repro.experiments.ablations import ablation_masking_backend

    rows = benchmark.pedantic(ablation_masking_backend, rounds=1, iterations=1)
    record_table(
        "extension_masking_backends",
        format_table(
            rows, title="Masking backends (§IV.B remark): per-entry trade-offs"
        ),
    )
    assert len(rows) == 3


def _batching_rows():
    # 8 auctions, every 30 min, finishing 5 min past the hour marks so the
    # wait-for-the-next-window latency is visible.
    rounds = [5.0 + t for t in range(0, 240, 30)]
    winners = [120] * len(rounds)
    rows = []
    for period in (15.0, 30.0, 60.0, 120.0):
        report = simulate_charging(
            TtpSchedule(period=period, capacity=500), rounds, winners
        )
        row = {"ttp_period_min": period}
        row.update(report.as_row())
        rows.append(row)
    return rows


def test_ttp_batching(benchmark, record_table):
    rows = benchmark.pedantic(_batching_rows, rounds=1, iterations=1)
    record_table(
        "extension_ttp_batching",
        format_table(
            rows,
            title="§V.C.2: TTP online period vs charging latency / duty cycle",
        ),
    )
    latencies = [row["mean_latency"] for row in rows]
    assert latencies == sorted(latencies)  # longer period, longer latency
