"""Dataset statistics: the measured calibration of the four synthetic areas.

Not a paper figure — this is the audit artifact for DESIGN.md §2/§5: the
channel-mode mix (covered / boundary / clear) that drives every qualitative
result, measured from the maps the experiments actually use.
"""

from repro.experiments.tables import format_table
from repro.geo.summary import area_summary_table


def test_area_statistics(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: area_summary_table(n_channels=129), rounds=1, iterations=1
    )
    record_table(
        "dataset_statistics",
        format_table(rows, title="The four areas at 129 channels (calibration audit)"),
    )
    by_area = {row["area"]: row for row in rows}
    # The documented gradient: rural has the most boundary channels,
    # the suburban basin the fewest.
    assert by_area[4]["boundary"] > by_area[3]["boundary"] > by_area[2]["boundary"]
    # Covered-everywhere channels are rare everywhere (the Fig. 5e/f driver).
    for row in rows:
        assert row["covered"] <= 12