"""Theorem 4: predicted vs measured communication cost of PPBS.

Runs the genuine cryptographic submission path and compares byte-accurate
wire sizes against ``h * k * N * (3w - 1) * (w + 1)``.  The prediction is
exact for the advanced scheme (families of ``w + 1`` digests, tails padded
to ``2w - 2``), so the error column must read 0.
"""

from repro import obs
from repro.experiments.comm import theorem4_table
from repro.experiments.config import default_config
from repro.experiments.tables import format_table


def test_theorem4_comm_cost(benchmark, record_table, bench_artifact):
    config = default_config()
    with obs.collecting() as registry:
        rows = benchmark.pedantic(
            lambda: theorem4_table(config), rounds=1, iterations=1
        )
    record_table(
        "theorem4_comm_cost",
        format_table(rows, title="Theorem 4: predicted vs measured bid-submission bits"),
    )
    assert registry.totals()["crypto.hmac"] > 0
    bench_artifact(
        "theorem4_comm_cost",
        registry,
        config={"preset": "full" if config.n_users >= 100 else "smoke"},
    )
    for row in rows:
        assert row["error"] == 0.0
