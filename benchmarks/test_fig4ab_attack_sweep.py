"""Fig. 4(a)(b): BCM/BPM effectiveness vs number of auctioned channels.

Regenerates the Area-4 sweep: mean number of possible cells (panel a) and
attack success rate (panel b) for the plain BCM attack and BPM at each
configured keep-fraction, as the auction grows from a few channels to the
full 129.

Expected shape (paper): the BCM output falls from 10 000 cells to the low
hundreds as channels increase; BPM shrinks it further at the cost of a
rising error rate as its keep-fraction drops.
"""

from repro.experiments.config import default_config
from repro.experiments.fig4 import fig4ab_channel_sweep
from repro.experiments.tables import format_table


def test_fig4ab_channel_sweep(benchmark, record_table):
    config = default_config()
    rows = benchmark.pedantic(
        lambda: fig4ab_channel_sweep(config, area=4), rounds=1, iterations=1
    )
    record_table(
        "fig4ab_attack_sweep",
        format_table(rows, title="Fig 4(a)(b): possible cells / success rate vs channels (Area 4)"),
    )

    bcm = {r["channels"]: r["cells"] for r in rows if r["attack"] == "BCM"}
    ks = sorted(bcm)
    # Panel (a) shape: more channels, fewer possible cells.
    assert bcm[ks[-1]] < bcm[ks[0]]
    # BCM always keeps the true cell (panel b: success ~ 1).
    for row in rows:
        if row["attack"] == "BCM":
            assert row["success_rate"] == 1.0
    # BPM refines BCM at every channel count.
    for k in ks:
        bpm_cells = [
            r["cells"] for r in rows
            if r["channels"] == k and r["attack"].startswith("BPM")
        ]
        assert min(bpm_cells) <= bcm[k]
