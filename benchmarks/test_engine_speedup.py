"""The parallel sweep engine: wall-clock before/after and bit-identity.

Runs the Fig. 4(a)(b) channel sweep serially and on 2- and 4-worker pools,
records the timing table to ``benchmarks/results/engine_speedup.txt`` and
asserts the engine's two promises:

* the rendered table is **byte-identical** at every worker count, always;
* on a machine with >= 4 cores, the 4-worker run is at least 2x faster
  than serial (skipped, not failed, on smaller runners — a 1-core CI box
  cannot demonstrate a speedup, only the identity).
"""

import multiprocessing
import os

import pytest

from repro.experiments.config import default_config
from repro.experiments.fig4 import fig4ab_channel_sweep
from repro.experiments.tables import format_table
from repro.geo.datasets import clear_coverage_cache

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def sweep_runs():
    """{workers: (table, report)} for the Fig. 4(a)(b) sweep."""
    config = default_config()
    runs = {}
    for workers in WORKER_COUNTS:
        if workers > 1 and not HAS_FORK:
            continue
        # Cold caches per run so each mode pays the same build cost.
        clear_coverage_cache()
        reports = []
        rows = fig4ab_channel_sweep(
            config, area=4, workers=workers, on_report=reports.append
        )
        runs[workers] = (format_table(rows), reports[0])
    return runs


def test_engine_speedup(sweep_runs, record_table):
    serial_table, serial_report = sweep_runs[1]
    lines = [
        "Engine speedup: Fig 4(a)(b) channel sweep "
        f"({serial_report.n_tasks} tasks, {os.cpu_count()} CPUs)",
        "",
        "workers  mode             wall_s   cpu_s    speedup  identical",
        "-------  ---------------  -------  -------  -------  ---------",
    ]
    identical = {}
    for workers in sorted(sweep_runs):
        table, report = sweep_runs[workers]
        identical[workers] = table == serial_table
        speedup = serial_report.wall_seconds / max(report.wall_seconds, 1e-9)
        lines.append(
            f"{workers:<7}  {report.mode:<15}  "
            f"{report.wall_seconds:<7.2f}  {report.task_seconds:<7.2f}  "
            f"{speedup:<7.2f}  {identical[workers]}"
        )
    record_table("engine_speedup", "\n".join(lines))

    # The identity promise holds unconditionally.
    assert all(identical.values()), (
        "parallel sweep produced a different table than serial"
    )

    if not HAS_FORK:
        pytest.skip("no fork start method: parallel runs not exercised")
    for workers in (2, 4):
        assert sweep_runs[workers][1].mode == "parallel"
        assert len(sweep_runs[workers][1].worker_pids) > 1

    if (os.cpu_count() or 1) < 4:
        pytest.skip("fewer than 4 CPUs: speedup not measurable here")
    speedup = (
        sweep_runs[1][1].wall_seconds / sweep_runs[4][1].wall_seconds
    )
    assert speedup >= 2.0, (
        f"4-worker sweep only {speedup:.2f}x faster than serial"
    )
