"""Fig. 5(e)(f): auction performance under LPPA vs zero-replace probability.

Panel (e): sum of winning bids relative to the plaintext baseline;
panel (f): user satisfaction relative to the baseline — both for several
population sizes N.

Expected shapes (paper): both ratios degrade as ``1 - p0`` grows (95 % down
to ~73 % in the paper's data; the degradation magnitude depends on how many
channels carry zero bids in the area), the cost stays bounded (< 30 %), and
N has little influence (scalability).
"""

import pytest

from repro.experiments.config import default_config
from repro.experiments.fig5 import fig5_performance_sweep
from repro.experiments.tables import format_table


@pytest.fixture(scope="module")
def sweep_rows():
    return fig5_performance_sweep(default_config())


def test_fig5e_winning_bids(sweep_rows, benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: [
            {k: r[k] for k in ("n_users", "zero_replace", "revenue_ratio")}
            for r in sweep_rows
        ],
        rounds=1,
        iterations=1,
    )
    record_table(
        "fig5e_winning_bids",
        format_table(rows, title="Fig 5(e): sum-of-winning-bids ratio (LPPA / plain)"),
    )
    for row in rows:
        assert row["revenue_ratio"] > 0.6  # cost bounded


def test_fig5f_satisfaction(sweep_rows, benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: [
            {k: r[k] for k in ("n_users", "zero_replace", "satisfaction_ratio")}
            for r in sweep_rows
        ],
        rounds=1,
        iterations=1,
    )
    record_table(
        "fig5f_satisfaction",
        format_table(rows, title="Fig 5(f): user-satisfaction ratio (LPPA / plain)"),
    )
    for row in rows:
        assert row["satisfaction_ratio"] > 0.6


def test_fig5ef_claims(sweep_rows):
    by_n = {}
    for row in sweep_rows:
        by_n.setdefault(row["n_users"], {})[row["zero_replace"]] = row
    for n_users, series in by_n.items():
        probs = sorted(series)
        low, high = series[probs[0]], series[probs[-1]]
        # Performance does not improve with heavier disguising (small noise
        # tolerance: the sweeps are Monte-Carlo averages).
        assert high["satisfaction_ratio"] <= low["satisfaction_ratio"] + 0.08
    # Scalability: the spread across N at fixed disguise is small.
    if len(by_n) >= 2:
        for prob in sorted(next(iter(by_n.values()))):
            ratios = [series[prob]["satisfaction_ratio"] for series in by_n.values()]
            assert max(ratios) - min(ratios) < 0.2
