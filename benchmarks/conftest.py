"""Benchmark-suite helpers.

Every figure bench regenerates its series and records them twice: printed to
stdout (visible with ``pytest benchmarks/ --benchmark-only -s``) and written
to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can reference stable
artifacts.  Scale comes from :mod:`repro.experiments.config`: the default
smoke preset finishes in minutes; export ``REPRO_FULL=1`` for the full runs.

Benches that collect :mod:`repro.obs` metrics additionally persist a
schema-versioned ``BENCH_<name>.json`` via the ``bench_artifact`` fixture;
the CI ``bench-artifacts`` job uploads those and diffs them against the
committed baselines in ``benchmarks/baselines/``.
"""

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def record_table():
    """Writer: record_table(name, text) -> prints and persists a table."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _record


@pytest.fixture(scope="session")
def bench_artifact():
    """Writer: bench_artifact(name, registry, config=...) -> Path.

    Persists a ``BENCH_<name>.json`` observability artifact into the
    results directory and returns its path.
    """
    from repro.obs import write_artifact

    RESULTS_DIR.mkdir(exist_ok=True)

    def _write(name, registry, *, config=None):
        path = write_artifact(RESULTS_DIR, name, registry, config=config or {})
        print(f"\n[metrics artifact written to {path}]")
        return path

    return _write
