"""Benchmark-suite helpers.

Every figure bench regenerates its series and records them twice: printed to
stdout (visible with ``pytest benchmarks/ --benchmark-only -s``) and written
to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can reference stable
artifacts.  Scale comes from :mod:`repro.experiments.config`: the default
smoke preset finishes in minutes; export ``REPRO_FULL=1`` for the full runs.
"""

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def record_table():
    """Writer: record_table(name, text) -> prints and persists a table."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _record
