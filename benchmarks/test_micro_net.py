"""Micro-benchmarks of the network runtime hot paths.

Two costs the protocol runtime adds on top of the session core: the frame
envelope (6-byte header + codec payload on every message) and the asyncio
round trip itself (server state machine, in-memory transport, TTP service).
Both are measured here, and the round-trip artifact pins the deterministic
counters CI diffs against ``benchmarks/baselines/BENCH_net_roundtrip.json``.
"""

import asyncio
import random

from repro.crypto.keys import generate_keyring
from repro.lppa.bids_advanced import BidScale, submit_bids_advanced
from repro.lppa.codec import encode_bids, encode_location
from repro.lppa.location import submit_location
from repro.net.frames import FrameType, decode_frame, encode_frame
from repro.net.loadgen import (
    LoadgenConfig,
    protocol_seed,
    round_entropy,
    run_loadgen,
)

_KEYRING = generate_keyring(b"bench-net", 6, rd=4, cr=8)
_SCALE = BidScale(bmax=127, rd=4, cr=8)


def _bids_payload() -> bytes:
    rng = random.Random(11)
    sub, _ = submit_bids_advanced(
        0, [rng.randrange(128) for _ in range(6)], _KEYRING, _SCALE, rng
    )
    return encode_bids(sub)


def _location_payload() -> bytes:
    from repro.geo.grid import GridSpec

    grid = GridSpec(rows=20, cols=20, cell_km=75.0 / 20)
    sub = submit_location(0, (3, 7), _KEYRING.g0, grid, 6)
    return encode_location(sub)


def test_bench_frame_envelope_bids(benchmark):
    """Frames/sec through the envelope: encode + strict decode of a BIDS frame."""
    payload = _bids_payload()
    frame_type, decoded = benchmark(
        lambda: decode_frame(encode_frame(FrameType.BIDS, payload), strict=True)
    )
    assert frame_type is FrameType.BIDS
    assert decoded == payload


def test_bench_frame_envelope_location(benchmark):
    payload = _location_payload()
    frame_type, decoded = benchmark(
        lambda: decode_frame(encode_frame(FrameType.LOCATION, payload), strict=True)
    )
    assert frame_type is FrameType.LOCATION
    assert decoded == payload


def test_bench_memory_round_latency(benchmark):
    """One full networked round over the in-memory transport.

    Everything the server does per round — collect, allocate, charge,
    broadcast — plus client-side masking, measured end to end.
    """
    config = LoadgenConfig(n_users=6, n_channels=6, rounds=1, seed=41)

    def one_round():
        return asyncio.run(run_loadgen(config))

    report = benchmark.pedantic(one_round, rounds=3, iterations=1)
    assert report.rounds_completed == 1
    assert report.stragglers == 0


def test_bench_net_roundtrip_artifact(bench_artifact):
    """Deterministic counters for a 2-round, 8-SU in-memory run.

    Frame counts, wire bytes, per-phase byte counters and TTP window usage
    are all functions of the seed, so CI can diff
    ``BENCH_net_roundtrip.json`` against the committed baseline and catch
    silent protocol growth (an extra frame, a wider envelope) even when
    wall time hides it.  The ``net.round`` timer rides along as a
    comparable latency baseline.
    """
    from repro import obs

    # Always-on TTP: scheduled windows tick on wall-clock sleeps, which
    # would make window counters timing-dependent and the diff flaky.
    config = LoadgenConfig(
        n_users=8, n_channels=6, rounds=2, seed=41,
        transport="memory", check_equivalence=True,
    )
    with obs.collecting() as registry:
        report = asyncio.run(run_loadgen(config))
    registry.count("loadgen.wire_bytes", report.wire_bytes)
    registry.count("loadgen.rounds_completed", report.rounds_completed)

    totals = registry.totals()
    assert report.equivalence_checked == 2
    # The equivalence check replays every round in-process, so the lppa.*
    # counters see each round twice: once networked, once as the reference.
    assert totals["lppa.rounds"] == 4
    assert totals["net.clients_joined"] == 8
    assert totals["lppa.bid_submissions"] == 32  # 8 SUs x 2 rounds x 2 paths
    assert report.wire_bytes > 0
    bench_artifact(
        "net_roundtrip",
        registry,
        config={
            "users": config.n_users,
            "channels": config.n_channels,
            "rounds": config.rounds,
            "seed": config.seed,
            "transport": config.transport,
            "entropy": [round_entropy(config.seed, r) for r in range(config.rounds)],
            "protocol_seed": protocol_seed(config.seed).decode(),
        },
    )
