"""Fig. 5(a)-(d): privacy metrics under LPPA vs the zero-replace probability.

One sweep (Area 3) feeds all four panels: uncertainty (a), incorrectness
(b), number of possible cells (c) and failure rate (d), for the anti-LPPA
attacker keeping 25/50/66/80 % of each channel's masked-bid ranking, plus
the unprotected BCM/BPM references.

Expected shapes (paper): under LPPA the failure rate is far above the
references and varies non-monotonically in ``1 - p0`` for small fractions;
the candidate count stays flat then bursts as forged availability floods
the attacker; raising the attacker's fraction shrinks its output but pushes
failure towards 1.
"""

import pytest

from repro.experiments.config import default_config
from repro.experiments.fig5 import fig5_privacy_sweep
from repro.experiments.tables import format_table

PANELS = {
    "a_uncertainty": "uncertainty_bits",
    "b_incorrectness": "incorrectness_cells",
    "c_possible_cells": "cells",
    "d_failure_rate": "failure_rate",
}


@pytest.fixture(scope="module")
def sweep_rows():
    return fig5_privacy_sweep(default_config())


@pytest.mark.parametrize("panel,metric", sorted(PANELS.items()))
def test_fig5_privacy_panel(panel, metric, sweep_rows, benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: [
            {
                "zero_replace": r["zero_replace"],
                "attack": r["attack"],
                metric: r[metric],
            }
            for r in sweep_rows
        ],
        rounds=1,
        iterations=1,
    )
    record_table(
        f"fig5{panel}",
        format_table(rows, title=f"Fig 5({panel[0]}): {metric} vs zero-replace probability (Area 3)"),
    )
    assert rows


def test_fig5_privacy_claims(sweep_rows):
    """The qualitative claims the paper makes about panels (a)-(d)."""
    reference = next(r for r in sweep_rows if r["attack"] == "BCM (no LPPA)")
    lppa = [r for r in sweep_rows if r["zero_replace"] != "-"]
    # (d): LPPA drives the failure rate far above the unprotected reference.
    assert max(r["failure_rate"] for r in lppa) >= reference["failure_rate"] + 0.5
    # (b): expected distance to the true cell grows under LPPA.
    assert max(r["incorrectness_cells"] for r in lppa) > reference[
        "incorrectness_cells"
    ]
    # Larger attacker fractions shrink the candidate set (a)/(c) trade-off.
    by_fraction = {}
    for r in lppa:
        by_fraction.setdefault(r["attack"], []).append(r["cells"])
    fractions = sorted(by_fraction)  # 'LPPA-BCM top 25%' < ... lexicographic
    if len(fractions) >= 2:
        assert min(by_fraction[fractions[-1]]) <= max(by_fraction[fractions[0]])
