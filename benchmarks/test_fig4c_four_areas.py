"""Fig. 4(c): BCM and BPM across the four areas at 129 channels.

Expected shape (paper): attack effectiveness improves from the suburban
basin (Area 2 — the paper plots it only partially because its BCM output is
so large) through the urban core and mixed areas to the rural Area 4.
"""

from repro.experiments.config import default_config
from repro.experiments.fig4 import fig4c_four_areas
from repro.experiments.tables import format_table


def test_fig4c_four_areas(benchmark, record_table):
    config = default_config()
    rows = benchmark.pedantic(
        lambda: fig4c_four_areas(config), rounds=1, iterations=1
    )
    record_table(
        "fig4c_four_areas",
        format_table(rows, title="Fig 4(c): BCM/BPM across the four areas (129 channels)"),
    )
    cells = {row["area"]: row["bcm_cells"] for row in rows}
    # Rural (4) beats mixed (3) beats the urban areas; Area 2 is the worst
    # case for the attacker.
    assert cells[4] < cells[3] < cells[2]
    assert cells[1] < cells[2]
