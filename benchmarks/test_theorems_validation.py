"""Theorems 1-3: printed formula vs exact derivation vs Monte-Carlo.

Theorem 1's closed form is exact.  For Theorem 2 the printed tie-break
factor deviates from first-principles counting (our ``exact`` column tracks
the Monte-Carlo estimate); Theorem 3's printed combinatorics are likewise
approximate — see EXPERIMENTS.md for the discussion.
"""

from repro.experiments.tables import format_table
from repro.experiments.theorem_tables import (
    theorem1_table,
    theorem2_table,
    theorem3_table,
)


def test_theorem1_validation(benchmark, record_table):
    rows = benchmark.pedantic(theorem1_table, rounds=1, iterations=1)
    record_table(
        "theorem1_validation",
        format_table(rows, title="Theorem 1: P(no zero bid wins)"),
    )
    for row in rows:
        assert row["paper"] == row["exact"]
        assert abs(row["paper"] - row["monte_carlo"]) < 0.02


def test_theorem2_validation(benchmark, record_table):
    rows = benchmark.pedantic(theorem2_table, rounds=1, iterations=1)
    record_table(
        "theorem2_validation",
        format_table(rows, title="Theorem 2: P(no leakage through t-largest bids)"),
    )
    for row in rows:
        assert abs(row["exact"] - row["monte_carlo"]) < 0.02


def test_theorem3_validation(benchmark, record_table):
    rows = benchmark.pedantic(theorem3_table, rounds=1, iterations=1)
    record_table(
        "theorem3_validation",
        format_table(rows, title="Theorem 3: E[# plaintext bids kept] (uniform disguise)"),
    )
    assert rows
