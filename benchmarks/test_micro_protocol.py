"""Micro-benchmarks of the protocol hot paths.

These are real pytest-benchmark measurements (many rounds), covering the
operations whose costs the paper argues are small: HMAC masking, range
covers, masked max-finding, private conflict-graph construction, and a full
cryptographic auction round.
"""

import random

import pytest

from repro.crypto.backend import hmac_digest, hmac_digest_batch, use_backend
from repro.crypto.cache import get_mask_cache
from repro.crypto.keys import generate_keyring
from repro.geo.grid import GridSpec
from repro.lppa.bids_advanced import BidScale, submit_bids_advanced
from repro.lppa.location import build_private_conflict_graph, submit_location
from repro.lppa.session import run_lppa_auction
from repro.prefix.membership import find_maxima, mask_range, mask_value

GRID = GridSpec(rows=100, cols=100)

BACKENDS = ("pure", "hashlib", "numpy")


@pytest.mark.parametrize("backend", BACKENDS)
def test_bench_hmac(benchmark, backend):
    with use_backend(backend):
        benchmark(hmac_digest, b"key-material-16b", b"prefix-payload")


@pytest.mark.parametrize("backend", BACKENDS)
def test_bench_hmac_batch_128(benchmark, backend):
    """One shared-key batch of 128 prefix-sized messages (a bid table's worth)."""
    msgs = [b"prefix-payload-%04d" % i for i in range(128)]
    with use_backend(backend):
        result = benchmark(hmac_digest_batch, b"key-material-16b", msgs)
    assert len(result) == 128


def test_bench_mask_value(benchmark):
    benchmark(mask_value, b"key", 1234, 12)


def test_bench_mask_range_padded(benchmark):
    rng = random.Random(0)
    benchmark(
        lambda: mask_range(b"key", 1234, 4095, 12, pad_to=22, rng=rng)
    )


def test_bench_masked_max_finding(benchmark):
    rng = random.Random(1)
    bids = [rng.randrange(4096) for _ in range(50)]
    families = [mask_value(b"key", b, 12) for b in bids]
    tails = [mask_range(b"key", b, 4095, 12) for b in bids]
    result = benchmark(find_maxima, families, tails)
    assert result


def test_bench_advanced_submission(benchmark):
    keyring = generate_keyring(b"bench", 10, rd=4, cr=8)
    scale = BidScale(bmax=127, rd=4, cr=8)
    rng = random.Random(2)
    bids = [rng.randrange(128) for _ in range(10)]
    benchmark(lambda: submit_bids_advanced(0, bids, keyring, scale, rng))


def test_bench_private_conflict_graph(benchmark):
    rng = random.Random(3)
    cells = GRID.random_cells(rng, 40)
    submissions = [
        submit_location(i, cell, b"g0", GRID, 6) for i, cell in enumerate(cells)
    ]
    graph = benchmark(build_private_conflict_graph, submissions)
    assert graph.n_users == 40


def test_bench_full_crypto_round(benchmark, small_db_for_bench):
    database, users = small_db_for_bench
    benchmark.pedantic(
        lambda: run_lppa_auction(
            users,
            database.coverage.grid,
            two_lambda=6,
            bmax=127,
            rng=random.Random(4),
        ),
        rounds=3,
        iterations=1,
    )


def test_bench_full_crypto_round_cold_cache(benchmark, small_db_for_bench):
    """Same round with the masked-digest cache cleared before every run."""
    database, users = small_db_for_bench

    def _cold_round():
        get_mask_cache().clear()
        return run_lppa_auction(
            users,
            database.coverage.grid,
            two_lambda=6,
            bmax=127,
            rng=random.Random(4),
        )

    benchmark.pedantic(_cold_round, rounds=3, iterations=1)


@pytest.fixture(scope="module")
def small_db_for_bench():
    from repro.auction.bidders import generate_users
    from repro.geo.datasets import make_database

    database = make_database(3, n_channels=10)
    users = generate_users(database, 25, random.Random(5))
    return database, users


def test_bench_paillier_encrypt(benchmark):
    from repro.crypto.paillier import generate_paillier_keypair

    key = generate_paillier_keypair(512, random.Random(7))
    rng = random.Random(8)
    benchmark(lambda: key.public.encrypt(1234, rng))


def test_bench_paillier_decrypt(benchmark):
    from repro.crypto.paillier import generate_paillier_keypair

    key = generate_paillier_keypair(512, random.Random(7))
    ciphertext = key.public.encrypt(1234, random.Random(8))
    result = benchmark(key.decrypt, ciphertext)
    assert result == 1234


def test_bench_ope_setup_and_encrypt(benchmark):
    from repro.crypto.ope import OrderPreservingEncoder

    encoder = OrderPreservingEncoder(b"bench-key", 1056)
    value = benchmark(encoder.encrypt, 1000)
    assert value > 0


def test_bench_metrics_artifact(small_db_for_bench, bench_artifact):
    """Collect obs metrics for a full crypto round + the fixed calibration.

    This is the artifact the CI ``bench-artifacts`` job diffs against
    ``benchmarks/baselines/BENCH_micro_protocol.json``: crypto-op counts
    are deterministic, and the calibration timers give comparable hot-path
    baselines across commits.
    """
    from repro import obs
    from repro.obs.calibration import run_calibration

    database, users = small_db_for_bench
    # Counters must not depend on what ran earlier in the process: start
    # from a cold masked-digest cache.  The first timed round is the cold
    # path; the second, same-seed round shows the warm-cache speedup.
    get_mask_cache().clear()
    with obs.collecting() as registry:
        with obs.timer("bench.full_crypto_round"):
            result = run_lppa_auction(
                users,
                database.coverage.grid,
                two_lambda=6,
                bmax=127,
                rng=random.Random(4),
            )
        with obs.timer("bench.full_crypto_round_warm"):
            run_lppa_auction(
                users,
                database.coverage.grid,
                two_lambda=6,
                bmax=127,
                rng=random.Random(4),
            )
        run_calibration()
    totals = registry.totals()
    assert totals["crypto.hmac"] > 0
    assert totals["lppa.bid_submissions"] == 2 * len(users)
    # The warm round re-masks nothing that the cold round already masked.
    assert totals["crypto.mask_cache.hits"] > 0
    assert result.total_bytes > 0
    bench_artifact(
        "micro_protocol",
        registry,
        config={"users": len(users), "channels": 10, "area": 3, "bmax": 127},
    )


def test_bench_codec_roundtrip(benchmark):
    from repro.crypto.keys import generate_keyring
    from repro.lppa.bids_advanced import BidScale, submit_bids_advanced
    from repro.lppa.codec import decode_bids, encode_bids

    keyring = generate_keyring(b"bench-codec", 10, rd=4, cr=8)
    scale = BidScale(bmax=127, rd=4, cr=8)
    sub, _ = submit_bids_advanced(
        0, [rng_b % 128 for rng_b in range(10)], keyring, scale, random.Random(9)
    )
    result = benchmark(lambda: decode_bids(encode_bids(sub)))
    assert result == sub


def test_bench_trace_artifact(small_db_for_bench, bench_artifact):
    """Flight-recorder profile of the full crypto round, as a diffable artifact.

    Records per-phase event counts and total wire bytes into counters — all
    deterministic for a fixed seed — so CI can diff
    ``BENCH_micro_protocol_trace.json`` against the committed baseline and
    catch silent changes in what the protocol emits (an extra message, a
    byte of framing, a lost span) even when wall time hides them.
    """
    from repro import obs
    from repro.obs import trace

    database, users = small_db_for_bench
    with obs.tracing() as recorder:
        run_lppa_auction(
            users,
            database.coverage.grid,
            two_lambda=6,
            bmax=127,
            rng=random.Random(4),
        )
    summary = recorder.summary()
    registry = obs.MetricsRegistry()
    for event_type, count in summary["by_type"].items():
        registry.count(f"trace.events.{event_type}", count)
    for kind, count in summary["messages_by_kind"].items():
        registry.count(f"trace.messages.{kind}", count)
    for kind, payload in summary["payload_bytes_by_kind"].items():
        registry.count(f"trace.payload_bytes.{kind}", payload)
    registry.count("trace.wire_bytes.total", summary["wire_size_total"])
    registry.count("trace.rounds", summary["rounds"])
    registry.count("trace.dropped", recorder.dropped)

    assert registry.counters["trace.messages.bid_submission"] == len(users)
    assert registry.counters["trace.dropped"] == 0
    assert trace.get_active() is None
    bench_artifact(
        "micro_protocol_trace",
        registry,
        config={"users": len(users), "channels": 10, "area": 3, "bmax": 127},
    )
