"""Rendering helpers."""

import numpy as np
import pytest

from repro.geo.datasets import make_coverage_map
from repro.geo.grid import GridSpec
from repro.viz import render_coverage, render_mask, save_pgm


def test_render_mask_shapes_and_marker():
    mask = np.zeros((6, 6), dtype=bool)
    mask[1, 1] = True
    art = render_mask(mask, true_cell=(4, 4))
    lines = art.split("\n")
    assert len(lines) == 6 and all(len(line) == 6 for line in lines)
    assert lines[1][1] == "*"
    assert lines[4][4] == "X"


def test_render_mask_downsampling():
    mask = np.zeros((6, 6), dtype=bool)
    mask[5, 5] = True
    art = render_mask(mask, step=3)
    lines = art.split("\n")
    assert len(lines) == 2 and len(lines[0]) == 2
    assert lines[1][1] == "*"


def test_render_mask_validation():
    with pytest.raises(ValueError):
        render_mask(np.zeros((3, 3)))  # not boolean
    with pytest.raises(ValueError):
        render_mask(np.zeros((3, 3), dtype=bool), step=0)


def test_render_coverage():
    cmap = make_coverage_map(4, n_channels=3,
                             grid=GridSpec(rows=20, cols=20, cell_km=3.75))
    art = render_coverage(cmap, 0, step=2)
    assert set(art) <= {"#", ".", "\n"}
    assert len(art.split("\n")) == 10


def test_save_pgm(tmp_path):
    field = np.linspace(0, 1, 24).reshape(4, 6)
    path = save_pgm(field, tmp_path / "field.pgm")
    data = path.read_bytes()
    assert data.startswith(b"P5\n6 4\n255\n")
    pixels = data.split(b"255\n", 1)[1]
    assert len(pixels) == 24
    assert pixels[0] == 0 and pixels[-1] == 255


def test_save_pgm_constant_field(tmp_path):
    path = save_pgm(np.ones((2, 2)), tmp_path / "flat.pgm")
    pixels = path.read_bytes().split(b"255\n", 1)[1]
    assert set(pixels) == {128}


def test_save_pgm_invert(tmp_path):
    field = np.array([[0.0, 1.0]])
    normal = save_pgm(field, tmp_path / "a.pgm").read_bytes()[-2:]
    inverted = save_pgm(field, tmp_path / "b.pgm", invert=True).read_bytes()[-2:]
    assert normal == bytes([0, 255])
    assert inverted == bytes([255, 0])


def test_save_pgm_validation(tmp_path):
    with pytest.raises(ValueError):
        save_pgm(np.zeros(5), tmp_path / "bad.pgm")
