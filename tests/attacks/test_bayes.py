"""The soft (posterior) BPM variant."""

import math
import random

import numpy as np
import pytest

from repro.attacks.bayes import bpm_posterior, score_posterior
from repro.attacks.bcm import bcm_attack
from repro.attacks.bpm import bpm_attack
from repro.attacks.metrics import score_attack
from repro.auction.bidders import SecondaryUser
from repro.geo.grid import GridSpec

GRID = GridSpec(rows=20, cols=20, cell_km=3.75)


def _victim(database):
    for cell in database.coverage.grid.cells():
        if len(database.available_channels(cell)) >= 2:
            qualities = database.coverage.quality_vector(cell)
            bids = tuple(int(round(q * 100)) for q in qualities)
            if max(bids) > 0:
                return SecondaryUser(user_id=0, cell=cell, beta=60.0, bids=bids)
    pytest.skip("no usable victim in the tiny database")


def test_posterior_is_normalised(tiny_db):
    user = _victim(tiny_db)
    possible = bcm_attack(tiny_db, user)
    posterior = bpm_posterior(tiny_db, user.bids, possible)
    assert posterior.sum() == pytest.approx(1.0)
    assert np.all(posterior >= 0.0)
    assert not np.any(posterior[~possible] > 0.0)


def test_small_sigma_concentrates_on_argmin(tiny_db):
    user = _victim(tiny_db)
    possible = bcm_attack(tiny_db, user)
    sharp = bpm_posterior(tiny_db, user.bids, possible, sigma=1e-4)
    hard = bpm_attack(tiny_db, user, possible, keep_fraction=0.0)
    # Essentially all mass on the hard algorithm's minimal cell(s).
    assert sharp[hard].sum() == pytest.approx(1.0, abs=1e-6)


def test_large_sigma_approaches_uniform(tiny_db):
    user = _victim(tiny_db)
    possible = bcm_attack(tiny_db, user)
    flat = bpm_posterior(tiny_db, user.bids, possible, sigma=1e4)
    support = flat > 0
    values = flat[support]
    assert values.max() / values.min() < 1.001


def test_entropy_decreases_with_sharpness(tiny_db):
    user = _victim(tiny_db)
    possible = bcm_attack(tiny_db, user)
    sharp = score_posterior(
        bpm_posterior(tiny_db, user.bids, possible, sigma=0.05),
        user.cell,
        tiny_db.coverage.grid,
    )
    flat = score_posterior(
        bpm_posterior(tiny_db, user.bids, possible, sigma=10.0),
        user.cell,
        tiny_db.coverage.grid,
    )
    assert sharp.uncertainty_bits <= flat.uncertainty_bits


def test_uniform_posterior_reduces_to_hard_metrics(tiny_db):
    """score_posterior over a uniform posterior == score_attack on its mask."""
    user = _victim(tiny_db)
    possible = bcm_attack(tiny_db, user)
    uniform = possible.astype(float) / possible.sum()
    grid = tiny_db.coverage.grid
    soft = score_posterior(uniform, user.cell, grid)
    hard = score_attack(possible, user.cell, grid)
    assert soft.n_cells == hard.n_cells
    assert soft.uncertainty_bits == pytest.approx(hard.uncertainty_bits)
    assert soft.incorrectness_cells == pytest.approx(hard.incorrectness_cells)
    assert soft.failed == hard.failed


def test_empty_candidate_set(tiny_db):
    user = _victim(tiny_db)
    grid = tiny_db.coverage.grid
    empty = np.zeros((grid.rows, grid.cols), dtype=bool)
    posterior = bpm_posterior(tiny_db, user.bids, empty)
    assert posterior.sum() == 0.0
    score = score_posterior(posterior, user.cell, grid)
    assert score.failed and score.n_cells == 0
    assert math.isnan(score.incorrectness_cells)


def test_validation(tiny_db):
    user = _victim(tiny_db)
    possible = bcm_attack(tiny_db, user)
    grid = tiny_db.coverage.grid
    with pytest.raises(ValueError):
        bpm_posterior(tiny_db, user.bids, possible, sigma=0.0)
    with pytest.raises(ValueError):
        score_posterior(np.full((grid.rows, grid.cols), 0.5), user.cell, grid)
