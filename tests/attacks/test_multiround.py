"""Multi-round linkage attack and pseudonym mixing."""

import random

import pytest

from repro.attacks.metrics import aggregate_scores, score_attack
from repro.attacks.multiround import multiround_linkage_attack
from repro.auction.bidders import generate_users, rebid_users
from repro.lppa.fastsim import run_fast_lppa
from repro.lppa.policies import UniformReplacePolicy


@pytest.fixture(scope="module")
def campaign(tiny_db):
    users = generate_users(tiny_db, 15, random.Random(7))
    rounds = []
    population = users
    rng = random.Random(0)
    for _ in range(3):
        result = run_fast_lppa(
            population,
            two_lambda=3,
            bmax=127,
            policy=UniformReplacePolicy(0.2),
            rng=rng,
        )
        rounds.append(result.rankings)
        population = rebid_users(population, tiny_db, rng)
    return users, rounds


def test_rebid_preserves_identity_and_availability(tiny_db):
    users = generate_users(tiny_db, 10, random.Random(1))
    fresh = rebid_users(users, tiny_db, random.Random(2))
    for before, after in zip(users, fresh):
        assert after.user_id == before.user_id
        assert after.cell == before.cell
        assert after.beta == before.beta
        available = tiny_db.available_channels(before.cell)
        for ch, bid in enumerate(after.bids):
            if ch not in available:
                assert bid == 0


def test_rebid_changes_noise(tiny_db):
    users = generate_users(tiny_db, 10, random.Random(3))
    fresh = rebid_users(users, tiny_db, random.Random(4))
    assert any(a.bids != b.bids for a, b in zip(users, fresh))


def test_linking_rounds_never_grows_candidates(tiny_db, campaign):
    users, rounds = campaign
    grid = tiny_db.coverage.grid

    def mean_cells(upto):
        masks = multiround_linkage_attack(
            tiny_db, rounds[:upto], len(users), 0.5
        )
        return aggregate_scores(
            [score_attack(m, u.cell, grid) for m, u in zip(masks, users)]
        ).mean_cells

    assert mean_cells(3) <= mean_cells(1)


def test_single_round_equals_plain_lppa_attack(tiny_db, campaign):
    from repro.attacks.against_lppa import lppa_bcm_attack

    users, rounds = campaign
    multi = multiround_linkage_attack(tiny_db, rounds[:1], len(users), 0.5)
    single = lppa_bcm_attack(tiny_db, rounds[0], len(users), 0.5)
    for a, b in zip(multi, single):
        assert (a == b).all()


def test_validation(tiny_db):
    with pytest.raises(ValueError):
        multiround_linkage_attack(tiny_db, [], 5, 0.5)
    with pytest.raises(ValueError):
        multiround_linkage_attack(tiny_db, [[[[0]]]], 5, 0.5)
