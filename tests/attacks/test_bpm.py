"""BPM — Algorithm 2."""

import numpy as np
import pytest

from repro.attacks.bcm import bcm_attack
from repro.attacks.bpm import bpm_attack, bpm_distance_field
from repro.auction.bidders import SecondaryUser


def _noise_free_user(database, cell, beta=60.0, scale=100.0):
    """Bids exactly proportional to quality — BPM's ideal target."""
    qualities = database.coverage.quality_vector(cell)
    bids = tuple(int(round(q * scale)) for q in qualities)
    return SecondaryUser(user_id=0, cell=cell, beta=beta, bids=bids)


def _target_cell(database):
    """A cell with at least two available channels (so BPM has signal)."""
    grid = database.coverage.grid
    for cell in grid.cells():
        if len(database.available_channels(cell)) >= 2:
            return cell
    pytest.skip("no usable cell in the tiny database")


def test_noise_free_profile_scores_zero_at_true_cell(tiny_db):
    cell = _target_cell(tiny_db)
    user = _noise_free_user(tiny_db, cell)
    possible = bcm_attack(tiny_db, user)
    dq = bpm_distance_field(tiny_db, user.bids, possible)
    # Rounding keeps dq near zero at the true cell; it must be (near-)minimal.
    assert dq[cell] <= np.min(dq[np.isfinite(dq)]) + 1e-2


def test_minimal_cell_selection(tiny_db):
    cell = _target_cell(tiny_db)
    user = _noise_free_user(tiny_db, cell)
    possible = bcm_attack(tiny_db, user)
    refined = bpm_attack(tiny_db, user, possible, keep_fraction=0.0)
    assert refined.sum() >= 1
    assert refined.sum() <= possible.sum()


def test_keep_fraction_grows_the_output(tiny_db):
    cell = _target_cell(tiny_db)
    user = _noise_free_user(tiny_db, cell)
    possible = bcm_attack(tiny_db, user)
    small = bpm_attack(tiny_db, user, possible, keep_fraction=0.1)
    large = bpm_attack(tiny_db, user, possible, keep_fraction=0.9)
    assert small.sum() <= large.sum()
    assert large.sum() <= possible.sum()


def test_max_cells_cap(tiny_db):
    cell = _target_cell(tiny_db)
    user = _noise_free_user(tiny_db, cell)
    possible = bcm_attack(tiny_db, user)
    capped = bpm_attack(tiny_db, user, possible, keep_fraction=1.0, max_cells=3)
    assert capped.sum() <= 3


def test_output_is_subset_of_input(tiny_db):
    cell = _target_cell(tiny_db)
    user = _noise_free_user(tiny_db, cell)
    possible = bcm_attack(tiny_db, user)
    refined = bpm_attack(tiny_db, user, possible, keep_fraction=0.5)
    assert not np.any(refined & ~possible)


def test_empty_bcm_input_yields_empty_output(tiny_db):
    cell = _target_cell(tiny_db)
    user = _noise_free_user(tiny_db, cell)
    grid = tiny_db.coverage.grid
    empty = np.zeros((grid.rows, grid.cols), dtype=bool)
    assert bpm_attack(tiny_db, user, empty, keep_fraction=0.5).sum() == 0


def test_requires_positive_bid(tiny_db):
    grid = tiny_db.coverage.grid
    user = SecondaryUser(
        user_id=0, cell=(0, 0), beta=1.0, bids=(0,) * tiny_db.n_channels
    )
    full = np.ones((grid.rows, grid.cols), dtype=bool)
    with pytest.raises(ValueError):
        bpm_distance_field(tiny_db, user.bids, full)


def test_parameter_validation(tiny_db):
    cell = _target_cell(tiny_db)
    user = _noise_free_user(tiny_db, cell)
    possible = bcm_attack(tiny_db, user)
    with pytest.raises(ValueError):
        bpm_attack(tiny_db, user, possible, keep_fraction=1.5)
    with pytest.raises(ValueError):
        bpm_attack(tiny_db, user, possible, keep_fraction=0.5, max_cells=0)
