"""The anti-LPPA adversary."""

import random

import numpy as np
import pytest

from repro.attacks.against_lppa import (
    infer_available_sets,
    lppa_bcm_attack,
    top_fraction_bidders,
)
from repro.attacks.metrics import score_attack
from repro.auction.bidders import generate_users
from repro.lppa.fastsim import run_fast_lppa
from repro.lppa.policies import UniformReplacePolicy


def test_top_fraction_counts():
    ranking = [[3], [1, 4], [0], [2]]  # 5 users
    assert top_fraction_bidders(ranking, 0.2) == {3}
    assert top_fraction_bidders(ranking, 0.6) == {3, 1, 4}
    assert top_fraction_bidders(ranking, 1.0) == {0, 1, 2, 3, 4}


def test_top_fraction_truncates_tie_class():
    ranking = [[5, 6, 7], [0]]
    chosen = top_fraction_bidders(ranking, 0.5)  # ceil(0.5 * 4) = 2
    assert len(chosen) == 2
    assert chosen <= {5, 6, 7}


def test_top_fraction_validation():
    with pytest.raises(ValueError):
        top_fraction_bidders([[0]], 0.0)
    with pytest.raises(ValueError):
        top_fraction_bidders([[0]], 1.1)


def test_infer_available_sets():
    rankings = [[[0], [1], [2]], [[2], [1], [0]]]
    inferred = infer_available_sets(rankings, 3, 0.3)  # ceil(0.9) = top 1
    assert 0 in inferred[0] and 1 in inferred[2]
    assert inferred[1] == set()


def test_infer_rejects_unknown_users():
    with pytest.raises(ValueError):
        infer_available_sets([[[7]]], 3, 0.5)


def test_attack_pipeline_shapes(tiny_db, rng):
    users = generate_users(tiny_db, 12, rng)
    result = run_fast_lppa(
        users, two_lambda=3, bmax=127, rng=random.Random(0)
    )
    masks = lppa_bcm_attack(tiny_db, result.rankings, len(users), 0.5)
    grid = tiny_db.coverage.grid
    assert len(masks) == 12
    for mask in masks:
        assert mask.shape == (grid.rows, grid.cols)
        assert mask.sum() >= 1  # robust mode never returns empty


def test_ranking_count_must_match_channels(tiny_db):
    with pytest.raises(ValueError):
        lppa_bcm_attack(tiny_db, [[[0]]], 1, 0.5)


def test_disguises_raise_failure_rate(tiny_db, rng):
    """More zero replacement -> more forged constraints -> more failures."""
    users = generate_users(tiny_db, 25, rng)

    def failure_rate(replace):
        result = run_fast_lppa(
            users,
            two_lambda=3,
            bmax=127,
            policy=UniformReplacePolicy(replace),
            rng=random.Random(1),
        )
        masks = lppa_bcm_attack(tiny_db, result.rankings, len(users), 0.5)
        scores = [
            score_attack(m, u.cell, tiny_db.coverage.grid)
            for m, u in zip(masks, users)
        ]
        return sum(1 for s in scores if s.failed) / len(scores)

    assert failure_rate(1.0) >= failure_rate(0.0)
