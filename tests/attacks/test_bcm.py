"""BCM — Algorithm 1."""

import numpy as np
import pytest

from repro.attacks.bcm import bcm_attack, bcm_attack_channels


def test_truthful_user_is_always_inside_p(tiny_db, rng):
    """Genuine availability constraints can never exclude the true cell."""
    from repro.auction.bidders import generate_users

    for user in generate_users(tiny_db, 20, rng):
        possible = bcm_attack(tiny_db, user)
        assert possible[user.cell]


def test_no_bids_learns_nothing(tiny_db):
    grid = tiny_db.coverage.grid
    possible = bcm_attack_channels(tiny_db, [])
    assert possible.sum() == grid.n_cells


def test_intersection_shrinks_monotonically(tiny_db):
    channels = list(range(tiny_db.n_channels))
    previous = tiny_db.coverage.grid.n_cells
    for k in range(1, len(channels) + 1):
        count = bcm_attack_channels(tiny_db, channels[:k]).sum()
        assert count <= previous
        previous = count


def test_matches_manual_intersection(tiny_db):
    tensor = tiny_db.availability_tensor()
    expected = tensor[1] & tensor[3]
    assert np.array_equal(bcm_attack_channels(tiny_db, [1, 3]), expected)


def test_duplicate_channels_are_harmless(tiny_db):
    a = bcm_attack_channels(tiny_db, [1, 1, 3, 3])
    b = bcm_attack_channels(tiny_db, [1, 3])
    assert np.array_equal(a, b)


def test_skip_emptying_keeps_nonempty_result(tiny_db):
    """Find a channel set whose plain intersection is empty and check the
    robust variant survives it."""
    tensor = tiny_db.availability_tensor()
    channels = list(range(tiny_db.n_channels))
    plain = bcm_attack_channels(tiny_db, channels)
    robust = bcm_attack_channels(tiny_db, channels, skip_emptying=True)
    assert robust.sum() >= max(plain.sum(), 1)
    if plain.sum() == 0:
        assert robust.sum() > 0


def test_bad_channel_rejected(tiny_db):
    with pytest.raises(IndexError):
        bcm_attack_channels(tiny_db, [tiny_db.n_channels])


def test_bid_vector_length_checked(tiny_db, small_users):
    with pytest.raises(ValueError):
        bcm_attack(tiny_db, small_users[0])  # 10-channel user, 6-channel db
