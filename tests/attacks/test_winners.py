"""The winner-list attack."""

import random

import numpy as np
import pytest

from repro.attacks.metrics import aggregate_scores, score_attack
from repro.attacks.winners import winner_channel_sets, winner_list_attack
from repro.auction.bidders import generate_users
from repro.auction.outcome import AuctionOutcome, WinRecord
from repro.lppa.campaign import Campaign
from repro.lppa.policies import UniformReplacePolicy


def _outcome(n_users, wins):
    return AuctionOutcome(
        n_users=n_users,
        wins=tuple(
            WinRecord(bidder=b, channel=c, charge=charge, valid=charge > 0)
            for b, c, charge in wins
        ),
    )


def test_winner_channel_sets_accumulate():
    outcomes = [
        _outcome(3, [(0, 2, 5), (1, 0, 3)]),
        _outcome(3, [(0, 4, 7), (2, 2, 0)]),  # bidder 2's win is invalid
    ]
    won = winner_channel_sets(outcomes, 3)
    assert won[0] == {2, 4}
    assert won[1] == {0}
    assert won[2] == set()  # invalid wins carry no information


def test_unknown_bidder_rejected():
    with pytest.raises(ValueError):
        winner_channel_sets([_outcome(3, [(2, 0, 5)])], 2)


def test_attack_requires_observations(tiny_db):
    with pytest.raises(ValueError):
        winner_list_attack(tiny_db, [], 3)


def test_attack_never_excludes_the_true_cell(tiny_db):
    """Valid wins are genuine availability: zero failure by construction."""
    users = generate_users(tiny_db, 15, random.Random(2))
    campaign = Campaign(
        tiny_db,
        users,
        two_lambda=3,
        bmax=127,
        policy=UniformReplacePolicy(0.7),
        mix_ids=False,
        rng=random.Random(4),
    )
    campaign.run(6)
    masks = winner_list_attack(tiny_db, campaign.public_outcomes(), len(users))
    for mask, user in zip(masks, users):
        assert mask[user.cell]


def test_more_rounds_never_grow_the_candidate_set(tiny_db):
    users = generate_users(tiny_db, 15, random.Random(5))
    campaign = Campaign(
        tiny_db,
        users,
        two_lambda=3,
        bmax=127,
        mix_ids=False,
        rng=random.Random(6),
    )
    campaign.run(8)
    outcomes = campaign.public_outcomes()
    grid = tiny_db.coverage.grid

    def mean_cells(upto):
        masks = winner_list_attack(tiny_db, outcomes[:upto], len(users))
        return aggregate_scores(
            [score_attack(m, u.cell, grid) for m, u in zip(masks, users)]
        ).mean_cells

    assert mean_cells(8) <= mean_cells(1)


def test_unobserved_user_yields_whole_area(tiny_db):
    outcomes = [_outcome(2, [(0, 1, 5)])]
    masks = winner_list_attack(tiny_db, outcomes, 2)
    assert masks[1].sum() == tiny_db.coverage.grid.n_cells
