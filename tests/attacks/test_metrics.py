"""Privacy metrics."""

import math

import numpy as np
import pytest

from repro.attacks.metrics import aggregate_scores, score_attack
from repro.geo.grid import GridSpec

GRID = GridSpec(rows=10, cols=10, cell_km=1.0)


def _mask(cells):
    mask = np.zeros((10, 10), dtype=bool)
    for cell in cells:
        mask[cell] = True
    return mask


def test_singleton_correct_guess():
    score = score_attack(_mask([(3, 3)]), (3, 3), GRID)
    assert score.n_cells == 1
    assert score.uncertainty_bits == 0.0
    assert score.incorrectness_cells == 0.0
    assert not score.failed


def test_singleton_wrong_guess():
    score = score_attack(_mask([(0, 0)]), (3, 4), GRID)
    assert score.failed
    assert score.incorrectness_cells == pytest.approx(5.0)


def test_uniform_entropy():
    cells = [(0, 0), (0, 1), (1, 0), (1, 1)]
    score = score_attack(_mask(cells), (0, 0), GRID)
    assert score.uncertainty_bits == pytest.approx(2.0)
    assert not score.failed


def test_incorrectness_is_expected_distance():
    cells = [(0, 0), (0, 2)]
    score = score_attack(_mask(cells), (0, 0), GRID)
    assert score.incorrectness_cells == pytest.approx(1.0)  # (0 + 2) / 2


def test_empty_mask_is_total_failure():
    score = score_attack(_mask([]), (5, 5), GRID)
    assert score.n_cells == 0
    assert score.failed
    assert math.isnan(score.incorrectness_cells)
    assert score.uncertainty_bits == 0.0


def test_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        score_attack(np.ones((5, 5), dtype=bool), (0, 0), GRID)


def test_aggregate():
    scores = [
        score_attack(_mask([(0, 0)]), (0, 0), GRID),
        score_attack(_mask([(0, 0), (0, 1)]), (5, 5), GRID),
        score_attack(_mask([]), (5, 5), GRID),
    ]
    agg = aggregate_scores(scores)
    assert agg.n_users == 3
    assert agg.mean_cells == pytest.approx(1.0)
    assert agg.failure_rate == pytest.approx(2 / 3)
    # NaN incorrectness excluded from the average.
    assert not math.isnan(agg.mean_incorrectness_cells)


def test_aggregate_rejects_empty():
    with pytest.raises(ValueError):
        aggregate_scores([])


def test_as_row():
    agg = aggregate_scores([score_attack(_mask([(0, 0)]), (0, 0), GRID)])
    row = agg.as_row()
    assert row["users"] == 1 and row["failure_rate"] == 0.0
