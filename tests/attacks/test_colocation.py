"""The conflict-graph co-location oracle."""

import random

import numpy as np
import pytest

from repro.attacks.colocation import anchor_boxes, colocation_attack
from repro.attacks.metrics import aggregate_scores, score_attack
from repro.auction.conflict import build_conflict_graph
from repro.geo.grid import GridSpec

GRID = GridSpec(rows=40, cols=40, cell_km=1.0)


def test_anchor_box_geometry():
    box = anchor_boxes(GRID, (20, 20), 5)
    assert box[20, 20]
    assert box[16, 16] and box[24, 24]  # |Δ| = 4 < 5
    assert not box[15, 20] and not box[20, 25]  # |Δ| = 5
    assert box.sum() == 9 * 9


def test_anchor_box_clips_at_edges():
    box = anchor_boxes(GRID, (0, 0), 5)
    assert box[0, 0] and box[4, 4]
    assert box.sum() == 5 * 5


def test_anchor_box_validation():
    with pytest.raises(ValueError):
        anchor_boxes(GRID, (20, 20), 0)
    with pytest.raises(ValueError):
        anchor_boxes(GRID, (40, 0), 5)


def test_true_cell_always_survives():
    """Conflict bits are exact, so the oracle never excludes the truth."""
    rng = random.Random(1)
    cells = GRID.random_cells(rng, 30)
    conflict = build_conflict_graph(cells, 6)
    anchors = {0: cells[0], 1: cells[1], 2: cells[2]}
    masks = colocation_attack(GRID, conflict, anchors, 6)
    for user, mask in enumerate(masks):
        assert mask[cells[user]], f"user {user} excluded from its own cell"


def test_anchors_localise_themselves_exactly():
    cells = [(5, 5), (30, 30), (10, 35)]
    conflict = build_conflict_graph(cells, 6)
    masks = colocation_attack(GRID, conflict, {0: cells[0]}, 6)
    assert masks[0].sum() == 1 and masks[0][cells[0]]


def test_conflicting_victim_lands_in_anchor_box():
    cells = [(20, 20), (22, 22)]  # conflict at 2λ = 6
    conflict = build_conflict_graph(cells, 6)
    masks = colocation_attack(GRID, conflict, {0: cells[0]}, 6)
    victim = masks[1]
    assert victim.sum() == anchor_boxes(GRID, cells[0], 6).sum()
    assert victim[cells[1]]


def test_more_anchors_never_grow_the_candidate_set():
    rng = random.Random(2)
    cells = GRID.random_cells(rng, 25)
    conflict = build_conflict_graph(cells, 8)

    def mean_cells(n_anchors):
        anchors = {i: cells[i] for i in range(n_anchors)}
        masks = colocation_attack(GRID, conflict, anchors, 8)
        scores = [
            score_attack(mask, cells[user], GRID)
            for user, mask in enumerate(masks)
            if user >= n_anchors
        ]
        return aggregate_scores(scores).mean_cells

    assert mean_cells(8) <= mean_cells(2)


def test_zero_failure_rate_at_any_anchor_count():
    rng = random.Random(3)
    cells = GRID.random_cells(rng, 20)
    conflict = build_conflict_graph(cells, 8)
    anchors = {i: cells[i] for i in range(6)}
    masks = colocation_attack(GRID, conflict, anchors, 8)
    scores = [
        score_attack(mask, cells[user], GRID)
        for user, mask in enumerate(masks)
    ]
    assert aggregate_scores(scores).failure_rate == 0.0


def test_validation():
    cells = [(5, 5), (30, 30)]
    conflict = build_conflict_graph(cells, 6)
    with pytest.raises(ValueError):
        colocation_attack(GRID, conflict, {5: (0, 0)}, 6)
    with pytest.raises(ValueError):
        colocation_attack(GRID, conflict, {0: (40, 40)}, 6)
