"""Differential suite: the scheme seam left PPBS bit-identical.

``goldens/ppbs_goldens.json`` was captured from the pre-refactor tree (see
:mod:`schemes.golden_utils`).  Every test here recomputes the same document
through today's code and compares field by field — results, trace
summaries, the Theorem-4 communication audit, and the TCP wire-byte total.
A mismatch means the refactor changed PPBS behaviour, which it must not.
"""

import pytest

from repro.crypto.cache import get_mask_cache
from tests.schemes.golden_utils import (
    SCENARIO,
    _canonical_digest,
    capture_fastsim,
    capture_in_process,
    capture_tcp,
    load_goldens,
)

GOLDEN = load_goldens()


@pytest.fixture(autouse=True)
def _fresh_mask_cache():
    """Byte accounting must not depend on what earlier tests warmed up."""
    get_mask_cache().clear()
    yield
    get_mask_cache().clear()


def test_scenario_unchanged():
    """The pinned scenario itself is part of the contract."""
    assert GOLDEN["scenario"] == dict(SCENARIO)


def test_in_process_results_bit_identical():
    current = capture_in_process()
    golden = GOLDEN["in_process"]
    for index, (cur, ref) in enumerate(zip(current["rounds"], golden["rounds"])):
        for field in ref:
            assert cur[field] == ref[field], f"round {index} field {field!r}"
    assert current["result_digest"] == golden["result_digest"]


def test_in_process_trace_summary_bit_identical():
    current = capture_in_process()
    assert current["trace_summary"] == GOLDEN["in_process"]["trace_summary"]


def test_in_process_theorem4_audit_bit_identical():
    current = capture_in_process()
    assert current["comm_audit"] == GOLDEN["in_process"]["comm_audit"]


def test_fastsim_bit_identical():
    current = capture_fastsim()
    golden = GOLDEN["fastsim"]
    assert current["rounds"] == golden["rounds"]
    assert current["result_digest"] == golden["result_digest"]


def test_tcp_wire_bytes_and_equivalence_bit_identical():
    current = capture_tcp()
    golden = GOLDEN["tcp"]
    assert current["rounds_completed"] == golden["rounds_completed"]
    assert current["equivalence_checked"] == golden["equivalence_checked"]
    assert current["wire_bytes"] == golden["wire_bytes"]
    assert current["round_summaries"] == golden["round_summaries"]


def test_sharded_fastsim_matches_golden_digest():
    """Acceptance: PPBS stays bit-identical *at any shard count*."""
    from repro.lppa.fastsim import run_fast_lppa
    from repro.net.loadgen import LoadgenConfig, build_population, round_entropy
    from tests.schemes.golden_utils import result_document

    config = LoadgenConfig(**SCENARIO)
    _, users = build_population(config)
    rounds = []
    for index in range(config.rounds):
        result = run_fast_lppa(
            users,
            two_lambda=config.two_lambda,
            bmax=config.bmax,
            entropy=round_entropy(config.seed, index),
            shards=2,
        )
        rounds.append(result_document(result))
    assert _canonical_digest(rounds) == GOLDEN["fastsim"]["result_digest"]
