"""Scheme registry: lookup, selection precedence, payload dispatch."""

import pytest

from repro.lppa.schemes.registry import (
    DEFAULT_SCHEME,
    SCHEME_ENV,
    available_schemes,
    get_scheme,
    resolve_scheme,
    scheme_for_payload,
    set_active_scheme,
)


@pytest.fixture(autouse=True)
def _clean_selection(monkeypatch):
    """Each test starts with no active scheme and no $REPRO_SCHEME."""
    monkeypatch.delenv(SCHEME_ENV, raising=False)
    set_active_scheme(None)
    yield
    set_active_scheme(None)


def test_builtins_are_registered():
    assert available_schemes() == ("bloom", "ppbs")


def test_unknown_name_lists_registered_schemes():
    with pytest.raises(ValueError, match=r"registered: bloom, ppbs"):
        get_scheme("nope")


def test_default_is_ppbs():
    assert DEFAULT_SCHEME == "ppbs"
    assert resolve_scheme().name == "ppbs"


def test_env_variable_selects_scheme(monkeypatch):
    monkeypatch.setenv(SCHEME_ENV, "bloom")
    assert resolve_scheme().name == "bloom"


def test_active_scheme_outranks_env(monkeypatch):
    monkeypatch.setenv(SCHEME_ENV, "bloom")
    set_active_scheme("ppbs")
    assert resolve_scheme().name == "ppbs"


def test_explicit_argument_outranks_everything(monkeypatch):
    monkeypatch.setenv(SCHEME_ENV, "ppbs")
    set_active_scheme("ppbs")
    assert resolve_scheme("bloom").name == "bloom"


def test_set_active_scheme_validates_eagerly():
    with pytest.raises(ValueError, match="unknown privacy scheme"):
        set_active_scheme("typo")
    assert resolve_scheme().name == DEFAULT_SCHEME


def test_set_active_scheme_none_clears(monkeypatch):
    set_active_scheme("bloom")
    assert resolve_scheme().name == "bloom"
    set_active_scheme(None)
    assert resolve_scheme().name == DEFAULT_SCHEME


def test_resolving_bad_env_raises(monkeypatch):
    monkeypatch.setenv(SCHEME_ENV, "typo")
    with pytest.raises(ValueError, match="unknown privacy scheme"):
        resolve_scheme()


def test_announcement_fields_preserve_ppbs_welcome_bytes():
    """ppbs announces nothing (keeps pre-seam WELCOME frames byte-identical);
    every other scheme announces its name so clients can follow."""
    assert get_scheme("ppbs").announcement_fields() == {}
    assert get_scheme("bloom").announcement_fields() == {"scheme": "bloom"}


def test_payload_tags_are_distinct_across_schemes():
    tags = []
    for name in available_schemes():
        scheme = get_scheme(name)
        tags.extend([scheme.location_tag, scheme.bid_tag])
    assert len(tags) == len(set(tags))
    assert all(len(tag) == 1 for tag in tags)


def test_scheme_for_payload_dispatches_by_tag():
    ppbs = get_scheme("ppbs")
    bloom = get_scheme("bloom")
    assert scheme_for_payload(ppbs.location_tag + b"rest") is ppbs
    assert scheme_for_payload(ppbs.bid_tag + b"rest") is ppbs
    assert scheme_for_payload(bloom.location_tag + b"rest") is bloom
    assert scheme_for_payload(bloom.bid_tag + b"rest") is bloom


def test_scheme_for_payload_rejects_unknown_tag_and_empty():
    with pytest.raises(ValueError, match="matches no registered scheme"):
        scheme_for_payload(b"\xff\x00\x00")
    with pytest.raises(ValueError, match="matches no registered scheme"):
        scheme_for_payload(b"")
