"""The Bloom-filter scheme end-to-end, and the compare harness around it.

The scheme's two correctness anchors:

* the Bloom conflict graph equals the plaintext interference graph (the
  filters are sized so the box-membership test has no false positives at
  experiment scale), and
* the shared integer value pipeline makes its auction *outcome* identical
  to PPBS on the same entropy — only the wire format and crypto differ.
"""

import dataclasses
import random

import pytest

from repro.auction.conflict import build_conflict_graph
from repro.crypto.keys import generate_keyring
from repro.geo.grid import GridSpec
from repro.lppa.bids_ope import reset_ope_cache, submit_bids_ope
from repro.lppa.location_bloom import (
    BloomFilter,
    bloom_params,
    build_bloom_conflict_graph,
    cell_tokens,
    submit_locations_bloom,
)
from repro.lppa.session import run_lppa_auction
from repro.lppa.ttp import ChargeStatus, TrustedThirdParty
from repro.net.loadgen import (
    LoadgenConfig,
    build_population,
    protocol_seed,
    round_entropy,
)
from repro.obs.trace import TraceRecorder, recording

G0 = b"\x11" * 32
GRID = GridSpec(rows=24, cols=24, cell_km=1.0)
TWO_LAMBDA = 4

SMALL = dict(n_users=6, n_channels=4, rounds=1, seed=3, area=3, grid_n=12)


@pytest.fixture(autouse=True)
def _fresh_ope_cache():
    reset_ope_cache()
    yield
    reset_ope_cache()


# --- location layer ------------------------------------------------------------


def test_bloom_filter_contains_every_inserted_token():
    _, n_bits, n_hashes = bloom_params(TWO_LAMBDA)
    tokens = cell_tokens([(r, c) for r in range(8) for c in range(8)], G0)
    filt = BloomFilter.build(tokens, n_bits, n_hashes)
    assert all(filt.contains(token) for token in tokens)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_bloom_conflict_graph_equals_plaintext(seed):
    """The one-direction membership test reproduces the plaintext graph."""
    rng = random.Random(seed)
    cells = GRID.random_cells(rng, 20)
    plaintext = build_conflict_graph(cells, TWO_LAMBDA)
    private = build_bloom_conflict_graph(
        submit_locations_bloom(cells, G0, GRID, TWO_LAMBDA)
    )
    assert set(private.edges) == set(plaintext.edges)


# --- shared value pipeline: outcome identical to ppbs --------------------------


def test_bloom_session_outcome_identical_to_ppbs():
    config = LoadgenConfig(**SMALL)
    grid, users = build_population(config)

    def run(scheme):
        return run_lppa_auction(
            users,
            grid,
            two_lambda=config.two_lambda,
            bmax=config.bmax,
            seed=protocol_seed(config.seed),
            entropy=round_entropy(config.seed, 0),
            scheme=scheme,
        )

    ppbs = run("ppbs")
    bloom = run("bloom")
    assert bloom.outcome.wins == ppbs.outcome.wins
    assert set(bloom.conflict_graph.edges) == set(ppbs.conflict_graph.edges)
    assert bloom.rankings == ppbs.rankings
    assert (
        bloom.outcome.sum_of_winning_bids()
        == ppbs.outcome.sum_of_winning_bids()
    )


def test_bloom_session_trace_passes_strict_comm_audit():
    from repro.analysis.trace_audit import audit_comm_cost

    config = LoadgenConfig(**SMALL)
    grid, users = build_population(config)
    recorder = TraceRecorder()
    with recording(recorder):
        run_lppa_auction(
            users,
            grid,
            two_lambda=config.two_lambda,
            bmax=config.bmax,
            seed=protocol_seed(config.seed),
            entropy=round_entropy(config.seed, 0),
            scheme="bloom",
        )
    report = audit_comm_cost(recorder.events(), strict=True)
    assert report.messages_checked > 0
    assert all(audit.exact for audit in report.rounds)


# --- TTP charging on OPE bids --------------------------------------------------


def test_ttp_charges_valid_zero_and_tampered_ope_bids():
    ttp, keyring, scale = TrustedThirdParty.setup(
        b"bloom-ttp-test", 3, bmax=30
    )
    submission, _ = submit_bids_ope(
        0, [7, 0, 15], keyring, scale, random.Random(1)
    )

    valid = ttp.process_charge(0, submission.channel_bids[0])
    assert valid.status is ChargeStatus.VALID
    assert valid.charge == 7

    zero = ttp.process_charge(1, submission.channel_bids[1])
    assert zero.status is ChargeStatus.INVALID_ZERO
    assert zero.charge == 0

    # Seal one price to the auctioneer, another to the TTP: cheating.
    honest = submission.channel_bids[2]
    tampered = dataclasses.replace(honest, ope_value=honest.ope_value + 1)
    cheat = ttp.process_charge(2, tampered)
    assert cheat.status is ChargeStatus.CHEATING
    assert cheat.charge == 0


# --- compare harness -----------------------------------------------------------


def test_deterministic_view_keeps_scheme_counters_only():
    from repro.experiments.compare import deterministic_view

    document = {
        "metrics": {
            "counters": {
                "schemes.ppbs.wire_bytes": 10,
                "schemes.ppbs.p50_latency_ms": 5,  # wall clock: excluded
                "crypto.hmac": 3,  # not under schemes.: excluded
            },
            "gauges": {"schemes.ppbs.revenue": 494.0},
            "timers": {"schemes.ppbs.elapsed": {"mean": 1.0}},
        }
    }
    assert deterministic_view(document) == {
        "counter:schemes.ppbs.wire_bytes": 10.0,
        "gauge:schemes.ppbs.revenue": 494.0,
    }


def test_baseline_check_names_every_divergent_key():
    from repro.experiments.compare import check_against_baseline

    def doc(counters):
        return {"metrics": {"counters": counters}}

    baseline = doc({"schemes.a.x": 1, "schemes.a.gone": 2})
    current = doc({"schemes.a.x": 3, "schemes.a.new": 4})
    errors = check_against_baseline(current, baseline)
    assert len(errors) == 3
    text = "\n".join(errors)
    assert "schemes.a.gone" in text and "in baseline only" in text
    assert "schemes.a.new" in text and "in current only" in text
    assert "schemes.a.x: baseline 1 != current 3" in text
    assert check_against_baseline(baseline, baseline) == []


def test_run_compare_smoke_over_net_runtime():
    """One-round ppbs-vs-bloom through the real harness: same auction,
    same revenue and replay leakage, different wire/crypto profile."""
    from repro.experiments.compare import CompareConfig, run_compare

    config = CompareConfig(check_equivalence=True, **SMALL)
    ppbs, bloom = run_compare(config)
    assert (ppbs.scheme, bloom.scheme) == ("ppbs", "bloom")
    for m in (ppbs, bloom):
        assert m.equivalence_checked == 1
        assert m.comm_audit_exact
        assert m.wire_bytes > 0
    assert bloom.revenue == ppbs.revenue
    assert bloom.bcm_mean_cells == ppbs.bcm_mean_cells
    assert bloom.bpm_mean_cells == ppbs.bpm_mean_cells
    assert bloom.wire_bytes < ppbs.wire_bytes
    assert bloom.crypto_ops() != ppbs.crypto_ops()


def test_compare_config_rejects_bad_inputs():
    from repro.experiments.compare import CompareConfig, run_compare

    with pytest.raises(ValueError):
        CompareConfig(schemes=())
    with pytest.raises(ValueError):
        CompareConfig(schemes=("ppbs", "ppbs"))
    with pytest.raises(ValueError):
        CompareConfig(rounds=0)
    with pytest.raises(ValueError, match="unknown privacy scheme"):
        run_compare(CompareConfig(schemes=("ppbs", "nope")))
