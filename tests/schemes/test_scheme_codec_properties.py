"""Property-based codec laws for the scheme-tagged payloads (Bloom scheme).

Mirrors ``tests/lppa/test_codec_properties.py`` for the second scheme's
wire formats:

* **round-trip** — Bloom location submissions and OPE bid submissions built
  from the real submission layer under random inputs satisfy
  ``decode(encode(m)) == m``;
* **truncation** — any strict prefix of a valid encoding raises
  :class:`CodecError`, never silently decoding to a different message;
* **garbage** — random bytes behind a valid scheme tag either raise
  :class:`CodecError` or decode to a value whose re-encoding reproduces the
  input exactly (no third outcome);
* **dispatch** — the registry routes every encoded payload to the scheme
  that owns its tag byte.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.keys import generate_keyring
from repro.geo.grid import GridSpec
from repro.lppa.bids_advanced import BidScale
from repro.lppa.bids_ope import (
    OPE_BID_TAG,
    decode_bids_ope,
    encode_bids_ope,
    submit_bids_ope,
)
from repro.lppa.codec import CodecError
from repro.lppa.location_bloom import (
    BLOOM_LOCATION_TAG,
    decode_location_bloom,
    encode_location_bloom,
    submit_location_bloom,
)
from repro.lppa.schemes.registry import get_scheme, scheme_for_payload

N_CHANNELS = 4
KEYRING = generate_keyring(b"scheme-codec-prop", N_CHANNELS, rd=4, cr=8)
SCALE = BidScale(bmax=30, rd=4, cr=8)
GRID = GridSpec(rows=32, cols=32, cell_km=1.0)
TWO_LAMBDA = 4

bloom_locations = st.builds(
    lambda uid, x, y: submit_location_bloom(
        uid, (x, y), KEYRING.g0, GRID, TWO_LAMBDA
    ),
    uid=st.integers(min_value=0, max_value=2**32 - 1),
    x=st.integers(min_value=0, max_value=GRID.rows - 1),
    y=st.integers(min_value=0, max_value=GRID.cols - 1),
)

ope_bid_submissions = st.builds(
    lambda uid, bids, seed: submit_bids_ope(
        uid, bids, KEYRING, SCALE, random.Random(seed)
    )[0],
    uid=st.integers(min_value=0, max_value=2**32 - 1),
    bids=st.lists(
        st.integers(min_value=0, max_value=SCALE.bmax),
        min_size=N_CHANNELS,
        max_size=N_CHANNELS,
    ),
    seed=st.integers(min_value=0, max_value=10**6),
)


# --- round-trip ---------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(sub=bloom_locations)
def test_bloom_location_roundtrip(sub):
    assert decode_location_bloom(encode_location_bloom(sub)) == sub


@settings(max_examples=25, deadline=None)
@given(sub=ope_bid_submissions)
def test_ope_bids_roundtrip(sub):
    assert decode_bids_ope(encode_bids_ope(sub)) == sub


# --- truncation never yields a value ------------------------------------------


@settings(max_examples=15, deadline=None)
@given(sub=bloom_locations, data=st.data())
def test_bloom_location_truncation_raises(sub, data):
    blob = encode_location_bloom(sub)
    cut = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
    with pytest.raises(CodecError):
        decode_location_bloom(blob[:cut])


@settings(max_examples=15, deadline=None)
@given(sub=ope_bid_submissions, data=st.data())
def test_ope_bids_truncation_raises(sub, data):
    blob = encode_bids_ope(sub)
    cut = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
    with pytest.raises(CodecError):
        decode_bids_ope(blob[:cut])


def test_exhaustive_truncation_one_example():
    """Belt and braces: every single prefix of one real pair of messages."""
    loc = submit_location_bloom(3, (10, 20), KEYRING.g0, GRID, TWO_LAMBDA)
    bids = submit_bids_ope(
        3, [5, 0, 22, 1], KEYRING, SCALE, random.Random(0)
    )[0]
    loc_blob = encode_location_bloom(loc)
    bid_blob = encode_bids_ope(bids)
    for cut in range(len(loc_blob)):
        with pytest.raises(CodecError):
            decode_location_bloom(loc_blob[:cut])
    for cut in range(len(bid_blob)):
        with pytest.raises(CodecError):
            decode_bids_ope(bid_blob[:cut])


# --- garbage: reject or decode-encode identity, nothing in between -------------


@settings(max_examples=40, deadline=None)
@given(body=st.binary(min_size=0, max_size=200))
def test_bloom_location_garbage_rejected_or_exact(body):
    blob = BLOOM_LOCATION_TAG + body
    try:
        decoded = decode_location_bloom(blob)
    except CodecError:
        return
    assert encode_location_bloom(decoded) == blob


@settings(max_examples=40, deadline=None)
@given(body=st.binary(min_size=0, max_size=200))
def test_ope_bids_garbage_rejected_or_exact(body):
    blob = OPE_BID_TAG + body
    try:
        decoded = decode_bids_ope(blob)
    except CodecError:
        return
    assert encode_bids_ope(decoded) == blob


def test_wrong_tag_rejected():
    with pytest.raises(CodecError):
        decode_location_bloom(b"X" + b"\x00" * 16)
    with pytest.raises(CodecError):
        decode_bids_ope(b"X" + b"\x00" * 16)


# --- registry dispatch by leading tag byte -------------------------------------


@settings(max_examples=10, deadline=None)
@given(loc=bloom_locations, bids=ope_bid_submissions)
def test_payload_tag_dispatch(loc, bids):
    bloom = get_scheme("bloom")
    assert scheme_for_payload(encode_location_bloom(loc)) is bloom
    assert scheme_for_payload(encode_bids_ope(bids)) is bloom


def test_ppbs_payloads_dispatch_to_ppbs():
    from repro.lppa.codec import encode_location
    from repro.lppa.location import submit_location

    loc = submit_location(0, (1, 2), KEYRING.g0, GRID, TWO_LAMBDA)
    assert scheme_for_payload(encode_location(loc)) is get_scheme("ppbs")
