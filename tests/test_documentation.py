"""Documentation coverage: every public item carries a docstring.

Deliverable-level guarantee, enforced: each module under ``repro``, every
public class, and every public function/method must be documented.  New
code cannot land undocumented without breaking this test.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it would execute the CLI
        yield importlib.import_module(info.name)


MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_items_are_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
            continue
        if inspect.isclass(obj):
            for attr_name in vars(obj):
                if attr_name.startswith("_"):
                    continue
                attr = getattr(obj, attr_name, None)
                if not callable(attr):
                    continue
                # getattr + getdoc credit docstrings inherited from a
                # documented interface (BidTable, ZeroDisguisePolicy, ...).
                doc = inspect.getdoc(attr)
                if not (doc and doc.strip()):
                    undocumented.append(f"{name}.{attr_name}")
    assert not undocumented, (
        f"{module.__name__}: undocumented public items: {undocumented}"
    )
