"""Shared fixtures: small deterministic worlds reused across test modules.

Session-scoped where construction is expensive (coverage maps); tests must
treat them as read-only.
"""

import random

import pytest

from repro.auction.bidders import generate_users
from repro.geo.datasets import make_database
from repro.geo.grid import GridSpec


@pytest.fixture(scope="session")
def small_db():
    """Area 3 with 10 channels on the full 100x100 grid."""
    return make_database(3, n_channels=10)


@pytest.fixture(scope="session")
def small_users(small_db):
    """Thirty bidders on the small database (fixed seed)."""
    return generate_users(small_db, 30, random.Random(1234))


@pytest.fixture(scope="session")
def tiny_db():
    """Area 4 with 6 channels on a coarse 20x20 grid (fast attacks)."""
    return make_database(4, n_channels=6, grid=GridSpec(rows=20, cols=20, cell_km=3.75))


@pytest.fixture()
def rng():
    """A fresh deterministic RNG per test."""
    return random.Random(99)
