"""Communication-cost accounting against Theorem 4."""

import random

import pytest

from repro.analysis.comm_cost import measure_bid_cost, measure_location_cost
from repro.crypto.keys import generate_keyring
from repro.geo.grid import GridSpec
from repro.lppa.bids_advanced import BidScale, submit_bids_advanced
from repro.lppa.location import submit_location


@pytest.fixture(scope="module")
def submissions():
    keyring = generate_keyring(b"comm-test", 4, rd=4, cr=8)
    scale = BidScale(bmax=30, rd=4, cr=8)
    rng = random.Random(0)
    subs = [
        submit_bids_advanced(i, [5, 0, 17, 30], keyring, scale, rng)[0]
        for i in range(6)
    ]
    return subs, scale


def test_theorem4_prediction_is_exact(submissions):
    """The advanced scheme's prefix material is sized exactly by Theorem 4."""
    subs, scale = submissions
    report = measure_bid_cost(subs, scale)
    assert report.measured_masked_bits == report.predicted_bits
    assert report.prediction_error == 0.0


def test_total_exceeds_masked(submissions):
    subs, scale = submissions
    report = measure_bid_cost(subs, scale)
    assert report.measured_total_bits > report.measured_masked_bits


def test_as_row(submissions):
    subs, scale = submissions
    row = measure_bid_cost(subs, scale).as_row()
    assert row["N"] == 6 and row["k"] == 4
    assert row["error"] == 0.0


def test_empty_submissions_rejected():
    with pytest.raises(ValueError):
        measure_bid_cost([], BidScale(bmax=30, rd=4, cr=8))


def test_location_cost():
    grid = GridSpec(rows=32, cols=32, cell_km=1.0)
    subs = [
        submit_location(i, (i, i), b"g0-key", grid, 4) for i in range(5)
    ]
    total = measure_location_cost(subs)
    assert total == sum(s.wire_bytes() for s in subs)
    assert total > 0
