"""Theorems 1-4: closed forms, exact derivations, Monte-Carlo agreement."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.montecarlo import (
    simulate_expected_plaintext_hits,
    simulate_no_leakage,
    simulate_zero_not_winning,
)
from repro.analysis.theorems import (
    theorem1_exact,
    theorem1_paper,
    theorem2_exact,
    theorem2_paper,
    theorem3_paper,
    theorem4_bits,
)

PROBS = (0.35, 0.20, 0.15, 0.10, 0.08, 0.06, 0.04, 0.02)


@st.composite
def _prob_vectors(draw):
    weights = draw(
        st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=2, max_size=8)
    )
    total = sum(weights)
    return tuple(w / total for w in weights)


class TestTheorem1:
    def test_paper_formula_equals_exact_sum(self):
        for b_n in range(len(PROBS)):
            for m in (0, 1, 4, 12):
                assert theorem1_paper(b_n, m, PROBS) == pytest.approx(
                    theorem1_exact(b_n, m, PROBS), abs=1e-12
                )

    @settings(max_examples=40, deadline=None)
    @given(probs=_prob_vectors(), m=st.integers(min_value=0, max_value=15))
    def test_closed_form_matches_exact_for_random_laws(self, probs, m):
        for b_n in range(len(probs)):
            assert theorem1_paper(b_n, m, probs) == pytest.approx(
                theorem1_exact(b_n, m, probs), abs=1e-9
            )

    def test_matches_monte_carlo(self):
        rng = random.Random(0)
        for b_n, m in ((3, 5), (2, 10), (7, 4)):
            closed = theorem1_paper(b_n, m, PROBS)
            estimate = simulate_zero_not_winning(b_n, m, PROBS, rng, trials=40000)
            assert closed == pytest.approx(estimate, abs=0.02)

    def test_degenerate_cases(self):
        assert theorem1_paper(3, 0, PROBS) == 1.0
        # q = 0 branch: p_{b_N} zero forces the limit expression.
        probs = (0.5, 0.0, 0.5)
        assert theorem1_paper(1, 3, probs) == pytest.approx(0.5**3)

    def test_validation(self):
        with pytest.raises(ValueError):
            theorem1_paper(99, 1, PROBS)
        with pytest.raises(ValueError):
            theorem1_paper(1, -1, PROBS)
        with pytest.raises(ValueError):
            theorem1_paper(1, 1, (0.5, 0.6))  # does not sum to 1


class TestTheorem2:
    def test_exact_matches_monte_carlo(self):
        rng = random.Random(1)
        for b_n, m, t in ((3, 6, 2), (2, 8, 3), (4, 10, 4)):
            exact = theorem2_exact(b_n, m, t, PROBS)
            estimate = simulate_no_leakage(b_n, m, t, PROBS, rng, trials=40000)
            assert exact == pytest.approx(estimate, abs=0.02)

    def test_printed_formula_deviates_from_ground_truth(self):
        """Documented erratum: the paper's (j-1)/j tie-break factor is off.

        Pinned so that a future 'fix' that silently changes either side gets
        noticed; EXPERIMENTS.md discusses the discrepancy.
        """
        b_n, m, t = 3, 6, 2
        paper = theorem2_paper(b_n, m, t, PROBS)
        exact = theorem2_exact(b_n, m, t, PROBS)
        assert abs(paper - exact) > 0.01

    def test_versions_agree_when_ties_are_impossible(self):
        """The two formulas differ only in the tie-break term; kill the ties
        (p at b_N is zero) and they must coincide — here at exactly 1.
        """
        probs = (0.0, 1.0)  # every zero disguises as bmax = 1 > b_n = 0
        exact = theorem2_exact(0, 5, 2, probs)
        paper = theorem2_paper(0, 5, 2, probs)
        assert exact == pytest.approx(paper, abs=1e-12)
        assert exact == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            theorem2_exact(1, 3, 0, PROBS)
        with pytest.raises(ValueError):
            theorem2_exact(1, 3, 4, PROBS)


class TestTheorem3:
    def test_printed_formula_tracks_monte_carlo_loosely(self):
        """The printed combinatorics are approximate; record the gap."""
        bids = [2, 5, 7, 9]
        rng = random.Random(2)
        closed = theorem3_paper(bids, 6, 2, 15)
        estimate = simulate_expected_plaintext_hits(bids, 6, 2, 15, rng, trials=30000)
        # Same order of magnitude is all the printed formula achieves.
        assert closed == pytest.approx(estimate, abs=0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            theorem3_paper([], 3, 1, 15)
        with pytest.raises(ValueError):
            theorem3_paper([5, 2], 3, 1, 15)  # not ascending
        with pytest.raises(ValueError):
            theorem3_paper([2, 5], 3, 1, 4)  # bmax below bids
        with pytest.raises(ValueError):
            theorem3_paper([0, 5], 3, 1, 15)  # non-positive bid


class TestTheorem4:
    def test_formula(self):
        # h * k * N * (3w - 1) * (w + 1)
        assert theorem4_bits(10, 5, 8, 2.0) == 2.0 * 5 * 10 * 23 * 9

    def test_linear_in_users_and_channels(self):
        base = theorem4_bits(10, 5, 8, 2.0)
        assert theorem4_bits(20, 5, 8, 2.0) == 2 * base
        assert theorem4_bits(10, 10, 8, 2.0) == 2 * base

    def test_validation(self):
        with pytest.raises(ValueError):
            theorem4_bits(0, 5, 8, 2.0)
        with pytest.raises(ValueError):
            theorem4_bits(10, 5, 0, 2.0)
        with pytest.raises(ValueError):
            theorem4_bits(10, 5, 8, 0.0)
