"""Trace-driven auditors: Theorem 4 exactness and the BCM privacy replay."""

import json
import random

import pytest

from repro import obs
from repro.analysis.trace_audit import (
    TraceAuditError,
    audit_comm_cost,
    audit_privacy,
)
from repro.attacks.against_lppa import lppa_bcm_attack
from repro.auction.bidders import generate_users
from repro.geo.datasets import make_database
from repro.geo.grid import GridSpec
from repro.lppa.fastsim import run_fast_lppa
from repro.lppa.session import run_lppa_auction

GRID = GridSpec(rows=20, cols=20, cell_km=3.75)


@pytest.fixture(scope="module")
def database():
    return make_database(4, n_channels=5, grid=GRID)


@pytest.fixture(scope="module")
def traced_session(database):
    users = generate_users(database, 10, random.Random(11))
    with obs.tracing() as recorder:
        result = run_lppa_auction(
            users, GRID, two_lambda=6, bmax=127, entropy="audit-test:0"
        )
    return recorder, result


def test_comm_audit_passes_exactly_on_real_session(traced_session):
    recorder, _ = traced_session
    report = audit_comm_cost(recorder.events())
    assert report.passed
    assert len(report.rounds) == 1
    round_audit = report.rounds[0]
    assert round_audit.exact
    assert round_audit.n_users == 10
    assert round_audit.n_channels == 5
    assert round_audit.measured_masked_bits == round_audit.predicted_bits
    # Every location + bid message was framing-checked.
    assert report.messages_checked >= 20


def test_comm_audit_catches_tampered_wire_size(traced_session):
    recorder, _ = traced_session
    events = [dict(e) for e in recorder.events()]
    victim = next(e for e in events if e.get("kind") == "bid_submission")
    victim["wire_size"] += 1
    with pytest.raises(TraceAuditError, match="wire_size"):
        audit_comm_cost(events)
    report = audit_comm_cost(events, strict=False)
    assert not report.passed
    assert any("wire_size" in err for err in report.errors)


def test_comm_audit_catches_tampered_masked_bytes(traced_session):
    recorder, _ = traced_session
    events = [dict(e) for e in recorder.events()]
    victim = next(e for e in events if e.get("kind") == "bid_submission")
    victim["masked_set_bytes"] -= 1
    report = audit_comm_cost(events, strict=False)
    assert not report.passed
    assert any("Theorem 4" in err for err in report.errors)


def test_comm_audit_requires_setup_meta(traced_session):
    recorder, _ = traced_session
    events = [
        dict(e)
        for e in recorder.events()
        if not (e.get("type") == "meta" and e.get("name") == "protocol_setup")
    ]
    report = audit_comm_cost(events, strict=False)
    assert any("protocol_setup" in err for err in report.errors)


def test_comm_audit_rejects_fastsim_trace(database):
    users = generate_users(database, 8, random.Random(3))
    with obs.tracing() as recorder:
        run_fast_lppa(users, two_lambda=6, bmax=127, entropy="audit-fast:0")
    with pytest.raises(TraceAuditError, match="no message events"):
        audit_comm_cost(recorder.events())


def test_privacy_audit_matches_direct_attack(traced_session, database):
    recorder, result = traced_session
    report = audit_privacy(
        recorder.events(), database, fractions=(0.5,), robust=True
    )
    assert len(report.rounds) == 1
    audited = report.rounds[0]
    assert audited.n_users == 10

    # The trace-driven replay must reproduce the attack run directly on the
    # session's own rankings — the trajectory is derived, not re-simulated.
    direct = lppa_bcm_attack(database, result.rankings, 10, 0.5, robust=True)
    counts = [int(mask.sum()) for mask in direct]
    assert audited.mean_cells == sum(counts) / len(counts)
    assert audited.min_cells == min(counts)
    assert audited.max_cells == max(counts)


def test_privacy_audit_uses_only_adversary_visible_events(traced_session, database):
    recorder, _ = traced_session
    events = recorder.events()
    n_hidden = sum(1 for e in events if e["vis"] in ("su", "ttp"))
    assert n_hidden > 0  # protocol_setup & ttp windows are in the trace ...
    report = audit_privacy(events, database, fractions=(0.25,))
    # ... but the auditor consumed only the public/auctioneer stream.
    assert report.n_events_consumed == len(events) - n_hidden


def test_privacy_audit_works_on_fastsim_trace(database):
    """Rankings are adversary-visible in both engines, so the privacy audit
    (unlike the comm audit) applies to fastsim traces too."""
    users = generate_users(database, 8, random.Random(5))
    with obs.tracing() as recorder:
        result = run_fast_lppa(users, two_lambda=6, bmax=127, entropy="audit-fast:1")
    report = audit_privacy(recorder.events(), database, fractions=(0.5,))
    direct = lppa_bcm_attack(database, result.rankings, 8, 0.5, robust=True)
    counts = [int(mask.sum()) for mask in direct]
    assert report.rounds[0].mean_cells == sum(counts) / len(counts)


def test_privacy_audit_rejects_channel_mismatch(traced_session):
    recorder, _ = traced_session
    wrong_db = make_database(4, n_channels=7, grid=GRID)
    with pytest.raises(TraceAuditError, match="channels"):
        audit_privacy(recorder.events(), wrong_db)


def test_privacy_audit_requires_rankings():
    with pytest.raises(TraceAuditError, match="ranking"):
        audit_privacy([], make_database(4, n_channels=5, grid=GRID))


def test_audits_run_from_a_written_file(tmp_path, traced_session, database):
    """End-to-end through the JSONL layer, as `repro trace audit` does."""
    from repro.obs.trace import load_trace

    recorder, _ = traced_session
    path = recorder.write_jsonl(tmp_path / "TRACE_a.jsonl")
    _, events = load_trace(path)
    assert audit_comm_cost(events).passed
    assert audit_privacy(events, database, fractions=(0.25,)).rounds
    # Round-trip must not perturb equality: re-serialize and compare.
    assert [json.loads(json.dumps(e)) for e in events] == events
