"""Section IV.C.1's leaks: present in the basic scheme, closed by the advanced."""

import random

import pytest

from repro.analysis.security import (
    cardinality_rank_correlation,
    cross_channel_linkability,
    frequency_zero_guess,
    tail_cardinalities,
)
from repro.crypto.keys import generate_keyring
from repro.lppa.bids_advanced import BidScale, submit_bids_advanced
from repro.lppa.bids_basic import submit_bids_basic

KEYRING = generate_keyring(b"security-test", 3, rd=4, cr=8)
SCALE = BidScale(bmax=30, rd=4, cr=8)
BMAX = 30

# A population where zeros dominate, as in any real spectrum auction.
BID_ROWS = [
    [0, 12, 0],
    [0, 0, 25],
    [7, 0, 0],
    [0, 19, 0],
    [0, 0, 0],
    [15, 0, 9],
]


@pytest.fixture(scope="module")
def basic_submissions():
    rng = random.Random(0)
    return [
        submit_bids_basic(uid, row, KEYRING, BMAX, rng)
        for uid, row in enumerate(BID_ROWS)
    ]


@pytest.fixture(scope="module")
def advanced_submissions():
    rng = random.Random(1)
    return [
        submit_bids_advanced(uid, row, KEYRING, SCALE, rng)[0]
        for uid, row in enumerate(BID_ROWS)
    ]


class TestFrequencyLeak:
    def test_basic_scheme_exposes_every_zero(self, basic_submissions):
        guessed, multiplicity = frequency_zero_guess(basic_submissions)
        true_zeros = {
            (u, c)
            for u, row in enumerate(BID_ROWS)
            for c, b in enumerate(row)
            if b == 0
        }
        assert guessed == true_zeros
        assert multiplicity == len(true_zeros)

    def test_advanced_scheme_flattens_the_histogram(self, advanced_submissions):
        true_zeros = sum(1 for row in BID_ROWS for b in row if b == 0)
        guessed, multiplicity = frequency_zero_guess(advanced_submissions)
        # rd spreading + cr expansion scatter the zeros; the modal family
        # shrinks to birthday-collision size and stops covering them.
        assert multiplicity <= 2
        assert len(guessed) < true_zeros


class TestCardinalityLeak:
    # Bids whose tail covers [b, 30] have strictly shrinking prefix counts:
    # 1 -> 8 prefixes, 2 -> 7, 9 -> 7, 16 -> 4, 24 -> 3, 30 -> 1.
    MONOTONE_BIDS = [[1], [2], [9], [16], [24], [30]]

    @pytest.fixture(scope="class")
    def monotone_basic(self):
        rng = random.Random(7)
        return [
            submit_bids_basic(uid, row, KEYRING, BMAX, rng)
            for uid, row in enumerate(self.MONOTONE_BIDS)
        ]

    def test_basic_scheme_orders_bids_by_set_size(self, monotone_basic):
        corr = cardinality_rank_correlation(
            monotone_basic, self.MONOTONE_BIDS, channel=0
        )
        assert corr < -0.9  # larger bid -> shorter tail cover

    def test_basic_scheme_sizes_are_distinguishable(self, basic_submissions):
        sizes = tail_cardinalities(basic_submissions, channel=2)
        assert len(set(sizes)) > 1

    def test_advanced_scheme_has_constant_cardinality(self, advanced_submissions):
        sizes = tail_cardinalities(advanced_submissions, channel=1)
        assert len(set(sizes)) == 1
        corr = cardinality_rank_correlation(
            advanced_submissions, BID_ROWS, channel=1
        )
        assert corr == 0.0


class TestCrossChannelLeak:
    def test_basic_scheme_is_fully_linkable(self, basic_submissions):
        assert cross_channel_linkability(basic_submissions) == 1.0

    def test_advanced_scheme_is_unlinkable(self, advanced_submissions):
        assert cross_channel_linkability(advanced_submissions) == 0.0


def test_validation(basic_submissions):
    with pytest.raises(ValueError):
        frequency_zero_guess([])
    with pytest.raises(ValueError):
        cardinality_rank_correlation(basic_submissions, BID_ROWS[:2])
    with pytest.raises(ValueError):
        cardinality_rank_correlation(basic_submissions[:1], BID_ROWS[:1])
    with pytest.raises(ValueError):
        cross_channel_linkability([])
