"""Satellite: an SU that straggles epoch 0 rejoins and wins epoch 1.

The equivalence contract under partial participation: an epoch with a
straggler is *not* checked (survivor wire ids stay dense only via a
non-identity remap), but the moment the straggler rejoins and the epoch
regains full participation, bit-equality against the single-round
in-process session must hold again — the straggle must leave no residue
(mask caches, key epochs, pseudonym windows) that skews later epochs.
"""

import asyncio

from repro.lppa.policies import KeepZeroPolicy
from repro.lppa.session import run_lppa_auction
from repro.net.frames import FrameType, pack_json, read_frame, write_frame
from repro.net.loadgen import (
    LoadgenConfig,
    check_result_equivalence,
    protocol_seed,
)
from repro.net.transport import MemoryTransport
from repro.service.membership import MembershipManager
from repro.service.scheduler import (
    EpochConfig,
    EpochScheduler,
    service_entropy,
)

from tests.net.test_faults import _make_client, _make_server

N_USERS = 5
STRAGGLER = 2


def test_straggler_epoch_skipped_then_rejoin_is_bit_identical():
    config = LoadgenConfig(n_users=N_USERS, n_channels=6, seed=5)

    async def scenario():
        transport = MemoryTransport()
        # Short location deadline: epoch 0 proceeds without the silent SU
        # quickly instead of waiting out the default 10 s.
        server, grid, users = _make_server(
            config, transport, location_deadline=0.3
        )
        membership = MembershipManager(
            N_USERS,
            initial_members=range(N_USERS),
            master_seed=protocol_seed(config.seed),
            base_ring=server.keyring,
        )
        await server.start()

        clients = [
            _make_client(server, grid, users, su, transport)
            for su in range(N_USERS)
            if su != STRAGGLER
        ]
        rejoiner = _make_client(server, grid, users, STRAGGLER, transport)
        raw_conn = None
        rejoin_tasks = []

        async def on_membership(epoch, snapshot, ring, delta):
            nonlocal raw_conn
            if epoch == 0:
                # The straggler registers (HELLO/WELCOME) but never
                # submits: a live connection that sleeps through the
                # location deadline (the test_faults sleeper idiom).
                raw_conn = await transport.connect()
                await write_frame(
                    raw_conn, FrameType.HELLO, pack_json({"su": STRAGGLER})
                )
                await read_frame(raw_conn, strict=True)  # WELCOME
            elif epoch == 1:
                # Boundary repair: drop the wedged connection, await its
                # departure (a fresh HELLO must not race the teardown),
                # then seat a real client on the same wire id.
                raw_conn.close()
                await server.wait_for_roster(
                    [su for su in range(N_USERS) if su != STRAGGLER],
                    timeout=5.0,
                )
                await rejoiner.connect()
                rejoin_tasks.append(asyncio.ensure_future(rejoiner.run(1)))

        def check(epoch, snapshot, report):
            if report.stragglers:
                return None
            session = run_lppa_auction(
                [users[logical] for logical in snapshot.members],
                grid,
                two_lambda=config.two_lambda,
                bmax=config.bmax,
                seed=protocol_seed(config.seed),
                policy=KeepZeroPolicy(),
                entropy=service_entropy(config.seed, epoch),
            )
            check_result_equivalence(report.result, session)
            return True

        scheduler = EpochScheduler(
            server,
            membership,
            EpochConfig(epochs=2, seed=config.seed, roster_timeout=5.0),
            on_membership=on_membership,
            check_epoch=check,
        )
        fleet = [asyncio.ensure_future(c.run(2)) for c in clients]
        try:
            records = await scheduler.run()
            await asyncio.gather(*fleet, *rejoin_tasks)
        finally:
            for client in (*clients, rejoiner):
                client.close()
            await server.stop()
        return records, scheduler.summary()

    records, summary = asyncio.run(scenario())

    epoch0, epoch1 = records
    # Epoch 0: the sleeper is reported as a straggler by *logical* id and
    # the equivalence check is skipped, not failed.
    assert epoch0.straggler_logicals == (STRAGGLER,)
    assert epoch0.equivalent is None
    assert epoch0.report.participants == tuple(
        su for su in range(N_USERS) if su != STRAGGLER
    )
    # Epoch 1: full participation restored; `check` raised nothing, so the
    # networked result is bit-identical to the in-process session.
    assert epoch1.straggler_logicals == ()
    assert epoch1.equivalent is True
    assert STRAGGLER in epoch1.report.participants
    assert summary["straggler_epochs"] == 1
    assert summary["equivalence_checked"] == 1
    assert summary["retired"] == []
