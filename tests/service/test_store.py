"""EpochStore: the digest-manifested run directory and its validator."""

import json

import pytest

from repro.obs.registry import MetricsRegistry
from repro.service.store import (
    MANIFEST_NAME,
    EpochStore,
    load_epoch_result,
    load_manifest,
    validate_run,
)


def _document(epoch: int) -> dict:
    return {
        "epoch": epoch,
        "membership": {"version": 0, "members": [0, 1]},
        "result": {"wins": [], "revenue": 0},
    }


def _registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.count("service.epochs")
    registry.record_seconds("net.round", 0.01)
    return registry


def _write_run(tmp_path, epochs=3):
    store = EpochStore(tmp_path / "run", config={"seed": 1})
    for epoch in range(epochs):
        store.record_epoch(
            epoch,
            _document(epoch),
            registry=_registry(),
            summary={"members": 2},
        )
    store.attach_file("TRACE_service.jsonl", '{"event": "x"}\n')
    store.finalize({"epochs": epochs})
    return store.root


def test_roundtrip_and_validation(tmp_path):
    root = _write_run(tmp_path)
    manifest = load_manifest(root)
    assert manifest["kind"] == "lppa-epoch-run"
    assert [e["index"] for e in manifest["epochs"]] == [0, 1, 2]
    assert manifest["config"] == {"seed": 1}
    assert manifest["summary"] == {"epochs": 3}
    assert "TRACE_service.jsonl" in manifest["attachments"]
    assert load_epoch_result(root, 1)["epoch"] == 1
    assert validate_run(root) == []


def test_epochs_must_arrive_in_order(tmp_path):
    store = EpochStore(tmp_path / "run")
    store.record_epoch(0, _document(0))
    with pytest.raises(ValueError, match="out of order"):
        store.record_epoch(2, _document(2))


def test_finalize_is_terminal(tmp_path):
    store = EpochStore(tmp_path / "run")
    store.record_epoch(0, _document(0))
    store.finalize()
    with pytest.raises(RuntimeError):
        store.record_epoch(1, _document(1))
    with pytest.raises(RuntimeError):
        store.finalize()
    with pytest.raises(RuntimeError):
        store.attach_file("x.txt", "x")


def test_attachment_names_cannot_escape_the_run_dir(tmp_path):
    store = EpochStore(tmp_path / "run")
    with pytest.raises(ValueError):
        store.attach_file("../escape.txt", "x")
    with pytest.raises(ValueError):
        store.attach_file(MANIFEST_NAME, "x")


def test_missing_manifest_is_an_interrupted_run(tmp_path):
    store = EpochStore(tmp_path / "run")
    store.record_epoch(0, _document(0))
    # No finalize(): by definition an interrupted run.
    errors = validate_run(store.root)
    assert errors and "manifest" in errors[0]


def test_validate_detects_tampered_result(tmp_path):
    root = _write_run(tmp_path)
    victim = root / "epochs" / "epoch_0001" / "result.json"
    document = json.loads(victim.read_text())
    document["result"]["revenue"] = 10_000
    victim.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    errors = validate_run(root)
    assert any("digest mismatch" in e for e in errors)


def test_validate_detects_missing_file(tmp_path):
    root = _write_run(tmp_path)
    (root / "epochs" / "epoch_0002" / "result.json").unlink()
    errors = validate_run(root)
    assert any("missing file" in e for e in errors)


def test_validate_detects_index_gap(tmp_path):
    root = _write_run(tmp_path)
    path = root / MANIFEST_NAME
    manifest = json.loads(path.read_text())
    del manifest["epochs"][1]
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    errors = validate_run(root)
    assert any("gap-free" in e for e in errors)


def test_validate_detects_tampered_attachment(tmp_path):
    root = _write_run(tmp_path)
    (root / "TRACE_service.jsonl").write_text("{}\n")
    errors = validate_run(root)
    assert any("attachment" in e for e in errors)


def test_validate_checks_bench_artifact_schema(tmp_path):
    root = _write_run(tmp_path)
    bench = next((root / "epochs" / "epoch_0000").glob("BENCH_*.json"))
    document = json.loads(bench.read_text())
    # Keep the digest honest but break the schema: rewrite the file AND
    # its manifest digest, so only the artifact validator can object.
    del document["schema_version"]
    bench.write_text(json.dumps(document, indent=2, sort_keys=True))
    manifest_path = root / MANIFEST_NAME
    manifest = json.loads(manifest_path.read_text())
    from repro.service.store import _sha256_file

    manifest["epochs"][0]["files"][bench.name] = _sha256_file(bench)
    manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True))
    errors = validate_run(root)
    assert errors  # schema violation reported
    assert all("digest" not in e for e in errors)


def test_result_epoch_field_must_match_manifest_index(tmp_path):
    store = EpochStore(tmp_path / "run")
    store.record_epoch(0, _document(7))  # wrong epoch field
    store.finalize()
    errors = validate_run(store.root)
    assert any("disagrees with manifest index" in e for e in errors)
