"""MembershipManager: admission, retirement, identities, key epochs."""

import pytest

from repro.crypto.keys import KeyRing, generate_keyring
from repro.service.membership import (
    MembershipDelta,
    MembershipError,
    MembershipManager,
    rotate_ring,
)

MASTER = b"net:1"


def _ring() -> KeyRing:
    return generate_keyring(MASTER, 8)


def _manager(population=8, members=range(5), ring=None) -> MembershipManager:
    return MembershipManager(
        population,
        initial_members=members,
        master_seed=MASTER,
        base_ring=ring if ring is not None else _ring(),
    )


# -- deltas -------------------------------------------------------------------


def test_delta_rejects_duplicates_and_overlap():
    with pytest.raises(MembershipError):
        MembershipDelta(joins=(1, 1))
    with pytest.raises(MembershipError):
        MembershipDelta(leaves=(2, 2))
    with pytest.raises(MembershipError):
        MembershipDelta(joins=(3,), leaves=(3,))


def test_empty_delta_is_falsy():
    assert not MembershipDelta()
    assert MembershipDelta(joins=(1,))


# -- admission ----------------------------------------------------------------


def test_check_rejects_inadmissible_churn():
    manager = _manager()
    with pytest.raises(MembershipError):
        manager.check(MembershipDelta(joins=(0,)))  # already a member
    with pytest.raises(MembershipError):
        manager.check(MembershipDelta(joins=(8,)))  # outside the population
    with pytest.raises(MembershipError):
        manager.check(MembershipDelta(leaves=(7,)))  # not a member
    with pytest.raises(MembershipError):
        manager.check(MembershipDelta(leaves=(0, 1, 2, 3, 4)))  # would empty


def test_apply_updates_members_and_version():
    manager = _manager()
    snapshot = manager.apply(MembershipDelta(joins=(6,), leaves=(1,)))
    assert snapshot.members == (0, 2, 3, 4, 6)
    assert snapshot.version == 1
    assert manager.version == 1


def test_empty_delta_keeps_the_version():
    manager = _manager()
    before = manager.version
    manager.apply(MembershipDelta())
    assert manager.version == before


# -- dense wire ids -----------------------------------------------------------


def test_wire_ids_are_dense_sorted_logical_order():
    manager = _manager()
    manager.apply(MembershipDelta(joins=(7,), leaves=(2,)))
    snapshot = manager.snapshot()
    assert snapshot.members == (0, 1, 3, 4, 7)
    assert snapshot.wire_ids == {0: 0, 1: 1, 3: 2, 4: 3, 7: 4}
    assert snapshot.wire_roster() == (0, 1, 2, 3, 4)
    assert [snapshot.logical_for_wire(w) for w in range(5)] == [0, 1, 3, 4, 7]


# -- pseudonyms ---------------------------------------------------------------


def test_leaver_pseudonym_not_reissued_within_the_epoch_window():
    manager = _manager()
    gone = manager.snapshot().pseudonyms[1]
    manager.apply(MembershipDelta(leaves=(1,)))
    # Rejoin within the same window: a *different* pseudonym.
    snapshot = manager.apply(MembershipDelta(joins=(1,)))
    assert snapshot.pseudonyms[1] != gone


def test_pseudonyms_unique_across_members():
    manager = _manager(population=12, members=range(10))
    values = list(manager.snapshot().pseudonyms.values())
    assert len(set(values)) == len(values)


# -- key epochs ---------------------------------------------------------------


def test_ring_version_zero_is_the_bootstrap_ring():
    ring = _ring()
    assert rotate_ring(ring, MASTER, 0) is ring


def test_fingerprint_changes_per_version_but_mask_keys_survive():
    ring = _ring()
    seen = set()
    for version in range(4):
        rotated = rotate_ring(ring, MASTER, version)
        seen.add(rotated.fingerprint())
        # gc moves; every *other* live key (the SU masking material) is
        # untouched, so stationary SUs' mask-cache entries survive churn
        # via selective invalidation.
        changed = [
            old != new
            for old, new in zip(ring.live_keys(), rotated.live_keys())
        ]
        assert sum(changed) == (0 if version == 0 else 1)
        assert set(ring.live_keys()) - set(rotated.live_keys()) <= {ring.gc}
        assert rotated.g0 == ring.g0
    assert len(seen) == 4


def test_manager_keyring_tracks_the_version():
    ring = _ring()
    manager = _manager(ring=ring)
    assert manager.keyring() is ring
    manager.apply(MembershipDelta(leaves=(4,)))
    assert manager.keyring().fingerprint() != ring.fingerprint()
    assert manager.keyring().fingerprint() == (
        rotate_ring(ring, MASTER, 1).fingerprint()
    )


# -- determinism --------------------------------------------------------------


def test_replay_reissues_identical_pseudonyms_and_rings():
    deltas = [
        MembershipDelta(joins=(6,), leaves=(0,)),
        MembershipDelta(),
        MembershipDelta(joins=(0,), leaves=(3, 4)),
    ]
    ring = _ring()
    runs = []
    for _ in range(2):
        manager = _manager(ring=ring)
        snapshots = []
        for delta in deltas:
            snapshots.append(manager.apply(delta))
            manager.advance_epoch_window()
        runs.append(
            [(s.members, s.pseudonyms, s.version) for s in snapshots]
            + [manager.keyring().fingerprint()]
        )
    assert runs[0] == runs[1]


def test_retire_builds_a_leave_only_delta():
    manager = _manager()
    delta = manager.retire([4, 2, 4])
    assert delta.joins == ()
    assert delta.leaves == (2, 4)
