"""The soak harness: deterministic churn, differential equivalence, history.

The acceptance test for the epoch service lives here: a 5-epoch networked
run with join/leave churn in which every full-participation epoch is
bit-identical to a single-round in-process session over that epoch's
final membership.
"""

import asyncio

import pytest

from repro.service.membership import MembershipDelta
from repro.service.soak import SoakConfig, churn_plan, run_soak
from repro.service.store import load_manifest, validate_run

#: Seed chosen so the CI-sized plan below actually churns (joins AND
#: leaves non-zero) — asserted by test_churn_plan_actually_churns.
SOAK = dict(
    population=9,
    initial_members=6,
    epochs=5,
    n_channels=6,
    seed=3,
    join_rate=1.0,
    leave_rate=1.0,
    check_equivalence=True,
)


# -- the churn plan -----------------------------------------------------------


def test_churn_plan_is_deterministic():
    config = SoakConfig(**SOAK)
    assert churn_plan(config) == churn_plan(config)


def test_churn_plan_epoch_zero_is_always_empty():
    assert churn_plan(SoakConfig(**SOAK))[0] == MembershipDelta()


def test_churn_plan_actually_churns():
    deltas = churn_plan(SoakConfig(**SOAK))
    assert sum(len(d.joins) for d in deltas) > 0
    assert sum(len(d.leaves) for d in deltas) > 0


def test_churn_plan_stays_within_the_population():
    config = SoakConfig(**{**SOAK, "epochs": 12, "seed": 11})
    members = set(range(config.n_initial))
    for delta in churn_plan(config):
        assert set(delta.leaves) <= members
        assert not set(delta.joins) & members
        members = (members - set(delta.leaves)) | set(delta.joins)
        assert members
        assert members <= set(range(config.population))


# -- config validation --------------------------------------------------------


def test_soak_config_rejects_nonsense():
    with pytest.raises(ValueError):
        SoakConfig(population=1)
    with pytest.raises(ValueError):
        SoakConfig(join_rate=-1.0)
    with pytest.raises(ValueError):
        SoakConfig(epochs=3, warmup_epochs=3)
    with pytest.raises(ValueError):
        SoakConfig(population=4, initial_members=5)
    with pytest.raises(ValueError):
        SoakConfig(transport="carrier-pigeon")


# -- the acceptance run -------------------------------------------------------


def _run(**overrides):
    return asyncio.run(run_soak(SoakConfig(**{**SOAK, **overrides})))


def test_soak_epochs_are_bit_identical_to_in_process_sessions():
    """5 networked epochs with churn; every one (full participation — no
    stragglers are induced here) must bit-equal `run_lppa_auction` over
    that epoch's final membership.  `run_soak`'s `_check` raises
    `EquivalenceFailure` on any divergence, so completing the run with
    every record marked equivalent IS the acceptance criterion."""
    report = _run()
    assert report.epochs_completed == 5
    assert report.joins > 0 and report.leaves > 0
    assert all(r.straggler_logicals == () for r in report.records)
    assert all(r.equivalent for r in report.records)
    assert report.equivalence_checked == 5
    # Churn rotated the ring: the last epoch runs a later membership version.
    assert report.records[-1].version > 0


def test_soak_is_deterministic_across_runs():
    def fingerprint(report):
        return [
            (
                r.epoch,
                r.version,
                r.members,
                r.report.result.outcome.sum_of_winning_bids(),
                r.report.result.framed_bytes,
            )
            for r in report.records
        ]

    assert fingerprint(_run()) == fingerprint(_run())


def test_soak_report_has_per_epoch_and_steady_histograms():
    report = _run(epochs=3, warmup_epochs=1)
    loadgen = report.loadgen
    assert set(loadgen.epoch_hists) == {0, 1, 2}
    steady = loadgen.steady_histogram(1)
    assert steady is not None
    assert steady.count == sum(
        loadgen.epoch_hists[e].count for e in (1, 2)
    )
    # Warm-up epoch samples are excluded from the steady distribution.
    assert steady.count < loadgen.latency_hist.count


def test_soak_over_tcp_persists_a_validating_run_dir(tmp_path):
    run_dir = tmp_path / "soak"
    report = _run(transport="tcp", run_dir=str(run_dir))
    assert report.run_dir == run_dir
    assert validate_run(run_dir) == []
    manifest = load_manifest(run_dir)
    assert manifest["summary"]["epochs"] == 5
    assert manifest["summary"]["equivalence_checked"] == 5
    assert manifest["config"]["transport"] == "tcp"
    assert [e["index"] for e in manifest["epochs"]] == list(range(5))
    assert all(e["summary"]["equivalent"] for e in manifest["epochs"])
