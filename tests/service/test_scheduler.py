"""EpochScheduler: entropy contract, delta sanitization, retirement, loop."""

import asyncio

import pytest

from repro.crypto.keys import generate_keyring
from repro.net.loadgen import LoadgenConfig, _entropy, protocol_seed
from repro.net.transport import MemoryTransport
from repro.service.membership import MembershipDelta, MembershipManager
from repro.service.scheduler import (
    EpochConfig,
    EpochScheduler,
    service_entropy,
)
from repro.service.store import EpochStore, validate_run

from tests.net.test_faults import _make_client, _make_server

MASTER = b"net:1"


# -- the entropy contract -----------------------------------------------------


def test_service_entropy_is_a_pure_label():
    assert service_entropy(1, 0) == "service:1:0"
    assert service_entropy(42, 7) == "service:42:7"


def test_loadgen_service_scheme_matches_scheduler_entropy_bytes():
    """`repro loadgen --entropy service` must derive byte-identical labels
    to the epoch scheduler, or the cross-process differential check lies."""
    config = LoadgenConfig(seed=42, entropy_scheme="service")
    for epoch in range(5):
        assert (
            _entropy(config, epoch).encode()
            == service_entropy(config.seed, epoch).encode()
        )


# -- config validation --------------------------------------------------------


def test_epoch_config_rejects_nonsense():
    with pytest.raises(ValueError):
        EpochConfig(epochs=0)
    with pytest.raises(ValueError):
        EpochConfig(epochs=1, interval_s=-1.0)
    with pytest.raises(ValueError):
        EpochConfig(epochs=1, roster_timeout=0.0)
    with pytest.raises(ValueError):
        EpochConfig(epochs=1, retire_after=0)


# -- delta sanitization (no server needed) ------------------------------------


def _scheduler(members=range(4), *, plan=None, retire_after=None):
    membership = MembershipManager(
        8,
        initial_members=members,
        master_seed=MASTER,
        base_ring=generate_keyring(MASTER, 6),
    )
    config = EpochConfig(epochs=1, retire_after=retire_after)
    # The server is only touched inside _run_epoch; the sanitization and
    # straggler bookkeeping under test never reach it.
    return EpochScheduler(None, membership, config, plan=plan), membership


def test_epoch_delta_drops_inadmissible_planned_churn():
    scheduler, _ = _scheduler(
        members=(0, 1, 2),
        plan=lambda epoch: MembershipDelta(joins=(1, 5), leaves=(2, 7)),
    )
    delta = scheduler._epoch_delta(0)
    assert delta.joins == (5,)  # 1 already seated
    assert delta.leaves == (2,)  # 7 was never a member


def test_epoch_delta_merges_forced_retirements():
    scheduler, _ = _scheduler(members=(0, 1, 2))
    scheduler._forced_leaves = (1,)
    delta = scheduler._epoch_delta(0)
    assert delta.leaves == (1,)


def test_epoch_delta_never_empties_the_service():
    scheduler, _ = _scheduler(
        members=(0, 1),
        plan=lambda epoch: MembershipDelta(leaves=(0, 1)),
    )
    delta = scheduler._epoch_delta(0)
    assert delta.leaves == (1,)  # smallest member kept seated


def test_forced_leave_of_a_nonmember_is_dropped():
    scheduler, _ = _scheduler(
        members=(0, 1, 2),
        plan=lambda epoch: MembershipDelta(joins=(3,)),
    )
    scheduler._forced_leaves = (3,)  # not a member: leave side drops it too
    delta = scheduler._epoch_delta(0)
    assert delta == MembershipDelta(joins=(3,))


# -- straggler retirement bookkeeping -----------------------------------------


def test_straggle_streaks_retire_after_threshold():
    scheduler, membership = _scheduler(members=range(4), retire_after=2)
    snapshot = membership.snapshot()
    scheduler._note_straggles(snapshot, (2,))
    assert scheduler._forced_leaves == ()
    scheduler._note_straggles(snapshot, (2,))
    assert scheduler._forced_leaves == (2,)
    # The streak was consumed; the logical starts over if it returns.
    assert 2 not in scheduler._straggle_streaks


def test_straggle_streak_resets_on_participation():
    scheduler, membership = _scheduler(members=range(4), retire_after=2)
    snapshot = membership.snapshot()
    scheduler._note_straggles(snapshot, (2,))
    scheduler._note_straggles(snapshot, ())  # 2 answered this epoch
    scheduler._note_straggles(snapshot, (2,))
    assert scheduler._forced_leaves == ()


# -- the loop itself, in memory -----------------------------------------------


def test_scheduler_runs_epochs_and_persists_history(tmp_path):
    n_users, epochs = 3, 3
    loadgen = LoadgenConfig(n_users=n_users, n_channels=6, seed=1)

    async def scenario():
        transport = MemoryTransport()
        server, grid, users = _make_server(loadgen, transport)
        membership = MembershipManager(
            n_users,
            initial_members=range(n_users),
            master_seed=protocol_seed(loadgen.seed),
            base_ring=server.keyring,
        )
        store = EpochStore(tmp_path / "run", config={"seed": loadgen.seed})
        scheduler = EpochScheduler(
            server,
            membership,
            EpochConfig(epochs=epochs, seed=loadgen.seed, roster_timeout=5.0),
            store=store,
        )
        await server.start()
        clients = [
            _make_client(server, grid, users, su, transport)
            for su in range(n_users)
        ]
        try:
            for client in clients:
                await client.connect()
            fleet = [
                asyncio.create_task(client.run(epochs)) for client in clients
            ]
            records = await scheduler.run()
            await asyncio.gather(*fleet)
        finally:
            for client in clients:
                client.close()
            await server.stop()
        return records, scheduler.summary()

    records, summary = asyncio.run(scenario())
    assert [r.epoch for r in records] == list(range(epochs))
    assert all(r.members == tuple(range(n_users)) for r in records)
    assert all(r.straggler_logicals == () for r in records)
    assert all(r.version == 0 for r in records)  # no churn, no rotation
    assert summary["epochs"] == epochs
    assert summary["final_version"] == 0
    assert summary["retired"] == []
    assert validate_run(tmp_path / "run") == []
    # Distinct entropy per epoch => epochs are genuinely distinct rounds.
    revenues = {
        r.report.result.outcome.sum_of_winning_bids() for r in records
    }
    assert len(revenues) >= 1  # at minimum well-formed; usually distinct
    # Per-epoch registries carried the round's counters.
    assert all(
        any(key.endswith("net.rounds") for key in r.registry.counters)
        or r.registry.counters
        for r in records
    )
