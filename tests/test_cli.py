"""The command-line driver."""

import pytest

from repro.cli import build_parser, main


def test_version(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert capsys.readouterr().out.strip()


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_demo(capsys):
    assert main(["demo", "--users", "10", "--channels", "6", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "revenue" in out and "satisfaction" in out


def test_coverage(capsys):
    assert main(
        ["coverage", "--area", "4", "--channel", "1", "--channels", "4",
         "--step", "4"]
    ) == 0
    out = capsys.readouterr().out
    assert "usable" in out
    assert "#" in out or "." in out


def test_coverage_bad_channel(capsys):
    assert main(
        ["coverage", "--channel", "10", "--channels", "4"]
    ) == 2


def test_parser_knows_all_commands():
    parser = build_parser()
    for command in ("figures", "theorems", "ablations", "coverage", "demo"):
        args = parser.parse_args(
            [command] if command != "coverage" else [command, "--area", "1"]
        )
        assert args.command == command


def test_theorems_command(capsys):
    assert main(["theorems"]) == 0
    out = capsys.readouterr().out
    for heading in ("Theorem 1", "Theorem 2", "Theorem 3", "Theorem 4"):
        assert heading in out


def test_figures_only_fig4(capsys, monkeypatch):
    # Keep it fast: shrink the smoke preset for this invocation.
    import repro.experiments as exp
    from repro.experiments.config import ExperimentConfig

    tiny = ExperimentConfig(
        n_users=10, n_channels=10, channel_sweep=(10,),
        bpm_fractions=(0.5,), attack_fractions=(0.5,),
        zero_replace_probs=(0.5,), n_users_sweep=(10,), n_rounds=1,
        bpm_max_cells=100, two_lambda=6, bmax=127, seed="cli-test",
    )
    monkeypatch.setattr(exp, "SMOKE", tiny)
    assert main(["figures", "--only", "fig4"]) == 0
    out = capsys.readouterr().out
    assert "Fig 4(a)(b)" in out and "Fig 4(c)" in out
    assert "Fig 5" not in out
