"""The command-line driver."""

import json

import pytest

from repro.cli import build_parser, main


def test_version(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert capsys.readouterr().out.strip()


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_demo(capsys):
    assert main(["demo", "--users", "10", "--channels", "6", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "revenue" in out and "satisfaction" in out


def test_coverage(capsys):
    assert main(
        ["coverage", "--area", "4", "--channel", "1", "--channels", "4",
         "--step", "4"]
    ) == 0
    out = capsys.readouterr().out
    assert "usable" in out
    assert "#" in out or "." in out


def test_coverage_bad_channel(capsys):
    assert main(
        ["coverage", "--channel", "10", "--channels", "4"]
    ) == 2


def test_parser_knows_all_commands():
    parser = build_parser()
    for command in ("figures", "theorems", "ablations", "coverage", "demo"):
        args = parser.parse_args(
            [command] if command != "coverage" else [command, "--area", "1"]
        )
        assert args.command == command


def test_theorems_command(capsys):
    assert main(["theorems"]) == 0
    out = capsys.readouterr().out
    for heading in ("Theorem 1", "Theorem 2", "Theorem 3", "Theorem 4"):
        assert heading in out


def _shrink_smoke(monkeypatch):
    # Keep it fast: shrink the smoke preset for this invocation.
    import repro.experiments as exp
    from repro.experiments.config import ExperimentConfig

    tiny = ExperimentConfig(
        n_users=10, n_channels=10, channel_sweep=(10,),
        bpm_fractions=(0.5,), attack_fractions=(0.5,),
        zero_replace_probs=(0.5,), n_users_sweep=(10,), n_rounds=1,
        bpm_max_cells=100, two_lambda=6, bmax=127, seed="cli-test",
    )
    monkeypatch.setattr(exp, "SMOKE", tiny)


def test_figures_only_fig4(capsys, monkeypatch):
    _shrink_smoke(monkeypatch)
    assert main(["figures", "--only", "fig4"]) == 0
    out = capsys.readouterr().out
    assert "Fig 4(a)(b)" in out and "Fig 4(c)" in out
    assert "Fig 5" not in out


def test_figures_metrics_writes_valid_artifact(capsys, monkeypatch, tmp_path):
    from repro import obs

    _shrink_smoke(monkeypatch)
    target = tmp_path / "out.json"
    assert main(["figures", "--only", "fig4", "--metrics", str(target)]) == 0
    assert "metrics artifact written" in capsys.readouterr().err
    document = obs.load_artifact(target)
    assert document["name"] == "figures-fig4"
    assert document["config"]["only"] == "fig4"
    # The attack sweeps never touch HMAC; the appended calibration does,
    # so every artifact still carries the crypto hot-path baselines.
    assert document["metrics"]["totals"]["crypto.hmac"] > 0
    timers = document["metrics"]["timers"]
    assert "cli.figures" in timers
    assert "phase/calibration" in timers
    # Collection is torn down once the command finishes.
    assert obs.get_active() is None


def test_demo_metrics_records_protocol_phases(capsys, tmp_path):
    from repro import obs

    target = tmp_path / "bench"
    target.mkdir()
    assert main(
        ["demo", "--users", "8", "--channels", "5", "--seed", "1",
         "--metrics", f"{target}/"]
    ) == 0
    document = obs.load_artifact(target / "BENCH_demo.json")
    timers = document["metrics"]["timers"]
    for phase in ("location_submission", "bid_submission",
                  "psd_allocation", "ttp_charging"):
        assert f"phase/{phase}" in timers, phase
    assert document["metrics"]["totals"]["lppa.bid_submissions"] == 8


def _write_artifact(path, *, hmac, mean_seconds):
    from repro.obs.artifact import build_artifact
    from repro.obs.registry import MetricsRegistry

    registry = MetricsRegistry()
    registry.count("crypto.hmac", hmac)
    registry.record_seconds("mask", mean_seconds * 10, 10)
    path.write_text(json.dumps(build_artifact(path.stem, registry)))
    return path


def test_metrics_diff_exit_codes(capsys, tmp_path):
    base = _write_artifact(tmp_path / "base.json", hmac=100, mean_seconds=0.01)
    worse = _write_artifact(tmp_path / "worse.json", hmac=200, mean_seconds=0.02)

    assert main(["metrics", "diff", str(base), str(base)]) == 0
    capsys.readouterr()
    assert main(["metrics", "diff", str(base), str(worse)]) == 1
    assert "REGRESSIONS" in capsys.readouterr().out
    # --warn-only reports but does not fail; a loose threshold passes.
    assert main(["metrics", "diff", str(base), str(worse), "--warn-only"]) == 0
    assert main(
        ["metrics", "diff", str(base), str(worse), "--threshold", "2.0"]
    ) == 0


def test_metrics_show_and_validate(capsys, tmp_path):
    artifact = _write_artifact(tmp_path / "one.json", hmac=7, mean_seconds=0.01)
    assert main(["metrics", "show", str(artifact)]) == 0
    out = capsys.readouterr().out
    assert "crypto.hmac" in out and "7" in out
    assert main(["metrics", "validate", str(artifact)]) == 0
    assert "valid" in capsys.readouterr().out


def test_metrics_commands_reject_bad_artifacts(capsys, tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{}")
    missing = tmp_path / "missing.json"
    assert main(["metrics", "validate", str(bad)]) == 2
    assert main(["metrics", "show", str(missing)]) == 2
    good = _write_artifact(tmp_path / "good.json", hmac=1, mean_seconds=0.01)
    assert main(["metrics", "diff", str(good), str(bad)]) == 2
    assert "error:" in capsys.readouterr().err


def test_metrics_diff_summary_names_regressed_keys(capsys, tmp_path):
    """The exit-1 summary line must say *which* keys regressed, not just
    how many — it is what CI logs surface first."""
    base = _write_artifact(tmp_path / "base.json", hmac=100, mean_seconds=0.01)
    worse = _write_artifact(tmp_path / "worse.json", hmac=300, mean_seconds=0.03)
    assert main(["metrics", "diff", str(base), str(worse)]) == 1
    out = capsys.readouterr().out
    summary = next(line for line in out.splitlines() if "regressed" in line)
    assert "crypto.hmac" in summary
    assert "mask" in summary


def _record_trace(tmp_path, capsys, **overrides):
    out = tmp_path / "TRACE_cli.jsonl"
    argv = ["trace", "run", "--users", "8", "--channels", "4",
            "--grid", "10", "--rounds", "1", "--seed", "5",
            "--out", str(out)]
    for key, value in overrides.items():
        argv.extend([f"--{key}", str(value)])
    assert main(argv) == 0
    capsys.readouterr()
    return out


def test_trace_run_show_validate(capsys, tmp_path):
    trace_path = _record_trace(tmp_path, capsys)
    assert trace_path.exists()

    assert main(["trace", "show", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "events by type" in out
    assert "bid_submission" in out
    assert "wire bytes" in out

    assert main(["trace", "validate", str(trace_path)]) == 0
    assert "valid" in capsys.readouterr().out


def test_trace_audit_passes_on_recorded_run(capsys, tmp_path):
    trace_path = _record_trace(tmp_path, capsys)
    assert main(["trace", "audit", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "comm-cost audit: PASS" in out
    assert "exact=True" in out
    assert "privacy audit: PASS" in out
    assert "mean candidate area" in out


def test_trace_audit_fails_on_tampered_trace(capsys, tmp_path):
    trace_path = _record_trace(tmp_path, capsys)
    lines = trace_path.read_text().splitlines()
    doctored = []
    for line in lines:
        record = json.loads(line)
        if record.get("kind") == "bid_submission":
            record["wire_size"] += 3
        doctored.append(json.dumps(record))
    trace_path.write_text("\n".join(doctored) + "\n")
    assert main(["trace", "audit", str(trace_path), "--no-privacy"]) == 1
    assert "comm-cost audit: FAIL" in capsys.readouterr().err


def test_trace_export_chrome(capsys, tmp_path):
    trace_path = _record_trace(tmp_path, capsys)
    out = tmp_path / "out.chrome.json"
    assert main(["trace", "export", str(trace_path), "--out", str(out)]) == 0
    document = json.loads(out.read_text())
    assert document["traceEvents"]
    assert "chrome trace written" in capsys.readouterr().out


def test_trace_commands_reject_bad_files(capsys, tmp_path):
    missing = tmp_path / "missing.jsonl"
    assert main(["trace", "show", str(missing)]) == 2
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"type": "instant"}\n')
    assert main(["trace", "validate", str(bad)]) == 2
    assert main(["trace", "audit", str(bad)]) == 2
    capsys.readouterr()


def test_demo_with_trace_flag(capsys, tmp_path):
    from repro.obs.trace import load_trace

    target = tmp_path / "traces"
    target.mkdir()
    assert main(
        ["demo", "--users", "8", "--channels", "5", "--seed", "1",
         "--trace", f"{target}/"]
    ) == 0
    err = capsys.readouterr().err
    assert "trace written to" in err
    header, events = load_trace(target / "TRACE_demo.jsonl")
    assert header["event_count"] == len(events)
    kinds = {e.get("kind") for e in events if e["type"] == "message"}
    assert "location_submission" in kinds and "bid_submission" in kinds


def test_demo_trace_and_metrics_compose(capsys, tmp_path):
    from repro import obs

    target = tmp_path / "both"
    target.mkdir()
    assert main(
        ["demo", "--users", "8", "--channels", "5", "--seed", "1",
         "--metrics", f"{target}/", "--trace", f"{target}/"]
    ) == 0
    assert (target / "BENCH_demo.json").exists()
    assert (target / "TRACE_demo.jsonl").exists()
    document = obs.load_artifact(target / "BENCH_demo.json")
    assert "phase/bid_submission" in document["metrics"]["timers"]


def test_metrics_show_openmetrics_format(capsys, tmp_path):
    from repro.obs.openmetrics import validate_openmetrics

    artifact = _write_artifact(tmp_path / "om.json", hmac=7, mean_seconds=0.01)
    assert main(
        ["metrics", "show", str(artifact), "--format", "openmetrics"]
    ) == 0
    out = capsys.readouterr().out
    assert validate_openmetrics(out) == []
    assert "repro_crypto_hmac_total 7" in out
    assert out.rstrip().endswith("# EOF")


def test_trace_merge_cli(capsys, tmp_path):
    from repro.obs.trace import load_trace

    first = _record_trace(tmp_path, capsys, seed=5)
    second = tmp_path / "TRACE_second.jsonl"
    assert main(
        ["trace", "run", "--users", "8", "--channels", "4", "--grid", "10",
         "--rounds", "1", "--seed", "6", "--out", str(second)]
    ) == 0
    capsys.readouterr()
    merged = tmp_path / "TRACE_merged.jsonl"
    assert main(
        ["trace", "merge", str(first), str(second),
         "--roles", "runA,runB", "--out", str(merged)]
    ) == 0
    assert "merged trace written" in capsys.readouterr().out
    header, events = load_trace(merged)
    assert header["merged_from"] == 2
    assert header["sources"] == ["runA", "runB"]
    assert {e["src"] for e in events} == {"0", "1"}
    assert [e["seq"] for e in events] == list(range(len(events)))


def test_trace_merge_rejects_mismatched_roles_and_bad_files(capsys, tmp_path):
    trace_path = _record_trace(tmp_path, capsys)
    assert main(
        ["trace", "merge", str(trace_path), "--roles", "a,b",
         "--out", str(tmp_path / "m.jsonl")]
    ) == 2
    assert main(
        ["trace", "merge", str(trace_path), str(tmp_path / "missing.jsonl"),
         "--out", str(tmp_path / "m.jsonl")]
    ) == 2
    assert "error:" in capsys.readouterr().err


def _write_slo_inputs(tmp_path, *, p99_max):
    from repro.obs.artifact import build_artifact
    from repro.obs.hist import Histogram
    from repro.obs.registry import MetricsRegistry

    registry = MetricsRegistry()
    hist = Histogram()
    for value in (0.01, 0.02, 0.05):
        hist.observe(value)
    registry.merge_histogram("net.loadgen.latency", hist)
    registry.count("net.loadgen.rounds", 10)
    registry.record_seconds("net.loadgen.elapsed", 2.0)
    artifact = tmp_path / "bench.json"
    artifact.write_text(json.dumps(build_artifact("lg", registry)))
    rules = {
        "schema_version": 1,
        "rules": [
            {"name": "p99 latency",
             "value": {"kind": "histogram", "key": "net.loadgen.latency",
                       "stat": "p99"},
             "max": p99_max},
            {"name": "rounds per second",
             "value": {"kind": "ratio",
                       "num": {"kind": "counter",
                               "key": "net.loadgen.rounds"},
                       "den": {"kind": "timer", "key": "net.loadgen.elapsed",
                               "stat": "sum"}},
             "min": 0.5},
        ],
    }
    slo = tmp_path / "slo.json"
    slo.write_text(json.dumps(rules))
    return artifact, slo


def test_slo_check_exit_codes(capsys, tmp_path):
    artifact, slo = _write_slo_inputs(tmp_path, p99_max=1.0)
    assert main(["slo", "check", str(slo), "--artifact", str(artifact)]) == 0
    out = capsys.readouterr().out
    assert "0 breached" in out

    artifact, slo = _write_slo_inputs(tmp_path, p99_max=0.001)
    assert main(["slo", "check", str(slo), "--artifact", str(artifact)]) == 1
    assert "FAIL" in capsys.readouterr().out
    assert main(
        ["slo", "check", str(slo), "--artifact", str(artifact), "--warn-only"]
    ) == 0
    assert "WARN" in capsys.readouterr().out


def test_slo_check_missing_metric_is_a_breach(capsys, tmp_path):
    artifact = _write_artifact(tmp_path / "a.json", hmac=1, mean_seconds=0.01)
    rules = {
        "schema_version": 1,
        "rules": [{"name": "unmeasured",
                   "value": {"kind": "gauge", "key": "never.recorded"},
                   "max": 1.0}],
    }
    slo = tmp_path / "slo.json"
    slo.write_text(json.dumps(rules))
    assert main(["slo", "check", str(slo), "--artifact", str(artifact)]) == 1
    assert "missing" in capsys.readouterr().out


def test_slo_check_rejects_bad_inputs(capsys, tmp_path):
    artifact, slo = _write_slo_inputs(tmp_path, p99_max=1.0)
    bad = tmp_path / "bad.json"
    bad.write_text("{}")
    assert main(["slo", "check", str(bad), "--artifact", str(artifact)]) == 2
    assert main(["slo", "check", str(slo), "--artifact", str(bad)]) == 2
    assert main(
        ["slo", "check", str(slo), "--url", "127.0.0.1:1"]
    ) == 2
    assert "error:" in capsys.readouterr().err


def test_committed_loadgen_slo_file_is_valid():
    from pathlib import Path

    from repro.obs.slo import load_slo_file

    committed = (
        Path(__file__).parent.parent / "benchmarks" / "slo"
        / "loadgen_smoke.json"
    )
    document = load_slo_file(committed)
    assert [rule["name"] for rule in document["rules"]] == [
        "loadgen p99 latency", "rounds per second", "mask cache hit ratio",
    ]


def test_metrics_serve_and_slo_check_url(tmp_path, capsys):
    """The standalone artifact endpoint, scraped by the SLO gate over HTTP."""
    import threading
    import time
    import urllib.request

    artifact, slo = _write_slo_inputs(tmp_path, p99_max=1.0)
    from repro.cli import _load_artifact_or_fail, _serve_artifact_metrics

    document = _load_artifact_or_fail(str(artifact))
    port_holder = {}

    # _serve_artifact_metrics blocks; probe the printed port via a thread
    # that runs the same server object the CLI would.
    import asyncio

    from repro.obs.live import MetricsHttpServer

    async def scenario():
        server = MetricsHttpServer(
            lambda: document["metrics"], host="127.0.0.1", port=0
        )
        await server.start()
        port_holder["port"] = server.port
        started.set()
        while not done.is_set():
            await asyncio.sleep(0.02)
        await server.stop()

    started = threading.Event()
    done = threading.Event()
    thread = threading.Thread(
        target=lambda: asyncio.run(scenario()), daemon=True
    )
    thread.start()
    assert started.wait(timeout=10.0)
    try:
        url = f"http://127.0.0.1:{port_holder['port']}/metrics"
        with urllib.request.urlopen(url, timeout=10.0) as response:
            assert b"repro_net_loadgen_latency_seconds_bucket" in response.read()
        assert main(["slo", "check", str(slo), "--url", url]) == 0
        assert "0 breached" in capsys.readouterr().out
    finally:
        done.set()
        thread.join(timeout=10.0)
        time.sleep(0)
