"""Deterministic label-addressed RNG streams."""

import pytest

from repro.utils.rng import numpy_rng, spawn_rng, stable_seed


def test_stable_seed_is_stable():
    assert stable_seed("master", "a", "b") == stable_seed("master", "a", "b")


def test_labels_separate_streams():
    assert stable_seed("m", "a") != stable_seed("m", "b")
    assert stable_seed("m", "a", "b") != stable_seed("m", "ab")
    assert stable_seed("m1", "a") != stable_seed("m2", "a")


def test_seed_types():
    assert stable_seed(b"bytes") == stable_seed(b"bytes")
    assert stable_seed(42) == stable_seed(42)
    assert stable_seed("42") != stable_seed(42)
    with pytest.raises(TypeError):
        stable_seed(3.14)


def test_spawn_rng_reproducible():
    a = spawn_rng("m", "x")
    b = spawn_rng("m", "x")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_numpy_rng_reproducible():
    a = numpy_rng("m", "x").normal(size=5)
    b = numpy_rng("m", "x").normal(size=5)
    assert (a == b).all()


def test_known_value_pinned():
    """Guards against accidental changes to the derivation scheme, which
    would silently reshuffle every experiment in EXPERIMENTS.md."""
    assert stable_seed("lppa-repro", "area3") == stable_seed("lppa-repro", "area3")
    assert stable_seed("x") == int.from_bytes(
        __import__("hashlib").sha256(b"x").digest()[:8], "big"
    )
