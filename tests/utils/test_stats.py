"""Statistics helpers."""

import random

import pytest

from repro.utils.stats import Summary, bootstrap_ci, summarize


def test_summary_basics():
    s = summarize([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
    assert s.n == 8
    assert s.mean == pytest.approx(5.0)
    assert s.std == pytest.approx(2.138, abs=1e-3)
    assert s.stderr() == pytest.approx(s.std / 8**0.5)


def test_single_value():
    s = summarize([3.0])
    assert s.mean == 3.0 and s.std == 0.0


def test_empty_rejected():
    with pytest.raises(ValueError):
        summarize([])
    with pytest.raises(ValueError):
        bootstrap_ci([], random.Random(0))


def test_bootstrap_brackets_the_mean():
    values = [random.Random(1).gauss(10, 2) for _ in range(100)]
    low, high = bootstrap_ci(values, random.Random(2))
    mean = sum(values) / len(values)
    assert low <= mean <= high
    assert high - low < 2.0  # reasonably tight at n = 100


def test_bootstrap_narrows_with_sample_size():
    rng = random.Random(3)
    small = [rng.gauss(0, 1) for _ in range(20)]
    large = [rng.gauss(0, 1) for _ in range(500)]
    low_s, high_s = bootstrap_ci(small, random.Random(4))
    low_l, high_l = bootstrap_ci(large, random.Random(5))
    assert (high_l - low_l) < (high_s - low_s)


def test_bootstrap_validation():
    with pytest.raises(ValueError):
        bootstrap_ci([1.0], random.Random(0), confidence=1.5)
    with pytest.raises(ValueError):
        bootstrap_ci([1.0], random.Random(0), resamples=5)


def test_constant_sample():
    low, high = bootstrap_ci([7.0] * 30, random.Random(6))
    assert low == high == 7.0
