"""Worker-safety of the randomness plumbing (the engine's prerequisites).

The parallel engine forks worker processes.  A fork duplicates the parent's
``random`` module state, so any code path that fell back to the shared
module-level generator would make every worker draw the *same* "random"
stream — silently correlating trials.  The audit routed every such fallback
(fastsim, the full session, campaign state, range padding) through either
an injected RNG or :func:`repro.utils.rng.fresh_rng`, which reseeds from
``os.urandom`` + PID at call time.  These tests pin that down.
"""

import multiprocessing
import random

import pytest

from repro.utils.rng import fresh_rng

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def _fresh_draw(_):
    return fresh_rng().getrandbits(128)


@pytest.mark.skipif(not HAS_FORK, reason="needs the fork start method")
def test_fresh_rng_distinct_across_forked_workers():
    parent_draw = fresh_rng().getrandbits(128)
    context = multiprocessing.get_context("fork")
    with context.Pool(2) as pool:
        child_draws = pool.map(_fresh_draw, range(4))
    draws = [parent_draw, *child_draws]
    assert len(set(draws)) == len(draws), (
        "forked workers produced overlapping fresh_rng streams"
    )


def test_fresh_rng_distinct_within_process():
    assert fresh_rng().getrandbits(128) != fresh_rng().getrandbits(128)


class _SentinelError(RuntimeError):
    """Raised by the patched fresh_rng to prove the fallback reached it."""


def _sentinel():
    raise _SentinelError


def test_fastsim_unseeded_fallback_uses_fresh_rng(monkeypatch, tiny_db):
    from repro.auction.bidders import generate_users
    from repro.lppa import fastsim

    users = generate_users(tiny_db, 3, random.Random(5))
    monkeypatch.setattr(fastsim, "fresh_rng", _sentinel)
    with pytest.raises(_SentinelError):
        fastsim.run_fast_lppa(users, two_lambda=6, bmax=127)


def test_session_unseeded_fallback_uses_fresh_rng(monkeypatch, tiny_db):
    from repro.auction.bidders import generate_users
    from repro.lppa import session

    users = generate_users(tiny_db, 3, random.Random(5))
    monkeypatch.setattr(session, "fresh_rng", _sentinel)
    with pytest.raises(_SentinelError):
        session.run_lppa_auction(
            users, tiny_db.coverage.grid, two_lambda=6, bmax=127
        )


def test_mask_range_padding_fallback_uses_fresh_rng(monkeypatch):
    from repro.prefix import membership

    monkeypatch.setattr(membership, "fresh_rng", _sentinel)
    with pytest.raises(_SentinelError):
        membership.mask_range(b"key", 0, 1, 4, pad_to=6)
    # An injected RNG bypasses the fallback entirely.
    masked = membership.mask_range(
        b"key", 0, 1, 4, pad_to=6, rng=random.Random(1)
    )
    assert len(masked) == 6


def test_campaign_unseeded_fallback_uses_fresh_rng(monkeypatch, tiny_db):
    from repro.auction.bidders import generate_users
    from repro.lppa import campaign

    users = generate_users(tiny_db, 3, random.Random(5))
    monkeypatch.setattr(campaign, "fresh_rng", _sentinel)
    with pytest.raises(_SentinelError):
        campaign.Campaign(tiny_db, users, two_lambda=6, bmax=127)


def test_no_module_level_random_in_worker_paths():
    """No engine-reachable module calls the shared ``random`` module API.

    Source-level audit: ``random.<draw>()`` on the module singleton shares
    state across forks; only ``random.Random(...)`` instances are allowed.
    """
    import inspect
    import re

    from repro.lppa import bids_advanced, campaign, fastsim, session
    from repro.prefix import membership

    pattern = re.compile(
        r"\brandom\.(random|randint|randrange|choice|shuffle|uniform|"
        r"getrandbits|sample)\("
    )
    for module in (fastsim, session, bids_advanced, membership, campaign):
        source = inspect.getsource(module)
        assert not pattern.search(source), (
            f"{module.__name__} draws from the shared random module"
        )
