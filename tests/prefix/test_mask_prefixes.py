"""Direct masking of explicit prefix collections + digest-size handling."""

import pytest

from repro.prefix.membership import MaskedSet, mask_prefixes, mask_value
from repro.prefix.prefixes import Prefix, prefix_family


def test_mask_prefixes_matches_mask_value():
    family = prefix_family(42, 8)
    explicit = mask_prefixes(b"key", family)
    convenience = mask_value(b"key", 42, 8)
    assert explicit == convenience


def test_distinct_prefixes_distinct_digests():
    family = prefix_family(42, 8)
    masked = mask_prefixes(b"key", family)
    assert len(masked) == len(family)


def test_digest_truncation_controls_wire_size():
    family = prefix_family(42, 8)
    wide = mask_prefixes(b"key", family, digest_bytes=32)
    narrow = mask_prefixes(b"key", family, digest_bytes=8)
    assert wide.wire_bytes() == 4 * narrow.wire_bytes()
    # Truncation is prefix-of-digest: narrow digests are prefixes of wide.
    wide_prefixes = {d[:8] for d in wide.digests}
    assert narrow.digests == frozenset(wide_prefixes)


def test_truncated_sets_preserve_membership():
    from repro.prefix.membership import is_member, mask_range

    for digest_bytes in (8, 16, 32):
        fam = mask_value(b"k", 7, 4, digest_bytes=digest_bytes)
        cover = mask_range(b"k", 6, 14, 4, digest_bytes=digest_bytes)
        assert is_member(fam, cover)


def test_mixed_digest_sizes_never_match():
    fam16 = mask_value(b"k", 7, 4, digest_bytes=16)
    fam8 = mask_value(b"k", 7, 4, digest_bytes=8)
    assert not fam16.intersects(fam8)


def test_empty_prefix_collection():
    masked = mask_prefixes(b"key", [])
    assert len(masked) == 0
    assert not masked.intersects(mask_value(b"key", 1, 4))
