"""Multi-dimensional conjunctive masked range queries."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prefix.multidim import mask_box, mask_point, point_in_box

KEY = b"multidim-key"


def test_2d_membership():
    point = mask_point(KEY, (5, 9), (4, 4))
    inside = mask_box(KEY, [(3, 7), (8, 12)], (4, 4))
    outside_x = mask_box(KEY, [(6, 7), (8, 12)], (4, 4))
    outside_y = mask_box(KEY, [(3, 7), (10, 12)], (4, 4))
    assert point_in_box(point, inside)
    assert not point_in_box(point, outside_x)
    assert not point_in_box(point, outside_y)


def test_3d_membership():
    point = mask_point(KEY, (1, 2, 3), (3, 3, 3))
    box = mask_box(KEY, [(0, 2), (2, 2), (0, 7)], (3, 3, 3))
    assert point_in_box(point, box)


def test_axis_separation():
    """Axis i's family must not match axis j's cover, even for equal values."""
    point = mask_point(KEY, (5, 6), (4, 4))
    swapped_box = mask_box(KEY, [(6, 6), (5, 5)], (4, 4))
    assert not point_in_box(point, swapped_box)


def test_dimension_mismatch_rejected():
    point = mask_point(KEY, (1, 2), (4, 4))
    box = mask_box(KEY, [(0, 3)], (4,))
    with pytest.raises(ValueError):
        point_in_box(point, box)


def test_construction_validation():
    with pytest.raises(ValueError):
        mask_point(KEY, (1, 2), (4,))
    with pytest.raises(ValueError):
        mask_box(KEY, [(0, 3)], (4, 4))


def test_wire_bytes():
    point = mask_point(KEY, (5, 9), (4, 6))
    assert point.wire_bytes() == sum(f.wire_bytes() for f in point.families)
    box = mask_box(KEY, [(0, 3), (0, 63)], (4, 6))
    assert box.wire_bytes() == sum(c.wire_bytes() for c in box.covers)


def test_reproduces_the_conflict_predicate():
    """The location protocol is the 2-D instantiation: the box query over
    interference ranges equals the strict |Δ| < 2λ conflict predicate."""
    from repro.auction.conflict import cells_conflict

    width = 6
    two_lambda = 4
    d = two_lambda - 1
    for a in [(5, 5), (10, 20), (0, 0)]:
        point = mask_point(KEY, a, (width, width))
        for b in [(5, 5), (8, 8), (9, 5), (5, 9), (20, 20), (13, 17)]:
            box = mask_box(
                KEY,
                [
                    (max(0, b[0] - d), b[0] + d),
                    (max(0, b[1] - d), b[1] + d),
                ],
                (width, width),
            )
            assert point_in_box(point, box) == cells_conflict(a, b, two_lambda)


@settings(max_examples=60, deadline=None)
@given(
    x=st.integers(min_value=0, max_value=31),
    y=st.integers(min_value=0, max_value=31),
    x0=st.integers(min_value=0, max_value=31),
    y0=st.integers(min_value=0, max_value=31),
    dx=st.integers(min_value=0, max_value=10),
    dy=st.integers(min_value=0, max_value=10),
)
def test_membership_property(x, y, x0, y0, dx, dy):
    x1, y1 = min(31, x0 + dx), min(31, y0 + dy)
    point = mask_point(KEY, (x, y), (5, 5))
    box = mask_box(KEY, [(x0, x1), (y0, y1)], (5, 5))
    assert point_in_box(point, box) == (x0 <= x <= x1 and y0 <= y <= y1)
