"""Property-based checks of the masked membership layer (Hypothesis).

The protocol's correctness rests on one equivalence: set intersection over
HMAC digests computes integer comparison.  These properties drive the
masked primitives with generated widths, values and ranges and assert they
agree with the plain-integer answer — plus the advanced scheme's padding
invariant (``Q([a, b])`` always ships exactly ``2w - 2`` digests, so the
set size leaks nothing about the range width).

``derandomize=True`` keeps the suite reproducible run to run; the examples
still cover the corner cases (width 2, empty-interior ranges, full-domain
ranges) via Hypothesis's shrinking heuristics.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.prefix.membership import (
    find_maxima,
    is_member,
    mask_range,
    mask_value,
)
from repro.prefix.ranges import max_cover_size

KEY = b"membership-properties"
PROPERTY_SETTINGS = settings(max_examples=25, deadline=None, derandomize=True)


@st.composite
def value_and_range(draw):
    """A width, one value and one ordered range, all inside the domain."""
    width = draw(st.integers(min_value=2, max_value=10))
    top = (1 << width) - 1
    x = draw(st.integers(min_value=0, max_value=top))
    a = draw(st.integers(min_value=0, max_value=top))
    b = draw(st.integers(min_value=0, max_value=top))
    low, high = min(a, b), max(a, b)
    return width, x, low, high


@st.composite
def bid_vector(draw):
    """A width plus 2..8 bids over that domain."""
    width = draw(st.integers(min_value=2, max_value=8))
    top = (1 << width) - 1
    bids = draw(
        st.lists(
            st.integers(min_value=0, max_value=top), min_size=2, max_size=8
        )
    )
    return width, bids


@PROPERTY_SETTINGS
@given(value_and_range())
def test_is_member_equals_integer_comparison(case):
    width, x, low, high = case
    family = mask_value(KEY, x, width)
    cover = mask_range(KEY, low, high, width)
    assert is_member(family, cover) == (low <= x <= high)


@PROPERTY_SETTINGS
@given(value_and_range())
def test_is_member_survives_padding(case):
    """Random filler digests never flip the membership answer."""
    width, x, low, high = case
    family = mask_value(KEY, x, width)
    padded = mask_range(
        KEY,
        low,
        high,
        width,
        pad_to=2 * width - 2,
        rng=random.Random(f"pad-{width}-{low}-{high}"),
    )
    assert is_member(family, padded) == (low <= x <= high)


@PROPERTY_SETTINGS
@given(value_and_range())
def test_padded_cover_cardinality_is_2w_minus_2(case):
    """The advanced scheme's invariant: every padded cover has 2w - 2 digests."""
    width, _, low, high = case
    padded = mask_range(
        KEY,
        low,
        high,
        width,
        pad_to=2 * width - 2,
        rng=random.Random(0),
    )
    assert len(padded) == 2 * width - 2
    assert max_cover_size(width) == 2 * width - 2


@PROPERTY_SETTINGS
@given(bid_vector())
def test_find_maxima_equals_integer_argmax(case):
    width, bids = case
    top = (1 << width) - 1
    families = [mask_value(KEY, b, width) for b in bids]
    tails = [mask_range(KEY, b, top, width) for b in bids]
    best = max(bids)
    assert find_maxima(families, tails) == [
        i for i, b in enumerate(bids) if b == best
    ]


@PROPERTY_SETTINGS
@given(bid_vector())
def test_find_maxima_with_padded_tails(case):
    """The auctioneer sees only padded covers; the argmax must not change."""
    width, bids = case
    top = (1 << width) - 1
    families = [mask_value(KEY, b, width) for b in bids]
    tails = [
        mask_range(
            KEY,
            b,
            top,
            width,
            pad_to=2 * width - 2,
            rng=random.Random(f"tail-{width}-{i}"),
        )
        for i, b in enumerate(bids)
    ]
    best = max(bids)
    assert find_maxima(families, tails) == [
        i for i, b in enumerate(bids) if b == best
    ]
