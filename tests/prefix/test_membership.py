"""HMAC-masked membership verification and max-finding."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prefix.membership import (
    MaskedSet,
    find_maxima,
    is_member,
    mask_range,
    mask_value,
)
from repro.prefix.ranges import max_cover_size

KEY = b"test-key"


def test_paper_worked_example():
    """7 in [6, 14]: the masked sets share the digest of 01110."""
    family = mask_value(KEY, 7, 4)
    cover = mask_range(KEY, 6, 14, 4)
    assert is_member(family, cover)


def test_non_membership():
    cover = mask_range(KEY, 6, 14, 4)
    assert not is_member(mask_value(KEY, 5, 4), cover)
    assert not is_member(mask_value(KEY, 15, 4), cover)


def test_different_keys_never_match():
    family = mask_value(b"key-a", 7, 4)
    cover = mask_range(b"key-b", 0, 15, 4)
    assert not is_member(family, cover)


def test_domain_separation():
    family = mask_value(KEY, 7, 4, domain=b"x")
    cover_x = mask_range(KEY, 0, 15, 4, domain=b"x")
    cover_y = mask_range(KEY, 0, 15, 4, domain=b"y")
    assert is_member(family, cover_x)
    assert not is_member(family, cover_y)


def test_padding_fixes_cardinality():
    width = 4
    pad = max_cover_size(width)
    narrow = mask_range(KEY, 10, 14, width, pad_to=pad, rng=random.Random(1))
    wide = mask_range(KEY, 5, 14, width, pad_to=pad, rng=random.Random(2))
    assert len(narrow) == len(wide) == pad


def test_unpadded_cardinality_leaks():
    """The leak the advanced scheme closes: range width shows in set size."""
    assert len(mask_range(KEY, 10, 14, 4)) != len(mask_range(KEY, 5, 14, 4))


def test_padding_preserves_membership_semantics():
    width = 6
    cover = mask_range(
        KEY, 20, 40, width, pad_to=max_cover_size(width), rng=random.Random(3)
    )
    for x in (19, 20, 30, 40, 41):
        assert is_member(mask_value(KEY, x, width), cover) == (20 <= x <= 40)


def test_masked_set_validation():
    with pytest.raises(ValueError):
        MaskedSet(frozenset({b"short"}), digest_bytes=16)
    with pytest.raises(ValueError):
        MaskedSet(frozenset(), digest_bytes=2)


def test_wire_bytes():
    family = mask_value(KEY, 7, 4, digest_bytes=8)
    assert family.wire_bytes() == 5 * 8  # (w + 1) digests of 8 bytes


def test_find_maxima_paper_bids():
    """Fig. 3's bids {6, 10, 0, 5} with bmax = 14: bidder 1 holds the max."""
    bids = [6, 10, 0, 5]
    families = [mask_value(KEY, b, 4) for b in bids]
    tails = [mask_range(KEY, b, 14, 4) for b in bids]
    assert find_maxima(families, tails) == [1]


def test_find_maxima_reports_all_ties():
    bids = [9, 3, 9, 9]
    families = [mask_value(KEY, b, 4) for b in bids]
    tails = [mask_range(KEY, b, 15, 4) for b in bids]
    assert find_maxima(families, tails) == [0, 2, 3]


def test_find_maxima_validates_lengths():
    with pytest.raises(ValueError):
        find_maxima([mask_value(KEY, 1, 4)], [])


def test_pairwise_order_comparison():
    """G(b_i) vs Q([b_j, bmax]) answers b_i >= b_j — the attacker's oracle."""
    width, bmax = 5, 31
    values = [0, 3, 17, 17, 31]
    families = [mask_value(KEY, v, width) for v in values]
    tails = [mask_range(KEY, v, bmax, width) for v in values]
    for i, vi in enumerate(values):
        for j, vj in enumerate(values):
            assert is_member(families[i], tails[j]) == (vi >= vj)


@st.composite
def _value_and_range(draw):
    width = draw(st.integers(min_value=1, max_value=9))
    x = draw(st.integers(min_value=0, max_value=2**width - 1))
    low = draw(st.integers(min_value=0, max_value=2**width - 1))
    high = draw(st.integers(min_value=low, max_value=2**width - 1))
    return width, x, low, high


@settings(max_examples=100, deadline=None)
@given(_value_and_range())
def test_membership_equals_interval_test(case):
    width, x, low, high = case
    family = mask_value(KEY, x, width)
    cover = mask_range(KEY, low, high, width)
    assert is_member(family, cover) == (low <= x <= high)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=10)
)
def test_find_maxima_equals_argmax(bids):
    width, bmax = 6, 63
    families = [mask_value(KEY, b, width) for b in bids]
    tails = [mask_range(KEY, b, bmax, width) for b in bids]
    best = max(bids)
    assert find_maxima(families, tails) == [
        i for i, b in enumerate(bids) if b == best
    ]
