"""Prefix numericalization O(.)."""

import itertools

import pytest

from repro.prefix.numericalize import (
    numericalize,
    numericalize_set,
    numericalized_to_bytes,
)
from repro.prefix.prefixes import Prefix, prefix_family


def test_paper_example():
    """O(110*) = 11010 (section II.B)."""
    assert numericalize(Prefix(0b110, 3, 4)) == 0b11010


def test_full_and_empty_prefixes():
    assert numericalize(Prefix(0b1010, 4, 4)) == 0b10101  # t1..tw then 1
    assert numericalize(Prefix(0, 0, 4)) == 0b10000  # all wildcards


def test_injective_over_all_prefixes_of_one_width():
    width = 6
    all_prefixes = [
        Prefix(value, length, width)
        for length in range(width + 1)
        for value in range(1 << length)
    ]
    images = {numericalize(p) for p in all_prefixes}
    assert len(images) == len(all_prefixes)


def test_numericalize_set_preserves_order():
    family = prefix_family(5, 4)
    values = numericalize_set(family)
    assert values == [numericalize(p) for p in family]


def test_byte_encoding_is_fixed_length():
    width = 12  # 13-bit numericalized values -> 2 bytes
    for value in (0, 1, 2**13 - 1):
        assert len(numericalized_to_bytes(value, width)) == 2


def test_byte_encoding_distinguishes_values():
    width = 7
    family = prefix_family(100, width)
    encodings = {numericalized_to_bytes(numericalize(p), width) for p in family}
    assert len(encodings) == width + 1
