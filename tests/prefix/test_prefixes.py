"""Prefixes and prefix families G(x)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prefix.prefixes import Prefix, bit_width_for, prefix_family


def test_paper_prefix_family_of_seven():
    """Section II.B: G(7) for 4-bit numbers is {0111, 011*, 01**, 0***, ****}."""
    family = [str(p) for p in prefix_family(7, 4)]
    assert family == ["0111", "011*", "01**", "0***", "****"]


def test_family_size_is_width_plus_one():
    for width in (1, 4, 8, 12):
        assert len(prefix_family(0, width)) == width + 1


def test_family_members_all_contain_x():
    for prefix in prefix_family(13, 5):
        assert prefix.contains(13)


def test_low_high_bounds():
    p = Prefix(0b10, 2, 4)  # 10**
    assert p.low == 8 and p.high == 11
    full = Prefix(0, 0, 4)  # ****
    assert full.low == 0 and full.high == 15


def test_contains_matches_interval():
    p = Prefix(0b110, 3, 4)  # 110*
    inside = {x for x in range(16) if p.contains(x)}
    assert inside == {12, 13}


def test_contains_rejects_out_of_domain():
    with pytest.raises(ValueError):
        Prefix(0, 0, 4).contains(16)
    with pytest.raises(ValueError):
        Prefix(0, 0, 4).contains(-1)


def test_children_partition_parent():
    p = Prefix(0b1, 1, 4)
    left, right = p.children()
    assert left.low == p.low and right.high == p.high
    assert left.high + 1 == right.low


def test_full_prefix_has_no_children():
    assert list(Prefix(0b1010, 4, 4).children()) == []


def test_invalid_prefixes_rejected():
    with pytest.raises(ValueError):
        Prefix(4, 2, 4)  # value does not fit in length
    with pytest.raises(ValueError):
        Prefix(0, 5, 4)  # length exceeds width
    with pytest.raises(ValueError):
        Prefix(0, 0, 0)  # zero width


def test_family_rejects_out_of_range_values():
    with pytest.raises(ValueError):
        prefix_family(16, 4)
    with pytest.raises(ValueError):
        prefix_family(-1, 4)


def test_bit_width_for():
    assert bit_width_for(0) == 1
    assert bit_width_for(1) == 1
    assert bit_width_for(2) == 2
    assert bit_width_for(255) == 8
    assert bit_width_for(256) == 9
    with pytest.raises(ValueError):
        bit_width_for(-1)


@settings(max_examples=80, deadline=None)
@given(st.integers(min_value=1, max_value=10).flatmap(
    lambda w: st.tuples(st.just(w), st.integers(min_value=0, max_value=2**w - 1))
))
def test_family_is_exactly_the_containing_prefixes(case):
    """G(x) holds one prefix per length, each containing x — no others."""
    width, x = case
    family = prefix_family(x, width)
    assert len({p.length for p in family}) == width + 1
    for p in family:
        assert p.contains(x)
        assert p.low <= x <= p.high
