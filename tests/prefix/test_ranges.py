"""Minimal range prefix covers Q([a, b])."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prefix.ranges import max_cover_size, range_cover


def test_paper_example_6_14():
    """Section II.B: the prefix set of [6, 14] is {011*, 10**, 110*, 1110}."""
    assert [str(p) for p in range_cover(6, 14, 4)] == ["011*", "10**", "110*", "1110"]


def test_full_domain_is_single_wildcard():
    cover = range_cover(0, 15, 4)
    assert len(cover) == 1 and str(cover[0]) == "****"


def test_single_value_is_full_prefix():
    cover = range_cover(9, 9, 4)
    assert len(cover) == 1 and str(cover[0]) == "1001"


def test_invalid_ranges_rejected():
    with pytest.raises(ValueError):
        range_cover(5, 4, 4)
    with pytest.raises(ValueError):
        range_cover(0, 16, 4)
    with pytest.raises(ValueError):
        range_cover(-1, 3, 4)
    with pytest.raises(ValueError):
        range_cover(0, 0, 0)


def test_max_cover_size():
    assert max_cover_size(1) == 1
    assert max_cover_size(4) == 6
    assert max_cover_size(12) == 22
    with pytest.raises(ValueError):
        max_cover_size(0)


def test_worst_case_is_attained():
    """[1, 2^w - 2] needs the full 2w - 2 prefixes."""
    width = 6
    cover = range_cover(1, 2**width - 2, width)
    assert len(cover) == max_cover_size(width)


@st.composite
def _ranges(draw):
    width = draw(st.integers(min_value=1, max_value=10))
    low = draw(st.integers(min_value=0, max_value=2**width - 1))
    high = draw(st.integers(min_value=low, max_value=2**width - 1))
    return width, low, high


@settings(max_examples=120, deadline=None)
@given(_ranges())
def test_cover_is_exact_disjoint_and_bounded(case):
    width, low, high = case
    cover = range_cover(low, high, width)
    assert len(cover) <= max_cover_size(width)
    # Disjoint intervals whose union is exactly [low, high].
    intervals = sorted((p.low, p.high) for p in cover)
    assert intervals[0][0] == low
    assert intervals[-1][1] == high
    for (a_low, a_high), (b_low, b_high) in zip(intervals, intervals[1:]):
        assert a_high + 1 == b_low


@settings(max_examples=60, deadline=None)
@given(_ranges())
def test_membership_matches_interval(case):
    width, low, high = case
    cover = range_cover(low, high, width)
    for x in range(2**width):
        assert any(p.contains(x) for p in cover) == (low <= x <= high)
