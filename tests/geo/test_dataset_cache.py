"""Coverage-map memoisation."""

import numpy as np

from repro.geo.datasets import (
    clear_coverage_cache,
    make_coverage_map,
)
from repro.geo.grid import GridSpec

GRID = GridSpec(rows=15, cols=15, cell_km=5.0)


def test_identical_requests_share_the_object():
    clear_coverage_cache()
    a = make_coverage_map(1, n_channels=4, grid=GRID, seed="cache-test")
    b = make_coverage_map(1, n_channels=4, grid=GRID, seed="cache-test")
    assert a is b


def test_smaller_channel_counts_are_sliced_from_cache():
    clear_coverage_cache()
    big = make_coverage_map(1, n_channels=6, grid=GRID, seed="cache-test")
    small = make_coverage_map(1, n_channels=3, grid=GRID, seed="cache-test")
    for ch in range(3):
        assert small.channels[ch] is big.channels[ch]


def test_different_seeds_do_not_collide():
    clear_coverage_cache()
    a = make_coverage_map(1, n_channels=2, grid=GRID, seed="seed-a")
    b = make_coverage_map(1, n_channels=2, grid=GRID, seed="seed-b")
    assert not np.array_equal(a.channels[0].rss_dbm, b.channels[0].rss_dbm)


def test_clear_cache_forces_rebuild():
    clear_coverage_cache()
    a = make_coverage_map(1, n_channels=2, grid=GRID, seed="cache-test")
    clear_coverage_cache()
    b = make_coverage_map(1, n_channels=2, grid=GRID, seed="cache-test")
    assert a is not b
    assert np.array_equal(a.channels[0].rss_dbm, b.channels[0].rss_dbm)
