"""Dataset statistics artifact."""

import pytest

from repro.geo.grid import GridSpec
from repro.geo.summary import area_summary_table, channel_mode_counts

GRID = GridSpec(rows=20, cols=20, cell_km=3.75)


def test_mode_counts_partition_channels(tiny_db):
    counts = channel_mode_counts(tiny_db.coverage)
    assert sum(counts.values()) == tiny_db.n_channels
    assert set(counts) == {"covered", "boundary", "clear"}


def test_summary_rows():
    rows = area_summary_table(areas=(3, 4), n_channels=40, grid=GRID)
    assert [row["area"] for row in rows] == [3, 4]
    for row in rows:
        assert row["covered"] + row["boundary"] + row["clear"] == 40
        assert 0.0 <= row["mean_availability"] <= 1.0
        assert 0.0 <= row["mean_usable_quality"] <= 1.0


def test_rural_beats_urban_on_boundary_channels():
    """The calibration DESIGN.md documents, as a measured artifact."""
    rows = area_summary_table(areas=(2, 4), n_channels=60, grid=GRID)
    suburban = next(r for r in rows if r["area"] == 2)
    rural = next(r for r in rows if r["area"] == 4)
    assert rural["boundary"] > suburban["boundary"]
