"""The four synthetic evaluation areas."""

import numpy as np
import pytest

from repro.geo.datasets import (
    AREA_CONFIGS,
    AreaConfig,
    N_LA_CHANNELS,
    make_coverage_map,
    make_database,
)
from repro.geo.grid import GridSpec


def test_la_channel_count():
    assert N_LA_CHANNELS == 129


def test_four_areas_configured():
    assert sorted(AREA_CONFIGS) == [1, 2, 3, 4]
    names = {cfg.name for cfg in AREA_CONFIGS.values()}
    assert names == {"urban-core", "suburban-basin", "mixed", "rural"}


def test_mode_probs_sum_to_one():
    for config in AREA_CONFIGS.values():
        assert sum(config.mode_probs) == pytest.approx(1.0)


def test_invalid_area_config_rejected():
    with pytest.raises(ValueError):
        AreaConfig(
            name="bad",
            mode_probs=(0.5, 0.5, 0.5),
            boundary_radius_km=(30, 80),
            clear_distance_factor=(2, 3),
            sigma_db=5,
            correlation_km=8,
            path_loss_exponent=3.5,
        )


def test_maps_are_deterministic():
    a = make_coverage_map(3, n_channels=5)
    b = make_coverage_map(3, n_channels=5)
    for ca, cb in zip(a.channels, b.channels):
        assert np.array_equal(ca.rss_dbm, cb.rss_dbm)


def test_different_seeds_differ():
    a = make_coverage_map(3, n_channels=3, seed="one")
    b = make_coverage_map(3, n_channels=3, seed="two")
    assert not all(
        np.array_equal(ca.rss_dbm, cb.rss_dbm)
        for ca, cb in zip(a.channels, b.channels)
    )


def test_channel_prefix_stability():
    """Channel i's map does not depend on how many channels are built."""
    small = make_coverage_map(4, n_channels=3)
    large = make_coverage_map(4, n_channels=6)
    for ch in range(3):
        assert np.array_equal(
            small.channels[ch].rss_dbm, large.channels[ch].rss_dbm
        )


def test_invalid_arguments_rejected():
    with pytest.raises(ValueError):
        make_coverage_map(5)
    with pytest.raises(ValueError):
        make_coverage_map(1, n_channels=0)


def _boundary_fraction(area, n_channels=60):
    cmap = make_coverage_map(area, n_channels=n_channels)
    fractions = [c.availability_fraction() for c in cmap.channels]
    return sum(1 for f in fractions if 0.03 < f < 0.97) / n_channels


def test_rural_has_more_boundary_channels_than_urban():
    """The knob behind the paper's rural-beats-urban attack ordering."""
    assert _boundary_fraction(4) > _boundary_fraction(3) > _boundary_fraction(2)


def test_make_database_wraps_map():
    db = make_database(1, n_channels=4, grid=GridSpec(rows=10, cols=10, cell_km=7.5))
    assert db.n_channels == 4
    assert db.coverage.grid.rows == 10
