"""Geo-location database queries."""

import numpy as np
import pytest

from repro.geo.database import GeoLocationDatabase


def test_query_matches_coverage(small_db):
    cell = (50, 50)
    result = small_db.query(cell)
    available = small_db.available_channels(cell)
    assert set(result) == available
    for ch, quality in result.items():
        assert quality == pytest.approx(small_db.channel_quality(cell, ch))
        assert quality >= 0.0


def test_unavailable_channels_have_zero_quality(small_db):
    cell = (10, 10)
    available = small_db.available_channels(cell)
    for ch in range(small_db.n_channels):
        if ch not in available:
            assert small_db.channel_quality(cell, ch) == 0.0


def test_channel_quality_bounds(small_db):
    with pytest.raises(IndexError):
        small_db.channel_quality((0, 0), small_db.n_channels)
    with pytest.raises(IndexError):
        small_db.channel_quality((0, 0), -1)


def test_tensors_shapes(small_db):
    grid = small_db.coverage.grid
    availability = small_db.availability_tensor()
    quality = small_db.quality_tensor()
    assert availability.shape == (small_db.n_channels, grid.rows, grid.cols)
    assert quality.shape == availability.shape
    assert availability.dtype == bool


def test_cells_matching_availability_is_intersection(small_db):
    tensor = small_db.availability_tensor()
    channels = [0, 2, 5]
    expected = tensor[0] & tensor[2] & tensor[5]
    assert np.array_equal(
        small_db.cells_matching_availability(channels), expected
    )


def test_cells_matching_empty_list_is_whole_area(small_db):
    grid = small_db.coverage.grid
    assert small_db.cells_matching_availability([]).sum() == grid.n_cells


def test_cells_matching_rejects_bad_channel(small_db):
    with pytest.raises(IndexError):
        small_db.cells_matching_availability([small_db.n_channels])
