"""Channel coverage and the coverage map."""

import numpy as np
import pytest

from repro.geo.coverage import (
    ChannelCoverage,
    CoverageMap,
    QUALITY_SCALE_DB,
    build_channel_coverage,
)
from repro.geo.grid import GridSpec
from repro.geo.propagation import PropagationModel
from repro.geo.transmitters import Transmitter
from repro.utils.rng import numpy_rng

GRID = GridSpec(rows=30, cols=30, cell_km=2.0)
MODEL = PropagationModel()


def _coverage(power=70.0, sigma=0.0, channel=0, towers=None):
    if towers is None:
        towers = [Transmitter(y_km=30.0, x_km=30.0, power_dbm=power, channel=channel)]
    return build_channel_coverage(
        GRID,
        towers,
        MODEL,
        shadow_rng=numpy_rng("cov", str(channel)),
        sigma_db=sigma,
        correlation_km=10.0,
    )


def test_availability_is_threshold_complement():
    cov = _coverage()
    assert np.array_equal(cov.available, cov.rss_dbm <= cov.threshold_dbm)
    assert np.array_equal(cov.covered, ~cov.available)


def test_coverage_shrinks_with_distance():
    """Cells near the tower are covered; far corners become available."""
    cov = _coverage(power=55.0)
    near = (15, 15)  # tower cell
    far = (0, 0)
    assert not cov.is_available(near)
    assert cov.is_available(far) or cov.rss_dbm[far] > cov.rss_dbm[near] - 1e9


def test_quality_zero_on_covered_cells():
    cov = _coverage()
    assert np.all(cov.quality[cov.covered] == 0.0)


def test_quality_monotone_in_margin():
    cov = _coverage(power=50.0, sigma=0.0)
    quality = cov.quality
    rss = cov.rss_dbm
    available = cov.available
    cells = np.argwhere(available)
    if len(cells) >= 2:
        ordered = sorted(map(tuple, cells), key=lambda c: rss[c])
        weakest, strongest = ordered[0], ordered[-1]
        assert quality[weakest] >= quality[strongest]


def test_quality_clamped_to_unit_interval():
    cov = _coverage(power=10.0)  # everything available with huge margins
    assert np.all((0.0 <= cov.quality) & (cov.quality <= 1.0))


def test_two_towers_add_power():
    one = _coverage(power=65.0)
    two = _coverage(
        towers=[
            Transmitter(y_km=30.0, x_km=30.0, power_dbm=65.0, channel=0),
            Transmitter(y_km=30.0, x_km=30.0, power_dbm=65.0, channel=0),
        ]
    )
    # Doubling power in mW adds ~3 dB everywhere.
    assert np.allclose(two.rss_dbm - one.rss_dbm, 10 * np.log10(2), atol=1e-9)


def test_builder_validates_towers():
    with pytest.raises(ValueError):
        build_channel_coverage(
            GRID, [], MODEL, shadow_rng=numpy_rng("x"), sigma_db=0, correlation_km=5
        )
    mixed = [
        Transmitter(y_km=0, x_km=0, power_dbm=60, channel=0),
        Transmitter(y_km=0, x_km=0, power_dbm=60, channel=1),
    ]
    with pytest.raises(ValueError):
        build_channel_coverage(
            GRID, mixed, MODEL, shadow_rng=numpy_rng("x"), sigma_db=0, correlation_km=5
        )


def test_coverage_map_available_set_and_quality_vector():
    channels = [_coverage(power=80.0, channel=0), _coverage(power=20.0, channel=1)]
    cmap = CoverageMap(grid=GRID, channels=channels)
    cell = (0, 0)
    available = cmap.available_set(cell)
    qualities = cmap.quality_vector(cell)
    assert qualities.shape == (2,)
    for ch in range(2):
        assert (ch in available) == channels[ch].is_available(cell)
        if ch not in available:
            assert qualities[ch] == 0.0


def test_coverage_map_requires_dense_channels():
    with pytest.raises(ValueError):
        CoverageMap(grid=GRID, channels=[_coverage(channel=1)])


def test_subset():
    cmap = CoverageMap(
        grid=GRID, channels=[_coverage(channel=i) for i in range(4)]
    )
    sub = cmap.subset(2)
    assert sub.n_channels == 2
    with pytest.raises(ValueError):
        cmap.subset(0)
    with pytest.raises(ValueError):
        cmap.subset(5)


def test_stacks_shapes():
    cmap = CoverageMap(
        grid=GRID, channels=[_coverage(channel=i) for i in range(3)]
    )
    assert cmap.availability_stack().shape == (3, 30, 30)
    assert cmap.quality_stack().shape == (3, 30, 30)


def test_ascii_map():
    cmap = CoverageMap(grid=GRID, channels=[_coverage(channel=0)])
    art = cmap.ascii_map(0)
    lines = art.split("\n")
    assert len(lines) == 30 and all(len(line) == 30 for line in lines)
    assert set(art) <= {"#", ".", "\n"}
