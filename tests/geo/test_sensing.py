"""Energy-detector spectrum sensing."""

import math
import random

import pytest

from repro.geo.sensing import EnergyDetector, SensingReport


def test_effective_sigma_shrinks_with_samples():
    noisy = EnergyDetector(noise_sigma_db=4.0, n_samples=1)
    averaged = EnergyDetector(noise_sigma_db=4.0, n_samples=16)
    assert averaged.effective_sigma_db == pytest.approx(1.0)
    assert averaged.effective_sigma_db < noisy.effective_sigma_db


def test_noiseless_detector_matches_database(small_db):
    detector = EnergyDetector(noise_sigma_db=0.0, n_samples=1)
    rng = random.Random(0)
    for cell in [(0, 0), (50, 50), (99, 99)]:
        sensed = detector.available_set(small_db, cell, rng)
        assert sensed == small_db.available_channels(cell)


def test_noiseless_quality_matches_database(small_db):
    detector = EnergyDetector(noise_sigma_db=0.0, n_samples=1)
    rng = random.Random(0)
    cell = (50, 50)
    for report in detector.sense_all(small_db, cell, rng):
        assert report.quality_estimate == pytest.approx(
            small_db.channel_quality(cell, report.channel), abs=1e-9
        )


def test_noisy_detector_sometimes_errs(small_db):
    """Near coverage contours, measurement noise flips verdicts."""
    detector = EnergyDetector(noise_sigma_db=6.0, n_samples=1)
    rng = random.Random(7)
    mismatches = 0
    for cell in small_db.coverage.grid.random_cells(random.Random(1), 60):
        sensed = detector.available_set(small_db, cell, rng)
        truth = small_db.available_channels(cell)
        mismatches += len(sensed ^ truth)
    assert mismatches > 0


def test_reports_are_structured(small_db):
    detector = EnergyDetector()
    reports = detector.sense_all(small_db, (10, 10), random.Random(2))
    assert len(reports) == small_db.n_channels
    for report in reports:
        assert 0.0 <= report.quality_estimate <= 1.0
        assert report.available == (report.measured_dbm <= detector.threshold_dbm)


def test_sensing_bids_pipeline(small_db):
    from repro.auction.bidders import generate_users_from_sensing

    detector = EnergyDetector(noise_sigma_db=2.0, n_samples=4)
    users = generate_users_from_sensing(
        small_db, 10, random.Random(3), detector
    )
    assert len(users) == 10
    assert any(u.max_bid() > 0 for u in users)


def test_validation():
    with pytest.raises(ValueError):
        EnergyDetector(noise_sigma_db=-1.0)
    with pytest.raises(ValueError):
        EnergyDetector(n_samples=0)
    with pytest.raises(ValueError):
        SensingReport(channel=0, measured_dbm=-90.0, available=True,
                      quality_estimate=1.5)
