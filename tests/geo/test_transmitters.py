"""Transmitter placement."""

import random

import pytest

from repro.geo.grid import GridSpec
from repro.geo.transmitters import Transmitter, place_transmitters

GRID = GridSpec(rows=20, cols=20, cell_km=1.0)


def test_placement_count_and_channel():
    towers = place_transmitters(
        GRID, random.Random(0), 7, count=3, margin_km=10.0, power_dbm_range=(60, 70)
    )
    assert len(towers) == 3
    assert all(t.channel == 7 for t in towers)


def test_placement_respects_box_and_power():
    towers = place_transmitters(
        GRID, random.Random(1), 0, count=50, margin_km=5.0, power_dbm_range=(60, 70)
    )
    for t in towers:
        assert -5.0 <= t.y_km <= 25.0
        assert -5.0 <= t.x_km <= 25.0
        assert 60.0 <= t.power_dbm <= 70.0


def test_placement_is_deterministic():
    kwargs = dict(count=4, margin_km=3.0, power_dbm_range=(55, 65))
    a = place_transmitters(GRID, random.Random(9), 1, **kwargs)
    b = place_transmitters(GRID, random.Random(9), 1, **kwargs)
    assert a == b


def test_invalid_arguments_rejected():
    rng = random.Random(0)
    with pytest.raises(ValueError):
        place_transmitters(GRID, rng, 0, count=0, margin_km=1.0, power_dbm_range=(60, 70))
    with pytest.raises(ValueError):
        place_transmitters(GRID, rng, 0, count=1, margin_km=-1.0, power_dbm_range=(60, 70))
    with pytest.raises(ValueError):
        place_transmitters(GRID, rng, 0, count=1, margin_km=1.0, power_dbm_range=(70, 60))


def test_transmitter_validation():
    with pytest.raises(ValueError):
        Transmitter(y_km=0.0, x_km=0.0, power_dbm=60.0, channel=-1)
