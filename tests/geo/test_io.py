"""Coverage-map persistence."""

import numpy as np
import pytest

from repro.geo.datasets import make_coverage_map
from repro.geo.grid import GridSpec
from repro.geo.io import load_coverage_map, save_coverage_map

GRID = GridSpec(rows=15, cols=15, cell_km=5.0)


def test_roundtrip(tmp_path):
    original = make_coverage_map(3, n_channels=5, grid=GRID)
    path = save_coverage_map(original, tmp_path / "map.npz")
    restored = load_coverage_map(path)
    assert restored.grid == original.grid
    assert restored.n_channels == original.n_channels
    for a, b in zip(original.channels, restored.channels):
        assert a.channel == b.channel
        assert a.threshold_dbm == b.threshold_dbm
        assert np.array_equal(a.rss_dbm, b.rss_dbm)


def test_derived_quantities_survive(tmp_path):
    original = make_coverage_map(4, n_channels=3, grid=GRID)
    path = save_coverage_map(original, tmp_path / "map.npz")
    restored = load_coverage_map(path)
    assert np.array_equal(
        original.availability_stack(), restored.availability_stack()
    )
    assert np.allclose(original.quality_stack(), restored.quality_stack())


def test_suffix_is_normalised(tmp_path):
    original = make_coverage_map(3, n_channels=2, grid=GRID)
    path = save_coverage_map(original, tmp_path / "bare")
    assert path.suffix == ".npz"
    assert path.exists()


def test_version_check(tmp_path):
    original = make_coverage_map(3, n_channels=2, grid=GRID)
    path = save_coverage_map(original, tmp_path / "map.npz")
    with np.load(path) as data:
        arrays = {key: data[key] for key in data.files}
    arrays["version"] = np.array([99])
    np.savez_compressed(path, **arrays)
    with pytest.raises(ValueError):
        load_coverage_map(path)
