"""Grid-bucket prefilter soundness (`repro.geo.buckets`).

The prefilter is only allowed to *skip* pairs that provably cannot
conflict; dropping a true conflict pair would silently change the round
result.  These tests pin the soundness argument — adjacency covers every
|Δ| < 2λ pair, including SUs straddling bucket edges — and the output
order contract the sharded executors rely on.
"""

import itertools
import random

import pytest

from repro.auction.conflict import cells_conflict
from repro.geo.buckets import bucket_index, bucket_of, candidate_pairs


def brute_force_conflicts(cells, two_lambda):
    return {
        (i, j)
        for i, j in itertools.combinations(range(len(cells)), 2)
        if cells_conflict(cells[i], cells[j], two_lambda)
    }


class TestBucketOf:
    def test_floor_division(self):
        assert bucket_of((0, 0), 6) == (0, 0)
        assert bucket_of((5, 11), 6) == (0, 1)
        assert bucket_of((6, 12), 6) == (1, 2)

    def test_rejects_nonpositive_two_lambda(self):
        with pytest.raises(ValueError):
            bucket_of((0, 0), 0)


class TestBucketIndex:
    def test_groups_in_id_order(self):
        cells = [(0, 0), (1, 1), (40, 40), (0, 1)]
        index = bucket_index(cells, 6)
        assert index[(0, 0)] == [0, 1, 3]
        assert index[(6, 6)] == [2]


class TestCandidatePairs:
    def test_is_superset_of_true_conflicts(self):
        rng = random.Random(7)
        cells = [(rng.randrange(50), rng.randrange(50)) for _ in range(120)]
        candidates = set(candidate_pairs(cells, 6))
        assert brute_force_conflicts(cells, 6) <= candidates

    def test_pairs_are_ordered_and_unique(self):
        rng = random.Random(8)
        cells = [(rng.randrange(30), rng.randrange(30)) for _ in range(60)]
        pairs = list(candidate_pairs(cells, 4))
        assert len(pairs) == len(set(pairs))
        assert all(i < j for i, j in pairs)
        # Grouped by the lower id ascending, second id ascending within —
        # the order the sharded conflict executor chunks on.
        assert pairs == sorted(pairs)

    def test_never_drops_bucket_edge_straddlers(self):
        """SUs in adjacent buckets at |Δ| = 2λ - 1 must stay candidates."""
        two_lambda = 6
        # (5, 5) is the last cell of bucket (0, 0); (10, 10) lands in
        # bucket (1, 1); their deltas are 5 = 2λ - 1 < 2λ on both axes, so
        # they *do* conflict while sitting in different buckets.
        cells = [(5, 5), (10, 10)]
        assert cells_conflict(cells[0], cells[1], two_lambda)
        assert bucket_of(cells[0], two_lambda) != bucket_of(cells[1], two_lambda)
        assert (0, 1) in set(candidate_pairs(cells, two_lambda))

    @pytest.mark.parametrize("two_lambda", [1, 2, 3, 6, 7])
    def test_exhaustive_small_grid(self, two_lambda):
        """Every pair on a small grid: prefilter+predicate == brute force."""
        side = 4 * two_lambda + 2
        cells = [(m, n) for m in range(0, side, 3) for n in range(0, side, 3)]
        filtered = {
            (i, j)
            for i, j in candidate_pairs(cells, two_lambda)
            if cells_conflict(cells[i], cells[j], two_lambda)
        }
        assert filtered == brute_force_conflicts(cells, two_lambda)

    def test_cuts_pair_count_on_sparse_population(self):
        """The point of the prefilter: far fewer candidates than N(N-1)/2."""
        rng = random.Random(9)
        cells = [(rng.randrange(400), rng.randrange(400)) for _ in range(400)]
        n_all = 400 * 399 // 2
        assert len(list(candidate_pairs(cells, 6))) < n_all / 10
