"""Path-loss model."""

import numpy as np
import pytest

from repro.geo.propagation import (
    FCC_THRESHOLD_DBM,
    PRACTICAL_THRESHOLD_DBM,
    PropagationModel,
)


def test_paper_thresholds():
    assert FCC_THRESHOLD_DBM == -114.0
    assert PRACTICAL_THRESHOLD_DBM == -81.0


def test_path_loss_at_reference_distance():
    model = PropagationModel(reference_loss_db=100.0)
    assert model.path_loss_db(np.array([1.0]))[0] == pytest.approx(100.0)


def test_path_loss_monotone_in_distance():
    model = PropagationModel()
    distances = np.array([1.0, 2.0, 5.0, 20.0, 80.0])
    losses = model.path_loss_db(distances)
    assert np.all(np.diff(losses) > 0)


def test_distances_below_reference_are_clamped():
    model = PropagationModel()
    assert model.path_loss_db(np.array([0.0]))[0] == model.path_loss_db(
        np.array([1.0])
    )[0]


def test_exponent_decade_slope():
    model = PropagationModel(path_loss_exponent=3.5)
    loss10 = model.path_loss_db(np.array([10.0]))[0]
    loss100 = model.path_loss_db(np.array([100.0]))[0]
    assert loss100 - loss10 == pytest.approx(35.0)


def test_received_power_and_shadowing():
    model = PropagationModel(reference_loss_db=100.0)
    rss = model.received_dbm(70.0, np.array([1.0]), np.array([5.0]))
    assert rss[0] == pytest.approx(70.0 - 100.0 + 5.0)


def test_coverage_radius_inverts_received_power():
    model = PropagationModel()
    radius = model.coverage_radius_km(70.0, PRACTICAL_THRESHOLD_DBM)
    rss_at_radius = model.received_dbm(70.0, np.array([radius]))
    assert rss_at_radius[0] == pytest.approx(PRACTICAL_THRESHOLD_DBM)


def test_coverage_radius_zero_when_underpowered():
    model = PropagationModel()
    assert model.coverage_radius_km(-50.0, PRACTICAL_THRESHOLD_DBM) == 0.0


def test_invalid_model_rejected():
    with pytest.raises(ValueError):
        PropagationModel(reference_km=0.0)
    with pytest.raises(ValueError):
        PropagationModel(path_loss_exponent=0.0)
