"""Shadowing-field generation."""

import numpy as np
import pytest

from repro.geo.grid import GridSpec
from repro.geo.terrain import shadowing_field
from repro.utils.rng import numpy_rng

GRID = GridSpec(rows=60, cols=60, cell_km=1.0)


def test_shape_and_zero_mean_ish():
    field = shadowing_field(GRID, numpy_rng("t", "a"), sigma_db=6.0, correlation_km=8.0)
    assert field.shape == (60, 60)
    assert abs(field.mean()) < 3.0  # zero-mean up to sampling noise


def test_marginal_sigma_is_renormalised():
    field = shadowing_field(GRID, numpy_rng("t", "b"), sigma_db=7.5, correlation_km=6.0)
    assert field.std() == pytest.approx(7.5, rel=1e-6)


def test_zero_sigma_gives_flat_field():
    field = shadowing_field(GRID, numpy_rng("t", "c"), sigma_db=0.0, correlation_km=5.0)
    assert np.all(field == 0.0)


def test_determinism_per_stream():
    a = shadowing_field(GRID, numpy_rng("t", "d"), sigma_db=5.0, correlation_km=5.0)
    b = shadowing_field(GRID, numpy_rng("t", "d"), sigma_db=5.0, correlation_km=5.0)
    assert np.array_equal(a, b)
    c = shadowing_field(GRID, numpy_rng("t", "e"), sigma_db=5.0, correlation_km=5.0)
    assert not np.array_equal(a, c)


def test_longer_correlation_means_smoother_field():
    """Mean neighbour difference should drop as correlation length grows."""
    def roughness(correlation_km):
        field = shadowing_field(
            GRID, numpy_rng("t", "f"), sigma_db=6.0, correlation_km=correlation_km
        )
        return np.abs(np.diff(field, axis=0)).mean()

    assert roughness(20.0) < roughness(2.0)


def test_invalid_parameters_rejected():
    rng = numpy_rng("t", "g")
    with pytest.raises(ValueError):
        shadowing_field(GRID, rng, sigma_db=-1.0, correlation_km=5.0)
    with pytest.raises(ValueError):
        shadowing_field(GRID, rng, sigma_db=5.0, correlation_km=0.0)
