"""Grid geometry."""

import random

import numpy as np
import pytest

from repro.geo.grid import GridSpec


def test_defaults_match_paper():
    grid = GridSpec()
    assert grid.rows == grid.cols == 100
    assert grid.extent_km == (75.0, 75.0)
    assert grid.n_cells == 10000


def test_invalid_specs_rejected():
    with pytest.raises(ValueError):
        GridSpec(rows=0)
    with pytest.raises(ValueError):
        GridSpec(cell_km=0)


def test_contains_and_require():
    grid = GridSpec(rows=5, cols=7)
    assert grid.contains((0, 0)) and grid.contains((4, 6))
    assert not grid.contains((5, 0)) and not grid.contains((0, -1))
    with pytest.raises(ValueError):
        grid.require((5, 0))


def test_index_round_trip():
    grid = GridSpec(rows=4, cols=6)
    for cell in grid.cells():
        assert grid.cell_from_index(grid.cell_index(cell)) == cell
    with pytest.raises(ValueError):
        grid.cell_from_index(24)


def test_cells_iterates_row_major():
    grid = GridSpec(rows=2, cols=3)
    assert list(grid.cells()) == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]


def test_center_km():
    grid = GridSpec(rows=10, cols=10, cell_km=2.0)
    assert grid.center_km((0, 0)) == (1.0, 1.0)
    assert grid.center_km((9, 9)) == (19.0, 19.0)


def test_centers_meshgrid_matches_scalar():
    grid = GridSpec(rows=3, cols=4, cell_km=1.5)
    yy, xx = grid.centers_km()
    assert yy.shape == xx.shape == (3, 4)
    for cell in grid.cells():
        cy, cx = grid.center_km(cell)
        assert yy[cell] == pytest.approx(cy)
        assert xx[cell] == pytest.approx(cx)


def test_distances():
    grid = GridSpec(rows=10, cols=10, cell_km=1.0)
    assert grid.distance_km((0, 0), (0, 3)) == pytest.approx(3.0)
    assert grid.distance_cells((0, 0), (3, 4)) == pytest.approx(5.0)
    assert grid.distance_km((2, 2), (2, 2)) == 0.0


def test_random_cells_in_bounds():
    grid = GridSpec(rows=8, cols=3)
    cells = grid.random_cells(random.Random(0), 500)
    assert len(cells) == 500
    assert all(grid.contains(c) for c in cells)
    # Uniformity sanity: every column index appears.
    assert {c[1] for c in cells} == {0, 1, 2}


def test_random_cells_rejects_negative_count():
    with pytest.raises(ValueError):
        GridSpec().random_cells(random.Random(0), -1)
