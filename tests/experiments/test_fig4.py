"""Fig. 4 harness — structure and qualitative shapes on a tiny preset."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.fig4 import (
    attack_population,
    fig4ab_channel_sweep,
    fig4c_four_areas,
)
from repro.geo.datasets import make_database

TINY = ExperimentConfig(
    n_users=15,
    n_channels=40,
    channel_sweep=(10, 40),
    bpm_fractions=(0.5,),
    attack_fractions=(0.5,),
    zero_replace_probs=(0.5,),
    n_users_sweep=(15,),
    n_rounds=1,
    bpm_max_cells=250,
    two_lambda=6,
    bmax=127,
    seed="test-fig4",
)


@pytest.fixture(scope="module")
def sweep_rows():
    return fig4ab_channel_sweep(TINY, area=4)


def test_sweep_row_structure(sweep_rows):
    attacks_per_k = {}
    for row in sweep_rows:
        assert {"channels", "attack", "cells", "success_rate"} <= set(row)
        attacks_per_k.setdefault(row["channels"], []).append(row["attack"])
    assert set(attacks_per_k) == {10, 40}
    for attacks in attacks_per_k.values():
        assert "BCM" in attacks and "BPM-0.5" in attacks


def test_more_channels_shrink_bcm_output(sweep_rows):
    bcm = {r["channels"]: r["cells"] for r in sweep_rows if r["attack"] == "BCM"}
    assert bcm[40] <= bcm[10]


def test_bpm_refines_bcm(sweep_rows):
    by_k = {}
    for row in sweep_rows:
        by_k.setdefault(row["channels"], {})[row["attack"]] = row
    for k, attacks in by_k.items():
        assert attacks["BPM-0.5"]["cells"] <= attacks["BCM"]["cells"]


def test_fig4c_covers_all_areas():
    rows = fig4c_four_areas(TINY, areas=(3, 4))
    assert [row["area"] for row in rows] == [3, 4]
    for row in rows:
        assert row["bcm_cells"] > 0
        assert 0.0 <= row["bcm_success"] <= 1.0


def test_attack_population_keys():
    database = make_database(4, n_channels=8, seed="test-fig4")
    aggs = attack_population(
        database, 10, seed="test-fig4", bpm_fraction=0.5, bpm_max_cells=50
    )
    assert "bcm" in aggs
    assert aggs["bcm"].n_users == 10
