"""The extension sections of the combined report."""

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import write_report

TINY = ExperimentConfig(
    n_users=10,
    n_channels=12,
    channel_sweep=(12,),
    bpm_fractions=(0.5,),
    attack_fractions=(0.5,),
    zero_replace_probs=(0.5,),
    n_users_sweep=(10,),
    n_rounds=1,
    bpm_max_cells=100,
    two_lambda=6,
    bmax=127,
    seed="test-report-ext",
)


def test_extension_sections_present(tmp_path):
    path = write_report(tmp_path / "ext.md", TINY)
    text = path.read_text()
    for heading in (
        "Ablation — co-location oracle",
        "Ablation — heterogeneous crowds",
        "Baseline — location cloaking",
        "Baseline — Paillier",
        "Baseline — masking backends",
    ):
        assert heading in text, heading
