"""Table formatting."""

from repro.experiments.tables import format_table


def test_empty():
    assert "(no rows)" in format_table([])
    assert format_table([], title="T").startswith("T")


def test_alignment_and_order():
    rows = [{"a": 1, "bb": "x"}, {"a": 22, "bb": "yy"}]
    text = format_table(rows, title="demo")
    lines = text.split("\n")
    assert lines[0] == "demo"
    assert lines[1].split() == ["a", "bb"]
    assert len({len(line) for line in lines[2:]}) == 1  # aligned rows


def test_missing_cells_render_empty():
    rows = [{"a": 1}, {"a": 2, "b": 3}]
    text = format_table(rows)
    assert "b" in text.split("\n")[0]


def test_later_keys_are_appended():
    rows = [{"a": 1}, {"b": 2}]
    header = format_table(rows).split("\n")[0].split()
    assert header == ["a", "b"]
