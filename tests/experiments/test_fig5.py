"""Fig. 5 harness — structure and qualitative shapes on a tiny preset."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.fig5 import fig5_performance_sweep, fig5_privacy_sweep

TINY = ExperimentConfig(
    n_users=20,
    n_channels=30,
    channel_sweep=(30,),
    bpm_fractions=(0.5,),
    attack_fractions=(0.25, 0.8),
    zero_replace_probs=(0.2, 1.0),
    n_users_sweep=(20,),
    n_rounds=1,
    bpm_max_cells=250,
    two_lambda=6,
    bmax=127,
    seed="test-fig5",
)


@pytest.fixture(scope="module")
def privacy_rows():
    return fig5_privacy_sweep(TINY)


@pytest.fixture(scope="module")
def performance_rows():
    return fig5_performance_sweep(TINY)


def test_privacy_reference_rows_present(privacy_rows):
    names = {row["attack"] for row in privacy_rows}
    assert "BCM (no LPPA)" in names
    assert any(name.startswith("LPPA-BCM") for name in names)


def test_privacy_sweep_covers_grid(privacy_rows):
    lppa_rows = [r for r in privacy_rows if r["zero_replace"] != "-"]
    combos = {(r["zero_replace"], r["attack"]) for r in lppa_rows}
    assert len(combos) == 2 * 2  # replace probs x fractions


def test_lppa_raises_failure_rate(privacy_rows):
    """The defence's core claim: the attacker fails far more often."""
    reference = next(
        r for r in privacy_rows if r["attack"] == "BCM (no LPPA)"
    )
    lppa_rows = [r for r in privacy_rows if r["zero_replace"] != "-"]
    assert max(r["failure_rate"] for r in lppa_rows) > reference["failure_rate"]


def test_performance_rows_structure(performance_rows):
    assert len(performance_rows) == 2  # one N, two replace probs
    for row in performance_rows:
        assert 0.0 <= row["revenue_ratio"] <= 1.5
        assert 0.0 <= row["satisfaction_ratio"] <= 1.0


def test_heavier_disguise_costs_performance(performance_rows):
    by_replace = {row["zero_replace"]: row for row in performance_rows}
    assert (
        by_replace[1.0]["satisfaction_ratio"]
        <= by_replace[0.2]["satisfaction_ratio"] + 0.1
    )


def test_ci_columns_appear_with_enough_rounds():
    config = ExperimentConfig(
        n_users=15, n_channels=10, channel_sweep=(10,), bpm_fractions=(0.5,),
        attack_fractions=(0.5,), zero_replace_probs=(0.5,), n_users_sweep=(15,),
        n_rounds=3, bpm_max_cells=100, two_lambda=6, bmax=127, seed="ci-cols",
    )
    rows = fig5_performance_sweep(config)
    assert all("revenue_ci95" in row for row in rows)
    for row in rows:
        low, high = (
            float(x) for x in row["revenue_ci95"].strip("[]").split(",")
        )
        assert low <= row["revenue_ratio"] + 1e-9
        assert high >= row["revenue_ratio"] - 1e-9


def test_ci_columns_absent_with_few_rounds(performance_rows):
    assert all("revenue_ci95" not in row for row in performance_rows)
