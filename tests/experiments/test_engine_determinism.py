"""Parallel == serial, bit for bit: the engine's core guarantee.

Each sweep is rendered through :func:`format_table` and the resulting
strings compared byte-for-byte across worker counts.  This holds because
every trial derives all randomness from the master seed plus its own label
path, never from shared mutable RNG state.
"""

import multiprocessing

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.fig4 import fig4ab_channel_sweep, fig4c_four_areas
from repro.experiments.fig5 import fig5_performance_sweep, fig5_privacy_sweep
from repro.experiments.tables import format_table

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

TINY = ExperimentConfig(
    n_users=12,
    n_channels=10,
    channel_sweep=(5, 10),
    bpm_fractions=(0.5,),
    attack_fractions=(0.5,),
    zero_replace_probs=(0.2, 0.8),
    n_users_sweep=(12,),
    n_rounds=1,
    bpm_max_cells=100,
    two_lambda=6,
    bmax=127,
    seed="engine-determinism",
)

SWEEPS = {
    "fig4ab": lambda workers: fig4ab_channel_sweep(
        TINY, area=4, workers=workers
    ),
    "fig4c": lambda workers: fig4c_four_areas(
        TINY, areas=(3, 4), workers=workers
    ),
    "fig5-privacy": lambda workers: fig5_privacy_sweep(
        TINY, workers=workers
    ),
    "fig5-performance": lambda workers: fig5_performance_sweep(
        TINY, workers=workers
    ),
}


@pytest.fixture(scope="module")
def serial_tables():
    return {name: format_table(sweep(1)) for name, sweep in SWEEPS.items()}


@pytest.mark.skipif(not HAS_FORK, reason="needs the fork start method")
@pytest.mark.parametrize("workers", [2, 4])
@pytest.mark.parametrize("name", sorted(SWEEPS))
def test_parallel_tables_byte_identical(serial_tables, name, workers):
    assert format_table(SWEEPS[name](workers)) == serial_tables[name]


def test_tables_are_nonempty(serial_tables):
    for name, table in serial_tables.items():
        assert table.strip(), f"{name} produced an empty table"
