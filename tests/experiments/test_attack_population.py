"""The shared attack-population helper behind the Fig. 4 harnesses."""

import pytest

from repro.experiments.fig4 import attack_population
from repro.geo.datasets import make_database
from repro.geo.grid import GridSpec

GRID = GridSpec(rows=25, cols=25, cell_km=3.0)


@pytest.fixture(scope="module")
def database():
    return make_database(4, n_channels=12, grid=GRID, seed="pop-test")


def test_bcm_only(database):
    aggs = attack_population(database, 12, seed="pop-test")
    assert set(aggs) == {"bcm"}
    assert aggs["bcm"].n_users == 12
    assert aggs["bcm"].failure_rate == 0.0  # truthful bids never mislead


def test_bpm_included_when_requested(database):
    aggs = attack_population(
        database, 12, seed="pop-test", bpm_fraction=0.5, bpm_max_cells=50
    )
    assert "bpm" in aggs
    # BPM only covers users with at least one positive bid.
    assert aggs["bpm"].n_users <= aggs["bcm"].n_users
    assert aggs["bpm"].mean_cells <= aggs["bcm"].mean_cells


def test_bpm_cap_is_respected(database):
    aggs = attack_population(
        database, 12, seed="pop-test", bpm_fraction=1.0, bpm_max_cells=5
    )
    assert aggs["bpm"].mean_cells <= 5.0


def test_label_separates_populations(database):
    a = attack_population(database, 8, seed="pop-test", label="one")
    b = attack_population(database, 8, seed="pop-test", label="two")
    assert a["bcm"].mean_cells != b["bcm"].mean_cells


def test_same_label_is_deterministic(database):
    a = attack_population(database, 8, seed="pop-test", label="same")
    b = attack_population(database, 8, seed="pop-test", label="same")
    assert a["bcm"] == b["bcm"]
