"""The cloaking-vs-LPPA comparison harness."""

import math

import pytest

from repro.experiments.cloaking_baseline import cloaking_comparison_table
from repro.experiments.config import ExperimentConfig

TINY = ExperimentConfig(
    n_users=40,
    n_channels=10,
    channel_sweep=(10,),
    bpm_fractions=(0.5,),
    attack_fractions=(0.5,),
    zero_replace_probs=(0.5,),
    n_users_sweep=(40,),
    n_rounds=1,
    bpm_max_cells=100,
    two_lambda=8,
    bmax=127,
    seed="test-cloak",
)


@pytest.fixture(scope="module")
def rows():
    return cloaking_comparison_table(
        TINY, cloak_sizes=(1, 10), n_users=80, n_channels=10, two_lambda=10
    )


def test_row_structure(rows):
    defences = [row["defence"] for row in rows]
    assert defences[0] == "cloak 1x1"
    assert defences[-1].startswith("LPPA")
    for row in rows:
        assert {"bpm_cells", "violations", "revenue_ratio"} <= set(row)


def test_exact_defences_have_zero_violations(rows):
    exact = [r for r in rows if r["defence"] in ("cloak 1x1",) or
             r["defence"].startswith("LPPA")]
    for row in exact:
        assert row["violations"] == 0


def test_lppa_blocks_bpm(rows):
    lppa = rows[-1]
    assert math.isnan(lppa["bpm_cells"])
    assert lppa["bpm_failure"] == 1.0


def test_cloaking_does_not_block_bpm(rows):
    cloak = rows[0]
    assert not math.isnan(cloak["bpm_cells"])
    assert cloak["bpm_failure"] < 0.5
