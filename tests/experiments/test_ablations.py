"""Ablation harnesses — structure and direction on a tiny preset."""

import pytest

from repro.experiments.ablations import (
    ablation_cr_expansion,
    ablation_disguise_policy,
    ablation_id_mixing,
    ablation_revalidation,
)
from repro.experiments.config import ExperimentConfig

TINY = ExperimentConfig(
    n_users=20,
    n_channels=25,
    channel_sweep=(25,),
    bpm_fractions=(0.5,),
    attack_fractions=(0.5,),
    zero_replace_probs=(0.5,),
    n_users_sweep=(20,),
    n_rounds=1,
    bpm_max_cells=250,
    two_lambda=6,
    bmax=127,
    seed="test-abl",
)


def test_id_mixing_rows():
    rows = ablation_id_mixing(TINY, n_rounds=3)
    assert [row["rounds_linked"] for row in rows] == [1, 2, 3]
    assert rows[0]["identities"].startswith("mixed")
    assert rows[-1]["cells"] <= rows[0]["cells"]


def test_revalidation_recovers_performance():
    rows = ablation_revalidation(TINY)
    batched = next(r for r in rows if r["charging"].startswith("batched"))
    revalidated = next(r for r in rows if r["charging"] == "revalidated")
    assert revalidated["satisfaction_ratio"] >= batched["satisfaction_ratio"]
    assert revalidated["ttp_rejections"] > 0
    assert batched["ttp_rejections"] == 0


def test_cr_expansion_monotone():
    rows = ablation_cr_expansion(n_users=80)
    collisions = [row["collisions"] for row in rows]
    assert collisions[-1] <= collisions[0]
    assert rows[0]["cr"] == 1
    # Width grows with cr (log2 of the expanded domain).
    widths = [row["width_bits"] for row in rows]
    assert widths == sorted(widths)


def test_disguise_policy_rows():
    rows = ablation_disguise_policy(TINY)
    assert {row["policy"] for row in rows} == {"linear-decreasing", "uniform"}
    for row in rows:
        assert 0.0 <= row["attacker_failure"] <= 1.0


def test_crowd_mixing_rows():
    from repro.experiments.ablations import ablation_crowd_mixing

    rows = ablation_crowd_mixing(
        TINY, protector_fractions=(0.0, 0.5, 1.0), replace_prob=0.8
    )
    assert [row["protector_fraction"] for row in rows] == [0.0, 0.5, 1.0]
    # Degenerate ends have a '-' for the empty group.
    assert rows[0]["protectors_cells"] == "-"
    assert rows[-1]["optouts_cells"] == "-"
    middle = rows[1]
    assert isinstance(middle["protectors_failure"], float)
    assert isinstance(middle["optouts_failure"], float)


def test_per_user_policies_flow_into_fastsim():
    """The heterogeneous-policy plumbing the crowd ablation relies on."""
    import random

    from repro.auction.bidders import generate_users
    from repro.geo.datasets import make_database
    from repro.lppa.fastsim import run_fast_lppa
    from repro.lppa.policies import KeepZeroPolicy, UniformReplacePolicy

    database = make_database(3, n_channels=10, seed=TINY.seed)
    users = generate_users(database, 10, random.Random(0))
    policies = [KeepZeroPolicy()] * 5 + [UniformReplacePolicy(1.0)] * 5
    result = run_fast_lppa(
        users, two_lambda=6, bmax=127, policy=policies, rng=random.Random(1)
    )
    keepers = sum(
        c.disguised for d in result.disclosures[:5] for c in d.channels
    )
    replacers = sum(
        c.disguised for d in result.disclosures[5:] for c in d.channels
    )
    assert keepers == 0
    assert replacers > 0


def test_colocation_rows():
    from repro.experiments.ablations import ablation_colocation

    rows = ablation_colocation(TINY, anchor_counts=(1, 5, 15))
    assert [row["anchors"] for row in rows] == [1, 5, 15]
    for row in rows:
        assert row["failure_rate"] == 0.0  # conflict bits never lie
    assert rows[-1]["cells"] <= rows[0]["cells"]
