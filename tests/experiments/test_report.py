"""The combined markdown report."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import write_report

TINY = ExperimentConfig(
    n_users=12,
    n_channels=15,
    channel_sweep=(15,),
    bpm_fractions=(0.5,),
    attack_fractions=(0.5,),
    zero_replace_probs=(0.5,),
    n_users_sweep=(12,),
    n_rounds=1,
    bpm_max_cells=100,
    two_lambda=6,
    bmax=127,
    seed="test-report",
)


def test_report_without_extensions(tmp_path):
    path = write_report(tmp_path / "report.md", TINY, include_extensions=False)
    text = path.read_text()
    assert text.startswith("# LPPA reproduction report")
    for heading in (
        "Fig 4(a)(b)",
        "Fig 4(c)",
        "Fig 5(a)-(d)",
        "Fig 5(e)(f)",
        "Theorem 1",
        "Theorem 4",
    ):
        assert heading in text
    assert "Ablation" not in text


def test_report_with_extensions(tmp_path):
    path = write_report(tmp_path / "full.md", TINY)
    text = path.read_text()
    assert "Ablation — ID mixing" in text
    assert "Extension — truthfulness" in text
    assert "_Report generated in" in text
