"""Experiment presets."""

import pytest

from repro.experiments.config import FULL, SMOKE, ExperimentConfig, default_config


def test_presets_are_valid():
    for preset in (SMOKE, FULL):
        assert preset.n_users >= 1
        assert preset.n_channels == 129
        assert all(0 < f <= 1 for f in preset.attack_fractions)
        assert all(0 <= p <= 1 for p in preset.zero_replace_probs)


def test_full_is_larger_than_smoke():
    assert FULL.n_users > SMOKE.n_users
    assert len(FULL.zero_replace_probs) > len(SMOKE.zero_replace_probs)


def test_default_config_env_switch(monkeypatch):
    monkeypatch.delenv("REPRO_FULL", raising=False)
    assert default_config() is SMOKE
    monkeypatch.setenv("REPRO_FULL", "1")
    assert default_config() is FULL
    monkeypatch.setenv("REPRO_FULL", "0")
    assert default_config() is SMOKE


def test_validation():
    with pytest.raises(ValueError):
        ExperimentConfig(
            n_users=0,
            n_channels=10,
            channel_sweep=(10,),
            bpm_fractions=(0.5,),
            attack_fractions=(0.5,),
            zero_replace_probs=(0.5,),
            n_users_sweep=(10,),
            n_rounds=1,
            bpm_max_cells=100,
            two_lambda=4,
            bmax=127,
            seed="s",
        )
