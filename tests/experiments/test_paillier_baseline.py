"""The Paillier comparison baseline and the masking-backend ablation."""

import pytest

from repro.experiments.ablations import ablation_masking_backend
from repro.experiments.config import ExperimentConfig
from repro.experiments.paillier_baseline import (
    baseline_comparison_table,
    paillier_comparison_bytes,
    paillier_submission_bytes,
)

TINY = ExperimentConfig(
    n_users=10,
    n_channels=8,
    channel_sweep=(8,),
    bpm_fractions=(0.5,),
    attack_fractions=(0.5,),
    zero_replace_probs=(0.5,),
    n_users_sweep=(10,),
    n_rounds=1,
    bpm_max_cells=100,
    two_lambda=6,
    bmax=127,
    seed="test-paillier",
)


def test_submission_cost_formula():
    # 2048-bit modulus -> 4096-bit = 512-byte ciphertexts.
    assert paillier_submission_bytes(10, 5, 2048) == 10 * 5 * 512


def test_comparison_cost_formula():
    # (N-1) comparisons per channel, one ciphertext per auctioneer each.
    assert paillier_comparison_bytes(10, 5, 2048, n_auctioneers=3) == (
        5 * 9 * 3 * 512
    )


def test_cost_validation():
    with pytest.raises(ValueError):
        paillier_submission_bytes(0, 5, 2048)
    with pytest.raises(ValueError):
        paillier_comparison_bytes(10, 5, 2048, n_auctioneers=1)


def test_comparison_table_shape():
    rows = baseline_comparison_table(
        TINY, sweep=((10, 8), (20, 8)), demo_key_bits=64
    )
    assert len(rows) == 2
    for row in rows:
        assert row["paillier_total_kib"] > row["paillier_submit_kib"]
        # The paper's claim: the Paillier route costs strictly more overall.
        assert row["overhead_x"] > 1.0


def test_masking_backend_ablation():
    rows = ablation_masking_backend()
    backends = {row["backend"] for row in rows}
    assert len(backends) == 3
    by_backend = {row["backend"]: row for row in rows}
    ope = by_backend["keyed OPE"]
    prefix = by_backend["prefix sets (LPPA)"]
    # OPE is tiny but cannot answer hidden-range queries.
    assert ope["bytes_per_entry"] < prefix["bytes_per_entry"]
    assert ope["hidden_range_query"] == "no"
    assert prefix["hidden_range_query"] == "yes"
