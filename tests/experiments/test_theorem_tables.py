"""Theorem validation tables."""

from repro.experiments.theorem_tables import (
    theorem1_table,
    theorem2_table,
    theorem3_table,
)


def test_theorem1_table_agreement():
    rows = theorem1_table(cases=((3, 5), (2, 8)), trials=20000)
    for row in rows:
        assert row["paper"] == row["exact"]
        assert abs(row["paper"] - row["monte_carlo"]) < 0.02


def test_theorem2_table_exact_column_tracks_mc():
    rows = theorem2_table(cases=((3, 6, 2),), trials=20000)
    for row in rows:
        assert abs(row["exact"] - row["monte_carlo"]) < 0.02


def test_theorem3_table_shape():
    rows = theorem3_table(cases=((6, 2),), trials=5000)
    assert len(rows) == 1
    assert {"m", "t", "paper", "monte_carlo"} <= set(rows[0])
