"""The shading (truthfulness) experiment."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.truthfulness import shading_experiment

TINY = ExperimentConfig(
    n_users=30,
    n_channels=20,
    channel_sweep=(20,),
    bpm_fractions=(0.5,),
    attack_fractions=(0.5,),
    zero_replace_probs=(0.5,),
    n_users_sweep=(30,),
    n_rounds=1,
    bpm_max_cells=250,
    two_lambda=6,
    bmax=127,
    seed="test-truth",
)


@pytest.fixture(scope="module")
def rows():
    return shading_experiment(TINY, shades=(0.6, 1.0), n_rounds=15)


def test_row_structure(rows):
    assert [row["shade"] for row in rows] == [0.6, 1.0]
    for row in rows:
        assert "utility_first_price" in row and "utility_second_price" in row


def test_first_price_truthful_utility_is_zero(rows):
    truthful = next(row for row in rows if row["shade"] == 1.0)
    assert truthful["utility_first_price"] == 0.0


def test_first_price_rewards_shading(rows):
    shaded = next(row for row in rows if row["shade"] == 0.6)
    truthful = next(row for row in rows if row["shade"] == 1.0)
    assert shaded["utility_first_price"] > truthful["utility_first_price"]


def test_second_price_gives_truthful_bidder_surplus(rows):
    truthful = next(row for row in rows if row["shade"] == 1.0)
    assert truthful["utility_second_price"] > 0.0


def test_second_price_shrinks_the_shading_gain(rows):
    shaded = next(row for row in rows if row["shade"] == 0.6)
    truthful = next(row for row in rows if row["shade"] == 1.0)
    gain_first = shaded["utility_first_price"] - truthful["utility_first_price"]
    gain_second = shaded["utility_second_price"] - truthful["utility_second_price"]
    assert gain_second < gain_first
