"""The Theorem 4 communication-cost experiment."""

from repro.experiments.comm import theorem4_table
from repro.experiments.config import ExperimentConfig

TINY = ExperimentConfig(
    n_users=5,
    n_channels=4,
    channel_sweep=(4,),
    bpm_fractions=(0.5,),
    attack_fractions=(0.5,),
    zero_replace_probs=(0.5,),
    n_users_sweep=(5,),
    n_rounds=1,
    bpm_max_cells=100,
    two_lambda=6,
    bmax=127,
    seed="test-comm",
)


def test_rows_report_zero_prediction_error():
    rows = theorem4_table(TINY, sweep=((4, 3), (8, 3)))
    assert len(rows) == 2
    for row in rows:
        assert row["error"] == 0.0
        assert row["measured_kbits"] == row["predicted_kbits"]
        assert row["location_kbits"] > 0


def test_cost_scales_linearly_with_users():
    rows = theorem4_table(TINY, sweep=((4, 3), (8, 3)))
    # as_row rounds to 0.1 kbit, so allow that much slack on the doubling.
    assert abs(rows[1]["measured_kbits"] - 2 * rows[0]["measured_kbits"]) <= 0.2


def test_table_is_pinned():
    """Regression pin for the label-addressed RNG seeding fix.

    The bid RNG is now seeded from ``spawn_rng(...).getrandbits(64)``
    (the full integer stream) rather than ``.random()`` (a 52-bit float,
    which quietly collapsed the label space).  Padded masked-set sizes are
    deterministic, so the measured byte counts must stay exactly here.
    """
    rows = theorem4_table(TINY, sweep=((4, 3), (8, 3)))
    assert rows == [
        {
            "N": 4,
            "k": 3,
            "w": 11,
            "predicted_kbits": 49.2,
            "measured_kbits": 49.2,
            "total_kbits": 50.0,
            "error": 0.0,
            "location_kbits": 11.8,
        },
        {
            "N": 8,
            "k": 3,
            "w": 11,
            "predicted_kbits": 98.3,
            "measured_kbits": 98.3,
            "total_kbits": 100.1,
            "error": 0.0,
            "location_kbits": 22.8,
        },
    ]
