"""The parallel sweep engine: resolution, ordering, reports, fallback."""

import multiprocessing
import os

import pytest

from repro.experiments.engine import (
    WORKERS_ENV,
    SweepReport,
    resolve_workers,
    run_sweep,
)

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def _square(spec):
    return spec * spec


def _fail_on_three(spec):
    if spec == 3:
        raise ValueError("spec three is poisoned")
    return spec


class TestResolveWorkers:
    def test_defaults_to_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers() == 1
        assert resolve_workers(None) == 1

    def test_env_variable_honoured(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers() == 3

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers(2) == 2

    def test_blank_env_means_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "  ")
        assert resolve_workers() == 1

    @pytest.mark.parametrize("raw", ["zero", "2.5", "-1", "0"])
    def test_invalid_env_raises(self, monkeypatch, raw):
        monkeypatch.setenv(WORKERS_ENV, raw)
        with pytest.raises(ValueError):
            resolve_workers()

    @pytest.mark.parametrize("workers", [0, -4])
    def test_invalid_argument_raises(self, workers):
        with pytest.raises(ValueError):
            resolve_workers(workers)


class TestSerialPath:
    def test_results_in_spec_order(self):
        assert run_sweep(_square, range(7), workers=1) == [
            n * n for n in range(7)
        ]

    def test_empty_sweep(self):
        assert run_sweep(_square, [], workers=1) == []

    def test_progress_callback_counts_up(self):
        seen = []
        run_sweep(_square, [1, 2, 3], workers=1,
                  progress=lambda done, total: seen.append((done, total)))
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_report_contents(self):
        reports = []
        run_sweep(_square, [1, 2], workers=1, name="unit", chunksize=1,
                  on_report=reports.append)
        (report,) = reports
        assert isinstance(report, SweepReport)
        assert report.mode == "serial"
        assert report.name == "unit"
        assert report.n_tasks == 2
        assert report.errors == []
        assert report.worker_pids == (os.getpid(),)
        assert len(report.timings) == 2
        assert report.wall_seconds >= 0.0
        assert "mode=serial" in report.summary()

    def test_task_error_propagates(self):
        with pytest.raises(ValueError, match="poisoned"):
            run_sweep(_fail_on_three, [1, 2, 3, 4], workers=1)

    def test_bad_chunksize_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(_square, [1, 2], workers=1, chunksize=0)


@pytest.mark.skipif(not HAS_FORK, reason="needs the fork start method")
class TestParallelPath:
    def test_matches_serial_in_order(self):
        reports = []
        results = run_sweep(_square, range(9), workers=2,
                            on_report=reports.append)
        assert results == [n * n for n in range(9)]
        assert reports[0].mode == "parallel"
        assert reports[0].workers == 2

    def test_task_error_falls_back_and_raises_naturally(self):
        # The worker-side failure demotes the sweep to a serial rerun, where
        # the deterministic error surfaces exactly as a plain loop would.
        with pytest.raises(ValueError, match="poisoned"):
            run_sweep(_fail_on_three, [1, 2, 3, 4], workers=2)

    def test_unpicklable_func_falls_back_to_serial(self):
        reports = []
        results = run_sweep(lambda spec: spec + 1, [1, 2, 3], workers=2,
                            on_report=reports.append)
        assert results == [2, 3, 4]
        (report,) = reports
        assert report.mode == "serial-fallback"
        assert report.errors, "fallback must record why the pool was dropped"

    def test_workers_capped_by_task_count(self):
        # A one-task sweep never pays for a pool.
        reports = []
        assert run_sweep(_square, [5], workers=8,
                         on_report=reports.append) == [25]
        assert reports[0].mode == "serial"
