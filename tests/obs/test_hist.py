"""Unit tests for the fixed-bucket histogram and gauge primitives."""

import random

import pytest

from repro.obs.hist import (
    DEFAULT_DECADES,
    DEFAULT_LOWER,
    DEFAULT_PER_DECADE,
    Gauge,
    Histogram,
    quantile_from_cumulative,
)


class TestHistogramGrid:
    def test_default_grid_shape(self):
        hist = Histogram()
        bounds = hist.bounds()
        assert len(bounds) == DEFAULT_DECADES * DEFAULT_PER_DECADE + 1
        assert bounds[0] == DEFAULT_LOWER
        assert bounds[-1] == pytest.approx(DEFAULT_LOWER * 10.0 ** DEFAULT_DECADES)

    def test_growth_is_the_bucket_width(self):
        assert Histogram().growth == pytest.approx(10.0 ** 0.1)
        assert Histogram(per_decade=5).growth == pytest.approx(10.0 ** 0.2)

    def test_bounds_are_shared_not_rebuilt(self):
        assert Histogram().bounds() is Histogram().bounds()

    def test_invalid_grid_rejected(self):
        with pytest.raises(ValueError):
            Histogram(lower=0.0)
        with pytest.raises(ValueError):
            Histogram(decades=0)
        with pytest.raises(ValueError):
            Histogram(per_decade=0)


class TestObserve:
    def test_exact_count_sum_min_max_mean(self):
        hist = Histogram()
        for value in (0.001, 0.004, 0.1):
            hist.observe(value)
        hist.observe(0.02, 3)
        assert hist.count == 6
        assert hist.sum == pytest.approx(0.001 + 0.004 + 0.1 + 3 * 0.02)
        assert hist.min == 0.001
        assert hist.max == 0.1
        assert hist.mean == pytest.approx(hist.sum / 6)

    def test_empty_histogram_views(self):
        hist = Histogram()
        assert hist.count == 0
        assert hist.min is None and hist.max is None
        assert hist.mean == 0.0
        assert hist.quantile(0.99) == 0.0

    def test_rejects_bad_observations(self):
        hist = Histogram()
        with pytest.raises(ValueError):
            hist.observe(-1.0)
        with pytest.raises(ValueError):
            hist.observe(1.0, 0)

    def test_underflow_lands_in_first_bucket(self):
        hist = Histogram()
        hist.observe(0.0)
        hist.observe(DEFAULT_LOWER / 10)
        (bound, cum), *_rest = hist.cumulative()
        assert bound == DEFAULT_LOWER
        assert cum == 2


class TestQuantiles:
    def test_single_value_is_exact_via_clamp(self):
        hist = Histogram()
        hist.observe(0.0375)
        for q in (0.0, 0.5, 1.0):
            assert hist.quantile(q) == 0.0375

    def test_within_one_bucket_width_of_exact(self):
        rng = random.Random(11)
        hist = Histogram()
        samples = [rng.lognormvariate(-3.0, 1.5) for _ in range(3000)]
        for value in samples:
            hist.observe(value)
        ordered = sorted(samples)
        width = hist.growth
        for q in (0.5, 0.9, 0.99, 0.999):
            exact = ordered[round(q * (len(ordered) - 1))]
            assert exact / width <= hist.quantile(q) <= exact * width

    def test_percentiles_report_keys(self):
        hist = Histogram()
        hist.observe(0.5)
        assert set(hist.percentiles()) == {"p50", "p95", "p99", "p999"}

    def test_quantile_from_cumulative_edges(self):
        assert quantile_from_cumulative([], 0.5) == 0.0
        with pytest.raises(ValueError):
            quantile_from_cumulative([(1.0, 1)], 1.5)
        # Overflow bucket resolves to the last finite bound.
        cum = [(1.0, 0), (10.0, 1), (float("inf"), 10)]
        assert quantile_from_cumulative(cum, 0.99) == 10.0


class TestMergeCopy:
    def test_merge_equals_union_of_observations(self):
        rng = random.Random(3)
        samples = [rng.expovariate(20.0) for _ in range(200)]
        whole, left, right = Histogram(), Histogram(), Histogram()
        for i, value in enumerate(samples):
            whole.observe(value)
            (left if i % 2 else right).observe(value)
        left.merge(right)
        # Sums accumulate in a different order, so compare them approximately
        # and everything discrete exactly.
        assert left.sum == pytest.approx(whole.sum)
        left_dict, whole_dict = left.as_dict(), whole.as_dict()
        left_dict.pop("sum"), whole_dict.pop("sum")
        assert left_dict == whole_dict

    def test_merge_rejects_mismatched_grid(self):
        with pytest.raises(ValueError):
            Histogram().merge(Histogram(per_decade=5))

    def test_copy_is_independent(self):
        hist = Histogram()
        hist.observe(0.2)
        dup = hist.copy()
        assert dup == hist
        dup.observe(0.9)
        assert dup != hist
        assert hist.count == 1


class TestCumulative:
    def test_monotone_and_inf_terminated(self):
        rng = random.Random(7)
        hist = Histogram()
        for _ in range(500):
            hist.observe(rng.expovariate(5.0))
        cum = hist.cumulative()
        assert cum[-1] == (float("inf"), hist.count)
        counts = [c for _, c in cum]
        assert counts == sorted(counts)
        bounds = [b for b, _ in cum]
        assert bounds == sorted(bounds)

    def test_zero_delta_buckets_are_elided(self):
        hist = Histogram()
        hist.observe(1.0)
        cum = hist.cumulative()
        # First boundary, the hit bucket, +Inf — nothing in between.
        assert len(cum) == 3
        assert cum[0][1] == 0 and cum[-1][1] == 1


class TestSerialization:
    def test_roundtrip_equality(self):
        rng = random.Random(9)
        hist = Histogram()
        for _ in range(100):
            hist.observe(rng.lognormvariate(-4.0, 2.0))
        assert Histogram.from_dict(hist.as_dict()) == hist

    def test_empty_roundtrip_has_no_min_max(self):
        data = Histogram().as_dict()
        assert "min" not in data and "max" not in data
        assert Histogram.from_dict(data) == Histogram()

    def test_from_dict_rejects_corrupt_payloads(self):
        hist = Histogram()
        hist.observe(0.5)
        good = hist.as_dict()
        with pytest.raises(ValueError):
            Histogram.from_dict({**good, "buckets": {"99999": 1}})
        with pytest.raises(ValueError):
            Histogram.from_dict({**good, "count": 7})
        bad_bucket = dict(good, buckets={"3": -1})
        with pytest.raises(ValueError):
            Histogram.from_dict(bad_bucket)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        assert gauge.value == 0.0
        gauge.set(5)
        gauge.inc()
        gauge.inc(2.5)
        gauge.dec()
        assert gauge.value == pytest.approx(7.5)

    def test_equality(self):
        assert Gauge(3.0) == Gauge(3.0)
        assert Gauge(3.0) != Gauge(4.0)
