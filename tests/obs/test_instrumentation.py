"""Instrumentation wiring: the protocol and engine record what they should."""

import random

import pytest

from repro import obs
from repro.experiments.engine import run_sweep
from repro.lppa.fastsim import run_fast_lppa
from repro.lppa.session import run_lppa_auction
from repro.obs.calibration import run_calibration
from repro.obs.registry import MetricsRegistry

PHASES = ("location_submission", "bid_submission", "psd_allocation", "ttp_charging")


def _session_round(small_db, small_users, *, seed=7):
    return run_lppa_auction(
        small_users[:10],
        small_db.coverage.grid,
        two_lambda=6,
        bmax=127,
        rng=random.Random(seed),
    )


def test_session_records_phases_and_crypto(small_db, small_users):
    from repro.crypto.cache import get_mask_cache

    # A warm masked-digest cache (earlier tests, same seeds) would satisfy
    # the round without any HMAC work; this test asserts attribution of
    # the work itself.
    get_mask_cache().clear()
    with obs.collecting() as registry:
        _session_round(small_db, small_users)
    timers = registry.timers
    for phase in PHASES:
        assert f"phase/{phase}" in timers, phase
    totals = registry.totals()
    assert totals["crypto.hmac"] > 0
    assert totals["lppa.location_submissions"] == 10
    assert totals["lppa.bid_submissions"] == 10
    assert totals["lppa.location_bytes"] > 0
    assert totals["lppa.bid_bytes"] > 0
    assert totals["lppa.framed_bytes"] > totals["lppa.bid_bytes"]
    assert totals["lppa.rounds"] == 1
    # HMAC work is attributed to the phase that performs it.
    counters = registry.counters
    assert counters["bid_submission/crypto.hmac"] > 0
    assert counters["ttp_charging/ttp.charges"] >= 1


def test_fastsim_records_same_phase_keys_without_crypto(small_users):
    with obs.collecting() as registry:
        run_fast_lppa(
            small_users[:10],
            two_lambda=6,
            bmax=127,
            rng=random.Random(7),
        )
    timers = registry.timers
    for phase in PHASES:
        assert f"phase/{phase}" in timers, phase
    totals = registry.totals()
    assert totals["lppa.fast_rounds"] == 1
    assert "crypto.hmac" not in totals  # integer-level simulation


def test_metrics_collection_does_not_change_results(small_db, small_users):
    plain = _session_round(small_db, small_users)
    with obs.collecting():
        observed = _session_round(small_db, small_users)
    assert observed.outcome.wins == plain.outcome.wins
    assert observed.total_bytes == plain.total_bytes
    assert observed.conflict_graph.edges == plain.conflict_graph.edges


def test_engine_records_sweep_rollups():
    with obs.collecting() as registry:
        results = run_sweep(abs, [-1, -2, -3], name="unit")
    assert results == [1, 2, 3]
    assert registry.counters["engine.tasks"] == 3
    assert registry.counters["engine.sweeps"] == 1
    timers = registry.timers
    assert timers["engine.sweep.unit"].count == 1
    assert timers["engine.task.unit"].count == 3


def test_engine_silent_without_registry():
    assert run_sweep(abs, [-5], name="unit") == [5]
    assert obs.get_active() is None


def test_calibration_is_a_noop_when_disabled():
    run_calibration()
    assert obs.get_active() is None


def test_calibration_records_comparable_baselines():
    registry = MetricsRegistry()
    run_calibration(registry, repeats=2)
    totals = registry.totals()
    assert totals["crypto.hmac"] > 0
    assert totals["crypto.paillier.encrypt"] == 3  # repeats + the zero seed
    assert totals["crypto.paillier.add"] == 2
    assert totals["crypto.paillier.decrypt"] == 1
    assert totals["crypto.ope.encrypt"] == 2
    assert totals["crypto.ope.decrypt"] == 2
    timers = registry.timers
    for name in (
        "mask_value",
        "mask_specs_batch",
        "mask_range",
        "membership",
        "paillier_keygen",
        "paillier_roundtrip",
        "ope_setup",
        "ope_roundtrip",
    ):
        assert f"calibration/{name}" in timers, name
    assert "phase/calibration" in timers


def test_calibration_counters_are_deterministic():
    first, second = MetricsRegistry(), MetricsRegistry()
    run_calibration(first, repeats=3)
    run_calibration(second, repeats=3)
    assert first.counters == second.counters


def test_calibration_rejects_bad_repeats():
    with pytest.raises(ValueError):
        run_calibration(MetricsRegistry(), repeats=0)
