"""The metrics registry: counters, timers, phase scoping, enable/disable."""

import pytest

from repro import obs
from repro.obs.registry import MetricsRegistry, TimerStat


def test_counters_accumulate():
    registry = MetricsRegistry()
    registry.count("crypto.hmac")
    registry.count("crypto.hmac", 4)
    assert registry.counters == {"crypto.hmac": 5}


def test_nested_phases_scope_counters_and_timers():
    registry = MetricsRegistry()
    with registry.phase("a"):
        registry.count("ops")
        with registry.phase("b"):
            registry.count("ops", 2)
            registry.record_seconds("step", 0.5)
    registry.count("ops", 10)

    assert registry.counters == {"a/ops": 1, "a.b/ops": 2, "ops": 10}
    timers = registry.timers
    assert timers["a.b/step"].seconds == 0.5
    # Closing a phase records its wall time under phase/<path>.
    assert "phase/a" in timers and "phase/a.b" in timers
    assert timers["phase/a"].seconds >= timers["phase/a.b"].seconds


def test_sibling_same_name_phases_each_record_wall_time():
    """Two *sibling* phases with the same name are disjoint intervals: both
    must record into the shared ``phase/<name>`` key (the regression the
    nested-reentrancy fix must not introduce)."""
    registry = MetricsRegistry()
    with registry.phase("p"):
        registry.count("ops")
    with registry.phase("p"):
        registry.count("ops")
    stat = registry.timers["phase/p"]
    assert stat.count == 2
    assert registry.counters == {"p/ops": 2}


def test_nested_same_name_phase_does_not_double_count():
    """A phase opened inside a phase of the same name covers a sub-interval
    of wall time already being measured; recording it again would make any
    per-name rollup double-count.  The inner scope must be a reentrant
    no-op: no ``phase/p.p`` key, one recording, counters still under ``p``."""
    registry = MetricsRegistry()
    with registry.phase("p"):
        registry.count("ops")
        with registry.phase("p"):
            registry.count("ops", 2)
        registry.count("ops", 4)
    timers = registry.timers
    assert "phase/p.p" not in timers
    assert timers["phase/p"].count == 1
    assert registry.counters == {"p/ops": 7}


def test_nested_same_name_phase_deeper_level_still_scopes():
    """Reentrancy only collapses *directly* nested same-name scopes; a same
    name reappearing deeper in the stack is a genuine new scope."""
    registry = MetricsRegistry()
    with registry.phase("a"):
        with registry.phase("b"):
            with registry.phase("a"):
                registry.count("ops")
    timers = registry.timers
    assert "phase/a.b.a" in timers
    assert registry.counters == {"a.b.a/ops": 1}


def test_totals_fold_scopes():
    registry = MetricsRegistry()
    with registry.phase("x"):
        registry.count("ops", 3)
    with registry.phase("y"):
        registry.count("ops", 4)
    registry.count("ops", 1)
    assert registry.totals()["ops"] == 8


def test_timer_context_manager_measures():
    registry = MetricsRegistry()
    with registry.timer("work"):
        pass
    stat = registry.timers["work"]
    assert stat.count == 1
    assert stat.seconds >= 0.0


def test_phase_stack_misuse_detected():
    registry = MetricsRegistry()
    scope = registry.phase("p")
    scope.__enter__()
    registry._push_phase("q")
    with pytest.raises(RuntimeError):
        scope.__exit__(None, None, None)


def test_names_must_not_contain_slash():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.timer("a/b")
    with pytest.raises(ValueError):
        registry.phase("a/b")
    with pytest.raises(ValueError):
        registry.phase("")


def test_timer_stat_validates():
    stat = TimerStat()
    with pytest.raises(ValueError):
        stat.add(-1.0)
    with pytest.raises(ValueError):
        stat.add(1.0, 0)
    stat.add(2.0, 4)
    assert stat.mean == 0.5


def test_module_layer_is_noop_when_disabled():
    assert obs.get_active() is None
    obs.count("never.recorded", 100)
    with obs.timer("never.timed"):
        pass
    with obs.phase("never.phased"):
        obs.count("inner", 1)
    assert obs.get_active() is None


def test_disabled_timer_and_phase_share_the_null_scope():
    assert obs.timer("a") is obs.timer("b") is obs.phase("c")


def test_collecting_installs_and_restores():
    outer = MetricsRegistry()
    with obs.collecting(outer) as registry:
        assert registry is outer
        assert obs.get_active() is outer
        obs.count("seen")
        inner = MetricsRegistry()
        with obs.collecting(inner):
            assert obs.get_active() is inner
            obs.count("seen")
        assert obs.get_active() is outer
    assert obs.get_active() is None
    assert outer.counters == {"seen": 1}
    assert inner.counters == {"seen": 1}


def test_collecting_restores_on_exception():
    with pytest.raises(RuntimeError):
        with obs.collecting():
            raise RuntimeError("boom")
    assert obs.get_active() is None


def test_enable_disable_roundtrip():
    registry = obs.enable()
    try:
        assert obs.get_active() is registry
    finally:
        assert obs.disable() is registry
    assert obs.get_active() is None


def test_reset_clears_metrics_but_not_phase_stack():
    registry = MetricsRegistry()
    with registry.phase("p"):
        registry.count("ops")
        registry.reset()
        registry.count("ops")
        assert registry.counters == {"p/ops": 1}


def test_snapshot_shape():
    registry = MetricsRegistry()
    registry.count("ops", 2)
    registry.record_seconds("work", 1.0, 2)
    snap = registry.snapshot()
    assert snap["counters"] == {"ops": 2}
    assert snap["timers"] == {
        "work": {"seconds": 1.0, "count": 2, "min": 0.5, "max": 0.5}
    }
    assert snap["histograms"] == {}
    assert snap["gauges"] == {}
    assert snap["totals"] == {"ops": 2}
