"""Tracing must observe the protocol, never perturb it.

Acceptance criteria for the flight recorder: identical auction results with
tracing on vs off (differential, on both the full-crypto session and the
integer fastsim), and a zero-overhead no-op path when disabled.
"""

import random

import pytest

from repro import obs
from repro.geo.datasets import make_database
from repro.geo.grid import GridSpec
from repro.lppa.fastsim import run_fast_lppa
from repro.lppa.session import run_lppa_auction
from repro.auction.bidders import generate_users
from repro.obs import trace

GRID = GridSpec(rows=20, cols=20, cell_km=3.75)


@pytest.fixture(scope="module")
def users():
    database = make_database(4, n_channels=5, grid=GRID)
    return generate_users(database, 10, random.Random(7))


def _outcome_key(result):
    return (
        sorted((w.bidder, w.channel, w.charge, w.valid) for w in result.outcome.wins),
        result.rankings,
        sorted(result.conflict_graph.edges),
    )


def test_session_outcome_unchanged_by_tracing(users):
    entropy = "trace-differential:0"
    plain = run_lppa_auction(
        users, GRID, two_lambda=6, bmax=127, entropy=entropy
    )
    with obs.tracing() as recorder:
        traced = run_lppa_auction(
            users, GRID, two_lambda=6, bmax=127, entropy=entropy
        )
    assert _outcome_key(traced) == _outcome_key(plain)
    assert traced.framed_bytes == plain.framed_bytes
    # And the recorder actually saw the round.
    summary = recorder.summary()
    assert summary["messages_by_kind"]["location_submission"] == len(users)
    assert summary["messages_by_kind"]["bid_submission"] == len(users)
    assert summary["rounds"] == 1


def test_fastsim_outcome_unchanged_by_tracing(users):
    entropy = "trace-differential:fast"
    plain = run_fast_lppa(users, two_lambda=6, bmax=127, entropy=entropy)
    with obs.tracing() as recorder:
        traced = run_fast_lppa(users, two_lambda=6, bmax=127, entropy=entropy)
    assert _outcome_key(traced) == _outcome_key(plain)
    events = recorder.events()
    assert any(e["type"] == "ranking" for e in events)
    # Fastsim never serializes, so it must not fabricate wire messages.
    assert not any(e["type"] == "message" for e in events)


def test_traced_wire_sizes_sum_to_framed_bytes(users):
    """Per-message accounting must reproduce the session's own framed total
    exactly — the invariant the comm auditor builds on."""
    with obs.tracing() as recorder:
        result = run_lppa_auction(
            users, GRID, two_lambda=6, bmax=127, entropy="trace-wire:0"
        )
    framed = sum(
        e["wire_size"]
        for e in recorder.events()
        if e["type"] == "message"
        and e["kind"] in ("location_submission", "bid_submission")
    )
    payload = sum(
        e["payload_bytes"]
        for e in recorder.events()
        if e["type"] == "message"
        and e["kind"] in ("location_submission", "bid_submission")
    )
    assert framed == result.framed_bytes
    assert payload == result.total_bytes


def test_disabled_path_emits_nothing(users):
    assert trace.get_active() is None
    result = run_lppa_auction(
        users, GRID, two_lambda=6, bmax=127, entropy="trace-off:0"
    )
    assert result.outcome.wins is not None
    assert trace.get_active() is None


def test_disabled_emission_helpers_are_cheap():
    """The no-op layer must early-out without building event dicts: the call
    sites guard on ``get_active()`` and the module helpers bail on ``None``
    before touching any argument."""
    assert trace.get_active() is None
    for _ in range(1000):
        trace.message("bid_submission", su=0, payload_bytes=1, wire_size=2)
        trace.instant("x", value=1)
    # Still nothing installed, nothing recorded anywhere to flush.
    assert trace.get_active() is None


def test_metrics_and_trace_compose_on_a_session(users):
    with obs.collecting(trace=True) as registry:
        recorder = trace.get_active()
        run_lppa_auction(
            users, GRID, two_lambda=6, bmax=127, entropy="trace-compose:0"
        )
    assert any(key.startswith("phase/") for key in registry.timers)
    span_names = {
        e["name"] for e in recorder.events() if e["type"] == "span"
    }
    # The session's obs.phase() names appear as trace spans too.
    assert any(name in span_names for name in ("location_submission", "bid_submission"))
