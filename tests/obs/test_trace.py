"""The flight recorder: ring buffer, spans, exports, schema validation."""

import json

import pytest

from repro import obs
from repro.obs import trace
from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    TraceRecorder,
    adversary_view,
    chrome_trace,
    load_trace,
    validate_trace,
)


def test_events_carry_seq_ts_round_vis():
    recorder = TraceRecorder()
    recorder.instant("first")
    recorder.round_begin()
    recorder.instant("second")
    events = recorder.events()
    assert [e["seq"] for e in events] == [0, 1, 2]
    assert all(e["ts"] >= 0 for e in events)
    assert events[0]["round"] is None
    assert events[2]["round"] == 0
    assert all(e["vis"] == "public" for e in events)


def test_round_attribution_opens_and_closes():
    recorder = TraceRecorder()
    assert recorder.current_round is None
    assert recorder.round_begin() == 0
    recorder.instant("inside")
    recorder.round_end()
    recorder.instant("outside")
    assert recorder.round_begin() == 1
    events = recorder.events()
    by_name = {
        e.get("name"): e["round"] for e in events if e["type"] == "instant"
    }
    assert by_name["inside"] == 0
    assert by_name["outside"] is None


def test_span_nesting_paths_and_parents():
    recorder = TraceRecorder()
    with recorder.span("outer"):
        with recorder.span("inner"):
            pass
    inner, outer = recorder.events()  # inner closes (and records) first
    assert inner["path"] == "outer.inner" and inner["parent"] == "outer"
    assert outer["path"] == "outer" and outer["parent"] is None
    assert inner["dur"] <= outer["dur"]
    assert inner["ts"] >= outer["ts"]


def test_span_stack_misuse_detected():
    recorder = TraceRecorder()
    scope = recorder.span("a")
    scope.__enter__()
    recorder._span_stack.append("b")
    with pytest.raises(RuntimeError):
        scope.__exit__(None, None, None)


def test_ring_buffer_drops_oldest_and_counts():
    recorder = TraceRecorder(capacity=3)
    for i in range(5):
        recorder.instant(f"e{i}")
    assert len(recorder) == 3
    assert recorder.dropped == 2
    names = [e["name"] for e in recorder.events()]
    assert names == ["e2", "e3", "e4"]
    assert recorder.header()["dropped"] == 2


def test_capacity_validation():
    with pytest.raises(ValueError):
        TraceRecorder(capacity=0)


def test_message_kind_and_vis_validation():
    recorder = TraceRecorder()
    with pytest.raises(ValueError):
        recorder.message("no_such_kind")
    with pytest.raises(ValueError):
        recorder.instant("x", vis="martian")
    with pytest.raises(ValueError):
        recorder.instant("")
    with pytest.raises(ValueError):
        recorder.ranking(-1, [])


def test_wire_totals_and_summary():
    recorder = TraceRecorder()
    recorder.message("location_submission", su=0, payload_bytes=100, wire_size=113)
    recorder.message("bid_submission", su=0, payload_bytes=200, wire_size=220)
    recorder.message("bid_submission", su=1, payload_bytes=200, wire_size=220)
    with recorder.span("phase_x"):
        pass
    summary = recorder.summary()
    assert summary["payload_bytes_by_kind"] == {
        "location_submission": 100,
        "bid_submission": 400,
    }
    assert summary["wire_size_total"] == 553
    assert summary["messages_by_kind"] == {
        "location_submission": 1,
        "bid_submission": 2,
    }
    assert summary["spans_by_path"] == {"phase_x": 1}


def test_jsonl_round_trip(tmp_path):
    recorder = TraceRecorder()
    recorder.meta("run_meta", args_value=1)
    recorder.round_begin()
    recorder.message("bid_submission", su=3, payload_bytes=10, wire_size=12)
    recorder.ranking(0, [[1, 2], [0]])
    with recorder.span("phase"):
        pass
    path = recorder.write_jsonl(tmp_path / "TRACE_t.jsonl")
    header, events = load_trace(path)
    assert header["schema_version"] == TRACE_SCHEMA_VERSION
    assert header["event_count"] == len(events) == len(recorder)
    assert events[2]["kind"] == "bid_submission"
    assert events[3]["classes"] == [[1, 2], [0]]


def test_write_jsonl_into_directory(tmp_path):
    recorder = TraceRecorder()
    recorder.instant("x")
    path = recorder.write_jsonl(tmp_path)
    assert path.name == "TRACE_trace.jsonl"
    assert path.exists()


def test_validate_trace_flags_violations():
    recorder = TraceRecorder()
    recorder.instant("ok")
    records = [json.loads(line) for line in recorder.jsonl_lines()]
    assert validate_trace(records) == []

    assert validate_trace([]) != []
    # Wrong schema version.
    bad_header = dict(records[0], schema_version=99)
    assert any(
        "schema_version" in e for e in validate_trace([bad_header] + records[1:])
    )
    # Unknown event type, bad seq order, bad vis.
    bad = [
        records[0],
        dict(records[1], type="mystery"),
        dict(records[1], seq=5),
        dict(records[1], seq=5),
        dict(records[1], seq=6, vis="nope"),
    ]
    errors = validate_trace(bad)
    assert any("unknown event type" in e for e in errors)
    assert any("seq must increase" in e for e in errors)
    assert any("vis must be one of" in e for e in errors)


def test_load_trace_rejects_invalid(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("not json at all\n")
    with pytest.raises(ValueError):
        load_trace(path)
    path.write_text('{"type": "instant"}\n')
    with pytest.raises(ValueError):
        load_trace(path)


def test_chrome_export_shapes(tmp_path):
    recorder = TraceRecorder()
    recorder.round_begin()
    with recorder.span("bid_submission"):
        recorder.message("bid_submission", su=1, payload_bytes=50, wire_size=58)
        recorder.message("bid_submission", su=2, payload_bytes=50, wire_size=58)
    recorder.ranking(0, [[2], [1]])
    document = chrome_trace(recorder.events())
    events = document["traceEvents"]
    phases = {e["ph"] for e in events}
    assert "X" in phases and "i" in phases and "C" in phases
    span = next(e for e in events if e["ph"] == "X")
    assert span["name"] == "bid_submission"
    assert span["dur"] >= 0
    counters = [e for e in events if e["ph"] == "C"]
    assert counters[-1]["args"]["bytes"] == 116
    path = recorder.write_chrome(tmp_path / "t.chrome.json")
    assert json.loads(path.read_text())["traceEvents"]


def test_adversary_view_filters_su_and_ttp_events():
    recorder = TraceRecorder()
    recorder.meta("auction_announcement", vis="public", n_users=3)
    recorder.meta("protocol_setup", vis="ttp", rd=4)
    recorder.message("bid_submission", su=0, vis="auctioneer")
    recorder.instant("ttp_window", vis="ttp")
    recorder.instant("user_secret", vis="su")
    visible = adversary_view(recorder.events())
    assert {e.get("name", e.get("kind")) for e in visible} == {
        "auction_announcement",
        "bid_submission",
    }


def test_module_layer_is_noop_when_disabled():
    assert trace.get_active() is None
    trace.message("bid_submission", su=1)
    trace.instant("never")
    trace.meta("never", args={})
    trace.ranking(0, [[1]])
    assert trace.round_begin() is None
    trace.round_end()
    with trace.span("never"):
        pass
    assert trace.get_active() is None


def test_disabled_span_is_the_shared_null_scope():
    assert trace.span("a") is trace.span("b")


def test_recording_installs_and_restores():
    outer = TraceRecorder()
    with trace.recording(outer) as recorder:
        assert recorder is outer
        assert trace.get_active() is outer
        trace.instant("seen")
        with trace.recording() as inner:
            assert trace.get_active() is inner
            trace.instant("seen")
        assert trace.get_active() is outer
    assert trace.get_active() is None
    assert len(outer) == 1
    assert len(inner) == 1


def test_recording_restores_on_exception():
    with pytest.raises(RuntimeError):
        with trace.recording():
            raise RuntimeError("boom")
    assert trace.get_active() is None


def test_collecting_with_trace_installs_both():
    with obs.collecting(trace=True) as registry:
        recorder = trace.get_active()
        assert recorder is not None
        with obs.phase("p"):
            obs.count("ops")
            trace.message("bid_submission", su=0)
    assert trace.get_active() is None
    assert obs.get_active() is None
    assert registry.counters == {"p/ops": 1}
    types = [e["type"] for e in recorder.events()]
    assert types.count("span") == 1 and types.count("message") == 1
    span = next(e for e in recorder.events() if e["type"] == "span")
    assert span["name"] == "p"


def test_collecting_with_existing_recorder():
    mine = TraceRecorder()
    with obs.collecting(trace=mine):
        trace.instant("hello")
    assert len(mine) == 1


def test_phase_with_trace_only():
    with obs.tracing() as recorder:
        assert obs.get_active() is None
        with obs.phase("solo"):
            pass
    spans = [e for e in recorder.events() if e["type"] == "span"]
    assert [s["name"] for s in spans] == ["solo"]
