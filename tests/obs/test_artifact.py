"""BENCH_*.json artifacts: build, write, load, validate."""

import json

import pytest

from repro.obs.artifact import (
    ARTIFACT_PREFIX,
    SCHEMA_VERSION,
    build_artifact,
    load_artifact,
    validate_artifact,
    write_artifact,
)
from repro.obs.registry import MetricsRegistry


def _registry():
    registry = MetricsRegistry()
    with registry.phase("p"):
        registry.count("ops", 3)
        registry.record_seconds("work", 0.25, 5)
    return registry


def test_build_artifact_shape():
    document = build_artifact("unit", _registry(), config={"n": 4})
    assert document["schema_version"] == SCHEMA_VERSION
    assert document["name"] == "unit"
    assert document["config"] == {"n": 4}
    assert document["metrics"]["counters"] == {"p/ops": 3}
    assert document["metrics"]["totals"] == {"ops": 3}
    assert document["metrics"]["timers"]["p/work"] == {
        "seconds": 0.25,
        "count": 5,
        "min": 0.05,
        "max": 0.05,
    }
    assert validate_artifact(document) == []


def test_build_artifact_rejects_empty_name():
    with pytest.raises(ValueError):
        build_artifact("", _registry())


def test_write_and_load_roundtrip(tmp_path):
    target = tmp_path / "custom.json"
    written = write_artifact(target, "unit", _registry(), config={"n": 4})
    assert written == target
    document = load_artifact(written)
    assert document["name"] == "unit"
    assert document["metrics"]["counters"] == {"p/ops": 3}


def test_write_into_directory_uses_canonical_name(tmp_path):
    written = write_artifact(tmp_path, "micro", _registry())
    assert written.name == f"{ARTIFACT_PREFIX}micro.json"
    assert written.parent == tmp_path
    assert load_artifact(written)["name"] == "micro"


def test_load_rejects_invalid(tmp_path):
    bad = tmp_path / "BENCH_bad.json"
    bad.write_text(json.dumps({"schema_version": 99}))
    with pytest.raises(ValueError, match="schema_version"):
        load_artifact(bad)


def test_validate_reports_every_violation():
    document = build_artifact("unit", _registry())
    document["schema_version"] = 2
    document["git_sha"] = ""
    document["config"] = []
    document["metrics"]["counters"]["p/ops"] = "three"
    document["metrics"]["timers"]["p/work"] = {"seconds": -1, "count": 0}
    errors = validate_artifact(document)
    assert len(errors) == 5
    assert any("schema_version" in e for e in errors)
    assert any("git_sha" in e for e in errors)
    assert any("config" in e for e in errors)
    assert any("p/ops" in e for e in errors)
    assert any("p/work" in e for e in errors)


def test_validate_non_object():
    assert validate_artifact([1, 2]) == ["artifact must be a JSON object"]
