"""Artifact regression detection (``repro metrics diff``)."""

import pytest

from repro.obs.artifact import build_artifact
from repro.obs.diff import MIN_TIMER_SECONDS, diff_artifacts
from repro.obs.registry import MetricsRegistry


def _artifact(name, *, hmac=1000, mean_ms=10.0, extra=None):
    registry = MetricsRegistry()
    registry.count("crypto.hmac", hmac)
    registry.record_seconds("mask", mean_ms / 1e3 * 50, 50)
    if extra:
        registry.count(extra)
    return build_artifact(name, registry)


def test_injected_timer_regression_detected_at_default_threshold():
    baseline = _artifact("base", mean_ms=10.0)
    current = _artifact("cur", mean_ms=13.0)  # +30% mean
    report = diff_artifacts(baseline, current)
    assert report.has_regressions
    # One batch add makes min == mean, so both timer facets regress +30%.
    keys = [d.key for d in report.regressions]
    assert keys == ["mask", "mask"]
    assert [d.kind for d in report.regressions] == ["timer-mean", "timer-min"]
    assert report.regressions[0].change_pct == pytest.approx(30.0)


def test_same_regression_passes_a_looser_threshold():
    baseline = _artifact("base", mean_ms=10.0)
    current = _artifact("cur", mean_ms=13.0)
    report = diff_artifacts(baseline, current, threshold=0.5)
    assert not report.has_regressions


def test_counter_regression_detected():
    report = diff_artifacts(
        _artifact("base", hmac=1000), _artifact("cur", hmac=1300)
    )
    assert [d.key for d in report.regressions] == ["crypto.hmac"]
    assert report.regressions[0].kind == "counter"


def test_improvements_are_not_regressions():
    report = diff_artifacts(
        _artifact("base", hmac=1000, mean_ms=10.0),
        _artifact("cur", hmac=500, mean_ms=5.0),
    )
    assert not report.has_regressions
    assert {d.key for d in report.improvements} == {"crypto.hmac", "mask"}


def test_added_and_removed_keys_never_regress():
    report = diff_artifacts(
        _artifact("base", extra="only.in.base"),
        _artifact("cur", extra="only.in.current"),
    )
    assert not report.has_regressions
    assert report.added == ["counter:only.in.current"]
    assert report.removed == ["counter:only.in.base"]


def test_one_sided_keys_are_all_named_in_the_output():
    """No truncation: every added/removed key appears verbatim."""
    registry_base = MetricsRegistry()
    registry_cur = MetricsRegistry()
    registry_base.count("shared", 1)
    registry_cur.count("shared", 1)
    for i in range(12):
        registry_cur.count(f"new.key{i:02d}")
    report = diff_artifacts(
        build_artifact("base", registry_base), build_artifact("cur", registry_cur)
    )
    text = report.format()
    for i in range(12):
        assert f"new.key{i:02d}" in text
    assert "only in current (12)" in text


def test_key_that_changed_kind_is_named_not_silently_skipped():
    """A counter re-recorded as a gauge is one-sided *per kind*: it must be
    named in both lists, not vanish from the union comparison."""
    registry_base = MetricsRegistry()
    registry_base.count("occupancy", 3)
    registry_cur = MetricsRegistry()
    registry_cur.set_gauge("occupancy", 3.0)
    report = diff_artifacts(
        build_artifact("base", registry_base), build_artifact("cur", registry_cur)
    )
    assert not report.has_regressions
    assert "gauge:occupancy" in report.added
    assert "counter:occupancy" in report.removed
    text = report.format()
    assert "gauge:occupancy" in text and "counter:occupancy" in text


def test_sub_noise_floor_timers_are_skipped():
    fast = MIN_TIMER_SECONDS / 10
    base = MetricsRegistry()
    base.record_seconds("tiny", fast)
    cur = MetricsRegistry()
    cur.record_seconds("tiny", fast * 100)  # huge relative, absolute noise
    report = diff_artifacts(
        build_artifact("base", base), build_artifact("cur", cur)
    )
    assert report.deltas == []
    assert not report.has_regressions


def test_threshold_must_be_positive():
    with pytest.raises(ValueError):
        diff_artifacts(_artifact("a"), _artifact("b"), threshold=0)


def test_format_mentions_regressions():
    report = diff_artifacts(
        _artifact("base", hmac=100), _artifact("cur", hmac=200)
    )
    text = report.format()
    assert "REGRESSIONS" in text
    assert "crypto.hmac" in text
    assert "+100.0%" in text


def test_summary_line_names_regressed_keys():
    report = diff_artifacts(
        _artifact("base", hmac=100, mean_ms=10.0),
        _artifact("cur", hmac=300, mean_ms=30.0),
    )
    summary = next(
        line for line in report.format().splitlines() if "regressed" in line
    )
    assert "crypto.hmac" in summary and "mask" in summary


def test_summary_line_truncates_long_regression_lists():
    registry_base = MetricsRegistry()
    registry_cur = MetricsRegistry()
    for i in range(9):
        registry_base.count(f"key{i}", 10)
        registry_cur.count(f"key{i}", 100)
    report = diff_artifacts(
        build_artifact("base", registry_base), build_artifact("cur", registry_cur)
    )
    summary = next(
        line for line in report.format().splitlines() if "regressed" in line
    )
    assert "key0" in summary and "key5" in summary
    assert "key7" not in summary
    assert "..." in summary
