"""Unit tests for the asyncio OpenMetrics scrape endpoint."""

import asyncio

import pytest

from repro import obs
from repro.obs.live import MetricsHttpServer
from repro.obs.openmetrics import CONTENT_TYPE, validate_openmetrics
from repro.obs.registry import MetricsRegistry


async def _request(port, raw):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(raw)
    await writer.drain()
    data = await reader.read(-1)
    writer.close()
    head, _, body = data.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = lines[0].split(" ", 1)[1]
    headers = dict(
        line.split(": ", 1) for line in lines[1:] if ": " in line
    )
    return status, headers, body


def _get(server, path, method="GET"):
    raw = f"{method} {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode()
    return _request(server.port, raw)


async def _with_server(source, checks):
    server = MetricsHttpServer(source)
    await server.start()
    try:
        return await checks(server)
    finally:
        await server.stop()


def test_metrics_scrape_serves_the_source():
    registry = MetricsRegistry()
    registry.count("crypto.hmac", 7)

    async def checks(server):
        assert server.port != 0  # ephemeral port was resolved
        status, headers, body = await _get(server, "/metrics")
        assert status == "200 OK"
        assert headers["Content-Type"] == CONTENT_TYPE
        assert headers["Connection"] == "close"
        text = body.decode()
        assert validate_openmetrics(text) == []
        assert "repro_crypto_hmac_total 7" in text
        assert server.scrapes == 1

    asyncio.run(_with_server(lambda: registry, checks))


def test_source_reflects_scrape_time_state():
    registry = MetricsRegistry()

    async def checks(server):
        _, _, before = await _get(server, "/metrics")
        registry.count("crypto.hmac", 1)
        _, _, after = await _get(server, "/metrics")
        assert b"repro_crypto_hmac_total" not in before
        assert b"repro_crypto_hmac_total 1" in after
        assert server.scrapes == 2

    asyncio.run(_with_server(lambda: registry, checks))


def test_no_active_registry_serves_empty_valid_exposition():
    async def checks(server):
        status, _, body = await _get(server, "/metrics")
        assert status == "200 OK"
        text = body.decode()
        assert validate_openmetrics(text) == []
        assert text == "# EOF\n"

    assert obs.get_active() is None
    asyncio.run(_with_server(None, checks))


def test_default_source_is_the_active_registry():
    registry = MetricsRegistry()
    registry.count("crypto.hmac", 3)

    async def checks(server):
        _, _, body = await _get(server, "/metrics")
        assert b"repro_crypto_hmac_total 3" in body

    with obs.collecting(registry):
        asyncio.run(_with_server(None, checks))


def test_healthz_404_405_and_head():
    async def checks(server):
        status, _, body = await _get(server, "/healthz")
        assert status == "200 OK" and body == b"ok\n"
        status, _, _ = await _get(server, "/nope")
        assert status == "404 Not Found"
        status, _, _ = await _get(server, "/metrics", method="POST")
        assert status == "405 Method Not Allowed"
        status, headers, body = await _get(server, "/metrics", method="HEAD")
        assert status == "200 OK" and body == b""
        assert headers["Content-Length"] == "0"
        # /healthz and errors are not scrapes; HEAD /metrics is.
        assert server.scrapes == 1

    asyncio.run(_with_server(None, checks))


def test_malformed_request_line():
    async def checks(server):
        status, _, _ = await _request(server.port, b"garbage\r\n\r\n")
        assert status == "400 Bad Request"

    asyncio.run(_with_server(None, checks))


def test_lifecycle_guards():
    async def run():
        server = MetricsHttpServer(None)
        await server.start()
        with pytest.raises(RuntimeError):
            await server.start()
        await server.stop()
        await server.stop()  # idempotent

    asyncio.run(run())
