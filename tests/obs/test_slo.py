"""Unit tests for SLO rule files and their evaluation against both sources."""

import json

import pytest

from repro.obs.openmetrics import render_openmetrics
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import (
    MetricsView,
    evaluate_slos,
    load_slo_file,
    validate_slo_document,
)


def _registry():
    registry = MetricsRegistry()
    with registry.phase("round"):
        registry.count("net.loadgen.rounds", 6)
        for value in (0.01, 0.02, 0.05, 0.05):
            registry.observe("net.loadgen.latency", value)
    registry.count("net.loadgen.rounds", 4)
    registry.record_seconds("net.loadgen.elapsed", 2.0)
    registry.set_gauge("crypto.mask_cache.size", 17)
    return registry


def _views():
    registry = _registry()
    return (
        MetricsView.from_snapshot(registry.snapshot()),
        MetricsView.from_openmetrics(render_openmetrics(registry)),
    )


def _rules(rules):
    return {"schema_version": 1, "rules": rules}


class TestMetricsView:
    """The artifact and scrape constructors expose identical lookups."""

    @pytest.mark.parametrize("view_index", [0, 1], ids=["snapshot", "scraped"])
    def test_lookups(self, view_index):
        view = _views()[view_index]
        assert view.counter("net.loadgen.rounds") == 10.0  # phase-folded
        assert view.timer("net.loadgen.elapsed", "sum") == pytest.approx(2.0)
        assert view.timer("net.loadgen.elapsed", "count") == 1.0
        assert view.timer("net.loadgen.elapsed", "mean") == pytest.approx(2.0)
        assert view.histogram("net.loadgen.latency", "count") == 4.0
        assert view.histogram("net.loadgen.latency", "sum") == pytest.approx(0.13)
        assert view.gauge("crypto.mask_cache.size") == 17.0
        assert view.counter("never.recorded") is None
        assert view.histogram("never.recorded", "p99") is None

    def test_percentiles_agree_across_sources(self):
        snap, scraped = _views()
        for stat in ("p50", "p95", "p99", "p999"):
            assert snap.histogram("net.loadgen.latency", stat) == pytest.approx(
                scraped.histogram("net.loadgen.latency", stat)
            )


class TestEvaluate:
    def test_pass_fail_and_exit_semantics(self):
        view, _ = _views()
        document = _rules([
            {"name": "rounds floor",
             "value": {"kind": "counter", "key": "net.loadgen.rounds"},
             "min": 5},
            {"name": "latency ceiling",
             "value": {"kind": "histogram", "key": "net.loadgen.latency",
                       "stat": "p99"},
             "max": 1e-9},
        ])
        report = evaluate_slos(document, view)
        assert [r.status for r in report.results] == ["pass", "fail"]
        assert report.failed
        assert "1 breached" in report.format()

    def test_warn_only_downgrades(self):
        view, _ = _views()
        document = _rules([
            {"name": "soft", "warn_only": True,
             "value": {"kind": "counter", "key": "net.loadgen.rounds"},
             "max": 1},
        ])
        report = evaluate_slos(document, view)
        assert report.results[0].status == "warn"
        assert not report.failed
        hard = evaluate_slos(
            _rules([{"name": "h",
                     "value": {"kind": "counter", "key": "net.loadgen.rounds"},
                     "max": 1}]),
            view, warn_only=True,
        )
        assert hard.results[0].status == "warn"

    def test_missing_metric_is_a_breach(self):
        view, _ = _views()
        document = _rules([
            {"name": "gone",
             "value": {"kind": "gauge", "key": "never.recorded"}, "min": 0},
        ])
        report = evaluate_slos(document, view)
        assert report.results[0].status == "missing-fail"
        assert report.failed
        assert "missing" in report.results[0].describe()

    def test_ratio_sum_and_const(self):
        view, _ = _views()
        document = _rules([
            {"name": "rounds per second",
             "value": {"kind": "ratio",
                       "num": {"kind": "counter", "key": "net.loadgen.rounds"},
                       "den": {"kind": "timer", "key": "net.loadgen.elapsed",
                               "stat": "sum"}},
             "min": 4.9, "max": 5.1},
            {"name": "sum and const",
             "value": {"kind": "sum", "terms": [
                 {"kind": "counter", "key": "net.loadgen.rounds"},
                 {"kind": "const", "value": 5}]},
             "min": 15, "max": 15},
        ])
        report = evaluate_slos(document, view)
        assert [r.status for r in report.results] == ["pass", "pass"]
        assert report.results[0].value == pytest.approx(5.0)

    def test_zero_denominator_ratio_is_missing(self):
        view, _ = _views()
        document = _rules([
            {"name": "divide by zero",
             "value": {"kind": "ratio",
                       "num": {"kind": "counter", "key": "net.loadgen.rounds"},
                       "den": {"kind": "const", "value": 0}},
             "min": 0},
        ])
        assert evaluate_slos(document, view).results[0].status == "missing-fail"


class TestDocumentValidation:
    def test_valid_document(self):
        document = _rules([
            {"name": "ok",
             "value": {"kind": "counter", "key": "crypto.hmac"}, "max": 10},
        ])
        assert validate_slo_document(document) == []

    @pytest.mark.parametrize(
        "document, needle",
        [
            ([], "JSON object"),
            ({"schema_version": 2, "rules": [{}]}, "schema_version"),
            ({"schema_version": 1, "rules": []}, "non-empty list"),
            (_rules([{"value": {"kind": "counter", "key": "x"}, "max": 1}]),
             "name"),
            (_rules([{"name": "n",
                      "value": {"kind": "counter", "key": "x"}}]),
             "'max' and/or 'min'"),
            (_rules([{"name": "n", "value": {"kind": "bogus"}, "max": 1}]),
             "kind"),
            (_rules([{"name": "n",
                      "value": {"kind": "timer", "key": "x", "stat": "p99"},
                      "max": 1}]),
             "timer stat"),
            (_rules([{"name": "n", "value": {"kind": "const", "value": True},
                      "max": 1}]),
             "numeric"),
            (_rules([{"name": "n", "value": {"kind": "counter", "key": "x"},
                      "max": "big"}]),
             "number"),
        ],
    )
    def test_invalid_documents(self, document, needle):
        errors = validate_slo_document(document)
        assert any(needle in e for e in errors), errors

    def test_load_slo_file_rejects_invalid(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": 1, "rules": []}))
        with pytest.raises(ValueError):
            load_slo_file(path)

    def test_load_slo_file_roundtrip(self, tmp_path):
        document = _rules([
            {"name": "ok",
             "value": {"kind": "counter", "key": "crypto.hmac"}, "max": 10},
        ])
        path = tmp_path / "good.json"
        path.write_text(json.dumps(document))
        assert load_slo_file(path) == document
