"""Unit tests for the OpenMetrics exposition, parser and validator."""

import pytest

from repro.obs.hist import Histogram
from repro.obs.openmetrics import (
    CONTENT_TYPE,
    METRIC_PREFIX,
    parse_openmetrics,
    render_openmetrics,
    validate_openmetrics,
)
from repro.obs.registry import MetricsRegistry


def _populated_registry():
    registry = MetricsRegistry()
    with registry.phase("setup"):
        registry.count("crypto.hmac", 7)
        registry.record_seconds("kernel.time", 0.25, count=2)
        registry.observe("net.round.latency", 0.04)
        registry.observe("net.round.latency", 0.08)
    registry.count("crypto.hmac", 3)
    registry.set_gauge("crypto.mask_cache.size", 12)
    return registry


class TestRender:
    def test_exposition_is_valid_and_eof_terminated(self):
        text = render_openmetrics(_populated_registry())
        assert validate_openmetrics(text) == []
        assert text.endswith("# EOF\n")

    def test_registry_and_snapshot_render_identically(self):
        registry = _populated_registry()
        assert render_openmetrics(registry) == render_openmetrics(
            registry.snapshot()
        )

    def test_names_are_prefixed_and_sanitized(self):
        text = render_openmetrics(_populated_registry())
        assert f"{METRIC_PREFIX}crypto_hmac_total" in text
        assert "crypto.hmac" not in text

    def test_phase_scope_becomes_a_label(self):
        families = parse_openmetrics(render_openmetrics(_populated_registry()))
        samples = families["repro_crypto_hmac"].samples
        by_phase = {labels.get("phase"): value for _, labels, value in samples}
        assert by_phase == {"setup": 7.0, None: 3.0}

    def test_phase_wall_timers_share_one_family(self):
        families = parse_openmetrics(render_openmetrics(_populated_registry()))
        phase = families["repro_phase_seconds"]
        assert phase.type == "summary"
        assert {labels["phase"] for _, labels, _ in phase.samples} == {"setup"}

    def test_histogram_family_shape(self):
        families = parse_openmetrics(render_openmetrics(_populated_registry()))
        family = families["repro_net_round_latency_seconds"]
        assert family.type == "histogram"
        buckets = [
            (labels["le"], value)
            for name, labels, value in family.samples
            if name.endswith("_bucket")
        ]
        assert buckets[-1] == ("+Inf", 2.0)
        count = [v for n, _, v in family.samples if n.endswith("_count")]
        assert count == [2.0]

    def test_rejects_non_snapshot_sources(self):
        with pytest.raises(TypeError):
            render_openmetrics(42)

    def test_content_type_is_openmetrics(self):
        assert CONTENT_TYPE.startswith("application/openmetrics-text")


class TestParse:
    def test_empty_exposition(self):
        assert parse_openmetrics("# EOF\n") == {}

    def test_undeclared_sample_gets_unknown_family(self):
        families = parse_openmetrics("mystery_metric 4\n# EOF\n")
        assert families["mystery_metric"].type == "unknown"

    def test_label_unescaping(self):
        text = (
            '# TYPE repro_x counter\n'
            'repro_x_total{phase="a\\"b\\\\c"} 1\n'
            "# EOF\n"
        )
        (_, labels, value), = parse_openmetrics(text)["repro_x"].samples
        assert labels == {"phase": 'a"b\\c'}
        assert value == 1.0

    def test_garbage_line_raises(self):
        with pytest.raises(ValueError):
            parse_openmetrics("!!! not a sample\n# EOF\n")


class TestValidate:
    def test_missing_eof(self):
        errors = validate_openmetrics("# TYPE repro_x counter\nrepro_x_total 1\n")
        assert any("# EOF" in e for e in errors)

    def test_sample_without_type_declaration(self):
        errors = validate_openmetrics("repro_x_total 1\n# EOF\n")
        assert any("no preceding TYPE" in e for e in errors)

    def test_negative_counter_value(self):
        text = "# TYPE repro_x counter\nrepro_x_total -3\n# EOF\n"
        assert any(">= 0" in e for e in validate_openmetrics(text))

    def test_non_cumulative_histogram_buckets(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            'repro_h_bucket{le="2"} 3\n'
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_count 5\n"
            "# EOF\n"
        )
        assert any("cumulative" in e for e in validate_openmetrics(text))

    def test_histogram_missing_inf_bucket(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            "repro_h_count 5\n"
            "# EOF\n"
        )
        assert any("+Inf" in e for e in validate_openmetrics(text))

    def test_inf_bucket_count_mismatch(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="+Inf"} 4\n'
            "repro_h_count 5\n"
            "# EOF\n"
        )
        assert any("_count" in e for e in validate_openmetrics(text))

    def test_duplicate_type_declaration(self):
        text = (
            "# TYPE repro_x counter\n"
            "# TYPE repro_x counter\n"
            "# EOF\n"
        )
        assert any("duplicate" in e for e in validate_openmetrics(text))
