"""Ground-truth interference auditing."""

import pytest

from repro.auction.interference import count_violations
from repro.auction.outcome import AuctionOutcome, WinRecord


def _outcome(wins, n_users=10):
    return AuctionOutcome(
        n_users=n_users,
        wins=tuple(
            WinRecord(bidder=b, channel=c, charge=charge, valid=charge > 0)
            for b, c, charge in wins
        ),
    )


def test_no_cochannel_pairs_no_checks():
    outcome = _outcome([(0, 0, 5), (1, 1, 3)])
    report = count_violations(outcome, [(0, 0), (1, 1)] + [(50, 50)] * 8, 6)
    assert report.n_pairs_checked == 0
    assert report.n_violations == 0
    assert report.violation_rate == 0.0


def test_violation_detected():
    outcome = _outcome([(0, 3, 5), (1, 3, 4)])
    cells = [(10, 10), (12, 12)] + [(90, 90)] * 8
    report = count_violations(outcome, cells, 6)
    assert report.n_pairs_checked == 1
    assert report.violations == ((3, 0, 1),)
    assert report.violation_rate == 1.0


def test_distant_cochannel_pair_is_clean():
    outcome = _outcome([(0, 3, 5), (1, 3, 4)])
    cells = [(10, 10), (50, 50)] + [(90, 90)] * 8
    report = count_violations(outcome, cells, 6)
    assert report.n_pairs_checked == 1
    assert report.n_violations == 0


def test_invalid_wins_are_not_audited():
    outcome = _outcome([(0, 3, 5), (1, 3, 0)])  # bidder 1's win invalid
    cells = [(10, 10), (11, 11)] + [(90, 90)] * 8
    report = count_violations(outcome, cells, 6)
    assert report.n_pairs_checked == 0


def test_unknown_bidder_rejected():
    outcome = _outcome([(5, 0, 5)])
    with pytest.raises(ValueError):
        count_violations(outcome, [(0, 0)] * 3, 6)


def test_exact_graph_allocations_are_always_clean(small_users):
    """Plain and LPPA auctions build exact graphs: zero violations ever."""
    import random

    from repro.auction.plain_auction import run_plain_auction
    from repro.lppa.fastsim import run_fast_lppa
    from repro.lppa.policies import UniformReplacePolicy

    cells = [u.cell for u in small_users]
    plain = run_plain_auction(small_users, random.Random(0), two_lambda=8)
    assert count_violations(plain, cells, 8).n_violations == 0
    private = run_fast_lppa(
        small_users,
        two_lambda=8,
        bmax=127,
        policy=UniformReplacePolicy(0.7),
        rng=random.Random(1),
    )
    assert count_violations(private.outcome, cells, 8).n_violations == 0
