"""Greedy allocation — Algorithm 3 invariants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.auction.allocation import greedy_allocate
from repro.auction.conflict import ConflictGraph, build_conflict_graph
from repro.auction.table import PlainBidTable


def _no_conflicts(n):
    return ConflictGraph(n_users=n, edges=frozenset())


def test_single_bidder_single_channel():
    table = PlainBidTable([[5]])
    winners = greedy_allocate(table, _no_conflicts(1), random.Random(0))
    assert [(w.bidder, w.channel) for w in winners] == [(0, 0)]


def test_each_bidder_wins_at_most_once():
    rows = [[5, 3, 9], [1, 8, 2], [7, 7, 7]]
    winners = greedy_allocate(
        PlainBidTable(rows), _no_conflicts(3), random.Random(1)
    )
    bidders = [w.bidder for w in winners]
    assert len(bidders) == len(set(bidders))


def test_spectrum_reuse_without_conflicts():
    """Non-conflicting bidders can all win the same single channel."""
    rows = [[5], [4], [3]]
    winners = greedy_allocate(
        PlainBidTable(rows), _no_conflicts(3), random.Random(2)
    )
    assert sorted(w.bidder for w in winners) == [0, 1, 2]
    assert {w.channel for w in winners} == {0}


def test_conflicting_bidders_never_share_a_channel():
    rows = [[5], [4], [3]]
    conflict = build_conflict_graph([(0, 0), (1, 1), (50, 50)], 4)
    winners = greedy_allocate(PlainBidTable(rows), conflict, random.Random(3))
    per_channel = {}
    for w in winners:
        per_channel.setdefault(w.channel, []).append(w.bidder)
    for bidders in per_channel.values():
        for i in range(len(bidders)):
            for j in range(i + 1, len(bidders)):
                assert not conflict.are_conflicting(bidders[i], bidders[j])
    # Bidder 2 is far away and must still win channel 0.
    assert any(w.bidder == 2 for w in winners)


def test_highest_bidder_wins_single_channel():
    rows = [[5], [9], [3]]
    winners = greedy_allocate(
        PlainBidTable(rows), _no_conflicts(3), random.Random(4)
    )
    assert winners[0].bidder == 1  # the max bid is found first


def test_table_is_fully_consumed():
    rows = [[5, 2], [4, 8]]
    table = PlainBidTable(rows)
    greedy_allocate(table, _no_conflicts(2), random.Random(5))
    assert not table.has_entries()


def test_blocked_neighbor_can_win_elsewhere():
    """Deleting T[o, r] only blocks the conflicting channel, not the user."""
    rows = [[9, 0], [5, 7]]
    conflict = build_conflict_graph([(0, 0), (1, 1)], 4)
    winners = greedy_allocate(PlainBidTable(rows), conflict, random.Random(6))
    by_bidder = {w.bidder: w.channel for w in winners}
    assert by_bidder[0] == 0
    assert by_bidder[1] == 1


@settings(max_examples=40, deadline=None)
@given(
    rows=st.lists(
        st.lists(st.integers(min_value=0, max_value=50), min_size=3, max_size=3),
        min_size=1,
        max_size=8,
    ),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_random_tables_satisfy_invariants(rows, seed):
    if not any(b > 0 for row in rows for b in row):
        return  # empty table: nothing to allocate
    n = len(rows)
    cells = [(i * 3 % 25, i * 7 % 25) for i in range(n)]
    conflict = build_conflict_graph(cells, 5)
    table = PlainBidTable(rows)
    winners = greedy_allocate(table, conflict, random.Random(seed))
    assert not table.has_entries()
    bidders = [w.bidder for w in winners]
    assert len(bidders) == len(set(bidders))
    for w in winners:
        assert rows[w.bidder][w.channel] > 0
    per_channel = {}
    for w in winners:
        per_channel.setdefault(w.channel, []).append(w.bidder)
    for channel_winners in per_channel.values():
        for i in range(len(channel_winners)):
            for j in range(i + 1, len(channel_winners)):
                assert not conflict.are_conflicting(
                    channel_winners[i], channel_winners[j]
                )
