"""Conflict predicate and graph construction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.auction.conflict import ConflictGraph, build_conflict_graph, cells_conflict


def test_predicate_is_strict():
    """|dx| < 2λ on both axes — boundary distance does NOT conflict."""
    assert cells_conflict((0, 0), (3, 3), 4)
    assert not cells_conflict((0, 0), (4, 0), 4)
    assert not cells_conflict((0, 0), (0, 4), 4)
    assert cells_conflict((5, 5), (5, 5), 1)


def test_predicate_symmetry():
    assert cells_conflict((2, 9), (7, 5), 6) == cells_conflict((7, 5), (2, 9), 6)


def test_predicate_requires_both_axes():
    assert not cells_conflict((0, 0), (1, 10), 4)  # y too far
    assert not cells_conflict((0, 0), (10, 1), 4)  # x too far


def test_predicate_validates_two_lambda():
    with pytest.raises(ValueError):
        cells_conflict((0, 0), (0, 0), 0)


def test_graph_construction():
    cells = [(0, 0), (2, 2), (50, 50), (51, 51)]
    graph = build_conflict_graph(cells, 4)
    assert graph.are_conflicting(0, 1)
    assert graph.are_conflicting(2, 3)
    assert not graph.are_conflicting(0, 2)
    assert graph.neighbors(0) == {1}
    assert graph.neighbors(2) == {3}
    assert graph.n_edges == 2


def test_self_is_never_a_conflict():
    graph = build_conflict_graph([(0, 0), (0, 0)], 4)
    assert not graph.are_conflicting(0, 0)
    assert graph.are_conflicting(0, 1)  # co-located users do conflict


def test_adjacency_matches_neighbors():
    cells = [(0, 0), (1, 1), (2, 2), (90, 90)]
    graph = build_conflict_graph(cells, 3)
    adjacency = graph.adjacency()
    for user in range(4):
        assert adjacency[user] == graph.neighbors(user)


def test_graph_validation():
    with pytest.raises(ValueError):
        ConflictGraph(n_users=2, edges=frozenset({(1, 0)}))  # not u < v
    with pytest.raises(ValueError):
        ConflictGraph(n_users=2, edges=frozenset({(0, 2)}))  # unknown user
    with pytest.raises(ValueError):
        ConflictGraph(n_users=1, edges=frozenset()).neighbors(1)


@settings(max_examples=50, deadline=None)
@given(
    cells=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=30),
            st.integers(min_value=0, max_value=30),
        ),
        min_size=2,
        max_size=12,
    ),
    two_lambda=st.integers(min_value=1, max_value=10),
)
def test_graph_equals_pairwise_predicate(cells, two_lambda):
    graph = build_conflict_graph(cells, two_lambda)
    for i in range(len(cells)):
        for j in range(i + 1, len(cells)):
            assert graph.are_conflicting(i, j) == cells_conflict(
                cells[i], cells[j], two_lambda
            )
