"""Second-price charging (the truthfulness extension)."""

import random

import pytest

from repro.auction.conflict import ConflictGraph, build_conflict_graph
from repro.auction.pricing import (
    PricedAssignment,
    greedy_allocate_priced,
    second_price_charge,
)
from repro.auction.table import PlainBidTable


def _no_conflicts(n):
    return ConflictGraph(n_users=n, edges=frozenset())


def test_plain_table_ranking():
    table = PlainBidTable([[3, 7], [9, 7], [0, 1]])
    assert table.ranking(0) == [[1], [0]]
    assert table.ranking(1) == [[0, 1], [2]]


def test_losers_recorded_at_sale_time():
    table = PlainBidTable([[9], [5], [3]])
    sales = greedy_allocate_priced(table, _no_conflicts(3), random.Random(0))
    first = sales[0]
    assert first.bidder == 0
    assert first.losers_desc == (1, 2)
    # Second sale of the channel: only bidder 2 remains as loser for 1.
    second = sales[1]
    assert second.bidder == 1
    assert second.losers_desc == (2,)


def test_second_price_charge_is_best_loser():
    sale = PricedAssignment(bidder=0, channel=0, losers_desc=(1, 2))
    bids = {(0, 0): 9, (1, 0): 5, (2, 0): 3}
    assert second_price_charge(sale, lambda b, c: bids[(b, c)]) == 5


def test_second_price_skips_zero_losers():
    """Disguised-zero runners-up cannot deflate the charge to zero."""
    sale = PricedAssignment(bidder=0, channel=0, losers_desc=(1, 2))
    bids = {(0, 0): 9, (1, 0): 0, (2, 0): 3}
    assert second_price_charge(sale, lambda b, c: bids[(b, c)]) == 3


def test_second_price_fallback_is_own_bid():
    sale = PricedAssignment(bidder=0, channel=0, losers_desc=())
    assert second_price_charge(sale, lambda b, c: 9) == 9


def test_plain_auction_second_price_never_exceeds_first(small_users):
    from repro.auction.plain_auction import run_plain_auction

    first = run_plain_auction(small_users, random.Random(5), two_lambda=6)
    second = run_plain_auction(
        small_users, random.Random(5), two_lambda=6, pricing="second"
    )
    assert second.sum_of_winning_bids() <= first.sum_of_winning_bids()
    # Same allocation (same RNG, same algorithm), only charges differ.
    assert [(w.bidder, w.channel) for w in second.wins] == [
        (w.bidder, w.channel) for w in first.wins
    ]
    for win in second.wins:
        assert win.charge <= small_users[win.bidder].bids[win.channel]


def test_truthful_incentive_under_second_price():
    """A lone top bidder's charge does not depend on its own bid level —
    the property that makes shading pointless."""
    for own_bid in (8, 12, 20):
        table = PlainBidTable([[own_bid], [5], [3]])
        sales = greedy_allocate_priced(table, _no_conflicts(3), random.Random(1))
        bids = {(0, 0): own_bid, (1, 0): 5, (2, 0): 3}
        charge = second_price_charge(sales[0], lambda b, c: bids[(b, c)])
        assert charge == 5


def test_fastsim_second_price(small_users):
    from repro.lppa.fastsim import run_fast_lppa

    result = run_fast_lppa(
        small_users, two_lambda=6, bmax=127, rng=random.Random(2),
        pricing="second",
    )
    for win in result.outcome.valid_wins:
        assert win.charge <= small_users[win.bidder].bids[win.channel]


def test_fastsim_rejects_bad_pricing(small_users):
    from repro.lppa.fastsim import run_fast_lppa

    with pytest.raises(ValueError):
        run_fast_lppa(small_users, two_lambda=6, bmax=127, pricing="third")
    with pytest.raises(ValueError):
        run_fast_lppa(
            small_users, two_lambda=6, bmax=127, pricing="second",
            revalidate=True,
        )


def test_plain_auction_rejects_bad_pricing(small_users):
    from repro.auction.plain_auction import run_plain_auction

    with pytest.raises(ValueError):
        run_plain_auction(
            small_users, random.Random(0), two_lambda=6, pricing="vickrey"
        )
