"""Auction outcome metrics."""

import pytest

from repro.auction.outcome import AuctionOutcome, WinRecord


def _win(bidder, channel, charge, valid=True):
    return WinRecord(bidder=bidder, channel=channel, charge=charge, valid=valid)


def test_metrics_over_mixed_wins():
    outcome = AuctionOutcome(
        n_users=10,
        wins=(
            _win(0, 0, 5),
            _win(1, 0, 4),
            _win(2, 1, 0, valid=False),
            _win(3, 2, 7),
        ),
    )
    assert outcome.sum_of_winning_bids() == 16
    assert outcome.user_satisfaction() == pytest.approx(0.3)
    assert outcome.channels_used() == 2
    assert outcome.reuse_factor() == pytest.approx(3 / 2)


def test_no_wins():
    outcome = AuctionOutcome(n_users=5, wins=())
    assert outcome.sum_of_winning_bids() == 0
    assert outcome.user_satisfaction() == 0.0
    assert outcome.reuse_factor() == 0.0


def test_invalid_wins_carry_no_charge():
    with pytest.raises(ValueError):
        WinRecord(bidder=0, channel=0, charge=3, valid=False)
    with pytest.raises(ValueError):
        WinRecord(bidder=0, channel=0, charge=0, valid=True)
    with pytest.raises(ValueError):
        WinRecord(bidder=0, channel=0, charge=-1, valid=False)


def test_duplicate_winner_rejected():
    with pytest.raises(ValueError):
        AuctionOutcome(n_users=3, wins=(_win(0, 0, 5), _win(0, 1, 2)))


def test_unknown_bidder_rejected():
    with pytest.raises(ValueError):
        AuctionOutcome(n_users=2, wins=(_win(5, 0, 5),))


def test_zero_users_rejected():
    with pytest.raises(ValueError):
        AuctionOutcome(n_users=0, wins=())
