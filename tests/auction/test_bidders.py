"""Secondary users and truthful bid generation."""

import random

import pytest

from repro.auction.bidders import (
    BID_NOISE_FRACTION,
    SecondaryUser,
    generate_users,
)


def test_generation_shape(small_db, small_users):
    assert len(small_users) == 30
    for uid, user in enumerate(small_users):
        assert user.user_id == uid
        assert user.n_channels == small_db.n_channels
        assert small_db.coverage.grid.contains(user.cell)


def test_zero_bid_on_unavailable_channels(small_db, small_users):
    for user in small_users:
        available = small_db.available_channels(user.cell)
        for ch, bid in enumerate(user.bids):
            if ch not in available:
                assert bid == 0


def test_bids_respect_noise_envelope(small_db, small_users):
    """b = q*beta + eta with |eta| <= 20% q beta, rounded to integers."""
    bound = 1.0 + BID_NOISE_FRACTION
    for user in small_users:
        qualities = small_db.coverage.quality_vector(user.cell)
        for ch, bid in enumerate(user.bids):
            ceiling = qualities[ch] * user.beta * bound
            assert bid <= round(ceiling) + 1


def test_available_set_equals_positive_bids(small_users):
    for user in small_users:
        assert user.available_set() == {
            ch for ch, b in enumerate(user.bids) if b > 0
        }


def test_max_bid(small_users):
    for user in small_users:
        assert user.max_bid() == max(user.bids)


def test_generation_is_deterministic(small_db):
    a = generate_users(small_db, 10, random.Random(5))
    b = generate_users(small_db, 10, random.Random(5))
    assert a == b


def test_explicit_cells(small_db):
    cells = [(0, 0), (50, 50), (99, 99)]
    users = generate_users(small_db, 3, random.Random(0), cells=cells)
    assert [u.cell for u in users] == cells


def test_explicit_cells_length_mismatch(small_db):
    with pytest.raises(ValueError):
        generate_users(small_db, 2, random.Random(0), cells=[(0, 0)])


def test_invalid_arguments(small_db):
    with pytest.raises(ValueError):
        generate_users(small_db, 0, random.Random(0))
    with pytest.raises(ValueError):
        generate_users(small_db, 1, random.Random(0), beta_range=(0.0, 10.0))
    with pytest.raises(ValueError):
        generate_users(small_db, 1, random.Random(0), beta_range=(10.0, 5.0))


def test_secondary_user_validation():
    with pytest.raises(ValueError):
        SecondaryUser(user_id=0, cell=(0, 0), beta=0.0, bids=(1,))
    with pytest.raises(ValueError):
        SecondaryUser(user_id=0, cell=(0, 0), beta=1.0, bids=(-1,))
