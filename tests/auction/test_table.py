"""Plaintext bid table."""

import pytest

from repro.auction.table import PlainBidTable


def test_zero_bids_are_not_entries():
    table = PlainBidTable([[0, 5], [0, 0]])
    assert table.channel_bidders(0) == set()
    assert table.channel_bidders(1) == {0}


def test_max_bidders_and_ties():
    table = PlainBidTable([[3, 7], [9, 7], [9, 1]])
    assert table.max_bidders(0) == [1, 2]
    assert table.max_bidders(1) == [0, 1]


def test_max_bidders_on_empty_column_raises():
    table = PlainBidTable([[0, 5]])
    with pytest.raises(ValueError):
        table.max_bidders(0)


def test_bid_of():
    table = PlainBidTable([[3, 0]])
    assert table.bid_of(0, 0) == 3
    with pytest.raises(KeyError):
        table.bid_of(0, 1)


def test_remove_row():
    table = PlainBidTable([[3, 7], [9, 1]])
    table.remove_row(1)
    assert table.channel_bidders(0) == {0}
    assert table.channel_bidders(1) == {0}
    table.remove_row(1)  # idempotent


def test_remove_entry_and_emptiness():
    table = PlainBidTable([[3, 7]])
    table.remove_entry(0, 0)
    assert table.has_entries()
    table.remove_entry(0, 1)
    assert not table.has_entries()
    table.remove_entry(0, 1)  # idempotent on gone rows


def test_channel_bounds():
    table = PlainBidTable([[1]])
    with pytest.raises(IndexError):
        table.channel_bidders(1)
    with pytest.raises(IndexError):
        table.remove_entry(0, -1)


def test_construction_validation():
    with pytest.raises(ValueError):
        PlainBidTable([])
    with pytest.raises(ValueError):
        PlainBidTable([[1, 2], [3]])
    with pytest.raises(ValueError):
        PlainBidTable([[]])
