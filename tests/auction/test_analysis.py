"""Conflict-graph analytics."""

import pytest

from repro.auction.analysis import (
    conflict_stats,
    greedy_coloring,
    is_independent_set,
    to_networkx,
)
from repro.auction.conflict import ConflictGraph, build_conflict_graph


def _triangle_plus_isolate():
    # Users 0, 1, 2 pairwise conflicting; user 3 isolated.
    return ConflictGraph(
        n_users=4, edges=frozenset({(0, 1), (0, 2), (1, 2)})
    )


def test_coloring_is_proper():
    graph = _triangle_plus_isolate()
    colors = greedy_coloring(graph)
    for u, v in graph.edges:
        assert colors[u] != colors[v]
    assert len(set(colors.values())) == 3  # a triangle needs 3 colours


def test_coloring_of_empty_graph_uses_one_color():
    graph = ConflictGraph(n_users=5, edges=frozenset())
    assert set(greedy_coloring(graph).values()) == {0}


def test_coloring_is_proper_on_random_geometry():
    cells = [(i * 7 % 40, i * 13 % 40) for i in range(25)]
    graph = build_conflict_graph(cells, 8)
    colors = greedy_coloring(graph)
    for u, v in graph.edges:
        assert colors[u] != colors[v]


def test_independent_set():
    graph = _triangle_plus_isolate()
    assert is_independent_set(graph, [0, 3])
    assert is_independent_set(graph, [3])
    assert not is_independent_set(graph, [0, 1])
    assert is_independent_set(graph, [0, 0, 3])  # duplicates collapse


def test_stats():
    stats = conflict_stats(_triangle_plus_isolate())
    assert stats.n_users == 4
    assert stats.n_edges == 3
    assert stats.max_degree == 2
    assert stats.mean_degree == pytest.approx(1.5)
    assert stats.density == pytest.approx(0.5)
    assert stats.greedy_colors == 3
    assert stats.as_row()["edges"] == 3


def test_networkx_bridge():
    graph = _triangle_plus_isolate()
    g = to_networkx(graph)
    assert g.number_of_nodes() == 4
    assert g.number_of_edges() == 3
    import networkx as nx

    # Cross-check the colouring bound against networkx's own.
    nx_colors = nx.greedy_color(g, strategy="largest_first")
    assert len(set(nx_colors.values())) <= 3


def test_channel_winners_form_independent_sets(small_users):
    """Tie the analytics back to the auction: every channel's winner set is
    an independent set of the conflict graph."""
    import random

    from repro.auction.plain_auction import run_plain_auction

    conflict = build_conflict_graph([u.cell for u in small_users], 8)
    outcome = run_plain_auction(
        small_users, random.Random(1), two_lambda=8, conflict=conflict
    )
    per_channel = {}
    for win in outcome.wins:
        per_channel.setdefault(win.channel, []).append(win.bidder)
    for winners in per_channel.values():
        assert is_independent_set(conflict, winners)
