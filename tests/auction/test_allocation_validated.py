"""Greedy allocation with the TTP invalid-winner feedback loop."""

import random

import pytest

from repro.auction.allocation import greedy_allocate_validated
from repro.auction.conflict import ConflictGraph, build_conflict_graph
from repro.lppa.fastsim import IntegerMaskedTable


def _no_conflicts(n):
    return ConflictGraph(n_users=n, edges=frozenset())


def test_invalid_max_is_skipped():
    """Bidder 1 holds the max but is invalid: bidder 0 must win instead."""
    table = IntegerMaskedTable([[5], [9]])
    winners, rejected = greedy_allocate_validated(
        table, _no_conflicts(2), random.Random(0), lambda b, c: b == 0
    )
    assert [(w.bidder, w.channel) for w in winners] == [(0, 0)]
    assert rejected == 1


def test_all_invalid_column_drains_without_winner():
    table = IntegerMaskedTable([[5], [9]])
    winners, rejected = greedy_allocate_validated(
        table, _no_conflicts(2), random.Random(0), lambda b, c: False
    )
    assert winners == []
    assert rejected == 2


def test_invalid_bidder_keeps_other_channels():
    """Rejection deletes the entry, not the row."""
    table = IntegerMaskedTable([[9, 1], [5, 8]])
    # Bidder 0 invalid on channel 0 only.
    winners, rejected = greedy_allocate_validated(
        table,
        _no_conflicts(2),
        random.Random(1),
        lambda b, c: not (b == 0 and c == 0),
    )
    by_bidder = {w.bidder: w.channel for w in winners}
    assert by_bidder[0] == 1 or by_bidder[0] == 1  # bidder 0 wins channel 1
    assert 1 in by_bidder
    assert rejected == 1


def test_all_valid_equals_plain_algorithm():
    from repro.auction.allocation import greedy_allocate

    rows = [[5, 3], [9, 7], [2, 8]]
    a_table = IntegerMaskedTable(rows)
    b_table = IntegerMaskedTable(rows)
    conflict = build_conflict_graph([(0, 0), (30, 30), (60, 60)], 4)
    plain = greedy_allocate(a_table, conflict, random.Random(3))
    validated, rejected = greedy_allocate_validated(
        b_table, conflict, random.Random(3), lambda b, c: True
    )
    assert rejected == 0
    assert plain == validated


def test_conflicting_neighbors_still_blocked():
    table = IntegerMaskedTable([[9], [5]])
    conflict = build_conflict_graph([(0, 0), (1, 1)], 4)
    winners, _ = greedy_allocate_validated(
        table, conflict, random.Random(4), lambda b, c: True
    )
    assert len(winners) == 1  # neighbour's entry deleted with the win
