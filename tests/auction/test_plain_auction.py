"""The plaintext baseline auction."""

import random

import pytest

from repro.auction.conflict import build_conflict_graph
from repro.auction.plain_auction import run_plain_auction


def test_all_wins_are_valid_and_positively_charged(small_users):
    outcome = run_plain_auction(small_users, random.Random(0), two_lambda=6)
    for win in outcome.wins:
        assert win.valid
        assert win.charge == small_users[win.bidder].bids[win.channel]
        assert win.charge > 0


def test_first_price_revenue(small_users):
    outcome = run_plain_auction(small_users, random.Random(1), two_lambda=6)
    assert outcome.sum_of_winning_bids() == sum(
        small_users[w.bidder].bids[w.channel] for w in outcome.wins
    )


def test_deterministic_given_rng(small_users):
    a = run_plain_auction(small_users, random.Random(7), two_lambda=6)
    b = run_plain_auction(small_users, random.Random(7), two_lambda=6)
    assert a == b


def test_prebuilt_conflict_graph_is_honoured(small_users):
    conflict = build_conflict_graph([u.cell for u in small_users], 6)
    a = run_plain_auction(
        small_users, random.Random(3), two_lambda=6, conflict=conflict
    )
    b = run_plain_auction(small_users, random.Random(3), two_lambda=6)
    assert a == b


def test_winners_on_same_channel_never_conflict(small_users):
    conflict = build_conflict_graph([u.cell for u in small_users], 8)
    outcome = run_plain_auction(
        small_users, random.Random(5), two_lambda=8, conflict=conflict
    )
    per_channel = {}
    for w in outcome.wins:
        per_channel.setdefault(w.channel, []).append(w.bidder)
    for bidders in per_channel.values():
        for i in range(len(bidders)):
            for j in range(i + 1, len(bidders)):
                assert not conflict.are_conflicting(bidders[i], bidders[j])


def test_empty_population_rejected():
    with pytest.raises(ValueError):
        run_plain_auction([], random.Random(0), two_lambda=4)
