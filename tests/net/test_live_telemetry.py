"""Live telemetry must not change a networked auction (PR-8 acceptance).

The same 25-SU auction over the memory transport runs twice:

* **baseline** — the pre-telemetry path: flight recorder only, no metrics
  registry, no scrape endpoint, no per-client recorders;
* **instrumented** — everything on at once: a collecting registry, the
  ``metrics_port`` OpenMetrics endpoint scraped while the server is live,
  one private :class:`TraceRecorder` per SU client, and the per-process
  traces merged afterwards.

Results, wire accounting, the server's trace summary and the Theorem-4
communication audit must be bit-identical between the two runs — the
telemetry layer observes the protocol, it never participates in it.
"""

import asyncio

from repro import obs
from repro.analysis.trace_audit import audit_comm_cost
from repro.net.client import SUClient
from repro.net.loadgen import (
    LoadgenConfig,
    LoadgenReport,
    build_population,
    check_result_equivalence,
    protocol_seed,
    round_entropy,
)
from repro.net.server import AuctioneerServer, ServerConfig
from repro.net.transport import MemoryTransport
from repro.obs.hist import Histogram
from repro.obs.openmetrics import validate_openmetrics
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import TraceRecorder, merge_traces, validate_trace

N_USERS = 25
N_CHANNELS = 6
ROUNDS = 2
SEED = 8

CONFIG = LoadgenConfig(
    n_users=N_USERS, n_channels=N_CHANNELS, rounds=ROUNDS, seed=SEED,
)


async def _scrape(address):
    """One raw ``GET /metrics`` against the live endpoint."""
    host, port = address.rsplit(":", 1)
    reader, writer = await asyncio.open_connection(host, int(port))
    writer.write(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
    await writer.drain()
    raw = await reader.read(-1)
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    assert b"200 OK" in head.splitlines()[0]
    return body.decode("utf-8")


async def _scenario(grid, users, *, metrics_port=None, client_recorders=None):
    """One full multi-round auction; returns everything worth comparing."""
    transport = MemoryTransport()
    server = AuctioneerServer(
        ServerConfig(
            n_users=CONFIG.n_users,
            n_channels=CONFIG.n_channels,
            grid=grid,
            two_lambda=CONFIG.two_lambda,
            bmax=CONFIG.bmax,
            seed=protocol_seed(CONFIG.seed),
            metrics_port=metrics_port,
        ),
        transport,
    )
    await server.start()
    clients = [
        SUClient(
            su_id, user, server.keyring, server.scale, grid,
            CONFIG.two_lambda, transport,
            recorder=client_recorders[su_id] if client_recorders else None,
        )
        for su_id, user in enumerate(users)
    ]
    tasks = [asyncio.ensure_future(c.run(ROUNDS)) for c in clients]
    await server.wait_for_clients(CONFIG.n_users, timeout=10.0)
    reports = [
        await server.run_round(round_entropy(CONFIG.seed, r))
        for r in range(ROUNDS)
    ]
    scraped = None
    if metrics_port is not None:
        scraped = await _scrape(server.metrics_address)
    client_rounds = await asyncio.gather(*tasks)
    await server.stop()
    return server, reports, client_rounds, clients, scraped


def _run_baseline(grid, users):
    recorder = TraceRecorder(capacity=100_000)
    with obs.tracing(recorder):
        out = asyncio.run(_scenario(grid, users))
    return out, recorder


def _run_instrumented(grid, users):
    registry = MetricsRegistry()
    recorder = TraceRecorder(capacity=100_000)
    client_recorders = [
        TraceRecorder(capacity=4096) for _ in range(N_USERS)
    ]
    with obs.collecting(registry, trace=recorder):
        out = asyncio.run(
            _scenario(grid, users, metrics_port=0,
                      client_recorders=client_recorders)
        )
    return out, recorder, registry, client_recorders


class TestLiveTelemetryDifferential:
    """One shared pair of runs, asserted from several angles."""

    @classmethod
    def setup_class(cls):
        grid, users = build_population(CONFIG)
        cls.base_out, cls.base_rec = _run_baseline(grid, users)
        (cls.inst_out, cls.inst_rec, cls.registry,
         cls.client_recs) = _run_instrumented(grid, users)

    def test_results_bit_identical(self):
        _, base_reports, base_rounds, _, _ = self.base_out
        _, inst_reports, inst_rounds, _, _ = self.inst_out
        for base, inst in zip(base_reports, inst_reports):
            check_result_equivalence(inst.result, base.result)
            assert inst.participants == base.participants
            assert inst.stragglers == base.stragglers
        # Every SU saw byte-identical RESULT documents in both runs.
        for base_client, inst_client in zip(base_rounds, inst_rounds):
            assert [r.result for r in inst_client] == [
                r.result for r in base_client
            ]

    def test_wire_accounting_identical(self):
        base_server = self.base_out[0]
        inst_server = self.inst_out[0]
        assert inst_server.wire.total_bytes == base_server.wire.total_bytes
        assert inst_server.wire.bytes_in == base_server.wire.bytes_in
        assert inst_server.wire.bytes_out == base_server.wire.bytes_out
        assert self.inst_rec.wire_totals() == self.base_rec.wire_totals()

    def test_server_trace_summary_identical(self):
        assert self.inst_rec.summary() == self.base_rec.summary()

    def test_theorem4_audit_identical(self):
        base = audit_comm_cost(self.base_rec.events(), strict=False)
        inst = audit_comm_cost(self.inst_rec.events(), strict=False)
        assert base.passed and inst.passed
        assert [r.as_row() for r in inst.rounds] == [
            r.as_row() for r in base.rounds
        ]

    def test_live_scrape_is_valid_and_carries_round_latency(self):
        scraped = self.inst_out[4]
        assert scraped is not None
        assert validate_openmetrics(scraped) == []
        assert "repro_net_round_latency" in scraped
        assert scraped.rstrip().endswith("# EOF")

    def test_correlation_key_shared_without_wire_bytes(self):
        server = self.inst_out[0]
        server_sessions = {
            e.get("session") for e in self.inst_rec.events()
            if e.get("session")
        }
        assert server_sessions == {server.session_key}
        for su_id, recorder in enumerate(self.client_recs):
            events = recorder.events()
            assert events, f"client {su_id} recorded nothing"
            assert {e.get("session") for e in events} == {server.session_key}
            assert {e.get("role") for e in events} == {f"su:{su_id}"}

    def test_merged_trace_validates_and_spans_all_roles(self):
        sources = [(self.inst_rec.header(), self.inst_rec.events())]
        sources.extend(
            (rec.header(), rec.events()) for rec in self.client_recs
        )
        header, events = merge_traces(sources)
        assert validate_trace([header] + events) == []
        assert len(events) == sum(len(e) for _, e in sources)
        roles = {e.get("role") for e in events if e.get("role")}
        assert "server" in roles
        assert {f"su:{i}" for i in range(N_USERS)} <= roles
        sessions = {e.get("session") for e in events if e.get("session")}
        assert sessions == {self.inst_out[0].session_key}

    def test_client_frame_rtt_histograms_recorded(self):
        totals = {}
        for key, hist in self.registry.histograms.items():
            bare = key.rsplit("/", 1)[-1]
            totals[bare] = totals.get(bare, 0) + hist.count
        # Two timed request/response exchanges (LOCATION, BIDS) per SU per
        # round, and one end-to-end latency sample per SU per round.
        assert totals["net.client.frame_rtt"] == N_USERS * ROUNDS * 2
        assert totals["net.client.round_latency"] == N_USERS * ROUNDS
        assert totals["net.round.latency"] == ROUNDS


def test_histogram_percentiles_track_exact_sort_within_one_bucket():
    """The loadgen acceptance bound: histogram-backed p50/p95/p99 stay
    within one multiplicative bucket width of the exact sorted-sample
    percentile, for a latency-shaped distribution."""
    import random as _random

    from repro.net.loadgen import LoadgenReport, _percentile

    rng = _random.Random(13)
    report = LoadgenReport(
        address="test", n_users=1, rounds_completed=0, elapsed_s=1.0
    )
    samples = [rng.lognormvariate(-4.0, 1.0) for _ in range(5000)]
    for value in samples:
        report.record_latency(value)
    assert report.raw_latencies_s is None  # bounded by default
    ordered = sorted(samples)
    width = Histogram().growth
    for q, estimate in (
        (0.50, report.p50_latency_s),
        (0.95, report.p95_latency_s),
        (0.99, report.p99_latency_s),
    ):
        exact = _percentile(ordered, q)
        assert exact / width <= estimate <= exact * width


# --- per-epoch histograms and steady-state percentiles ------------------------


def _epoch_report() -> LoadgenReport:
    report = LoadgenReport(
        address="test", n_users=2, rounds_completed=3, elapsed_s=1.0
    )
    # Epoch 0 is pathologically cold; epochs 1-2 are the steady state.
    for sample in (5.0, 6.0):
        report.record_latency(sample, epoch=0)
    for epoch in (1, 2):
        for sample in (0.010, 0.012):
            report.record_latency(sample, epoch=epoch)
    return report


def test_epoch_histograms_slice_the_aggregate():
    report = _epoch_report()
    assert set(report.epoch_hists) == {0, 1, 2}
    assert report.latency_hist.count == 6
    assert sum(h.count for h in report.epoch_hists.values()) == 6
    assert report.epoch_quantile(0, 0.5) > 1.0
    assert report.epoch_quantile(1, 0.5) < 1.0
    assert report.epoch_quantile(9, 0.5) == 0.0  # no such epoch


def test_steady_histogram_excludes_warmup_epochs():
    report = _epoch_report()
    steady = report.steady_histogram(1)
    assert steady.count == 4
    # The cold epoch dominates the aggregate p99 but not the steady p99.
    assert report.p99_latency_s > 1.0
    assert steady.quantile(0.99) < 1.0
    # Without per-epoch data the permissive fallback is the aggregate.
    bare = LoadgenReport(
        address="t", n_users=1, rounds_completed=1, elapsed_s=1.0
    )
    bare.record_latency(0.5)
    assert bare.steady_histogram(1).count == bare.latency_hist.count


def test_record_metrics_emits_steady_keys_only_when_asked():
    report = _epoch_report()

    plain = MetricsRegistry()
    with obs.collecting(plain):
        report.record_metrics()
    assert "net.loadgen.latency" in plain.histograms
    assert "net.loadgen.steady_latency" not in plain.histograms

    steady = MetricsRegistry()
    with obs.collecting(steady):
        report.record_metrics(steady_warmup=1)
    assert steady.histograms["net.loadgen.steady_latency"].count == 4
    assert steady.timers["net.loadgen.steady_latency_p99"].seconds < 1.0


def test_format_adds_a_steady_line():
    report = _epoch_report()
    assert "steady" not in report.format()
    text = report.format(steady_warmup=1)
    assert "steady" in text and "epochs >= 1" in text
