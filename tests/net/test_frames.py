"""Frame envelope: round-trips, strict-mode rejections, stream I/O."""

import asyncio
import struct

import pytest

from repro.lppa.codec import CodecError
from repro.net.frames import (
    FRAME_HEADER_BYTES,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameType,
    decode_frame,
    encode_frame,
    pack_json,
    read_frame,
    unpack_json,
    write_frame,
)
from repro.net.transport import memory_pair


def test_roundtrip_every_frame_type():
    for ftype in FrameType:
        payload = bytes([int(ftype)]) * 17
        blob = encode_frame(ftype, payload)
        assert len(blob) == FRAME_HEADER_BYTES + len(payload)
        decoded_type, decoded_payload = decode_frame(blob, strict=True)
        assert decoded_type is ftype
        assert decoded_payload == payload


def test_empty_payload_roundtrip():
    blob = encode_frame(FrameType.BYE)
    assert decode_frame(blob, strict=True) == (FrameType.BYE, b"")


def test_unknown_type_strict_only():
    blob = encode_frame(99, b"x")
    # Lenient mode returns the raw integer (forward compatibility)...
    ftype, payload = decode_frame(blob)
    assert ftype == 99 and payload == b"x"
    # ...strict mode (the server's) rejects it.
    with pytest.raises(CodecError):
        decode_frame(blob, strict=True)


def test_wrong_version_rejected():
    blob = bytearray(encode_frame(FrameType.HELLO, b"{}"))
    blob[0] = PROTOCOL_VERSION + 1
    with pytest.raises(CodecError):
        decode_frame(bytes(blob))


def test_truncated_header_and_payload_rejected():
    blob = encode_frame(FrameType.LOCATION, b"payload")
    for cut in range(len(blob)):
        with pytest.raises(CodecError):
            decode_frame(blob[:cut], strict=True)
    with pytest.raises(CodecError):
        decode_frame(blob[:4])  # inside the header even lenient rejects


def test_trailing_garbage_strict_only():
    blob = encode_frame(FrameType.RESULT, b"ok")
    assert decode_frame(blob + b"junk")[1] == b"ok"
    with pytest.raises(CodecError):
        decode_frame(blob + b"junk", strict=True)


def test_oversize_announcement_rejected_without_reading_payload():
    header = struct.pack(">BBI", PROTOCOL_VERSION, int(FrameType.BIDS),
                         MAX_FRAME_BYTES + 1)
    with pytest.raises(CodecError):
        decode_frame(header)


def test_encode_rejects_oversize_and_bad_type():
    with pytest.raises(CodecError):
        encode_frame(FrameType.BIDS, b"x" * (MAX_FRAME_BYTES + 1))
    with pytest.raises(CodecError):
        encode_frame(300, b"")
    with pytest.raises(CodecError):
        encode_frame(-1, b"")


def test_json_helpers():
    doc = {"su": 3, "entropy": "net:1:0"}
    assert unpack_json(pack_json(doc)) == doc
    with pytest.raises(CodecError):
        unpack_json(b"{not json")
    with pytest.raises(CodecError):
        unpack_json(b"[1,2,3]")  # must be an object
    with pytest.raises(CodecError):
        unpack_json(b"\xff\xfe")


def test_stream_roundtrip_and_strict_typing():
    async def scenario():
        client, server = memory_pair()
        n = await write_frame(client, FrameType.HELLO, pack_json({"su": 1}))
        assert n == FRAME_HEADER_BYTES + len(pack_json({"su": 1}))
        ftype, payload = await read_frame(server, strict=True)
        assert ftype is FrameType.HELLO
        assert unpack_json(payload) == {"su": 1}

    asyncio.run(scenario())


def test_stream_read_rejects_oversize_before_payload():
    async def scenario():
        client, server = memory_pair()
        # A hostile header announcing a huge payload: the reader must raise
        # from the header alone, without waiting for (or buffering) 2 MiB.
        header = struct.pack(
            ">BBI", PROTOCOL_VERSION, int(FrameType.BIDS), 2 * MAX_FRAME_BYTES
        )
        await client.write(header)
        with pytest.raises(CodecError):
            await asyncio.wait_for(read_frame(server), timeout=2.0)

    asyncio.run(scenario())


def test_stream_read_rejects_unknown_type_in_strict_mode():
    async def scenario():
        client, server = memory_pair()
        await client.write(encode_frame(42, b"zz"))
        with pytest.raises(CodecError):
            await read_frame(server, strict=True)
        # Lenient read on a fresh pair passes the raw type through.
        client2, server2 = memory_pair()
        await client2.write(encode_frame(42, b"zz"))
        assert await read_frame(server2) == (42, b"zz")

    asyncio.run(scenario())


def test_stream_eof_mid_frame_is_a_transport_error():
    async def scenario():
        client, server = memory_pair()
        blob = encode_frame(FrameType.LOCATION, b"half a payload")
        await client.write(blob[:9])
        client.close()
        with pytest.raises(asyncio.IncompleteReadError):
            await read_frame(server)

    asyncio.run(scenario())
