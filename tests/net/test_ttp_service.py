"""The periodically-online TTP service: decisions, windows, duty cycle."""

import asyncio
import random

import pytest

from repro.lppa.batching import TtpSchedule
from repro.lppa.bids_advanced import submit_bids_advanced
from repro.lppa.ttp import TrustedThirdParty
from repro.net.ttp_service import TtpService

N_CHANNELS = 4
SEED = b"ttp-service-test"


def _charge_requests(n_requests, seed=0):
    """Winner-style (channel, MaskedBid) pairs the TTP can decrypt."""
    ttp, keyring, scale = TrustedThirdParty.setup(SEED, N_CHANNELS, bmax=30)
    rng = random.Random(seed)
    requests = []
    user = 0
    while len(requests) < n_requests:
        bids = [rng.randint(0, 30) for _ in range(N_CHANNELS)]
        submission, _ = submit_bids_advanced(user, bids, keyring, scale, rng)
        for channel in range(N_CHANNELS):
            if len(requests) < n_requests:
                requests.append((channel, submission.channel_bids[channel]))
        user += 1
    return ttp, requests


def _reference_decisions(requests):
    """What a plain (always-online) TTP decides for the same ciphertexts."""
    ttp, _, _ = TrustedThirdParty.setup(SEED, N_CHANNELS, bmax=30)
    return ttp.process_batch(requests)


def test_always_on_service_matches_process_batch():
    ttp, requests = _charge_requests(7)
    expected = _reference_decisions(requests)

    async def scenario():
        service = TtpService(ttp)
        await service.start()
        try:
            return await asyncio.wait_for(service.charge_batch(requests), 5.0)
        finally:
            await service.stop()

    decisions = asyncio.run(scenario())
    assert decisions == expected


def test_scheduled_windows_respect_capacity():
    ttp, requests = _charge_requests(7)
    expected = _reference_decisions(requests)

    async def scenario():
        service = TtpService(
            ttp, TtpSchedule(period=1, capacity=2), time_scale=0.001
        )
        await service.start()
        try:
            decisions = await asyncio.wait_for(service.charge_batch(requests), 10.0)
        finally:
            await service.stop()
        return decisions, service.stats()

    decisions, stats = asyncio.run(scenario())
    assert decisions == expected
    # 7 requests at <= 2 per window: at least 4 windows did work.
    assert stats.requests_served == 7
    assert stats.windows_used >= 4
    assert 0.0 < stats.duty_cycle <= 1.0


def test_concurrent_batches_are_fifo_and_independent():
    ttp, requests = _charge_requests(6)
    expected = _reference_decisions(requests)
    first, second = requests[:4], requests[4:]

    async def scenario():
        service = TtpService(
            ttp, TtpSchedule(period=1, capacity=3), time_scale=0.001
        )
        await service.start()
        try:
            return await asyncio.wait_for(
                asyncio.gather(
                    service.charge_batch(first), service.charge_batch(second)
                ),
                10.0,
            )
        finally:
            await service.stop()

    decisions_a, decisions_b = asyncio.run(scenario())
    assert decisions_a + decisions_b == expected


def test_stop_drains_backlog_before_going_offline():
    ttp, requests = _charge_requests(5)
    expected = _reference_decisions(requests)

    async def scenario():
        service = TtpService(ttp)
        await service.start()
        pending = asyncio.ensure_future(service.charge_batch(requests))
        await asyncio.sleep(0)  # let the batch enqueue before stopping
        await service.stop()
        return await asyncio.wait_for(pending, 5.0)

    assert asyncio.run(scenario()) == expected


def test_empty_batch_resolves_immediately():
    ttp, _ = _charge_requests(1)

    async def scenario():
        service = TtpService(ttp)
        await service.start()
        try:
            return await service.charge_batch([])
        finally:
            await service.stop()

    assert asyncio.run(scenario()) == []


def test_charge_batch_requires_running_service():
    ttp, requests = _charge_requests(1)

    async def scenario():
        service = TtpService(ttp)
        with pytest.raises(RuntimeError):
            await service.charge_batch(requests)

    asyncio.run(scenario())


def test_time_scale_must_be_positive():
    ttp, _ = _charge_requests(1)
    with pytest.raises(ValueError):
        TtpService(ttp, time_scale=0.0)
