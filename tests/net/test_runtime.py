"""Differential equivalence: a networked round == the in-process session.

The contract under test: with entropy-labelled rounds (the
``derive_round_rngs`` seeding) and full participation, an
:class:`AuctioneerServer` driving real SU clients over a transport
produces an :class:`LppaResult` bit-identical to
:func:`run_lppa_auction` — assignments, charges, conflict graph,
rankings, revenue and every byte counter.  ``disclosures`` is the one
exempt field (SU-private, never crosses the wire).
"""

import asyncio
import dataclasses

import pytest

from repro.net.loadgen import (
    LoadgenConfig,
    build_population,
    check_result_equivalence,
    protocol_seed,
    round_entropy,
    run_loadgen,
)
from repro.net.client import SUClient
from repro.net.server import AuctioneerServer, ServerConfig
from repro.net.transport import MemoryTransport
from repro.lppa.session import run_lppa_auction


@pytest.mark.parametrize("seed", [1, 7, 23])
def test_memory_round_equals_session(seed):
    config = LoadgenConfig(
        n_users=6, n_channels=6, rounds=2, seed=seed,
        transport="memory", check_equivalence=True,
    )
    report = asyncio.run(run_loadgen(config))
    assert report.rounds_completed == 2
    assert report.equivalence_checked == 2
    assert report.stragglers == 0


def test_memory_round_equals_session_with_disguise_policy():
    config = LoadgenConfig(
        n_users=8, n_channels=6, rounds=2, seed=5, replace=0.5,
        transport="memory", check_equivalence=True,
    )
    report = asyncio.run(run_loadgen(config))
    assert report.equivalence_checked == 2


def test_tcp_round_equals_session():
    config = LoadgenConfig(
        n_users=6, n_channels=6, rounds=2, seed=11,
        transport="tcp", check_equivalence=True,
    )
    report = asyncio.run(run_loadgen(config))
    assert report.equivalence_checked == 2
    assert report.address.startswith("127.0.0.1:")


def test_scheduled_ttp_windows_do_not_change_the_result():
    config = LoadgenConfig(
        n_users=6, n_channels=6, rounds=2, seed=3,
        transport="memory", check_equivalence=True,
        ttp_period=2, ttp_capacity=2,
    )
    report = asyncio.run(run_loadgen(config))
    assert report.equivalence_checked == 2


def test_loadgen_is_deterministic_across_runs():
    config = LoadgenConfig(n_users=6, n_channels=6, rounds=3, seed=17)
    first = asyncio.run(run_loadgen(config))
    second = asyncio.run(run_loadgen(config))
    assert first.round_summaries == second.round_summaries
    assert first.wire_bytes == second.wire_bytes


def test_manual_server_and_clients_match_session_exactly():
    """The equivalence without going through loadgen: hand-built server,
    hand-built clients, explicit field-by-field comparison."""
    config = LoadgenConfig(n_users=5, n_channels=6, rounds=1, seed=29)
    grid, users = build_population(config)
    entropy = round_entropy(config.seed, 0)

    async def scenario():
        transport = MemoryTransport()
        server = AuctioneerServer(
            ServerConfig(
                n_users=config.n_users,
                n_channels=config.n_channels,
                grid=grid,
                two_lambda=config.two_lambda,
                bmax=config.bmax,
                seed=protocol_seed(config.seed),
            ),
            transport,
        )
        await server.start()
        clients = [
            SUClient(
                su_id, user, server.keyring, server.scale, grid,
                config.two_lambda, transport,
            )
            for su_id, user in enumerate(users)
        ]
        tasks = [asyncio.ensure_future(c.run(1)) for c in clients]
        await server.wait_for_clients(config.n_users, timeout=10.0)
        report = await server.run_round(entropy)
        client_rounds = await asyncio.gather(*tasks)
        await server.stop()
        return server, report, client_rounds, clients

    server, report, client_rounds, clients = asyncio.run(scenario())

    session = run_lppa_auction(
        users,
        grid,
        two_lambda=config.two_lambda,
        bmax=config.bmax,
        seed=protocol_seed(config.seed),
        entropy=entropy,
    )
    check_result_equivalence(report.result, session)
    # Full participation: dense remap is the identity.
    assert report.participants == tuple(range(config.n_users))
    assert report.stragglers == ()
    # The networked result intentionally carries no disclosures.
    assert report.result.disclosures == ()
    assert session.disclosures != ()

    # Every client saw the same RESULT document with original SU ids.
    docs = [rounds[0].result for rounds in client_rounds]
    assert all(doc == docs[0] for doc in docs)
    assert docs[0]["revenue"] == session.outcome.sum_of_winning_bids()
    assert {w["su"] for w in docs[0]["wins"]} == {
        w.bidder for w in session.outcome.wins
    }

    # Wire accounting closes: what clients sent is what the server read,
    # and vice versa (memory transport, nothing in flight at the end).
    assert server.wire.bytes_in == sum(c.bytes_sent for c in clients)
    assert server.wire.bytes_out == sum(c.bytes_received for c in clients)


def test_byte_counters_match_the_session_accounting():
    """lppa.* byte counters computed by the server equal the session's
    (payload, masked-set and framed bytes are functions of content only —
    the u32 user_id field makes the dense remap size-neutral)."""
    config = LoadgenConfig(
        n_users=6, n_channels=6, rounds=1, seed=31,
        transport="memory", check_equivalence=False,
    )
    grid, users = build_population(config)
    report = asyncio.run(run_loadgen(config))
    session = run_lppa_auction(
        users, grid,
        two_lambda=config.two_lambda, bmax=config.bmax,
        seed=protocol_seed(config.seed),
        entropy=round_entropy(config.seed, 0),
    )
    summary = report.round_summaries[0]
    assert summary["framed_bytes"] == session.framed_bytes


def test_check_result_equivalence_raises_on_divergence():
    from repro.net.loadgen import EquivalenceFailure

    config = LoadgenConfig(n_users=4, n_channels=6, rounds=1, seed=2)
    grid, users = build_population(config)
    session = run_lppa_auction(
        users, grid, two_lambda=6, bmax=127,
        seed=protocol_seed(config.seed),
        entropy=round_entropy(config.seed, 0),
    )
    tampered = dataclasses.replace(session, bid_bytes=session.bid_bytes + 1)
    with pytest.raises(EquivalenceFailure):
        check_result_equivalence(tampered, session)
