"""Fault handling: retries, dead peers, stragglers, malformed bytes.

The invariants under test, straight from the runtime's contract:

* a client that cannot reach the server retries with exponential backoff
  and gives up with a transport error, not a hang;
* a connection dying mid-frame costs that SU its round, never the round;
* a submission after the phase deadline is answered with a clean
  ``ERROR late-submission`` frame, and the connection stays usable;
* malformed bytes get ``ERROR malformed-frame`` and a disconnect, while
  everyone else's round completes.
"""

import asyncio
import random

import pytest

from repro.net.client import ProtocolError, RetryPolicy, SUClient
from repro.net.frames import (
    FrameType,
    encode_frame,
    pack_json,
    read_frame,
    unpack_json,
    write_frame,
)
from repro.net.loadgen import (
    LoadgenConfig,
    build_population,
    protocol_seed,
    round_entropy,
)
from repro.net.server import (
    ERR_DUPLICATE_SU,
    ERR_LATE,
    ERR_MALFORMED,
    AuctioneerServer,
    ServerConfig,
)
from repro.net.transport import MemoryTransport, Transport, TransportClosed


class FlakyTransport(Transport):
    """Fails the first ``failures`` dials, then delegates."""

    def __init__(self, inner: Transport, failures: int) -> None:
        self._inner = inner
        self.failures_left = failures

    async def listen(self, handler) -> None:
        await self._inner.listen(handler)

    async def connect(self):
        if self.failures_left > 0:
            self.failures_left -= 1
            raise TransportClosed("injected dial failure")
        return await self._inner.connect()

    async def close(self) -> None:
        await self._inner.close()

    @property
    def address(self) -> str:
        return self._inner.address


def _make_server(config: LoadgenConfig, transport, **overrides):
    grid, users = build_population(config)
    server_config = ServerConfig(
        n_users=config.n_users,
        n_channels=config.n_channels,
        grid=grid,
        two_lambda=config.two_lambda,
        bmax=config.bmax,
        seed=protocol_seed(config.seed),
        **overrides,
    )
    return AuctioneerServer(server_config, transport), grid, users


def _make_client(server, grid, users, su_id, transport, **kwargs):
    return SUClient(
        su_id, users[su_id], server.keyring, server.scale, grid, 6,
        transport, **kwargs,
    )


FAST_RETRY = RetryPolicy(max_attempts=4, base_delay=0.01, max_delay=0.05)


# --- retry / backoff ----------------------------------------------------------


def test_retry_policy_backoff_grows_and_caps():
    policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0)
    rng = random.Random(0)
    delays = [policy.delay(a, rng) for a in range(5)]
    assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]
    jittered = RetryPolicy(base_delay=0.1, jitter=0.5)
    draw = jittered.delay(0, random.Random(1))
    assert 0.1 <= draw <= 0.15


def test_connect_retries_through_transient_failures():
    config = LoadgenConfig(n_users=2, n_channels=6, seed=1)

    async def scenario():
        inner = MemoryTransport()
        server, grid, users = _make_server(config, inner)
        await server.start()
        flaky = FlakyTransport(inner, failures=2)
        client = _make_client(server, grid, users, 0, flaky, retry=FAST_RETRY)
        announcement = await asyncio.wait_for(client.connect(), 5.0)
        attempts = client.connect_attempts
        client.close()
        await server.stop()
        return announcement, attempts

    announcement, attempts = asyncio.run(scenario())
    assert announcement["n_users"] == 2
    assert attempts == 3  # two injected failures + the success


def test_connect_gives_up_after_max_attempts():
    config = LoadgenConfig(n_users=2, n_channels=6, seed=1)

    async def scenario():
        transport = MemoryTransport()  # never listening
        grid, users = build_population(config)
        from repro.lppa.ttp import TrustedThirdParty

        _, keyring, scale = TrustedThirdParty.setup(
            protocol_seed(config.seed), config.n_channels, bmax=config.bmax
        )
        client = SUClient(
            0, users[0], keyring, scale, grid, 6, transport, retry=FAST_RETRY
        )
        with pytest.raises(TransportClosed):
            await asyncio.wait_for(client.connect(), 5.0)
        return client.connect_attempts

    assert asyncio.run(scenario()) == FAST_RETRY.max_attempts


# --- dead peers and stragglers ------------------------------------------------


def test_mid_frame_disconnect_does_not_poison_the_round():
    config = LoadgenConfig(n_users=3, n_channels=6, seed=13)

    async def scenario():
        transport = MemoryTransport()
        server, grid, users = _make_server(
            config, transport, location_deadline=2.0, bid_deadline=2.0
        )
        await server.start()

        good = [
            _make_client(server, grid, users, su, transport) for su in (0, 1)
        ]
        good_tasks = [asyncio.ensure_future(c.run(1)) for c in good]

        # SU 2 joins, then dies halfway through a LOCATION frame.
        conn = await transport.connect()
        await write_frame(conn, FrameType.HELLO, pack_json({"su": 2}))
        await read_frame(conn, strict=True)  # WELCOME
        await server.wait_for_clients(3, timeout=5.0)
        round_task = asyncio.ensure_future(
            server.run_round(round_entropy(config.seed, 0))
        )
        await read_frame(conn, strict=True)  # ROUND_BEGIN
        blob = encode_frame(FrameType.LOCATION, b"x" * 40)
        await conn.write(blob[: len(blob) // 2])
        conn.close()

        report = await asyncio.wait_for(round_task, 10.0)
        rounds = await asyncio.gather(*good_tasks)
        await server.stop()
        return report, rounds

    report, rounds = asyncio.run(scenario())
    # The round completed with the survivors; the dense remap renumbered
    # SUs 0,1 onto slots 0,1 and the dead SU is reported as a straggler.
    assert report.participants == (0, 1)
    assert report.stragglers == (2,)
    assert report.result.outcome.n_users == 2
    assert all(len(r) == 1 for r in rounds)


def test_late_submission_gets_clean_error_not_a_hang():
    config = LoadgenConfig(n_users=2, n_channels=6, seed=19)

    async def scenario():
        transport = MemoryTransport()
        server, grid, users = _make_server(
            config, transport, location_deadline=0.3, bid_deadline=2.0
        )
        await server.start()

        prompt = _make_client(server, grid, users, 0, transport)
        prompt_task = asyncio.ensure_future(prompt.run(1))

        # SU 1 registers but sleeps through the location deadline.
        conn = await transport.connect()
        await write_frame(conn, FrameType.HELLO, pack_json({"su": 1}))
        await read_frame(conn, strict=True)  # WELCOME
        await server.wait_for_clients(2, timeout=5.0)
        round_task = asyncio.ensure_future(
            server.run_round(round_entropy(config.seed, 0))
        )
        await read_frame(conn, strict=True)  # ROUND_BEGIN
        await asyncio.sleep(0.6)  # straggle past the 0.3s deadline
        from repro.lppa.codec import encode_location
        from repro.lppa.location import submit_location

        late = submit_location(1, users[1].cell, server.keyring.g0, grid, 6)
        await write_frame(conn, FrameType.LOCATION, encode_location(late))
        ftype, payload = await asyncio.wait_for(read_frame(conn, strict=True), 5.0)

        report = await asyncio.wait_for(round_task, 10.0)
        await prompt_task
        # The connection survived the protocol error: a well-formed BYE
        # still reaches the straggler at shutdown.
        stop_task = asyncio.ensure_future(server.stop())
        bye_type, _ = await asyncio.wait_for(read_frame(conn, strict=True), 5.0)
        await stop_task
        return report, ftype, unpack_json(payload), bye_type

    report, ftype, error_doc, bye_type = asyncio.run(scenario())
    assert ftype is FrameType.ERROR
    assert error_doc["code"] == ERR_LATE
    assert bye_type is FrameType.BYE
    assert report.participants == (0,)
    assert report.stragglers == (1,)


def test_client_read_timeout_is_bounded():
    config = LoadgenConfig(n_users=1, n_channels=6, seed=23)

    async def scenario():
        transport = MemoryTransport()
        server, grid, users = _make_server(config, transport)
        await server.start()
        client = _make_client(
            server, grid, users, 0, transport, frame_timeout=0.2
        )
        await client.connect()
        # The server never starts a round: the read must time out instead
        # of hanging forever.
        with pytest.raises(asyncio.TimeoutError):
            await asyncio.wait_for(client.run_round(), 5.0)
        client.close()
        await server.stop()

    asyncio.run(scenario())


# --- malformed bytes and bad registrations ------------------------------------


def test_malformed_frame_mid_round_disconnects_only_the_offender():
    config = LoadgenConfig(n_users=3, n_channels=6, seed=29)

    async def scenario():
        transport = MemoryTransport()
        server, grid, users = _make_server(
            config, transport, location_deadline=2.0, bid_deadline=2.0
        )
        await server.start()
        good = [
            _make_client(server, grid, users, su, transport) for su in (0, 1)
        ]
        good_tasks = [asyncio.ensure_future(c.run(1)) for c in good]

        conn = await transport.connect()
        await write_frame(conn, FrameType.HELLO, pack_json({"su": 2}))
        await read_frame(conn, strict=True)  # WELCOME
        await server.wait_for_clients(3, timeout=5.0)
        round_task = asyncio.ensure_future(
            server.run_round(round_entropy(config.seed, 0))
        )
        await read_frame(conn, strict=True)  # ROUND_BEGIN
        # A LOCATION frame whose payload is garbage to the message codec.
        await write_frame(conn, FrameType.LOCATION, b"\xde\xad\xbe\xef")
        ftype, payload = await asyncio.wait_for(read_frame(conn, strict=True), 5.0)

        report = await asyncio.wait_for(round_task, 10.0)
        await asyncio.gather(*good_tasks)
        await server.stop()
        return report, ftype, unpack_json(payload)

    report, ftype, error_doc = asyncio.run(scenario())
    assert ftype is FrameType.ERROR
    assert error_doc["code"] == ERR_MALFORMED
    assert report.participants == (0, 1)
    assert report.stragglers == (2,)


def test_duplicate_su_registration_rejected():
    config = LoadgenConfig(n_users=2, n_channels=6, seed=31)

    async def scenario():
        transport = MemoryTransport()
        server, grid, users = _make_server(config, transport)
        await server.start()
        first = _make_client(server, grid, users, 0, transport)
        await first.connect()
        impostor = _make_client(server, grid, users, 0, transport)
        with pytest.raises(ProtocolError) as excinfo:
            await asyncio.wait_for(impostor.connect(), 5.0)
        first.close()
        await server.stop()
        return excinfo.value.code

    assert asyncio.run(scenario()) == ERR_DUPLICATE_SU


def test_out_of_range_su_rejected():
    config = LoadgenConfig(n_users=2, n_channels=6, seed=37)

    async def scenario():
        transport = MemoryTransport()
        server, grid, users = _make_server(config, transport)
        await server.start()
        conn = await transport.connect()
        await write_frame(conn, FrameType.HELLO, pack_json({"su": 99}))
        ftype, payload = await asyncio.wait_for(read_frame(conn, strict=True), 5.0)
        await server.stop()
        return ftype, unpack_json(payload)

    ftype, doc = asyncio.run(scenario())
    assert ftype is FrameType.ERROR
    assert doc["code"] == "bad-hello"
