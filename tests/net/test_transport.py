"""Transports: duplex pipes with real backpressure, and TCP via asyncio."""

import asyncio

import pytest

from repro.net.transport import (
    MemoryTransport,
    TcpTransport,
    TransportClosed,
    memory_pair,
)


def test_memory_pair_echo_both_directions():
    async def scenario():
        client, server = memory_pair()
        await client.write(b"ping")
        assert await server.readexactly(4) == b"ping"
        await server.write(b"pong!")
        assert await client.readexactly(5) == b"pong!"

    asyncio.run(scenario())


def test_memory_backpressure_blocks_writer_until_reader_drains():
    async def scenario():
        client, server = memory_pair(limit=64)
        await client.write(b"x" * 65)  # over the mark: next write must park
        writer = asyncio.ensure_future(client.write(b"y" * 10))
        await asyncio.sleep(0.05)
        assert not writer.done(), "writer should be parked on the high-water mark"
        assert await server.readexactly(65) == b"x" * 65
        await asyncio.wait_for(writer, timeout=2.0)
        assert await server.readexactly(10) == b"y" * 10

    asyncio.run(scenario())


def test_memory_close_wakes_parked_writer_with_error():
    async def scenario():
        client, server = memory_pair(limit=16)
        await client.write(b"x" * 17)
        writer = asyncio.ensure_future(client.write(b"more"))
        await asyncio.sleep(0.02)
        assert not writer.done()
        server.close()
        with pytest.raises(TransportClosed):
            await asyncio.wait_for(writer, timeout=2.0)

    asyncio.run(scenario())


def test_memory_eof_surfaces_as_incomplete_read():
    async def scenario():
        client, server = memory_pair()
        await client.write(b"ab")
        client.close()
        with pytest.raises(asyncio.IncompleteReadError):
            await server.readexactly(5)

    asyncio.run(scenario())


def test_memory_transport_dispatches_handler_per_connection():
    async def scenario():
        transport = MemoryTransport()
        served = []

        async def handler(conn):
            data = await conn.readexactly(3)
            served.append(data)
            await conn.write(data.upper())

        await transport.listen(handler)
        a = await transport.connect()
        b = await transport.connect()
        await a.write(b"foo")
        await b.write(b"bar")
        assert await a.readexactly(3) == b"FOO"
        assert await b.readexactly(3) == b"BAR"
        assert sorted(served) == [b"bar", b"foo"]
        await transport.close()

    asyncio.run(scenario())


def test_memory_connect_without_listener_refused():
    async def scenario():
        transport = MemoryTransport()
        with pytest.raises(TransportClosed):
            await transport.connect()

    asyncio.run(scenario())


def test_tcp_transport_echo_on_ephemeral_port():
    async def scenario():
        transport = TcpTransport()

        async def handler(conn):
            data = await conn.readexactly(5)
            await conn.write(data[::-1])

        await transport.listen(handler)
        assert transport.port != 0
        assert transport.address.endswith(str(transport.port))
        conn = await transport.connect()
        await conn.write(b"hello")
        assert await conn.readexactly(5) == b"olleh"
        conn.close()
        await conn.wait_closed()
        await transport.close()

    asyncio.run(scenario())


def test_tcp_connect_refused_maps_to_transport_closed():
    async def scenario():
        # Dial a port nothing listens on: connect() must raise the
        # transport's own error class, which the client retry loop catches.
        transport = TcpTransport("127.0.0.1", 1)
        with pytest.raises(TransportClosed):
            await transport.connect()

    asyncio.run(scenario())
