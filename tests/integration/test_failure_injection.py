"""Failure injection: the system's behaviour under corrupted inputs.

A production protocol stack must fail *closed*: tampered digests must not
create phantom conflicts or wins, wrong keys must not decrypt, malformed
wire bytes must raise rather than mis-parse, and the TTP must catch
inconsistent submissions.  Each test here breaks one thing on purpose.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.keys import generate_keyring
from repro.lppa.bids_advanced import BidScale, submit_bids_advanced
from repro.lppa.bids_basic import decrypt_bid_value
from repro.lppa.codec import CodecError, decode_bids, decode_location, encode_bids
from repro.lppa.location import build_private_conflict_graph, submit_location
from repro.lppa.messages import LocationSubmission, MaskedBid
from repro.lppa.psd import MaskedBidTable
from repro.lppa.ttp import ChargeStatus, TrustedThirdParty
from repro.geo.grid import GridSpec
from repro.prefix.membership import MaskedSet

GRID = GridSpec(rows=32, cols=32, cell_km=1.0)


def _flip_one_digest(masked: MaskedSet) -> MaskedSet:
    digests = sorted(masked.digests)
    corrupted = bytes([digests[0][0] ^ 0x01]) + digests[0][1:]
    return MaskedSet(
        frozenset([corrupted, *digests[1:]]), digest_bytes=masked.digest_bytes
    )


def test_corrupted_location_digest_cannot_create_conflicts():
    """Flipping bits turns digests into random values: membership tests
    go (almost surely) negative, never spuriously positive."""
    keyring = generate_keyring(b"inject", 1)
    near = submit_location(0, (5, 5), keyring.g0, GRID, 6)
    other = submit_location(1, (25, 25), keyring.g0, GRID, 6)
    tampered = LocationSubmission(
        user_id=0,
        x_family=_flip_one_digest(near.x_family),
        x_range=near.x_range,
        y_family=near.y_family,
        y_range=near.y_range,
    )
    graph = build_private_conflict_graph([tampered, other])
    assert not graph.are_conflicting(0, 1)


def test_wrong_gc_key_scrambles_bids():
    keyring = generate_keyring(b"inject", 2, rd=4, cr=8)
    wrong = generate_keyring(b"other", 2, rd=4, cr=8)
    scale = BidScale(bmax=30, rd=4, cr=8)
    sub, disclosure = submit_bids_advanced(
        0, [13, 7], keyring, scale, random.Random(0)
    )
    right = decrypt_bid_value(keyring.gc, sub.channel_bids[0].ciphertext)
    garbled = decrypt_bid_value(wrong.gc, sub.channel_bids[0].ciphertext)
    assert right == disclosure.channels[0].true_expanded
    assert garbled != right


def test_ttp_catches_family_swapped_between_channels():
    """Replaying channel 1's masked sets on channel 0 is caught: the TTP
    recomputes the family under channel 0's key."""
    ttp, keyring, scale = TrustedThirdParty.setup(b"inject", 2, bmax=30)
    sub, _ = submit_bids_advanced(0, [13, 13], keyring, scale, random.Random(1))
    swapped = MaskedBid(
        family=sub.channel_bids[1].family,
        tail=sub.channel_bids[1].tail,
        ciphertext=sub.channel_bids[0].ciphertext,
    )
    assert ttp.process_charge(0, swapped).status is ChargeStatus.CHEATING


def test_masked_table_rejects_mixed_digest_tampering():
    """A corrupted family makes the bid incomparable; the table's total-
    order assertion trips instead of silently mis-ranking."""
    keyring = generate_keyring(b"inject", 1, rd=4, cr=8)
    scale = BidScale(bmax=30, rd=4, cr=8)
    rng = random.Random(2)
    subs = []
    for uid, bid in enumerate([20, 5]):
        sub, _ = submit_bids_advanced(uid, [bid], keyring, scale, rng)
        subs.append(sub)
    # Break every digest of user 0's family.
    broken_family = MaskedSet(
        frozenset(bytes(16) for _ in range(1)), digest_bytes=16
    )
    tampered = type(subs[0])(
        user_id=0,
        channel_bids=(
            MaskedBid(
                family=broken_family,
                tail=subs[0].channel_bids[0].tail,
                ciphertext=subs[0].channel_bids[0].ciphertext,
            ),
        ),
    )
    table = MaskedBidTable([tampered, subs[1]])
    with pytest.raises(AssertionError):
        table.ranking(0)


@settings(max_examples=80, deadline=None)
@given(blob=st.binary(max_size=300))
def test_codec_never_crashes_on_garbage(blob):
    """Arbitrary bytes either decode (vanishingly unlikely) or raise
    CodecError/ValueError — never an unhandled exception type."""
    for decoder in (decode_bids, decode_location):
        try:
            decoder(blob)
        except (CodecError, ValueError):
            pass


def test_truncated_real_message_raises_cleanly():
    keyring = generate_keyring(b"inject", 1, rd=4, cr=8)
    scale = BidScale(bmax=30, rd=4, cr=8)
    sub, _ = submit_bids_advanced(0, [9], keyring, scale, random.Random(3))
    blob = encode_bids(sub)
    for cut in (1, len(blob) // 2, len(blob) - 1):
        with pytest.raises(CodecError):
            decode_bids(blob[:cut])
