"""Cross-cutting auction properties over randomly generated worlds.

Hypothesis drives whole mini-worlds (random bids, geometry, disguise
intensity, pricing rule) through the full allocation/charging stack and
checks the economic and physical invariants that must hold regardless of
parameters.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.auction.bidders import SecondaryUser
from repro.auction.conflict import build_conflict_graph
from repro.auction.interference import count_violations
from repro.auction.plain_auction import run_plain_auction
from repro.lppa.fastsim import run_fast_lppa
from repro.lppa.policies import UniformReplacePolicy


@st.composite
def _worlds(draw):
    n_users = draw(st.integers(min_value=2, max_value=10))
    n_channels = draw(st.integers(min_value=1, max_value=4))
    users = []
    for uid in range(n_users):
        cell = (
            draw(st.integers(min_value=0, max_value=30)),
            draw(st.integers(min_value=0, max_value=30)),
        )
        bids = tuple(
            draw(st.integers(min_value=0, max_value=50))
            for _ in range(n_channels)
        )
        users.append(
            SecondaryUser(user_id=uid, cell=cell, beta=10.0, bids=bids)
        )
    two_lambda = draw(st.integers(min_value=1, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return users, two_lambda, seed


@settings(max_examples=30, deadline=None)
@given(_worlds())
def test_plain_auction_never_violates_interference(world):
    users, two_lambda, seed = world
    if not any(b > 0 for u in users for b in u.bids):
        return
    outcome = run_plain_auction(
        users, random.Random(seed), two_lambda=two_lambda
    )
    cells = [u.cell for u in users]
    assert count_violations(outcome, cells, two_lambda).n_violations == 0


@settings(max_examples=30, deadline=None)
@given(_worlds())
def test_lppa_never_violates_interference(world):
    users, two_lambda, seed = world
    result = run_fast_lppa(
        users,
        two_lambda=two_lambda,
        bmax=50,
        policy=UniformReplacePolicy(0.7),
        rng=random.Random(seed),
    )
    cells = [u.cell for u in users]
    assert count_violations(result.outcome, cells, two_lambda).n_violations == 0


@settings(max_examples=30, deadline=None)
@given(_worlds())
def test_second_price_revenue_never_exceeds_first(world):
    """Same allocation order (same RNG), runner-up charges can only lower
    the total."""
    users, two_lambda, seed = world
    if not any(b > 0 for u in users for b in u.bids):
        return
    first = run_plain_auction(
        users, random.Random(seed), two_lambda=two_lambda, pricing="first"
    )
    second = run_plain_auction(
        users, random.Random(seed), two_lambda=two_lambda, pricing="second"
    )
    assert second.sum_of_winning_bids() <= first.sum_of_winning_bids()


@settings(max_examples=30, deadline=None, derandomize=True)
@given(_worlds())
def test_revalidation_dominates_batching(world):
    """Feeding TTP rejections back improves (or preserves) satisfaction.

    Not a theorem — the two modes delete different entries, so adversarial
    geometries could in principle diverge the other way — hence the pinned
    (derandomized) example set: the property documents typical dominance
    rather than a universal guarantee.
    """
    users, two_lambda, seed = world
    kwargs = dict(
        two_lambda=two_lambda,
        bmax=50,
        policy=UniformReplacePolicy(1.0),
    )
    batched = run_fast_lppa(users, rng=random.Random(seed), **kwargs)
    revalidated = run_fast_lppa(
        users, rng=random.Random(seed), revalidate=True, **kwargs
    )
    assert (
        revalidated.outcome.user_satisfaction()
        >= batched.outcome.user_satisfaction() - 1e-9
    )
    assert all(w.valid for w in revalidated.outcome.wins)


@settings(max_examples=30, deadline=None)
@given(_worlds())
def test_lppa_charges_are_bounded_by_true_bids(world):
    users, two_lambda, seed = world
    result = run_fast_lppa(
        users,
        two_lambda=two_lambda,
        bmax=50,
        policy=UniformReplacePolicy(0.5),
        rng=random.Random(seed),
        pricing="second",
    )
    for win in result.outcome.valid_wins:
        assert 0 < win.charge <= users[win.bidder].bids[win.channel]
