"""Cross-module integration: the complete story of one auction round.

These tests exercise the whole pipeline the way the examples do — coverage
map -> users -> full-crypto LPPA round -> attacks -> metrics — and assert
the paper's end-to-end claims rather than per-module behaviour.
"""

import random

import pytest

from repro.attacks.against_lppa import lppa_bcm_attack
from repro.attacks.bcm import bcm_attack
from repro.attacks.bpm import bpm_attack
from repro.attacks.metrics import aggregate_scores, score_attack
from repro.auction.plain_auction import run_plain_auction
from repro.lppa.policies import UniformReplacePolicy
from repro.lppa.session import run_lppa_auction


@pytest.fixture(scope="module")
def world(small_db, small_users):
    users = small_users[:15]
    result = run_lppa_auction(
        users,
        small_db.coverage.grid,
        two_lambda=6,
        bmax=127,
        policy=UniformReplacePolicy(0.5),
        rng=random.Random(2024),
    )
    return small_db, users, result


def test_auction_completes_and_charges_consistently(world):
    db, users, result = world
    outcome = result.outcome
    assert len(outcome.wins) == len(users)  # full rows: everyone wins a slot
    for win in outcome.valid_wins:
        assert users[win.bidder].bids[win.channel] == win.charge


def test_winner_sets_respect_conflicts(world):
    db, users, result = world
    per_channel = {}
    for win in result.outcome.wins:
        per_channel.setdefault(win.channel, []).append(win.bidder)
    for bidders in per_channel.values():
        for i in range(len(bidders)):
            for j in range(i + 1, len(bidders)):
                assert not result.conflict_graph.are_conflicting(
                    bidders[i], bidders[j]
                )


def test_attack_chain_on_unprotected_auction(world):
    """BCM then BPM on plaintext bids: monotone refinement, perfect recall."""
    db, users, _ = world
    grid = db.coverage.grid
    bcm_scores, bpm_scores = [], []
    for user in users:
        possible = bcm_attack(db, user)
        bcm_scores.append(score_attack(possible, user.cell, grid))
        if user.available_set():
            refined = bpm_attack(db, user, possible, keep_fraction=0.3)
            assert refined.sum() <= possible.sum()
            bpm_scores.append(score_attack(refined, user.cell, grid))
    bcm_agg = aggregate_scores(bcm_scores)
    assert bcm_agg.failure_rate == 0.0  # truthful bids never mislead BCM
    assert bcm_agg.mean_cells < grid.n_cells
    if bpm_scores:
        assert aggregate_scores(bpm_scores).mean_cells <= bcm_agg.mean_cells


def test_lppa_protects_against_its_attacker(world):
    """Headline claim: the anti-LPPA attacker does worse than plain BCM."""
    db, users, result = world
    grid = db.coverage.grid
    masks = lppa_bcm_attack(db, result.rankings, len(users), 0.5)
    lppa_scores = [
        score_attack(mask, user.cell, grid) for mask, user in zip(masks, users)
    ]
    plain_scores = [
        score_attack(bcm_attack(db, user), user.cell, grid) for user in users
    ]
    assert (
        aggregate_scores(lppa_scores).failure_rate
        >= aggregate_scores(plain_scores).failure_rate
    )


def test_lppa_cost_is_bounded(small_db, small_users):
    """Revenue under LPPA stays within a sane band of the plain auction."""
    users = small_users
    plain = run_plain_auction(users, random.Random(5), two_lambda=6)
    private = run_lppa_auction(
        users,
        small_db.coverage.grid,
        two_lambda=6,
        bmax=127,
        policy=UniformReplacePolicy(0.3),
        rng=random.Random(5),
    )
    ratio = private.outcome.sum_of_winning_bids() / plain.sum_of_winning_bids()
    assert 0.4 <= ratio <= 1.3
