"""Executable summary: the paper's headline claims at test scale.

One assertion per claim the reproduction stands on, each runnable in
seconds.  EXPERIMENTS.md quotes the full-scale numbers; this file keeps the
*directions* permanently true under CI.
"""

import random

import pytest

from repro.attacks.against_lppa import lppa_bcm_attack
from repro.attacks.bcm import bcm_attack
from repro.attacks.bpm import bpm_attack
from repro.attacks.metrics import aggregate_scores, score_attack
from repro.auction.bidders import generate_users
from repro.auction.plain_auction import run_plain_auction
from repro.geo.datasets import make_database
from repro.lppa.fastsim import run_fast_lppa
from repro.lppa.policies import UniformReplacePolicy

N_USERS = 40
N_CHANNELS = 60
TWO_LAMBDA = 6
SEED = "paper-claims"


@pytest.fixture(scope="module")
def world():
    database = make_database(3, n_channels=N_CHANNELS, seed=SEED)
    users = generate_users(database, N_USERS, random.Random(99))
    return database, users


@pytest.fixture(scope="module")
def attacked(world):
    """BCM and BPM scores over the unprotected population."""
    database, users = world
    grid = database.coverage.grid
    bcm_scores, bpm_scores = [], []
    for user in users:
        possible = bcm_attack(database, user)
        bcm_scores.append(score_attack(possible, user.cell, grid))
        if user.available_set():
            refined = bpm_attack(
                database, user, possible, keep_fraction=0.25, max_cells=250
            )
            bpm_scores.append(score_attack(refined, user.cell, grid))
    return aggregate_scores(bcm_scores), aggregate_scores(bpm_scores)


def test_claim_1_bcm_shrinks_the_prior(world, attacked):
    """§III.A: intersecting coverage complements localises bidders."""
    database, _ = world
    bcm, _ = attacked
    assert bcm.mean_cells < database.coverage.grid.n_cells / 5
    assert bcm.failure_rate == 0.0


def test_claim_2_bpm_refines_bcm(attacked):
    """§III.B: bid prices pin bidders beyond availability alone."""
    bcm, bpm = attacked
    assert bpm.mean_cells < bcm.mean_cells
    assert bpm.mean_uncertainty_bits < bcm.mean_uncertainty_bits


def test_claim_3_rural_beats_urban(world):
    """§VI.B: the attack is more effective in rural areas than urban."""
    def bcm_cells(area):
        database = make_database(area, n_channels=N_CHANNELS, seed=SEED)
        users = generate_users(database, 25, random.Random(7))
        scores = [
            score_attack(bcm_attack(database, u), u.cell, database.coverage.grid)
            for u in users
        ]
        return aggregate_scores(scores).mean_cells

    assert bcm_cells(4) < bcm_cells(2)


def test_claim_4_lppa_thwarts_the_attacker(world, attacked):
    """§VI.C: under LPPA the attacker's failure rate rises dramatically."""
    database, users = world
    grid = database.coverage.grid
    bcm, _ = attacked
    result = run_fast_lppa(
        users,
        two_lambda=TWO_LAMBDA,
        bmax=127,
        policy=UniformReplacePolicy(0.5),
        rng=random.Random(1),
    )
    masks = lppa_bcm_attack(database, result.rankings, len(users), 0.5)
    scores = [score_attack(m, u.cell, grid) for m, u in zip(masks, users)]
    protected = aggregate_scores(scores)
    assert protected.failure_rate >= bcm.failure_rate + 0.5


def test_claim_5_performance_cost_is_bounded(world):
    """§VI.D: the privacy mechanism costs a bounded share of performance."""
    database, users = world
    plain = run_plain_auction(users, random.Random(2), two_lambda=TWO_LAMBDA)
    private = run_fast_lppa(
        users,
        two_lambda=TWO_LAMBDA,
        bmax=127,
        policy=UniformReplacePolicy(1.0),  # the harshest setting
        rng=random.Random(2),
    )
    ratio = private.outcome.sum_of_winning_bids() / plain.sum_of_winning_bids()
    assert ratio > 0.6  # the paper's "maximum cost is less than 30%" band


def test_claim_6_conflict_graph_is_exact(world):
    """§IV.A: the masked location protocol loses nothing — allocations under
    LPPA are interference-free against ground truth."""
    from repro.auction.interference import count_violations

    database, users = world
    result = run_fast_lppa(
        users,
        two_lambda=TWO_LAMBDA,
        bmax=127,
        policy=UniformReplacePolicy(0.8),
        rng=random.Random(3),
    )
    audit = count_violations(
        result.outcome, [u.cell for u in users], TWO_LAMBDA
    )
    assert audit.n_violations == 0


def test_claim_7_theorem_1_is_exact():
    """§IV.C.3: the zero-win probability closed form matches simulation."""
    from repro.analysis.montecarlo import simulate_zero_not_winning
    from repro.analysis.theorems import theorem1_paper

    probs = (0.4, 0.3, 0.2, 0.1)
    closed = theorem1_paper(2, 6, probs)
    estimate = simulate_zero_not_winning(
        2, 6, probs, random.Random(4), trials=30000
    )
    assert closed == pytest.approx(estimate, abs=0.02)


def test_claim_8_theorem_4_is_exact():
    """§IV.C.4: the communication-cost formula equals measured bytes."""
    from repro.analysis.comm_cost import measure_bid_cost
    from repro.crypto.keys import generate_keyring
    from repro.lppa.bids_advanced import BidScale, submit_bids_advanced

    keyring = generate_keyring(b"claims", 3, rd=4, cr=8)
    scale = BidScale(bmax=30, rd=4, cr=8)
    rng = random.Random(5)
    submissions = [
        submit_bids_advanced(i, [5, 0, 17], keyring, scale, rng)[0]
        for i in range(4)
    ]
    assert measure_bid_cost(submissions, scale).prediction_error == 0.0
