"""Property-based protocol invariants across the crypto stack."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.keys import generate_keyring
from repro.lppa.bids_advanced import BidScale, submit_bids_advanced
from repro.lppa.bids_basic import decrypt_bid_value, submit_bids_basic
from repro.lppa.policies import UniformReplacePolicy
from repro.lppa.psd import MaskedBidTable
from repro.prefix.membership import find_maxima


@settings(max_examples=25, deadline=None)
@given(
    bids=st.lists(st.integers(min_value=0, max_value=30), min_size=2, max_size=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_basic_scheme_max_finding_is_exact(bids, seed):
    """Equation (3): the masked search returns exactly the argmax set."""
    keyring = generate_keyring(b"prop-basic", 1)
    rng = random.Random(seed)
    subs = [
        submit_bids_basic(i, [b], keyring, 30, rng) for i, b in enumerate(bids)
    ]
    families = [s.channel_bids[0].family for s in subs]
    tails = [s.channel_bids[0].tail for s in subs]
    best = max(bids)
    assert find_maxima(families, tails) == [
        i for i, b in enumerate(bids) if b == best
    ]


@settings(max_examples=15, deadline=None)
@given(
    rows=st.lists(
        st.lists(st.integers(min_value=0, max_value=30), min_size=2, max_size=2),
        min_size=2,
        max_size=5,
    ),
    seed=st.integers(min_value=0, max_value=10_000),
    replace=st.sampled_from([0.0, 0.5, 1.0]),
)
def test_advanced_scheme_ranking_reflects_hidden_values(rows, seed, replace):
    """The masked table's order always equals the hidden expanded order,
    for arbitrary bids, seeds and disguise intensities."""
    keyring = generate_keyring(b"prop-advanced", 2, rd=4, cr=8)
    scale = BidScale(bmax=30, rd=4, cr=8)
    rng = random.Random(seed)
    submissions, values = [], []
    for uid, bids in enumerate(rows):
        sub, disclosure = submit_bids_advanced(
            uid, bids, keyring, scale, rng, policy=UniformReplacePolicy(replace)
        )
        submissions.append(sub)
        values.append([c.masked_expanded for c in disclosure.channels])
    table = MaskedBidTable(submissions)
    for channel in range(2):
        flat = [u for cls in table.ranking(channel) for u in cls]
        assert sorted(
            (values[u][channel] for u in flat), reverse=True
        ) == [values[u][channel] for u in flat]


@settings(max_examples=20, deadline=None)
@given(
    bids=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=4),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_ttp_always_recovers_true_bids(bids, seed):
    """For every submission, the gc ciphertext decrypts to the committed
    expanded value, and contracting it recovers the true bid or zero band."""
    n = len(bids)
    keyring = generate_keyring(b"prop-ttp", n, rd=4, cr=8)
    scale = BidScale(bmax=30, rd=4, cr=8)
    rng = random.Random(seed)
    sub, disclosure = submit_bids_advanced(
        0, bids, keyring, scale, rng, policy=UniformReplacePolicy(1.0)
    )
    for channel, (mb, record) in enumerate(
        zip(sub.channel_bids, disclosure.channels)
    ):
        expanded = decrypt_bid_value(keyring.gc, mb.ciphertext)
        assert expanded == record.true_expanded
        offset = scale.contract(expanded)
        if record.true_bid > 0:
            assert offset - scale.rd == record.true_bid
        else:
            assert scale.is_zero_marker(offset)
