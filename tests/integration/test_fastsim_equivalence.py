"""Differential equivalence: fast simulator vs the full crypto protocol.

``run_fast_lppa`` skips HMAC masking and encryption but executes the same
value pipeline.  Under the shared ``entropy`` seeding contract
(:func:`repro.lppa.entropy.derive_round_rngs`) both paths give user ``i``
its own labelled RNG stream whose *first* consumer is
``disguise_and_expand``, so they commit to identical masked values — and
therefore must agree on everything downstream: conflict graph, per-channel
rankings, winners, charges and validity flags.

These tests run both paths over a grid of seeds and disguise policies and
assert exact equality of all of those observables.  Any divergence means
the simulator no longer models the protocol and every Fig. 4/5 sweep built
on it is suspect.
"""

import pytest

from repro.auction.bidders import generate_users
from repro.lppa.entropy import derive_round_rngs
from repro.lppa.fastsim import run_fast_lppa
from repro.lppa.policies import KeepZeroPolicy, UniformReplacePolicy
from repro.lppa.session import run_lppa_auction
from repro.utils.rng import spawn_rng

ENTROPIES = ("round-a", "round-b", "round-c")
POLICIES = (
    ("keep-zero", KeepZeroPolicy()),
    ("replace-half", UniformReplacePolicy(0.5)),
    ("replace-all", UniformReplacePolicy(1.0)),
)
RD, CR = 2, 2  # small crypto parameters keep the full path fast


def _population(tiny_db, n_users, label):
    return generate_users(
        tiny_db, n_users, spawn_rng("fastsim-equivalence", label)
    )


def _run_both(tiny_db, users, entropy, policy):
    fast = run_fast_lppa(
        users,
        two_lambda=6,
        bmax=127,
        rd=RD,
        cr=CR,
        policy=policy,
        entropy=entropy,
    )
    full = run_lppa_auction(
        users,
        tiny_db.coverage.grid,
        two_lambda=6,
        bmax=127,
        rd=RD,
        cr=CR,
        policy=policy,
        entropy=entropy,
    )
    return fast, full


@pytest.mark.parametrize("entropy", ENTROPIES)
@pytest.mark.parametrize(
    "policy", [p for _, p in POLICIES], ids=[n for n, _ in POLICIES]
)
def test_full_protocol_matches_fastsim(tiny_db, entropy, policy):
    users = _population(tiny_db, 8, entropy)
    fast, full = _run_both(tiny_db, users, entropy, policy)

    # Same conflict graph: the private location protocol provably equals the
    # plaintext interference test.
    assert full.conflict_graph.n_users == fast.conflict_graph.n_users
    assert full.conflict_graph.edges == fast.conflict_graph.edges

    # Same attacker view: per-channel equivalence-class rankings.
    assert full.rankings == fast.rankings

    # Same economic outcome: winners, channels, charges, validity.
    assert full.outcome.wins == fast.outcome.wins
    assert (
        full.outcome.sum_of_winning_bids()
        == fast.outcome.sum_of_winning_bids()
    )


@pytest.mark.parametrize("entropy", ENTROPIES[:1])
def test_disclosed_values_match(tiny_db, entropy):
    """The per-user disclosures (true bids, offsets, disguises) coincide."""
    users = _population(tiny_db, 6, "disclosures")
    fast, full = _run_both(
        tiny_db, users, entropy, UniformReplacePolicy(0.8)
    )
    assert len(fast.disclosures) == len(full.disclosures)
    for fast_d, full_d in zip(fast.disclosures, full.disclosures):
        for fast_c, full_c in zip(fast_d.channels, full_d.channels):
            assert fast_c.true_bid == full_c.true_bid
            assert fast_c.masked_expanded == full_c.masked_expanded


def test_entropy_isolates_users_from_each_other():
    """Stream ``i`` depends only on ``i`` — never on the population size."""
    small_users, small_alloc = derive_round_rngs("iso", 3)
    big_users, big_alloc = derive_round_rngs("iso", 6)
    for a, b in zip(small_users, big_users):
        assert a.random() == b.random()
    assert small_alloc.random() == big_alloc.random()


def test_different_entropy_differs(tiny_db):
    users = _population(tiny_db, 8, "distinct")
    policy = UniformReplacePolicy(0.5)
    fast_a = run_fast_lppa(
        users, two_lambda=6, bmax=127, policy=policy, entropy="seed-a"
    )
    fast_b = run_fast_lppa(
        users, two_lambda=6, bmax=127, policy=policy, entropy="seed-b"
    )
    values_a = [
        [c.masked_expanded for c in d.channels] for d in fast_a.disclosures
    ]
    values_b = [
        [c.masked_expanded for c in d.channels] for d in fast_b.disclosures
    ]
    assert values_a != values_b
