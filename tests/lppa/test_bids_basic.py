"""Basic private bid submission (section IV.B, Fig. 3) and its leaks."""

import random

import pytest

from repro.crypto.keys import generate_keyring
from repro.lppa.bids_basic import (
    decrypt_bid_value,
    encrypt_bid_value,
    submit_bids_basic,
)
from repro.prefix.membership import find_maxima

KEYRING = generate_keyring(b"basic-test", 1)


def _submissions(bids, bmax=14):
    rng = random.Random(0)
    return [
        submit_bids_basic(i, [b], KEYRING, bmax, rng) for i, b in enumerate(bids)
    ]


def test_paper_fig3_maximum():
    """Bids {6, 10, 0, 5} with bmax 14: the auctioneer finds 10 as maximum."""
    subs = _submissions([6, 10, 0, 5])
    families = [s.channel_bids[0].family for s in subs]
    tails = [s.channel_bids[0].tail for s in subs]
    assert find_maxima(families, tails) == [1]


def test_paper_fig3_partial_order():
    """6 >= 5 but 6 < 10, read off the masked sets exactly as in Fig. 3."""
    subs = _submissions([6, 10, 0, 5])
    fam6 = subs[0].channel_bids[0].family
    assert fam6.intersects(subs[3].channel_bids[0].tail)  # 6 >= 5
    assert not fam6.intersects(subs[1].channel_bids[0].tail)  # 6 < 10


def test_ciphertext_roundtrip():
    subs = _submissions([6, 10, 0, 5])
    for sub, bid in zip(subs, [6, 10, 0, 5]):
        assert decrypt_bid_value(KEYRING.gc, sub.channel_bids[0].ciphertext) == bid


def test_leak_cardinality_differs_between_bids():
    """Section IV.C.1's third leak: |Q([b, bmax])| orders the bids."""
    subs = _submissions([10, 5])
    assert len(subs[0].channel_bids[0].tail) != len(subs[1].channel_bids[0].tail)


def test_leak_equal_bids_have_equal_masked_sets():
    """Section IV.C.1's frequency leak: equal bids are fully linkable."""
    subs = _submissions([7, 7])
    assert (
        subs[0].channel_bids[0].family.digests
        == subs[1].channel_bids[0].family.digests
    )


def test_bid_bounds_enforced():
    rng = random.Random(0)
    with pytest.raises(ValueError):
        submit_bids_basic(0, [15], KEYRING, 14, rng)
    with pytest.raises(ValueError):
        submit_bids_basic(0, [-1], KEYRING, 14, rng)
    with pytest.raises(ValueError):
        submit_bids_basic(0, [1], KEYRING, 0, rng)


def test_encrypt_bid_value_bounds():
    rng = random.Random(0)
    with pytest.raises(ValueError):
        encrypt_bid_value(KEYRING.gc, -1, rng)
    with pytest.raises(ValueError):
        encrypt_bid_value(KEYRING.gc, 1 << 32, rng)


def test_decrypt_rejects_malformed_blob():
    with pytest.raises(ValueError):
        decrypt_bid_value(KEYRING.gc, b"too-short")


def test_same_value_encrypts_differently_across_nonces():
    rng = random.Random(0)
    a = encrypt_bid_value(KEYRING.gc, 9, rng)
    b = encrypt_bid_value(KEYRING.gc, 9, rng)
    assert a != b
    assert decrypt_bid_value(KEYRING.gc, a) == decrypt_bid_value(KEYRING.gc, b) == 9
