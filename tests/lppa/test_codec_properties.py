"""Property-based codec laws.

Two families:

* **round-trip** — for all three message classes (masked set, location
  submission, bid submission) built from the real submission layer under
  random inputs, ``decode(encode(m)) == m``;
* **truncation** — any strict prefix of a valid encoding raises
  :class:`CodecError`; it never silently decodes to a *different* valid
  message.  Every length in the format is declared before its bytes, so a
  cut anywhere must be detectable.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.keys import generate_keyring
from repro.geo.grid import GridSpec
from repro.lppa.bids_advanced import BidScale, submit_bids_advanced
from repro.lppa.codec import (
    CodecError,
    decode_bids,
    decode_location,
    decode_masked_set,
    encode_bids,
    encode_location,
    encode_masked_set,
)
from repro.lppa.location import submit_location
from repro.prefix.membership import MaskedSet

N_CHANNELS = 4
KEYRING = generate_keyring(b"codec-prop", N_CHANNELS, rd=4, cr=8)
SCALE = BidScale(bmax=30, rd=4, cr=8)
GRID = GridSpec(rows=32, cols=32, cell_km=1.0)


def _random_masked_set(digest_bytes: int, n: int, seed: int) -> MaskedSet:
    rng = random.Random(seed)
    digests = frozenset(rng.randbytes(digest_bytes) for _ in range(n))
    return MaskedSet(digests, digest_bytes=digest_bytes)


masked_sets = st.builds(
    _random_masked_set,
    digest_bytes=st.integers(min_value=4, max_value=20),
    n=st.integers(min_value=0, max_value=12),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)

locations = st.builds(
    lambda uid, x, y: submit_location(uid, (x, y), KEYRING.g0, GRID, 4),
    uid=st.integers(min_value=0, max_value=2**32 - 1),
    x=st.integers(min_value=0, max_value=GRID.rows - 1),
    y=st.integers(min_value=0, max_value=GRID.cols - 1),
)

bid_submissions = st.builds(
    lambda uid, bids, seed: submit_bids_advanced(
        uid, bids, KEYRING, SCALE, random.Random(seed)
    )[0],
    uid=st.integers(min_value=0, max_value=2**32 - 1),
    bids=st.lists(
        st.integers(min_value=0, max_value=SCALE.bmax),
        min_size=N_CHANNELS,
        max_size=N_CHANNELS,
    ),
    seed=st.integers(min_value=0, max_value=10**6),
)


# --- round-trip ---------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(masked=masked_sets)
def test_masked_set_roundtrip(masked):
    blob = encode_masked_set(masked)
    decoded, end = decode_masked_set(blob)
    assert decoded == masked
    assert end == len(blob)


@settings(max_examples=25, deadline=None)
@given(sub=locations)
def test_location_roundtrip(sub):
    assert decode_location(encode_location(sub)) == sub


@settings(max_examples=25, deadline=None)
@given(sub=bid_submissions)
def test_bids_roundtrip(sub):
    assert decode_bids(encode_bids(sub)) == sub


# --- truncation never yields a value ------------------------------------------


@settings(max_examples=25, deadline=None)
@given(masked=masked_sets)
def test_masked_set_every_truncation_raises(masked):
    blob = encode_masked_set(masked)
    for cut in range(len(blob)):
        with pytest.raises(CodecError):
            decode_masked_set(blob[:cut])


@settings(max_examples=15, deadline=None)
@given(sub=locations, data=st.data())
def test_location_truncation_raises(sub, data):
    blob = encode_location(sub)
    cut = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
    with pytest.raises(CodecError):
        decode_location(blob[:cut])


@settings(max_examples=15, deadline=None)
@given(sub=bid_submissions, data=st.data())
def test_bids_truncation_raises(sub, data):
    blob = encode_bids(sub)
    cut = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
    with pytest.raises(CodecError):
        decode_bids(blob[:cut])


def test_exhaustive_truncation_one_example():
    """Belt and braces: every single prefix of one real pair of messages."""
    loc = submit_location(3, (10, 20), KEYRING.g0, GRID, 4)
    bids = submit_bids_advanced(
        3, [5, 0, 22, 1], KEYRING, SCALE, random.Random(0)
    )[0]
    loc_blob = encode_location(loc)
    bid_blob = encode_bids(bids)
    for cut in range(len(loc_blob)):
        with pytest.raises(CodecError):
            decode_location(loc_blob[:cut])
    for cut in range(len(bid_blob)):
        with pytest.raises(CodecError):
            decode_bids(bid_blob[:cut])
