"""The advanced private bid submission scheme."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.keys import generate_keyring
from repro.lppa.bids_advanced import (
    BidScale,
    disguise_and_expand,
    submit_bids_advanced,
)
from repro.lppa.bids_basic import decrypt_bid_value
from repro.lppa.policies import KeepZeroPolicy, UniformReplacePolicy
from repro.prefix.membership import is_member
from repro.prefix.ranges import max_cover_size

SCALE = BidScale(bmax=30, rd=4, cr=8)
KEYRING = generate_keyring(b"advanced-test", 3, rd=4, cr=8)


class TestBidScale:
    def test_emax_and_width(self):
        assert SCALE.emax == 8 * 35 - 1
        assert SCALE.width == SCALE.emax.bit_length()
        assert SCALE.pad_to == max_cover_size(SCALE.width)

    def test_offset_and_contract_roundtrip(self):
        rng = random.Random(0)
        for bid in (0, 1, 15, 30):
            offset = SCALE.offset_value(bid)
            expanded = SCALE.expand(offset, rng)
            assert SCALE.cr * offset <= expanded < SCALE.cr * (offset + 1)
            assert SCALE.contract(expanded) == offset

    def test_zero_marker_band(self):
        assert SCALE.is_zero_marker(0)
        assert SCALE.is_zero_marker(4)
        assert not SCALE.is_zero_marker(5)

    def test_expansion_preserves_order_of_distinct_values(self):
        rng = random.Random(1)
        low = SCALE.expand(3, rng)
        high = SCALE.expand(4, rng)
        assert low < high

    def test_validation(self):
        with pytest.raises(ValueError):
            BidScale(bmax=0, rd=4, cr=8)
        with pytest.raises(ValueError):
            BidScale(bmax=10, rd=0, cr=8)
        with pytest.raises(ValueError):
            SCALE.offset_value(31)
        with pytest.raises(ValueError):
            SCALE.expand(36, random.Random(0))
        with pytest.raises(ValueError):
            SCALE.contract(SCALE.emax + 1)


class TestDisguiseAndExpand:
    def test_positive_bids_are_truthful(self):
        rng = random.Random(2)
        disclosures = disguise_and_expand([5, 17], SCALE, rng)
        for d, bid in zip(disclosures, [5, 17]):
            assert not d.disguised
            assert d.pretend_value == bid + SCALE.rd
            assert d.true_expanded == d.masked_expanded
            assert SCALE.contract(d.masked_expanded) == bid + SCALE.rd

    def test_kept_zeros_spread_over_zero_band(self):
        rng = random.Random(3)
        disclosures = disguise_and_expand(
            [0] * 200 + [9], SCALE, rng, policy=KeepZeroPolicy()
        )
        spread = {d.pretend_value for d in disclosures[:-1]}
        assert spread <= set(range(SCALE.rd + 1))
        assert len(spread) == SCALE.rd + 1  # every band value appears


    def test_disguised_zero_has_split_personality(self):
        rng = random.Random(4)
        disclosures = disguise_and_expand(
            [0] * 100 + [20], SCALE, rng, policy=UniformReplacePolicy(1.0)
        )
        disguised = [d for d in disclosures if d.disguised]
        assert disguised, "with p=1 and a positive bid some zero must disguise"
        for d in disguised:
            assert d.true_bid == 0
            assert SCALE.rd + 1 <= d.pretend_value <= 20 + SCALE.rd
            assert SCALE.is_zero_marker(SCALE.contract(d.true_expanded))
            assert not SCALE.is_zero_marker(SCALE.contract(d.masked_expanded))


class TestSubmission:
    def test_submission_matches_disclosures(self):
        rng = random.Random(5)
        submission, disclosure = submit_bids_advanced(
            0, [5, 0, 17], KEYRING, SCALE, rng
        )
        assert submission.n_channels == 3
        for ch, (mb, d) in enumerate(
            zip(submission.channel_bids, disclosure.channels)
        ):
            assert (
                decrypt_bid_value(KEYRING.gc, mb.ciphertext) == d.true_expanded
            )

    def test_tail_padded_to_worst_case(self):
        rng = random.Random(6)
        submission, _ = submit_bids_advanced(0, [5, 0, 17], KEYRING, SCALE, rng)
        for mb in submission.channel_bids:
            assert len(mb.tail) == SCALE.pad_to

    def test_per_channel_keys_kill_cross_channel_comparison(self):
        """Leak 1 of section IV.C.1, closed: same value, different channels."""
        rng = random.Random(7)
        submission, disclosure = submit_bids_advanced(
            0, [9, 9, 9], KEYRING, SCALE, rng
        )
        fam0 = submission.channel_bids[0].family
        tail1 = submission.channel_bids[1].tail
        assert not is_member(fam0, tail1)

    def test_order_readable_within_a_channel(self):
        """The auctioneer can still compare two users on ONE channel."""
        rng = random.Random(8)
        sub_a, disc_a = submit_bids_advanced(0, [20, 0, 0], KEYRING, SCALE, rng)
        sub_b, disc_b = submit_bids_advanced(1, [5, 0, 0], KEYRING, SCALE, rng)
        assert is_member(
            sub_a.channel_bids[0].family, sub_b.channel_bids[0].tail
        )  # 20 >= 5
        assert not is_member(
            sub_b.channel_bids[0].family, sub_a.channel_bids[0].tail
        )

    def test_equal_bids_yield_distinct_masked_sets(self):
        """The cr expansion's purpose: no ciphertext linkability."""
        rng = random.Random(9)
        sub_a, _ = submit_bids_advanced(0, [9, 0, 0], KEYRING, SCALE, rng)
        sub_b, _ = submit_bids_advanced(1, [9, 0, 0], KEYRING, SCALE, rng)
        assert (
            sub_a.channel_bids[0].family.digests
            != sub_b.channel_bids[0].family.digests
        )

    def test_channel_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            submit_bids_advanced(0, [1, 2], KEYRING, SCALE, random.Random(0))

    def test_keyring_scale_mismatch_rejected(self):
        other = BidScale(bmax=30, rd=2, cr=8)
        with pytest.raises(ValueError):
            submit_bids_advanced(0, [1, 2, 3], KEYRING, other, random.Random(0))


@settings(max_examples=40, deadline=None)
@given(
    bids=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=6),
    seed=st.integers(min_value=0, max_value=10_000),
    replace=st.floats(min_value=0.0, max_value=1.0),
)
def test_pipeline_invariants_hold_for_random_inputs(bids, seed, replace):
    rng = random.Random(seed)
    disclosures = disguise_and_expand(
        bids, SCALE, rng, policy=UniformReplacePolicy(replace)
    )
    for d, bid in zip(disclosures, bids):
        assert d.true_bid == bid
        assert 0 <= d.masked_expanded <= SCALE.emax
        assert 0 <= d.true_expanded <= SCALE.emax
        true_offset = SCALE.contract(d.true_expanded)
        if bid > 0:
            assert true_offset == bid + SCALE.rd
            assert not d.disguised
        else:
            assert SCALE.is_zero_marker(true_offset)
        if d.disguised:
            assert d.pretend_value > SCALE.rd
            assert d.pretend_value - SCALE.rd <= max(bids)
