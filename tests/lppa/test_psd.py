"""The masked bid table and its equivalence with the integer view."""

import random

import pytest

from repro.crypto.keys import generate_keyring
from repro.lppa.bids_advanced import BidScale, submit_bids_advanced
from repro.lppa.fastsim import IntegerMaskedTable
from repro.lppa.psd import MaskedBidTable

SCALE = BidScale(bmax=30, rd=4, cr=8)
KEYRING = generate_keyring(b"psd-test", 3, rd=4, cr=8)


def _world(bid_rows, seed=0):
    """Masked table + the hidden expanded values it encodes."""
    rng = random.Random(seed)
    submissions, values = [], []
    for uid, bids in enumerate(bid_rows):
        submission, disclosure = submit_bids_advanced(
            uid, bids, KEYRING, SCALE, rng
        )
        submissions.append(submission)
        values.append([c.masked_expanded for c in disclosure.channels])
    return MaskedBidTable(submissions), values


def test_ranking_matches_hidden_values():
    table, values = _world([[5, 0, 30], [17, 2, 1], [0, 9, 30], [30, 30, 0]])
    for channel in range(3):
        flat = [u for cls in table.ranking(channel) for u in cls]
        expected = sorted(range(4), key=lambda u: -values[u][channel])
        assert [values[u][channel] for u in flat] == [
            values[u][channel] for u in expected
        ]


def test_max_bidders_tracks_deletions():
    table, values = _world([[5, 0, 0], [17, 0, 0], [9, 0, 0]])
    order = sorted(range(3), key=lambda u: -values[u][0])
    assert table.max_bidders(0) == [order[0]]
    table.remove_row(order[0])
    assert table.max_bidders(0) == [order[1]]
    table.remove_entry(order[1], 0)
    assert table.max_bidders(0) == [order[2]]


def test_bid_ge_is_the_masked_order_oracle():
    table, values = _world([[5, 0, 0], [17, 0, 0]])
    for i in range(2):
        for j in range(2):
            assert table.bid_ge(i, j, 0) == (values[i][0] >= values[j][0])


def test_empty_column_raises():
    table, _ = _world([[5, 0, 0]])
    table.remove_row(0)
    assert not table.has_entries()
    with pytest.raises(ValueError):
        table.max_bidders(0)


def test_masked_bid_accessor_and_bounds():
    table, _ = _world([[5, 0, 0]])
    assert table.masked_bid(0, 2).ciphertext
    with pytest.raises(IndexError):
        table.masked_bid(1, 0)
    with pytest.raises(IndexError):
        table.masked_bid(0, 3)


def test_dense_ids_enforced():
    rng = random.Random(0)
    submission, _ = submit_bids_advanced(3, [1, 2, 3], KEYRING, SCALE, rng)
    with pytest.raises(ValueError):
        MaskedBidTable([submission])


def test_integer_table_mirrors_masked_table():
    """The fast simulator's table must behave identically on the same values."""
    bid_rows = [[5, 0, 30], [17, 2, 1], [0, 9, 30]]
    masked, values = _world(bid_rows, seed=42)
    integer = IntegerMaskedTable(values)
    for channel in range(3):
        assert masked.ranking(channel) == integer.ranking(channel)
        assert masked.max_bidders(channel) == integer.max_bidders(channel)
    masked.remove_row(1)
    integer.remove_row(1)
    masked.remove_entry(0, 2)
    integer.remove_entry(0, 2)
    for channel in range(3):
        assert masked.channel_bidders(channel) == integer.channel_bidders(channel)
        if masked.channel_bidders(channel):
            assert masked.max_bidders(channel) == integer.max_bidders(channel)


def test_integer_table_validation():
    with pytest.raises(ValueError):
        IntegerMaskedTable([])
    with pytest.raises(ValueError):
        IntegerMaskedTable([[1, 2], [3]])
    with pytest.raises(ValueError):
        IntegerMaskedTable([[]])
