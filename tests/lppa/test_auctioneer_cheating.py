"""Auctioneer-level handling of TTP cheating verdicts."""

import random

import pytest

from repro.lppa.auctioneer import Auctioneer
from repro.lppa.bids_advanced import submit_bids_advanced
from repro.lppa.bids_basic import encrypt_bid_value
from repro.lppa.location import submit_location
from repro.lppa.messages import BidSubmission, MaskedBid
from repro.lppa.ttp import TrustedThirdParty
from repro.geo.grid import GridSpec

GRID = GridSpec(rows=10, cols=10, cell_km=1.0)


def test_cheating_winner_aborts_charging():
    """A bidder sealing a different price to the TTP is detected at
    charging time and the auctioneer refuses to assemble the outcome."""
    ttp, keyring, scale = TrustedThirdParty.setup(b"cheat", 1, bmax=30)
    rng = random.Random(0)

    honest, _ = submit_bids_advanced(1, [5], keyring, scale, rng)
    cheater_sub, _ = submit_bids_advanced(0, [20], keyring, scale, rng)
    cheaper = scale.expand(scale.offset_value(2), rng)
    forged = BidSubmission(
        user_id=0,
        channel_bids=(
            MaskedBid(
                family=cheater_sub.channel_bids[0].family,
                tail=cheater_sub.channel_bids[0].tail,
                ciphertext=encrypt_bid_value(keyring.gc, cheaper, rng),
            ),
        ),
    )

    auctioneer = Auctioneer(1)
    auctioneer.receive_locations(
        [
            submit_location(0, (1, 1), keyring.g0, GRID, 2),
            submit_location(1, (8, 8), keyring.g0, GRID, 2),
        ]
    )
    auctioneer.receive_bids([forged, honest])
    auctioneer.run_allocation(rng)
    # The cheater masked 20 (wins the column) but sealed 2.
    with pytest.raises(RuntimeError, match="cheating"):
        auctioneer.charge_winners(ttp, n_users=2)


def test_assignments_property_roundtrip():
    ttp, keyring, scale = TrustedThirdParty.setup(b"assign", 2, bmax=30)
    rng = random.Random(1)
    subs = [
        submit_bids_advanced(i, [10, 3], keyring, scale, rng)[0]
        for i in range(2)
    ]
    auctioneer = Auctioneer(2)
    auctioneer.receive_locations(
        [
            submit_location(0, (0, 0), keyring.g0, GRID, 2),
            submit_location(1, (9, 9), keyring.g0, GRID, 2),
        ]
    )
    auctioneer.receive_bids(subs)
    with pytest.raises(RuntimeError):
        auctioneer.assignments
    assignments = auctioneer.run_allocation(rng)
    assert auctioneer.assignments == assignments
    # The returned list is a copy, not internal state.
    auctioneer.assignments.clear()
    assert auctioneer.assignments == assignments
