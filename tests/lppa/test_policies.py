"""Zero-disguise policies."""

import random
from collections import Counter

import pytest

from repro.lppa.policies import (
    KeepZeroPolicy,
    LinearDecreasingPolicy,
    UniformDisguisePolicy,
    UniformReplacePolicy,
)


def test_keep_zero_never_disguises():
    policy = KeepZeroPolicy()
    rng = random.Random(0)
    assert all(policy.sample(rng, 100) == 0 for _ in range(100))
    assert policy.replace_probability(100) == 0.0


def test_linear_policy_replace_rate():
    policy = LinearDecreasingPolicy(0.6)
    rng = random.Random(1)
    draws = [policy.sample(rng, 50) for _ in range(20000)]
    rate = sum(1 for d in draws if d > 0) / len(draws)
    assert rate == pytest.approx(0.6, abs=0.02)


def test_linear_policy_weights_decrease():
    """p_1 >= p_2 >= ... >= p_b(max), the paper's requirement."""
    policy = LinearDecreasingPolicy(1.0)
    rng = random.Random(2)
    counts = Counter(policy.sample(rng, 10) for _ in range(60000))
    # Compare well-separated values to keep sampling noise harmless.
    assert counts[1] > counts[5] > counts[10]


def test_uniform_replace_policy_is_flat():
    policy = UniformReplacePolicy(1.0)
    rng = random.Random(3)
    counts = Counter(policy.sample(rng, 8) for _ in range(80000))
    values = [counts[t] for t in range(1, 9)]
    assert max(values) / min(values) < 1.2


def test_uniform_disguise_matches_theorem3_law():
    """p_0 = ... = p_b(max) = 1/(1+b(max))."""
    policy = UniformDisguisePolicy()
    rng = random.Random(4)
    bmax = 9
    counts = Counter(policy.sample(rng, bmax) for _ in range(50000))
    for t in range(0, bmax + 1):
        assert counts[t] / 50000 == pytest.approx(1 / (bmax + 1), abs=0.01)
    assert policy.replace_probability(bmax) == pytest.approx(bmax / (bmax + 1))


@pytest.mark.parametrize(
    "policy",
    [
        LinearDecreasingPolicy(1.0),
        UniformReplacePolicy(1.0),
        UniformDisguisePolicy(),
    ],
)
def test_no_disguise_when_user_has_no_positive_bid(policy):
    rng = random.Random(5)
    assert all(policy.sample(rng, 0) == 0 for _ in range(50))
    assert policy.replace_probability(0) == 0.0


def test_samples_stay_within_user_scale():
    policy = UniformReplacePolicy(1.0)
    rng = random.Random(6)
    assert all(0 <= policy.sample(rng, 7) <= 7 for _ in range(1000))


@pytest.mark.parametrize("cls", [LinearDecreasingPolicy, UniformReplacePolicy])
def test_invalid_probability_rejected(cls):
    with pytest.raises(ValueError):
        cls(-0.1)
    with pytest.raises(ValueError):
        cls(1.1)
