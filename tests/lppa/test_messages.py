"""Wire message structures and size accounting."""

import pytest

from repro.lppa.messages import USER_ID_BYTES, BidSubmission, LocationSubmission, MaskedBid
from repro.prefix.membership import mask_range, mask_value

KEY = b"k"


def _masked_bid(value=5, width=4, bmax=15):
    return MaskedBid(
        family=mask_value(KEY, value, width),
        tail=mask_range(KEY, value, bmax, width),
        ciphertext=b"\x00" * 12,
    )


def test_location_submission_wire_bytes():
    fam = mask_value(KEY, 7, 7)
    rng = mask_range(KEY, 3, 11, 7)
    sub = LocationSubmission(
        user_id=1, x_family=fam, x_range=rng, y_family=fam, y_range=rng
    )
    expected = USER_ID_BYTES + 2 * fam.wire_bytes() + 2 * rng.wire_bytes()
    assert sub.wire_bytes() == expected


def test_masked_bid_wire_bytes():
    mb = _masked_bid()
    assert mb.wire_bytes() == mb.family.wire_bytes() + mb.tail.wire_bytes() + 12


def test_masked_bid_requires_nonce_and_payload():
    with pytest.raises(ValueError):
        MaskedBid(
            family=mask_value(KEY, 1, 4),
            tail=mask_range(KEY, 1, 15, 4),
            ciphertext=b"abc",
        )


def test_bid_submission_sizes():
    bids = tuple(_masked_bid(v) for v in (2, 9, 0))
    sub = BidSubmission(user_id=0, channel_bids=bids)
    assert sub.n_channels == 3
    assert sub.wire_bytes() == USER_ID_BYTES + sum(b.wire_bytes() for b in bids)
    assert sub.masked_set_bytes() == sum(
        b.family.wire_bytes() + b.tail.wire_bytes() for b in bids
    )


def test_bid_submission_needs_channels():
    with pytest.raises(ValueError):
        BidSubmission(user_id=0, channel_bids=())


# --- wire_size() pins: the exact-size accounting must equal the encoder ---
#
# These use the real advanced scheme (submit_bids_advanced), so the tail
# sets carry the deterministic padding to 2w - 2 digests that Theorem 4's
# exactness relies on — not just hand-built toy sets.

import random

from repro.crypto.keys import generate_keyring
from repro.geo.grid import GridSpec
from repro.lppa.bids_advanced import BidScale, submit_bids_advanced
from repro.lppa.codec import (
    decode_bids,
    decode_location,
    encode_bids,
    encode_location,
    framing_overhead,
)
from repro.lppa.location import submit_location

_KEYRING = generate_keyring(b"messages-test", 4, rd=4, cr=8)
_SCALE = BidScale(bmax=30, rd=4, cr=8)
_GRID = GridSpec(rows=32, cols=32, cell_km=1.0)


def _advanced_submission(seed=0):
    return submit_bids_advanced(
        9, [5, 0, 22, 17], _KEYRING, _SCALE, random.Random(seed)
    )[0]


def test_location_wire_size_equals_encoded_length():
    sub = submit_location(6, (12, 25), _KEYRING.g0, _GRID, 4)
    encoded = encode_location(sub)
    assert sub.wire_size() == len(encoded)
    assert framing_overhead(sub) == sub.wire_size() - sub.wire_bytes()
    assert decode_location(encoded) == sub


def test_bid_submission_wire_size_equals_encoded_length():
    sub = _advanced_submission()
    encoded = encode_bids(sub)
    assert sub.wire_size() == len(encoded)
    assert framing_overhead(sub) == sub.wire_size() - sub.wire_bytes()
    assert decode_bids(encoded) == sub


def test_masked_bid_wire_size_is_its_share_of_the_encoding():
    """Per-channel wire_size() values must partition the encoded bid
    submission exactly: header + sum of per-channel shares."""
    sub = _advanced_submission(seed=3)
    encoded = encode_bids(sub)
    header = 1 + 4 + 2  # tag + user id + channel count
    assert header + sum(mb.wire_size() for mb in sub.channel_bids) == len(encoded)
    for mb in sub.channel_bids:
        assert framing_overhead(mb) == mb.wire_size() - mb.wire_bytes()


def test_advanced_tail_sets_are_padded():
    """The advanced scheme pads every tail to 2w - 2 digests and every
    family holds w + 1, so each channel's masked material is exactly
    (3w - 1) digests — the per-user Theorem 4 term."""
    sub = _advanced_submission(seed=5)
    w = _SCALE.width
    for mb in sub.channel_bids:
        assert len(mb.family) == w + 1
        assert len(mb.tail) == 2 * w - 2
        assert (
            mb.family.wire_bytes() + mb.tail.wire_bytes()
            == (3 * w - 1) * mb.family.digest_bytes
        )


def test_roundtrip_survives_many_seeds():
    for seed in range(6):
        sub = _advanced_submission(seed=seed)
        again = decode_bids(encode_bids(sub))
        assert again == sub
        assert again.wire_size() == sub.wire_size()
        assert again.masked_set_bytes() == sub.masked_set_bytes()
