"""Wire message structures and size accounting."""

import pytest

from repro.lppa.messages import USER_ID_BYTES, BidSubmission, LocationSubmission, MaskedBid
from repro.prefix.membership import mask_range, mask_value

KEY = b"k"


def _masked_bid(value=5, width=4, bmax=15):
    return MaskedBid(
        family=mask_value(KEY, value, width),
        tail=mask_range(KEY, value, bmax, width),
        ciphertext=b"\x00" * 12,
    )


def test_location_submission_wire_bytes():
    fam = mask_value(KEY, 7, 7)
    rng = mask_range(KEY, 3, 11, 7)
    sub = LocationSubmission(
        user_id=1, x_family=fam, x_range=rng, y_family=fam, y_range=rng
    )
    expected = USER_ID_BYTES + 2 * fam.wire_bytes() + 2 * rng.wire_bytes()
    assert sub.wire_bytes() == expected


def test_masked_bid_wire_bytes():
    mb = _masked_bid()
    assert mb.wire_bytes() == mb.family.wire_bytes() + mb.tail.wire_bytes() + 12


def test_masked_bid_requires_nonce_and_payload():
    with pytest.raises(ValueError):
        MaskedBid(
            family=mask_value(KEY, 1, 4),
            tail=mask_range(KEY, 1, 15, 4),
            ciphertext=b"abc",
        )


def test_bid_submission_sizes():
    bids = tuple(_masked_bid(v) for v in (2, 9, 0))
    sub = BidSubmission(user_id=0, channel_bids=bids)
    assert sub.n_channels == 3
    assert sub.wire_bytes() == USER_ID_BYTES + sum(b.wire_bytes() for b in bids)
    assert sub.masked_set_bytes() == sum(
        b.family.wire_bytes() + b.tail.wire_bytes() for b in bids
    )


def test_bid_submission_needs_channels():
    with pytest.raises(ValueError):
        BidSubmission(user_id=0, channel_bids=())
