"""The revalidation extension in the fast simulator."""

import random

import pytest

from repro.lppa.fastsim import run_fast_lppa
from repro.lppa.policies import UniformReplacePolicy


def test_revalidated_round_has_no_invalid_wins(small_users):
    result = run_fast_lppa(
        small_users,
        two_lambda=6,
        bmax=127,
        policy=UniformReplacePolicy(1.0),
        rng=random.Random(1),
        revalidate=True,
    )
    assert all(win.valid for win in result.outcome.wins)


def test_revalidation_counts_rejections(small_users):
    result = run_fast_lppa(
        small_users,
        two_lambda=6,
        bmax=127,
        policy=UniformReplacePolicy(1.0),
        rng=random.Random(2),
        revalidate=True,
    )
    assert result.ttp_rejections > 0


def test_batched_mode_reports_zero_rejections(small_users):
    result = run_fast_lppa(
        small_users,
        two_lambda=6,
        bmax=127,
        policy=UniformReplacePolicy(1.0),
        rng=random.Random(3),
    )
    assert result.ttp_rejections == 0


def test_revalidation_never_hurts_satisfaction(small_users):
    def satisfaction(revalidate):
        return run_fast_lppa(
            small_users,
            two_lambda=6,
            bmax=127,
            policy=UniformReplacePolicy(0.8),
            rng=random.Random(4),
            revalidate=revalidate,
        ).outcome.user_satisfaction()

    assert satisfaction(True) >= satisfaction(False)
