"""TTP charging, invalid-winner detection and cheating detection."""

import random

import pytest

from repro.lppa.bids_advanced import submit_bids_advanced
from repro.lppa.bids_basic import encrypt_bid_value
from repro.lppa.messages import MaskedBid
from repro.lppa.policies import UniformReplacePolicy
from repro.lppa.ttp import ChargeDecision, ChargeStatus, TrustedThirdParty


@pytest.fixture(scope="module")
def setup():
    ttp, keyring, scale = TrustedThirdParty.setup(b"ttp-test", 2, bmax=30)
    return ttp, keyring, scale


def test_valid_charge_returns_original_bid(setup):
    ttp, keyring, scale = setup
    rng = random.Random(0)
    submission, _ = submit_bids_advanced(0, [13, 7], keyring, scale, rng)
    for channel, bid in enumerate([13, 7]):
        decision = ttp.process_charge(channel, submission.channel_bids[channel])
        assert decision.status is ChargeStatus.VALID
        assert decision.charge == bid


def test_zero_bid_is_invalid_winner(setup):
    ttp, keyring, scale = setup
    rng = random.Random(1)
    submission, _ = submit_bids_advanced(0, [0, 7], keyring, scale, rng)
    decision = ttp.process_charge(0, submission.channel_bids[0])
    assert decision.status is ChargeStatus.INVALID_ZERO
    assert decision.charge == 0


def test_disguised_zero_is_unmasked(setup):
    """The masked sets lie, the ciphertext doesn't: TTP flags the win."""
    ttp, keyring, scale = setup
    rng = random.Random(2)
    submission, disclosure = submit_bids_advanced(
        0, [0, 30], keyring, scale, rng, policy=UniformReplacePolicy(1.0)
    )
    assert disclosure.channels[0].disguised
    decision = ttp.process_charge(0, submission.channel_bids[0])
    assert decision.status is ChargeStatus.INVALID_ZERO


def test_price_manipulation_detected(setup):
    """A bidder sealing a lower price to the TTP than it masked is caught."""
    ttp, keyring, scale = setup
    rng = random.Random(3)
    submission, disclosure = submit_bids_advanced(0, [20, 7], keyring, scale, rng)
    genuine = submission.channel_bids[0]
    cheaper = scale.expand(scale.offset_value(3), rng)
    forged = MaskedBid(
        family=genuine.family,
        tail=genuine.tail,
        ciphertext=encrypt_bid_value(keyring.gc, cheaper, rng),
    )
    assert ttp.process_charge(0, forged).status is ChargeStatus.CHEATING


def test_out_of_domain_ciphertext_is_cheating(setup):
    ttp, keyring, scale = setup
    rng = random.Random(4)
    submission, _ = submit_bids_advanced(0, [20, 7], keyring, scale, rng)
    forged = MaskedBid(
        family=submission.channel_bids[0].family,
        tail=submission.channel_bids[0].tail,
        ciphertext=encrypt_bid_value(keyring.gc, scale.emax + 100, rng),
    )
    assert ttp.process_charge(0, forged).status is ChargeStatus.CHEATING


def test_batch_processing(setup):
    ttp, keyring, scale = setup
    rng = random.Random(5)
    submission, _ = submit_bids_advanced(0, [13, 0], keyring, scale, rng)
    decisions = ttp.process_batch(
        [(0, submission.channel_bids[0]), (1, submission.channel_bids[1])]
    )
    assert [d.status for d in decisions] == [
        ChargeStatus.VALID,
        ChargeStatus.INVALID_ZERO,
    ]


def test_charge_decision_validation():
    with pytest.raises(ValueError):
        ChargeDecision(status=ChargeStatus.VALID, charge=0)
    with pytest.raises(ValueError):
        ChargeDecision(status=ChargeStatus.INVALID_ZERO, charge=5)


def test_setup_rejects_mismatched_scale():
    from repro.crypto.keys import generate_keyring
    from repro.lppa.bids_advanced import BidScale

    keyring = generate_keyring(b"x", 2, rd=4, cr=8)
    with pytest.raises(ValueError):
        TrustedThirdParty(keyring, BidScale(bmax=30, rd=2, cr=8))
