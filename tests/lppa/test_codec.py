"""Wire codec round-trips and size accounting."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.keys import generate_keyring
from repro.geo.grid import GridSpec
from repro.lppa.bids_advanced import BidScale, submit_bids_advanced
from repro.lppa.codec import (
    CodecError,
    decode_bids,
    decode_location,
    decode_masked_set,
    encode_bids,
    encode_location,
    encode_masked_set,
    framing_overhead,
)
from repro.lppa.location import submit_location
from repro.prefix.membership import mask_range, mask_value

KEYRING = generate_keyring(b"codec-test", 3, rd=4, cr=8)
SCALE = BidScale(bmax=30, rd=4, cr=8)
GRID = GridSpec(rows=32, cols=32, cell_km=1.0)


def _bid_submission(seed=0):
    return submit_bids_advanced(
        7, [5, 0, 22], KEYRING, SCALE, random.Random(seed)
    )[0]


def test_masked_set_roundtrip():
    masked = mask_value(b"k", 123, 8)
    decoded, offset = decode_masked_set(encode_masked_set(masked))
    assert decoded == masked
    assert offset == len(encode_masked_set(masked))


def test_location_roundtrip():
    sub = submit_location(3, (10, 20), KEYRING.g0, GRID, 4)
    assert decode_location(encode_location(sub)) == sub


def test_bids_roundtrip():
    sub = _bid_submission()
    assert decode_bids(encode_bids(sub)) == sub


def test_encoded_size_is_payload_plus_framing():
    bid_sub = _bid_submission()
    assert len(encode_bids(bid_sub)) == bid_sub.wire_bytes() + framing_overhead(
        bid_sub
    )
    loc_sub = submit_location(3, (10, 20), KEYRING.g0, GRID, 4)
    assert len(encode_location(loc_sub)) == loc_sub.wire_bytes() + framing_overhead(
        loc_sub
    )


def test_wrong_tag_rejected():
    sub = _bid_submission()
    with pytest.raises(CodecError):
        decode_location(encode_bids(sub))
    loc = submit_location(3, (10, 20), KEYRING.g0, GRID, 4)
    with pytest.raises(CodecError):
        decode_bids(encode_location(loc))


def test_truncation_rejected():
    blob = encode_bids(_bid_submission())
    with pytest.raises(CodecError):
        decode_bids(blob[:-3])
    with pytest.raises(CodecError):
        decode_masked_set(b"\x10\x00")


def test_trailing_bytes_rejected():
    blob = encode_location(submit_location(3, (10, 20), KEYRING.g0, GRID, 4))
    with pytest.raises(CodecError):
        decode_location(blob + b"\x00")


def test_framing_overhead_validates_type():
    with pytest.raises(TypeError):
        framing_overhead("not a message")


@settings(max_examples=30, deadline=None)
@given(
    x=st.integers(min_value=0, max_value=255),
    low=st.integers(min_value=0, max_value=255),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_masked_set_roundtrip_random(x, low, seed):
    rng = random.Random(seed)
    family = mask_value(b"key", x, 8, digest_bytes=12)
    cover = mask_range(b"key", min(low, 255), 255, 8, pad_to=14, rng=rng,
                       digest_bytes=12)
    for masked in (family, cover):
        decoded, _ = decode_masked_set(encode_masked_set(masked))
        assert decoded == masked


# --- hardening regressions: wire-valid headers with impossible bodies ---------


def test_zero_digest_bytes_with_nonzero_count_rejected():
    # digest_bytes=0 makes every "digest" the empty string: the declared
    # count can never be satisfied by distinct digests, and the length
    # arithmetic (0 * count) would otherwise accept any count for free.
    import struct

    blob = struct.pack(">BH", 0, 5)
    with pytest.raises(CodecError):
        decode_masked_set(blob)


def test_unsafe_digest_truncation_rejected_on_the_wire():
    # MaskedSet refuses digest_bytes < 4; the decoder must reject those
    # headers itself (CodecError, not the constructor's ValueError).
    import struct

    for digest_bytes in (0, 1, 3):
        blob = struct.pack(">BH", digest_bytes, 0)
        with pytest.raises(CodecError):
            decode_masked_set(blob)


def test_zero_digest_count_rejected_inside_location():
    import struct

    # 'L' + user_id, then a poisoned first masked set.
    blob = b"L" + struct.pack(">I", 7) + struct.pack(">BH", 0, 9)
    with pytest.raises(CodecError):
        decode_location(blob)


def test_short_ciphertext_rejected_as_codec_error():
    # Wire-valid framing, but the ciphertext violates the message invariant
    # (4-byte nonce + payload): the decoder must answer CodecError, not leak
    # the dataclass constructor's ValueError.
    import struct

    masked = mask_value(b"k", 3, 8, digest_bytes=12)
    set_blob = encode_masked_set(masked)
    blob = (
        b"B"
        + struct.pack(">IH", 1, 1)
        + set_blob
        + set_blob
        + struct.pack(">H", 2)
        + b"xx"
    )
    with pytest.raises(CodecError):
        decode_bids(blob)


def test_zero_channel_bid_submission_rejected_as_codec_error():
    import struct

    blob = b"B" + struct.pack(">IH", 1, 0)
    with pytest.raises(CodecError):
        decode_bids(blob)


def test_bids_trailing_bytes_rejected():
    blob = encode_bids(_bid_submission())
    with pytest.raises(CodecError):
        decode_bids(blob + b"\x00")
