"""The unification contract: one round core, three thin wrappers.

``run_lppa_auction``, ``run_fast_lppa`` and ``AuctioneerServer.run_round``
must all execute the *same* ``PHASE_STEPS`` objects — not copies, not
re-implementations.  The ``observe_steps`` hook records which step objects
each executor ran; these tests assert identity against the module-level
pipeline and check the backend/driver each wrapper plugged in.
"""

import asyncio

import pytest

from repro.lppa.fastsim import run_fast_lppa
from repro.lppa.round import (
    CRYPTO_BACKEND,
    IN_PROCESS_DRIVER,
    PHASE_STEPS,
    PLAIN_BACKEND,
    InProcessDriver,
    RoundState,
    execute_round,
    observe_steps,
)
from repro.lppa.session import run_lppa_auction
from repro.net.client import SUClient
from repro.net.loadgen import (
    LoadgenConfig,
    build_population,
    protocol_seed,
    round_entropy,
)
from repro.net.server import AuctioneerServer, ServerConfig
from repro.net.transport import MemoryTransport


def test_phase_steps_spell_out_the_papers_round():
    assert [s.key for s in PHASE_STEPS] == [
        None,  # setup
        "location_submission",
        "bid_submission",
        "psd_allocation",
        "ttp_charging",
        None,  # finish
    ]


def test_session_and_fastsim_run_the_same_step_objects(small_db, small_users):
    users = small_users[:6]
    with observe_steps() as seen:
        run_lppa_auction(
            users,
            small_db.coverage.grid,
            two_lambda=6,
            bmax=127,
            entropy="round-core-test",
        )
        run_fast_lppa(users, two_lambda=6, bmax=127, entropy="round-core-test")

    assert len(seen) == 2 * len(PHASE_STEPS)
    session_steps = [step for step, _ in seen[: len(PHASE_STEPS)]]
    fastsim_steps = [step for step, _ in seen[len(PHASE_STEPS) :]]
    # Identity, not equality: both wrappers walk the module-level pipeline.
    assert all(a is b for a, b in zip(session_steps, PHASE_STEPS))
    assert all(a is b for a, b in zip(fastsim_steps, PHASE_STEPS))

    session_state = seen[0][1]
    fastsim_state = seen[len(PHASE_STEPS)][1]
    assert session_state.backend is CRYPTO_BACKEND
    assert fastsim_state.backend is PLAIN_BACKEND
    assert session_state.driver is IN_PROCESS_DRIVER
    assert fastsim_state.driver is IN_PROCESS_DRIVER


def test_networked_round_runs_the_same_step_objects():
    config = LoadgenConfig(n_users=4, n_channels=6, rounds=1, seed=29)
    grid, users = build_population(config)

    async def scenario():
        transport = MemoryTransport()
        server = AuctioneerServer(
            ServerConfig(
                n_users=config.n_users,
                n_channels=config.n_channels,
                grid=grid,
                two_lambda=config.two_lambda,
                bmax=config.bmax,
                seed=protocol_seed(config.seed),
            ),
            transport,
        )
        await server.start()
        clients = [
            SUClient(
                su_id, user, server.keyring, server.scale, grid,
                config.two_lambda, transport,
            )
            for su_id, user in enumerate(users)
        ]
        tasks = [asyncio.ensure_future(c.run(1)) for c in clients]
        await server.wait_for_clients(config.n_users, timeout=10.0)
        with observe_steps() as seen:
            report = await server.run_round(round_entropy(config.seed, 0))
        await asyncio.gather(*tasks)
        await server.stop()
        return report, seen

    report, seen = asyncio.run(scenario())
    assert len(report.result.outcome.wins) >= 1
    steps = [step for step, _ in seen]
    assert all(a is b for a, b in zip(steps, PHASE_STEPS))
    assert len(steps) == len(PHASE_STEPS)
    state = seen[0][1]
    assert state.backend is CRYPTO_BACKEND
    assert state.driver.name == "network"
    # The networked result must never carry SU-private disclosures.
    assert report.result.disclosures == ()


def test_sync_executor_rejects_a_driver_that_suspends(small_users):
    """execute_round drives coroutines without a loop; a driver that truly
    suspends must fail loudly, not hang or silently skip work."""

    class SuspendingDriver(InProcessDriver):
        async def collect_locations(self, state):
            await asyncio.sleep(0)

    users = small_users[:2]
    state = RoundState(
        backend=PLAIN_BACKEND,
        driver=SuspendingDriver(),
        n_users=len(users),
        n_channels=users[0].n_channels,
        two_lambda=6,
        bmax=127,
        users=users,
        policies=[None] * len(users),
    )
    with pytest.raises(RuntimeError, match="suspended"):
        execute_round(state)
