"""TTP batch scheduling."""

import pytest

from repro.lppa.batching import (
    ChargeQueue,
    TtpSchedule,
    simulate_charging,
)


def test_schedule_windows():
    schedule = TtpSchedule(period=10.0, capacity=5)
    assert list(schedule.windows_until(25.0)) == [0.0, 10.0, 20.0]


def test_schedule_validation():
    with pytest.raises(ValueError):
        TtpSchedule(period=0.0, capacity=5)
    with pytest.raises(ValueError):
        TtpSchedule(period=1.0, capacity=0)


def test_queue_fifo_and_capacity():
    queue = ChargeQueue()
    queue.deposit(0.0, 3)
    queue.deposit(5.0, 2)
    served = queue.drain(10.0, capacity=4)
    assert [req_id for _, req_id in served] == [0, 1, 2, 3]
    assert len(queue) == 1


def test_queue_respects_deposit_time():
    queue = ChargeQueue()
    queue.deposit(100.0, 2)
    assert queue.drain(50.0, capacity=10) == []


def test_queue_rejects_time_travel():
    queue = ChargeQueue()
    queue.deposit(10.0, 1)
    with pytest.raises(ValueError):
        queue.deposit(5.0, 1)


def test_single_round_latency_is_wait_to_next_window():
    schedule = TtpSchedule(period=10.0, capacity=100)
    report = simulate_charging(schedule, [3.0], [4])
    assert report.served == 4
    # Deposited at t=3, first serving window at t=10.
    assert report.mean_latency == pytest.approx(7.0)
    assert report.max_latency == pytest.approx(7.0)


def test_capacity_spreads_backlog_over_windows():
    schedule = TtpSchedule(period=10.0, capacity=2)
    report = simulate_charging(schedule, [0.0], [5])
    assert report.served == 5
    # Windows at t=0 (2 served, latency 0), t=10 (2), t=20 (1):
    # mean = (0 + 0 + 10 + 10 + 20) / 5 = 8.
    assert report.mean_latency == pytest.approx(8.0)
    assert report.max_latency == pytest.approx(20.0)


def test_longer_period_trades_latency_for_duty_cycle():
    rounds = [float(t) for t in range(0, 100, 10)]
    winners = [5] * len(rounds)
    fast = simulate_charging(TtpSchedule(period=5.0, capacity=50), rounds, winners)
    slow = simulate_charging(TtpSchedule(period=50.0, capacity=50), rounds, winners)
    assert fast.mean_latency < slow.mean_latency
    assert slow.duty_cycle >= fast.duty_cycle


def test_everything_served_by_default_horizon():
    schedule = TtpSchedule(period=7.0, capacity=3)
    report = simulate_charging(schedule, [0.0, 1.0, 30.0], [4, 4, 4])
    assert report.served == report.n_requests == 12


def test_validation():
    schedule = TtpSchedule(period=1.0, capacity=1)
    with pytest.raises(ValueError):
        simulate_charging(schedule, [0.0, 1.0], [1])
    with pytest.raises(ValueError):
        simulate_charging(schedule, [5.0, 0.0], [1, 1])
