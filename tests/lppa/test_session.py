"""End-to-end LPPA session (full cryptographic path)."""

import random

import pytest

from repro.auction.conflict import build_conflict_graph
from repro.crypto.backend import use_backend
from repro.lppa.policies import UniformReplacePolicy
from repro.lppa.session import run_lppa_auction


@pytest.fixture(scope="module")
def round_result(small_db, small_users):
    users = small_users[:12]
    result = run_lppa_auction(
        users,
        small_db.coverage.grid,
        two_lambda=6,
        bmax=127,
        rng=random.Random(77),
    )
    return users, result


def test_conflict_graph_equals_plaintext(round_result):
    users, result = round_result
    plain = build_conflict_graph([u.cell for u in users], 6)
    assert result.conflict_graph.edges == plain.edges


def test_valid_wins_charge_true_bids(round_result):
    users, result = round_result
    for win in result.outcome.valid_wins:
        assert win.charge == users[win.bidder].bids[win.channel]


def test_invalid_wins_are_true_zero_bids(round_result):
    users, result = round_result
    for win in result.outcome.wins:
        if not win.valid:
            assert users[win.bidder].bids[win.channel] == 0


def test_rankings_are_consistent_with_bid_order(round_result):
    """For undisguised submissions, higher true bids rank at least as high."""
    users, result = round_result
    for channel, ranking in enumerate(result.rankings):
        position = {}
        for rank, tie_class in enumerate(ranking):
            for user in tie_class:
                position[user] = rank
        for i in range(len(users)):
            for j in range(len(users)):
                bi = users[i].bids[channel]
                bj = users[j].bids[channel]
                if bi > bj and bi > 0 and bj > 0:
                    assert position[i] <= position[j]


def test_comm_accounting_positive(round_result):
    _, result = round_result
    assert result.location_bytes > 0
    assert result.bid_bytes > result.masked_set_bytes > 0
    assert result.total_bytes == result.location_bytes + result.bid_bytes


def test_disclosures_cover_population(round_result):
    users, result = round_result
    assert len(result.disclosures) == len(users)
    for user, disclosure in zip(users, result.disclosures):
        assert len(disclosure.channels) == user.n_channels
        for channel, record in zip(user.bids, disclosure.channels):
            assert record.true_bid == channel


def test_session_with_disguise_policy(small_db, small_users):
    users = small_users[:8]
    result = run_lppa_auction(
        users,
        small_db.coverage.grid,
        two_lambda=6,
        bmax=127,
        policy=UniformReplacePolicy(1.0),
        rng=random.Random(3),
    )
    assert any(
        c.disguised for d in result.disclosures for c in d.channels
    ), "full replacement must disguise at least one zero"


def test_session_under_pure_backend(small_db, small_users):
    """The whole protocol runs (slower) on the from-scratch HMAC."""
    users = small_users[:4]
    with use_backend("pure"):
        result = run_lppa_auction(
            users,
            small_db.coverage.grid,
            two_lambda=6,
            bmax=127,
            rng=random.Random(5),
        )
    plain = build_conflict_graph([u.cell for u in users], 6)
    assert result.conflict_graph.edges == plain.edges


def test_validation():
    with pytest.raises(ValueError):
        run_lppa_auction([], None, two_lambda=6, bmax=127)


def test_framed_bytes_cover_payload_plus_framing(round_result):
    """The codec-measured sizes exceed the payload accounting by exactly
    the per-message framing overhead."""
    from repro.lppa.codec import framing_overhead
    from repro.lppa.location import submit_location  # noqa: F401 (doc import)

    users, result = round_result
    assert result.framed_bytes > result.total_bytes
    # Framing: per location message 1 + 12 bytes; per bid message
    # 3 + k * 8 bytes (see codec.framing_overhead).
    k = users[0].n_channels
    expected_framing = len(users) * (1 + 12) + len(users) * (1 + 2 + k * 8)
    assert result.framed_bytes - result.total_bytes == expected_framing
