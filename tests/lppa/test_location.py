"""Private location submission: exactness against the plaintext graph."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.auction.conflict import build_conflict_graph
from repro.geo.grid import GridSpec
from repro.lppa.location import (
    build_private_conflict_graph,
    coordinate_width,
    submit_location,
)

G0 = b"location-key"
GRID = GridSpec(rows=32, cols=32, cell_km=1.0)


def _private_graph(cells, two_lambda, grid=GRID):
    submissions = [
        submit_location(i, cell, G0, grid, two_lambda)
        for i, cell in enumerate(cells)
    ]
    return build_private_conflict_graph(submissions)


def test_coordinate_width_accounts_for_overhang():
    assert coordinate_width(GridSpec(rows=100, cols=100), 1) == 7
    assert coordinate_width(GridSpec(rows=100, cols=100), 29) == 7
    assert coordinate_width(GridSpec(rows=100, cols=100), 30) == 8
    with pytest.raises(ValueError):
        coordinate_width(GRID, 0)


def test_conflict_detected():
    graph = _private_graph([(5, 5), (7, 7)], two_lambda=4)
    assert graph.are_conflicting(0, 1)


def test_boundary_distance_is_not_a_conflict():
    """|dx| == 2λ must not conflict (the predicate is strict)."""
    graph = _private_graph([(0, 0), (4, 0)], two_lambda=4)
    assert not graph.are_conflicting(0, 1)
    graph = _private_graph([(0, 0), (3, 3)], two_lambda=4)
    assert graph.are_conflicting(0, 1)


def test_grid_edges_are_handled():
    """Clamping at zero must not produce spurious conflicts or misses."""
    cells = [(0, 0), (1, 1), (31, 31), (30, 29)]
    private = _private_graph(cells, two_lambda=3)
    plain = build_conflict_graph(cells, 3)
    assert private.edges == plain.edges


def test_dense_user_ids_enforced():
    sub = submit_location(5, (0, 0), G0, GRID, 4)
    with pytest.raises(ValueError):
        build_private_conflict_graph([sub])


def test_submission_rejects_cells_outside_grid():
    with pytest.raises(ValueError):
        submit_location(0, (32, 0), G0, GRID, 4)


@settings(max_examples=30, deadline=None)
@given(
    cells=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=31),
            st.integers(min_value=0, max_value=31),
        ),
        min_size=2,
        max_size=8,
    ),
    two_lambda=st.integers(min_value=1, max_value=12),
)
def test_private_graph_equals_plaintext_graph(cells, two_lambda):
    """The central PPBS-location correctness claim."""
    assert _private_graph(cells, two_lambda).edges == build_conflict_graph(
        cells, two_lambda
    ).edges
