"""Property tests for the masked bid table's order machinery.

Hypothesis drives random bid populations through the real crypto path
(``submit_bids_advanced`` → ``MaskedBidTable``) and checks the two
invariants everything downstream leans on:

* the pairwise oracle ``bid_ge`` is a *total preorder* (total, transitive),
  so ``ranking()``'s comparison sort is well-defined;
* the masked ranking equals plain integer ordering of the hidden expanded
  values — the order-isomorphism the fast simulator's equivalence rests on.

Plus the memoization contract: each ordered pair costs at most one
underlying membership test, however often it is queried.
"""

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.keys import generate_keyring
from repro.lppa import psd
from repro.lppa.bids_advanced import BidScale, submit_bids_advanced
from repro.lppa.psd import MaskedBidTable

SCALE = BidScale(bmax=30, rd=4, cr=8)
KEYRING = generate_keyring(b"psd-prop-test", 2, rd=4, cr=8)

populations = st.lists(
    st.lists(st.integers(min_value=0, max_value=30), min_size=2, max_size=2),
    min_size=2,
    max_size=6,
)


def _world(bid_rows, seed):
    rng = random.Random(seed)
    submissions, values = [], []
    for uid, bids in enumerate(bid_rows):
        submission, disclosure = submit_bids_advanced(
            uid, bids, KEYRING, SCALE, rng
        )
        submissions.append(submission)
        values.append([c.masked_expanded for c in disclosure.channels])
    return MaskedBidTable(submissions), values


@settings(max_examples=25, deadline=None)
@given(bid_rows=populations, seed=st.integers(min_value=0, max_value=2**16))
def test_bid_ge_is_a_total_preorder(bid_rows, seed):
    table, _ = _world(bid_rows, seed)
    n = len(bid_rows)
    for channel in range(2):
        for i, j in itertools.product(range(n), repeat=2):
            # Totality: at least one direction holds for every pair.
            assert table.bid_ge(i, j, channel) or table.bid_ge(j, i, channel)
        for i, j, k in itertools.product(range(n), repeat=3):
            if table.bid_ge(i, j, channel) and table.bid_ge(j, k, channel):
                assert table.bid_ge(i, k, channel)


@settings(max_examples=25, deadline=None)
@given(bid_rows=populations, seed=st.integers(min_value=0, max_value=2**16))
def test_masked_ranking_agrees_with_plain_integer_ordering(bid_rows, seed):
    table, values = _world(bid_rows, seed)
    for channel in range(2):
        classes = table.ranking(channel)
        # Same equivalence classes, same order, as sorting the hidden
        # integers descending (class members share a value, so only the
        # per-class sets can differ in member order).
        by_value = {}
        for bidder, row in enumerate(values):
            by_value.setdefault(row[channel], []).append(bidder)
        expected = [
            sorted(by_value[v]) for v in sorted(by_value, reverse=True)
        ]
        assert [sorted(cls) for cls in classes] == expected
        # And the oracle agrees with the integers pairwise.
        for i, j in itertools.product(range(len(bid_rows)), repeat=2):
            assert table.bid_ge(i, j, channel) == (
                values[i][channel] >= values[j][channel]
            )


def test_each_ordered_pair_is_membership_tested_at_most_once(monkeypatch):
    table, _ = _world([[5, 0], [17, 2], [0, 9], [30, 30], [12, 1]], seed=3)
    tested = []
    real_is_member = psd.is_member

    def counting(family, tail):
        tested.append((id(family), id(tail)))
        return real_is_member(family, tail)

    monkeypatch.setattr(psd, "is_member", counting)
    table.rankings()
    # Re-query everything: rankings again plus every pairwise oracle call.
    table.rankings()
    for channel in range(2):
        for i, j in itertools.product(range(5), repeat=2):
            table.bid_ge(i, j, channel)
    assert len(tested) == len(set(tested)), (
        "memoized bid_ge repeated a membership test for the same "
        "(family, tail) operands"
    )
    # And the cache can never have tested more than every ordered pair once
    # per channel.
    assert len(tested) <= 2 * 5 * 5
