"""Multi-round campaigns."""

import random

import pytest

from repro.lppa.campaign import Campaign
from repro.lppa.policies import UniformReplacePolicy


@pytest.fixture()
def campaign(small_db, small_users):
    return Campaign(
        small_db,
        small_users[:20],
        two_lambda=6,
        bmax=127,
        policy=UniformReplacePolicy(0.3),
        rng=random.Random(11),
    )


def test_rounds_are_recorded_in_order(campaign):
    records = campaign.run(3)
    assert [r.round_index for r in records] == [0, 1, 2]
    assert [r.deposit_time for r in records] == [0.0, 30.0, 60.0]
    assert campaign.records == records


def test_series_lengths(campaign):
    campaign.run(4)
    assert len(campaign.revenue_series()) == 4
    assert len(campaign.satisfaction_series()) == 4
    times, sizes = campaign.charge_deposits()
    assert len(times) == len(sizes) == 4
    assert all(size == 20 for size in sizes)  # full rows: everyone wins


def test_mixing_gives_fresh_pseudonyms(campaign):
    records = campaign.run(2)
    assert records[0].pseudonyms is not None
    overlap = set(records[0].pseudonyms.pseudonyms) & set(
        records[1].pseudonyms.pseudonyms
    )
    assert len(overlap) <= 1


def test_mixing_blocks_linkable_view(campaign):
    campaign.run(1)
    with pytest.raises(RuntimeError):
        campaign.linkable_rankings()


def test_unmixed_campaign_exposes_linkable_view(small_db, small_users):
    campaign = Campaign(
        small_db,
        small_users[:10],
        two_lambda=6,
        bmax=127,
        mix_ids=False,
        rng=random.Random(3),
    )
    campaign.run(2)
    assert records_none_pseudonyms(campaign.records)
    assert len(campaign.linkable_rankings()) == 2


def records_none_pseudonyms(records):
    return all(r.pseudonyms is None for r in records)


def test_bids_change_between_rounds(small_db, small_users):
    campaign = Campaign(
        small_db, small_users[:10], two_lambda=6, bmax=127,
        rng=random.Random(5),
    )
    first, second = campaign.run(2)
    # With fresh sensing noise the outcomes should differ.
    assert (
        first.outcome.sum_of_winning_bids()
        != second.outcome.sum_of_winning_bids()
        or first.outcome.wins != second.outcome.wins
    )


def test_conflict_graph_is_stable(campaign):
    before = campaign.conflict_graph
    campaign.run(2)
    assert campaign.conflict_graph is before


def test_revalidating_campaign(small_db, small_users):
    campaign = Campaign(
        small_db,
        small_users[:15],
        two_lambda=6,
        bmax=127,
        policy=UniformReplacePolicy(1.0),
        revalidate=True,
        rng=random.Random(7),
    )
    record = campaign.run_round()
    assert all(w.valid for w in record.outcome.wins)


def test_validation(small_db, small_users):
    with pytest.raises(ValueError):
        Campaign(small_db, [], two_lambda=6, bmax=127)
    with pytest.raises(ValueError):
        Campaign(small_db, small_users, two_lambda=6, bmax=127, round_interval=0)
    campaign = Campaign(small_db, small_users[:5], two_lambda=6, bmax=127)
    with pytest.raises(ValueError):
        campaign.run(0)
