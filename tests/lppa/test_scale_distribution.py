"""Distributional properties of the cr expansion and rd spreading."""

import random
from collections import Counter

import pytest

from repro.lppa.bids_advanced import BidScale, disguise_and_expand
from repro.lppa.policies import KeepZeroPolicy

SCALE = BidScale(bmax=20, rd=4, cr=8)


def test_expansion_is_uniform_within_slot():
    """expand(v) must hit every offset in [cr*v, cr*(v+1)) near-uniformly."""
    rng = random.Random(0)
    counts = Counter(SCALE.expand(3, rng) - SCALE.cr * 3 for _ in range(40000))
    assert set(counts) == set(range(SCALE.cr))
    values = list(counts.values())
    assert max(values) / min(values) < 1.15


def test_zero_spreading_is_uniform_over_band():
    """Stay-zero values must cover [0, rd] near-uniformly (§IV.C.2 step i)."""
    rng = random.Random(1)
    pretends = Counter()
    for _ in range(20000):
        (record,) = disguise_and_expand([0], SCALE, rng, policy=KeepZeroPolicy())
        pretends[record.pretend_value] += 1
    assert set(pretends) == set(range(SCALE.rd + 1))
    values = list(pretends.values())
    assert max(values) / min(values) < 1.15


def test_expanded_zeros_never_reach_genuine_band():
    """Spread zeros stay strictly below the smallest genuine bid's slot."""
    rng = random.Random(2)
    genuine_floor = SCALE.cr * SCALE.offset_value(1)  # smallest positive bid
    for _ in range(5000):
        (record,) = disguise_and_expand([0], SCALE, rng, policy=KeepZeroPolicy())
        assert record.masked_expanded < genuine_floor


def test_genuine_bids_order_is_never_violated_by_expansion():
    rng = random.Random(3)
    for _ in range(2000):
        records = disguise_and_expand([3, 7], SCALE, rng)
        assert records[0].masked_expanded < records[1].masked_expanded
