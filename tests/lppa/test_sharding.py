"""Sharded round execution must be bit-identical to the legacy path.

The scale mode of :mod:`repro.lppa.round.sharding` re-partitions the
expensive phases across worker processes and swaps the Θ(N²) pair scan for
the grid-bucket prefilter.  None of that may change a single bit of the
round result — these tests pin the determinism contract at the shard
boundaries the CI scale-smoke matrix cannot afford to sweep: shards=1
(serial scale mode), shards > SU count, odd SU counts, and the shared-rng
path that must fall back to serial bid synthesis.
"""

import random

import pytest

from repro import obs
from repro.auction.bidders import SecondaryUser
from repro.crypto.cache import cache_disabled
from repro.geo.grid import GridSpec
from repro.lppa.fastsim import run_fast_lppa
from repro.lppa.round import sharding
from repro.lppa.round.sharding import (
    SHARDS_ENV,
    chunk_pairs,
    drain_worker_events,
    resolve_shards,
    shard_slices,
)
from repro.lppa.session import run_lppa_auction
from repro.obs.hist import Histogram
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import TraceRecorder, merge_traces

TWO_LAMBDA = 6
BMAX = 63
N_CHANNELS = 5
GRID = GridSpec(rows=40, cols=40)


def make_users(n, rng):
    """A dense population on the 40x40 grid (lots of conflict pairs)."""
    return [
        SecondaryUser(
            user_id=i,
            cell=(rng.randrange(GRID.rows), rng.randrange(GRID.cols)),
            beta=1.0,
            bids=tuple(
                rng.randrange(0, BMAX + 1) for _ in range(N_CHANNELS)
            ),
        )
        for i in range(n)
    ]


def crypto_round(users, shards):
    return run_lppa_auction(
        users,
        GRID,
        two_lambda=TWO_LAMBDA,
        bmax=BMAX,
        entropy=b"sharding-test",
        shards=shards,
    )


class TestShardSlices:
    def test_balanced_and_contiguous(self):
        assert shard_slices(10, 3) == [(0, 4), (4, 7), (7, 10)]
        assert shard_slices(9, 3) == [(0, 3), (3, 6), (6, 9)]

    def test_single_shard_is_everything(self):
        assert shard_slices(7, 1) == [(0, 7)]

    def test_more_shards_than_items(self):
        assert shard_slices(3, 8) == [(0, 1), (1, 2), (2, 3)]

    def test_empty(self):
        assert shard_slices(0, 4) == []

    def test_covers_range_exactly(self):
        for n in (1, 5, 17, 100):
            for shards in (1, 2, 3, 7, n, n + 5):
                slices = shard_slices(n, shards)
                assert slices[0][0] == 0 and slices[-1][1] == n
                assert all(
                    prev[1] == cur[0]
                    for prev, cur in zip(slices, slices[1:])
                )
                assert all(start < stop for start, stop in slices)

    def test_chunk_pairs_preserves_order(self):
        pairs = [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]
        chunks = chunk_pairs(pairs, 2)
        assert [p for chunk in chunks for p in chunk] == pairs


class TestResolveShards:
    def test_argument_wins(self, monkeypatch):
        monkeypatch.setenv(SHARDS_ENV, "4")
        assert resolve_shards(2) == 2

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(SHARDS_ENV, "3")
        assert resolve_shards(None) == 3

    def test_default_off(self, monkeypatch):
        monkeypatch.delenv(SHARDS_ENV, raising=False)
        assert resolve_shards(None) is None

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            resolve_shards(0)


class TestCryptoShardBoundaries:
    """Full-crypto rounds across the awkward shard counts."""

    @pytest.fixture(scope="class")
    def users(self):
        return make_users(11, random.Random(5))

    @pytest.fixture(scope="class")
    def legacy(self, users):
        return crypto_round(users, None)

    def test_serial_scale_mode(self, users, legacy):
        assert crypto_round(users, 1) == legacy

    def test_odd_user_count_odd_shards(self, users, legacy):
        assert crypto_round(users, 3) == legacy

    def test_more_shards_than_users(self, users, legacy):
        assert crypto_round(users, 50) == legacy

    def test_shared_rng_falls_back_to_serial_bids(self, users):
        reference = run_lppa_auction(
            users, GRID, two_lambda=TWO_LAMBDA, bmax=BMAX,
            rng=random.Random(3),
        )
        sharded = run_lppa_auction(
            users, GRID, two_lambda=TWO_LAMBDA, bmax=BMAX,
            rng=random.Random(3), shards=4,
        )
        assert sharded == reference

    def test_env_variable_enables_scale_mode(self, users, legacy, monkeypatch):
        monkeypatch.setenv(SHARDS_ENV, "2")
        assert crypto_round(users, None) == legacy


class TestPlainShardBoundaries:
    """The integer simulator honours the same contract."""

    @pytest.fixture(scope="class")
    def users(self):
        return make_users(13, random.Random(6))

    @pytest.fixture(scope="class")
    def legacy(self, users):
        return run_fast_lppa(
            users, two_lambda=TWO_LAMBDA, bmax=BMAX, entropy=b"sharding-test"
        )

    @pytest.mark.parametrize("shards", [1, 2, 5, 40])
    def test_bit_identical(self, users, legacy, shards):
        assert run_fast_lppa(
            users,
            two_lambda=TWO_LAMBDA,
            bmax=BMAX,
            entropy=b"sharding-test",
            shards=shards,
        ) == legacy


class TestBucketEdgeConflicts:
    """SUs straddling grid-bucket edges keep their conflict edges."""

    def test_straddling_pair_conflicts_in_scale_mode(self):
        # Deltas of 2λ - 1 on both axes: conflicting, adjacent buckets.
        users = make_users(2, random.Random(0))
        users = [
            users[0].__class__(
                user_id=0, cell=(5, 5), beta=1.0, bids=users[0].bids
            ),
            users[1].__class__(
                user_id=1, cell=(10, 10), beta=1.0, bids=users[1].bids
            ),
        ]
        legacy = crypto_round(users, None)
        assert legacy.conflict_graph.n_edges == 1
        for shards in (1, 2):
            assert crypto_round(users, shards) == legacy


class TestTraceEquality:
    """The flight recorder must not see the sharding at all."""

    TIME_KEYS = ("ts", "ts_end", "dur")

    def _traced(self, users, shards):
        recorder = TraceRecorder(capacity=100_000)
        with obs.collecting(MetricsRegistry(), trace=recorder):
            result = crypto_round(users, shards)
        return result, recorder

    def test_summary_and_events_identical(self):
        users = make_users(9, random.Random(4))
        ref_result, ref_rec = self._traced(users, None)
        sh_result, sh_rec = self._traced(users, 2)
        assert sh_result == ref_result
        assert sh_rec.summary() == ref_rec.summary()
        strip = lambda events: [  # noqa: E731
            {k: v for k, v in e.items() if k not in self.TIME_KEYS}
            for e in events
        ]
        assert strip(sh_rec.events()) == strip(ref_rec.events())


def _strip_times(events):
    """Drop per-process clock fields so streams compare across runs."""
    return [
        {k: v for k, v in e.items() if k not in TestTraceEquality.TIME_KEYS}
        for e in events
    ]


class TestWorkerTelemetry:
    """Worker registries roll up into the parent under the right phases."""

    WORKER_SWEEPS = {
        "shard.locations.worker",
        "shard.bids.worker",
        "shard.conflict.worker",
        "shard.rankings.worker",
    }

    def _collected(self, users, shards):
        registry = MetricsRegistry()
        with obs.collecting(registry):
            crypto_round(users, shards)
        return registry, drain_worker_events()

    def test_worker_timers_land_under_parent_phases(self):
        users = make_users(11, random.Random(5))
        registry, _ = self._collected(users, 2)
        worker = {
            key: stat
            for key, stat in registry.timers.items()
            if key.endswith(".worker")
        }
        assert {key.rsplit("/", 1)[-1] for key in worker} == self.WORKER_SWEEPS
        # Each rollup is scoped under the phase that ran its sweep, and its
        # total worker wall is bounded by that phase's wall times the shard
        # count (the workers cannot have been busier than the pool allows).
        for key, stat in worker.items():
            path = key.rsplit("/", 1)[0]
            phase = registry.timers[f"phase/{path}"]
            assert stat.seconds <= phase.seconds * 2 + 0.25

    def test_kernel_counter_totals_identical_across_shard_counts(self):
        # The mask cache is per-process (workers inherit copy-on-write
        # copies), so its hit/miss split legitimately varies with the shard
        # count; with it bypassed every kernel counter must fold to the
        # same totals whether one worker ran or two.
        # crypto.hmac_batches is also excluded: slicing one population into
        # two contiguous chunks adds one batched call without changing the
        # per-digest work (crypto.hmac itself must match exactly).
        users = make_users(11, random.Random(5))
        with cache_disabled():
            totals = {}
            for shards in (1, 2):
                registry, _ = self._collected(users, shards)
                totals[shards] = {
                    key: value
                    for key, value in registry.totals().items()
                    if not key.startswith("engine.")
                    and key != "crypto.hmac_batches"
                }
        assert totals[1] == totals[2]

    def test_fold_rollups_reapplies_parent_scope(self):
        hist = Histogram()
        hist.observe(0.5, 2)
        event = {"type": "meta", "seq": 0, "ts": 0.0, "name": "w", "args": {}}
        rollup = {
            "counters": {"kernel.calls": 3},
            "timers": {"kernel.time": {"seconds": 1.5, "count": 2}},
            "histograms": {"kernel.sizes": hist.as_dict()},
            "events": [event],
        }
        registry = MetricsRegistry()
        with obs.collecting(registry):
            with obs.phase("p1"):
                sharding._fold_rollups([rollup, None])
        assert registry.counters["p1/kernel.calls"] == 3
        stat = registry.timers["p1/kernel.time"]
        assert stat.seconds == pytest.approx(1.5)
        assert stat.count == 2
        assert registry.histograms["p1/kernel.sizes"].count == 2
        assert drain_worker_events() == [event]
        assert drain_worker_events() == []

    def test_merged_trace_identical_across_shard_counts(self):
        users = make_users(9, random.Random(4))
        merged = {}
        for shards in (1, 2):
            recorder = TraceRecorder(capacity=100_000)
            with obs.collecting(MetricsRegistry(), trace=recorder):
                crypto_round(users, shards)
            donor = TraceRecorder(capacity=16)  # header for the worker source
            _, events = merge_traces(
                [
                    (recorder.header(), recorder.events()),
                    (donor.header(), drain_worker_events()),
                ],
                roles=["parent", "shard-worker"],
            )
            merged[shards] = _strip_times(events)
        assert merged[1] == merged[2]
