"""The fast numeric simulator vs the full-crypto session."""

import random

import pytest

from repro.auction.conflict import build_conflict_graph
from repro.lppa.fastsim import run_fast_lppa
from repro.lppa.policies import UniformReplacePolicy
from repro.lppa.session import run_lppa_auction


def test_outcome_invariants(small_users):
    result = run_fast_lppa(
        small_users, two_lambda=6, bmax=127, rng=random.Random(1)
    )
    outcome = result.outcome
    for win in outcome.wins:
        true_bid = small_users[win.bidder].bids[win.channel]
        assert win.valid == (true_bid > 0)
        assert win.charge == (true_bid if win.valid else 0)


def test_every_user_wins_exactly_once(small_users):
    """With full masked rows (zeros included) every row is consumed by a win."""
    result = run_fast_lppa(
        small_users, two_lambda=6, bmax=127, rng=random.Random(2)
    )
    assert sorted(w.bidder for w in result.outcome.wins) == list(
        range(len(small_users))
    )


def test_conflict_graph_matches_plaintext(small_users):
    result = run_fast_lppa(
        small_users, two_lambda=6, bmax=127, rng=random.Random(3)
    )
    assert result.conflict_graph.edges == build_conflict_graph(
        [u.cell for u in small_users], 6
    ).edges


def test_prebuilt_conflict_graph_is_used(small_users):
    conflict = build_conflict_graph([u.cell for u in small_users], 6)
    result = run_fast_lppa(
        small_users, two_lambda=6, bmax=127, rng=random.Random(4), conflict=conflict
    )
    assert result.conflict_graph is conflict


def test_full_crypto_rankings_equal_integer_rankings(small_db, small_users):
    """The masked table's order is exactly the hidden integer order.

    This is the equivalence that justifies using the fast simulator for the
    evaluation sweeps: rebuild an IntegerMaskedTable from the true expanded
    values a full-crypto session committed to, and require identical
    rankings.
    """
    from repro.lppa.fastsim import IntegerMaskedTable

    users = small_users[:10]
    full = run_lppa_auction(
        users, small_db.coverage.grid, two_lambda=6, bmax=127, rng=random.Random(9)
    )
    values = [
        [c.masked_expanded for c in d.channels] for d in full.disclosures
    ]
    assert IntegerMaskedTable(values).rankings() == full.rankings


def test_disguises_flow_through(small_users):
    result = run_fast_lppa(
        small_users,
        two_lambda=6,
        bmax=127,
        policy=UniformReplacePolicy(1.0),
        rng=random.Random(5),
    )
    assert any(c.disguised for d in result.disclosures for c in d.channels)


def test_validation(small_users):
    with pytest.raises(ValueError):
        run_fast_lppa([], two_lambda=6, bmax=127)
