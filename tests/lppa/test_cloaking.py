"""The cloaking baseline."""

import random

import pytest

from repro.auction.interference import count_violations
from repro.geo.grid import GridSpec
from repro.lppa.cloaking import cloak_cell, cloak_users, run_cloaked_auction

GRID = GridSpec(rows=100, cols=100, cell_km=0.75)


def test_cloak_snaps_to_supercell_centre():
    assert cloak_cell((0, 0), GRID, 10) == (5, 5)
    assert cloak_cell((9, 9), GRID, 10) == (5, 5)
    assert cloak_cell((10, 0), GRID, 10) == (15, 5)
    assert cloak_cell((99, 99), GRID, 10) == (95, 95)


def test_cloak_size_one_is_identity():
    for cell in [(0, 0), (42, 17), (99, 99)]:
        assert cloak_cell(cell, GRID, 1) == cell


def test_cloak_stays_in_grid():
    grid = GridSpec(rows=13, cols=13, cell_km=1.0)
    for cell in grid.cells():
        cloaked = cloak_cell(cell, grid, 10)
        assert grid.contains(cloaked)


def test_cloak_validation():
    with pytest.raises(ValueError):
        cloak_cell((0, 0), GRID, 0)
    with pytest.raises(ValueError):
        cloak_cell((100, 0), GRID, 5)


def test_cloak_users(small_users):
    cloaked = cloak_users(small_users, GRID, 20)
    assert len(cloaked) == len(small_users)
    # Users sharing a super-cell share a cloak.
    for user, cell in zip(small_users, cloaked):
        assert cell == cloak_cell(user.cell, GRID, 20)


def test_cloaked_auction_charges_true_bids(small_users):
    outcome, conflict = run_cloaked_auction(
        small_users, GRID, random.Random(0), two_lambda=6, cloak_size=10
    )
    for win in outcome.wins:
        assert win.charge == small_users[win.bidder].bids[win.channel]
    assert conflict.n_users == len(small_users)


def test_coarse_cloak_can_cause_violations(small_db):
    """Engineer a missed conflict: two near users straddling a boundary."""
    from repro.auction.bidders import generate_users

    # Cells (9, 9) and (10, 10) are 1 apart but cloak-10 to (5,5)/(15,15).
    users = generate_users(
        small_db, 2, random.Random(1), cells=[(9, 9), (10, 10)]
    )
    if not (users[0].available_set() & users[1].available_set()):
        pytest.skip("no shared channel at the chosen cells")
    outcome, conflict = run_cloaked_auction(
        users, small_db.coverage.grid, random.Random(2),
        two_lambda=6, cloak_size=10,
    )
    # The cloaked graph must miss the true conflict...
    assert not conflict.are_conflicting(0, 1)
    # ...so if both won the same channel, that is a physical violation.
    report = count_violations(outcome, [u.cell for u in users], 6)
    per_channel = {}
    for win in outcome.valid_wins:
        per_channel.setdefault(win.channel, []).append(win.bidder)
    if any(len(v) == 2 for v in per_channel.values()):
        assert report.n_violations > 0


def test_empty_population_rejected():
    with pytest.raises(ValueError):
        run_cloaked_auction([], GRID, random.Random(0), two_lambda=6, cloak_size=5)
