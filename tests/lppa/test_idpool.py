"""Pseudonym mixing."""

import random

import pytest

from repro.lppa.idpool import EpochIdPool, IdPool, IdPoolExhausted


def test_fresh_pool_unique_ids():
    pool = IdPool.fresh(50, random.Random(0))
    assert pool.n_users == 50
    assert len(set(pool.pseudonyms)) == 50


def test_wire_id_and_reverse_map():
    pool = IdPool.fresh(10, random.Random(1))
    reverse = pool.reverse_map()
    for user in range(10):
        assert reverse[pool.wire_id(user)] == user


def test_rounds_are_unlinkable():
    """Fresh pools share (almost) no pseudonyms between rounds."""
    round1 = IdPool.fresh(100, random.Random(2))
    round2 = IdPool.fresh(100, random.Random(3))
    overlap = set(round1.pseudonyms) & set(round2.pseudonyms)
    assert len(overlap) < 5  # expected ~0.01 collisions at the default space


def test_validation():
    with pytest.raises(ValueError):
        IdPool.fresh(0, random.Random(0))
    with pytest.raises(ValueError):
        IdPool.fresh(10, random.Random(0), id_space=5)
    with pytest.raises(ValueError):
        IdPool(pseudonyms=(1, 1))


# -- EpochIdPool: the epoch service's dynamic allocator ----------------------


def test_epoch_pool_acquire_is_distinct_and_deterministic():
    ids = [EpochIdPool(random.Random(7)).acquire() for _ in range(2)]
    assert ids[0] == ids[1]  # same rng seed -> same draw
    pool = EpochIdPool(random.Random(7))
    drawn = [pool.acquire() for _ in range(100)]
    assert len(set(drawn)) == 100
    assert pool.in_use == frozenset(drawn)


def test_released_id_is_not_reissued_within_the_same_epoch_window():
    """Regression for the mid-run departure collision: with a tiny id space
    the freed id is the *only* candidate left, so an allocator that returns
    released ids straight to the free pool would reissue it immediately —
    conflating the departed SU with the newcomer."""
    pool = EpochIdPool(random.Random(0), id_space=3)
    a, b, c = pool.acquire(), pool.acquire(), pool.acquire()
    pool.release(b)  # SU departs mid-run
    assert pool.quarantined == frozenset({b})
    # The only unheld id is the quarantined one: a same-window join must
    # fail rather than resurrect the departed SU's pseudonym.
    with pytest.raises(IdPoolExhausted):
        pool.acquire()
    assert pool.in_use == frozenset({a, c})


def test_released_id_is_reusable_after_the_epoch_window_rolls():
    pool = EpochIdPool(random.Random(1), id_space=2)
    first = pool.acquire()
    second = pool.acquire()
    pool.release(first)
    freed = pool.advance_epoch()
    assert freed == 1
    assert pool.epoch == 1
    assert pool.quarantined == frozenset()
    # Reuse across epoch windows is fine (the paper's id mixing).
    assert pool.acquire() == first
    assert pool.in_use == frozenset({first, second})


def test_epoch_pool_release_validation():
    pool = EpochIdPool(random.Random(2))
    with pytest.raises(ValueError):
        pool.release(123)  # never acquired
    held = pool.acquire()
    pool.release(held)
    with pytest.raises(ValueError):
        pool.release(held)  # double release
    with pytest.raises(ValueError):
        EpochIdPool(random.Random(0), id_space=0)


def test_epoch_pool_many_epochs_of_churn_never_collide_within_a_window():
    pool = EpochIdPool(random.Random(3), id_space=64)
    rng = random.Random(99)
    live = {}
    for _ in range(20):  # epochs
        released_this_window = set()
        for _ in range(rng.randrange(1, 6)):  # churn events in the window
            if live and rng.random() < 0.5:
                key = rng.choice(sorted(live))
                pool.release(live.pop(key))
                released_this_window.add(key)
            else:
                pseudonym = pool.acquire()
                assert pseudonym not in pool.quarantined
                assert pseudonym not in released_this_window
                live[pseudonym] = pseudonym
        pool.advance_epoch()
