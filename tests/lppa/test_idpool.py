"""Pseudonym mixing."""

import random

import pytest

from repro.lppa.idpool import IdPool


def test_fresh_pool_unique_ids():
    pool = IdPool.fresh(50, random.Random(0))
    assert pool.n_users == 50
    assert len(set(pool.pseudonyms)) == 50


def test_wire_id_and_reverse_map():
    pool = IdPool.fresh(10, random.Random(1))
    reverse = pool.reverse_map()
    for user in range(10):
        assert reverse[pool.wire_id(user)] == user


def test_rounds_are_unlinkable():
    """Fresh pools share (almost) no pseudonyms between rounds."""
    round1 = IdPool.fresh(100, random.Random(2))
    round2 = IdPool.fresh(100, random.Random(3))
    overlap = set(round1.pseudonyms) & set(round2.pseudonyms)
    assert len(overlap) < 5  # expected ~0.01 collisions at the default space


def test_validation():
    with pytest.raises(ValueError):
        IdPool.fresh(0, random.Random(0))
    with pytest.raises(ValueError):
        IdPool.fresh(10, random.Random(0), id_space=5)
    with pytest.raises(ValueError):
        IdPool(pseudonyms=(1, 1))
