"""The entropy module: one seeding contract."""

import pytest

from repro.lppa.entropy import alloc_rng, bidder_rng, derive_round_rngs
from repro.utils.rng import spawn_rng


def test_derive_round_rngs_matches_the_labelled_streams():
    user_rngs, alloc = derive_round_rngs("round-7", 4)
    assert len(user_rngs) == 4
    for i, rng in enumerate(user_rngs):
        expected = spawn_rng("round-7", "bidder", str(i))
        assert rng.random() == expected.random()
    assert alloc.random() == spawn_rng("round-7", "alloc").random()


def test_bidder_stream_is_independent_of_population_size():
    """A networked SU derives its stream alone; it must equal the stream the
    in-process derivation hands the same id, whatever n_users is."""
    lone = bidder_rng("round-9", 2)
    in_small, _ = derive_round_rngs("round-9", 3)
    in_large, _ = derive_round_rngs("round-9", 30)
    draws = [lone.random() for _ in range(5)]
    assert [in_small[2].random() for _ in range(5)] == draws
    assert [in_large[2].random() for _ in range(5)] == draws


def test_alloc_stream_differs_from_bidder_streams():
    assert alloc_rng("round-1").random() != bidder_rng("round-1", 0).random()


def test_fastsim_no_longer_re_exports_derive_round_rngs():
    """The deprecation shim is gone: the one home is repro.lppa.entropy."""
    import repro.lppa.fastsim as fastsim

    with pytest.raises(AttributeError):
        fastsim.derive_round_rngs
    assert "derive_round_rngs" not in fastsim.__all__
