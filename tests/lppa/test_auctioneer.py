"""The auctioneer endpoint: protocol phases and their ordering."""

import random

import pytest

from repro.lppa.auctioneer import Auctioneer
from repro.lppa.bids_advanced import submit_bids_advanced
from repro.lppa.location import submit_location
from repro.lppa.ttp import TrustedThirdParty
from repro.geo.grid import GridSpec

GRID = GridSpec(rows=20, cols=20, cell_km=1.0)


def _setup_round(bid_rows, cells, seed=0):
    ttp, keyring, scale = TrustedThirdParty.setup(
        b"auctioneer-test", len(bid_rows[0]), bmax=30
    )
    rng = random.Random(seed)
    auctioneer = Auctioneer(len(bid_rows[0]))
    locations = [
        submit_location(i, cell, keyring.g0, GRID, 4)
        for i, cell in enumerate(cells)
    ]
    bids = [
        submit_bids_advanced(i, row, keyring, scale, rng)[0]
        for i, row in enumerate(bid_rows)
    ]
    return ttp, auctioneer, locations, bids, rng


def test_full_round():
    bid_rows = [[10, 0], [3, 8], [0, 5]]
    cells = [(0, 0), (10, 10), (1, 1)]
    ttp, auctioneer, locations, bids, rng = _setup_round(bid_rows, cells)
    auctioneer.receive_locations(locations)
    auctioneer.receive_bids(bids)
    auctioneer.run_allocation(rng)
    outcome = auctioneer.charge_winners(ttp, n_users=3)
    assert outcome.n_users == 3
    for win in outcome.wins:
        if win.valid:
            assert win.charge == bid_rows[win.bidder][win.channel]
        else:
            assert bid_rows[win.bidder][win.channel] == 0


def test_phase_ordering_enforced():
    bid_rows = [[10, 0]]
    cells = [(0, 0)]
    ttp, auctioneer, locations, bids, rng = _setup_round(bid_rows, cells)
    with pytest.raises(RuntimeError):
        auctioneer.run_allocation(rng)
    auctioneer.receive_locations(locations)
    with pytest.raises(RuntimeError):
        auctioneer.run_allocation(rng)
    auctioneer.receive_bids(bids)
    with pytest.raises(RuntimeError):
        auctioneer.charge_winners(ttp, n_users=1)
    auctioneer.run_allocation(rng)
    auctioneer.charge_winners(ttp, n_users=1)


def test_conflicting_submission_width_rejected():
    auctioneer = Auctioneer(3)
    _, _, _, bids, _ = _setup_round([[10, 0]], [(0, 0)])
    with pytest.raises(ValueError):
        auctioneer.receive_bids(bids)


def test_rankings_available_after_bids():
    bid_rows = [[10, 0], [3, 8]]
    cells = [(0, 0), (10, 10)]
    _, auctioneer, locations, bids, _ = _setup_round(bid_rows, cells)
    with pytest.raises(RuntimeError):
        auctioneer.channel_rankings()
    auctioneer.receive_bids(bids)
    rankings = auctioneer.channel_rankings()
    assert len(rankings) == 2
    assert rankings[0][0] == [0]  # bidder 0 holds the channel-0 maximum


def test_conflict_graph_property():
    _, auctioneer, locations, _, _ = _setup_round([[10, 0], [3, 8]], [(0, 0), (1, 1)])
    with pytest.raises(RuntimeError):
        auctioneer.conflict_graph
    auctioneer.receive_locations(locations)
    assert auctioneer.conflict_graph.are_conflicting(0, 1)


def test_invalid_channel_count():
    with pytest.raises(ValueError):
        Auctioneer(0)
