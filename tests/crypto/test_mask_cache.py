"""MaskCache unit semantics: LRU bounds, epochs, counters, global toggles."""

import pytest

from repro import obs
from repro.crypto.cache import (
    MaskCache,
    cache_disabled,
    cache_enabled,
    get_mask_cache,
    set_mask_cache,
)
from repro.prefix.membership import MaskSpec, mask_specs
from repro.prefix.prefixes import prefix_family


@pytest.fixture()
def cache():
    """A small, fresh cache installed as the process cache for one test."""
    fresh = MaskCache(max_entries=4)
    previous = set_mask_cache(fresh)
    yield fresh
    set_mask_cache(previous)


def _key(n):
    return (b"k%d" % n, b"", 16, (b"m%d" % n,))


def test_get_put_and_counters(cache):
    assert cache.get(_key(1)) is None
    cache.put(_key(1), (b"d" * 16,))
    assert cache.get(_key(1)) == (b"d" * 16,)
    assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1, "evictions": 0}


def test_lru_eviction_order(cache):
    for n in range(4):
        cache.put(_key(n), (bytes(16),))
    cache.get(_key(0))  # refresh 0: now 1 is least recent
    cache.put(_key(9), (bytes(16),))
    assert cache.get(_key(1)) is None  # evicted
    assert cache.get(_key(0)) is not None
    assert cache.evictions == 1


def test_reput_does_not_grow(cache):
    cache.put(_key(1), (bytes(16),))
    cache.put(_key(1), (bytes(16),))
    assert len(cache) == 1


def test_rejects_silly_capacity():
    with pytest.raises(ValueError):
        MaskCache(max_entries=0)


def test_epoch_transition_clears(cache):
    cache.put(_key(1), (bytes(16),))
    assert cache.note_key_epoch(b"epoch-A") is False  # first epoch: no clear
    assert len(cache) == 1
    assert cache.note_key_epoch(b"epoch-A") is False  # same epoch: no clear
    assert len(cache) == 1
    assert cache.note_key_epoch(b"epoch-B") is True  # new epoch: dropped
    assert len(cache) == 0
    assert cache.epoch == b"epoch-B"


def test_epoch_transition_with_live_keys_is_selective(cache):
    cache.put(_key(1), (bytes(16),))
    cache.put(_key(2), (bytes(16),))
    cache.note_key_epoch(b"epoch-A", [b"k1", b"k2"])
    # Partial rotation: k1 survives, k2 is retired.
    with obs.collecting() as registry:
        assert cache.note_key_epoch(b"epoch-B", [b"k1", b"k3"]) is True
    assert cache.get(_key(1)) is not None
    assert cache.get(_key(2)) is None
    assert registry.counters["crypto.mask_cache.invalidations"] == 1


def test_epoch_transition_with_all_keys_live_drops_nothing(cache):
    cache.put(_key(1), (bytes(16),))
    cache.note_key_epoch(b"epoch-A", [b"k1"])
    with obs.collecting() as registry:
        # New fingerprint but every cached key still live (e.g. only gc,
        # which never masks, rotated): zero invalidation events.
        assert cache.note_key_epoch(b"epoch-B", [b"k1"]) is True
    assert len(cache) == 1
    assert "crypto.mask_cache.invalidations" not in registry.counters


def test_drop_stale_keys_counts_dropped_entries(cache):
    for n in range(3):
        cache.put(_key(n), (bytes(16),))
    assert cache.drop_stale_keys([b"k0"]) == 2
    assert len(cache) == 1
    assert cache.drop_stale_keys([b"k0"]) == 0


def test_cache_disabled_context_restores(cache):
    assert cache_enabled()
    with cache_disabled():
        assert not cache_enabled()
        specs = [MaskSpec.of(b"k", prefix_family(3, 4))]
        mask_specs(specs)
        assert len(cache) == 0  # bypassed entirely: no store, no counters
    assert cache_enabled()
    assert cache.stats()["misses"] == 0


def test_mask_specs_populates_process_cache(cache):
    specs = [MaskSpec.of(b"k", prefix_family(3, 4))]
    first = mask_specs(specs)
    assert cache.stats() == {"entries": 1, "hits": 0, "misses": 1, "evictions": 0}
    second = mask_specs(specs)
    assert cache.stats()["hits"] == 1
    assert second == first


def test_obs_counters_follow_cache_events(cache):
    specs = [MaskSpec.of(b"k", prefix_family(3, 4))]
    with obs.collecting() as registry:
        mask_specs(specs)
        mask_specs(specs)
        cache.clear()
    counters = registry.counters
    assert counters["crypto.mask_cache.misses"] == 1
    assert counters["crypto.mask_cache.hits"] == 1
    assert counters["crypto.mask_cache.invalidations"] == 1
    assert counters["crypto.hmac_batches"] == 1  # second call was all hits


def test_distinct_digest_bytes_are_distinct_entries(cache):
    fam = prefix_family(3, 4)
    wide = mask_specs([MaskSpec.of(b"k", fam, digest_bytes=32)])[0]
    narrow = mask_specs([MaskSpec.of(b"k", fam, digest_bytes=8)])[0]
    assert len(cache) == 2
    assert {d[:8] for d in wide.digests} == set(narrow.digests)


def test_process_default_cache_exists():
    assert isinstance(get_mask_cache(), MaskCache)
