"""Key ring generation and derivation."""

import pytest

from repro.crypto.keys import KeyRing, derive_key, generate_keyring


def test_derivation_is_deterministic():
    assert derive_key(b"master", "label") == derive_key(b"master", "label")


def test_derivation_separates_labels_and_masters():
    assert derive_key(b"master", "a") != derive_key(b"master", "b")
    assert derive_key(b"m1", "a") != derive_key(b"m2", "a")


def test_generate_keyring_shape():
    ring = generate_keyring(b"seed", 8, rd=3, cr=4)
    assert ring.n_channels == 8
    assert ring.rd == 3 and ring.cr == 4
    assert len(ring.g0) == len(ring.gb) == len(ring.gc) == 16


def test_all_keys_distinct():
    ring = generate_keyring(b"seed", 16)
    keys = [ring.g0, ring.gb, ring.gc, *ring.gb_channels]
    assert len(set(keys)) == len(keys)


def test_keyring_is_reproducible():
    assert generate_keyring(b"seed", 4) == generate_keyring(b"seed", 4)
    assert generate_keyring(b"seed", 4) != generate_keyring(b"other", 4)


def test_channel_key_bounds():
    ring = generate_keyring(b"seed", 3)
    assert ring.channel_key(2) == ring.gb_channels[2]
    with pytest.raises(IndexError):
        ring.channel_key(3)
    with pytest.raises(IndexError):
        ring.channel_key(-1)


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        generate_keyring(b"", 4)
    with pytest.raises(ValueError):
        generate_keyring(b"seed", 0)
    with pytest.raises(ValueError):
        KeyRing(g0=b"a", gb=b"b", gc=b"c", rd=-1)
    with pytest.raises(ValueError):
        KeyRing(g0=b"a", gb=b"b", gc=b"c", cr=0)


def test_describe_exposes_no_key_material():
    ring = generate_keyring(b"seed", 4)
    summary = ring.describe()
    for value in summary.values():
        assert not isinstance(value, bytes)
    assert summary["n_channels"] == 4
