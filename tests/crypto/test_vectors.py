"""Official NIST / RFC 4231 vectors through every crypto backend.

`tests/crypto/test_sha256.py` and `test_hmac.py` pin the from-scratch
primitives against external ground truth; this module closes the loop for
the *backend seam*: the scalar, shared-key-batch, and per-key-pairs entry
points of every backend (pure, hashlib, numpy) must reproduce the same
published answers, so no backend can drift from the standard without a
test naming it.
"""

import pytest

from repro.crypto.backend import (
    hmac_digest,
    hmac_digest_batch,
    hmac_digest_pairs,
    use_backend,
)
from repro.crypto.sha256_numpy import hmac_sha256_many, sha256_many

ALL_BACKENDS = ("pure", "hashlib", "numpy")

# FIPS 180-4 / NIST CAVP known-answer vectors.
NIST_SHA256 = [
    (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
    (b"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
    (
        b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
    ),
    (
        b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
        b"hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
        "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
    ),
]

# RFC 4231 HMAC-SHA256 test cases 1-4, 6, 7 (full 256-bit outputs).
RFC4231 = [
    (
        b"\x0b" * 20,
        b"Hi There",
        "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
    ),
    (
        b"Jefe",
        b"what do ya want for nothing?",
        "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
    ),
    (
        b"\xaa" * 20,
        b"\xdd" * 50,
        "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe",
    ),
    (
        bytes(range(1, 26)),
        b"\xcd" * 50,
        "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b",
    ),
    (
        b"\xaa" * 131,
        b"Test Using Larger Than Block-Size Key - Hash Key First",
        "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54",
    ),
    (
        b"\xaa" * 131,
        b"This is a test using a larger than block-size key and a larger t"
        b"han block-size data. The key needs to be hashed before being use"
        b"d by the HMAC algorithm.",
        "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2",
    ),
]

# RFC 4231 test case 5: output truncated to 128 bits — the same truncation
# discipline the masking layer's digest_bytes=16 wire format uses.
RFC4231_TRUNCATED = (
    b"\x0c" * 20,
    b"Test With Truncation",
    "a3b6167473100ee06e0c796c2955552b",
)


@pytest.mark.parametrize("backend", ALL_BACKENDS)
@pytest.mark.parametrize("key,message,expected", RFC4231)
def test_rfc4231_scalar_every_backend(backend, key, message, expected):
    with use_backend(backend):
        assert hmac_digest(key, message).hex() == expected


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_rfc4231_batch_every_backend(backend):
    with use_backend(backend):
        for key, message, expected in RFC4231:
            # Repeat each message so the batch path's state reuse shows.
            digests = hmac_digest_batch(key, [message] * 3)
            assert [d.hex() for d in digests] == [expected] * 3


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_rfc4231_pairs_every_backend(backend):
    items = [(key, message) for key, message, _ in RFC4231]
    with use_backend(backend):
        digests = hmac_digest_pairs(items)
    assert [d.hex() for d in digests] == [expected for _, _, expected in RFC4231]


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_rfc4231_truncated_case_every_backend(backend):
    key, message, expected = RFC4231_TRUNCATED
    with use_backend(backend):
        assert hmac_digest(key, message)[:16].hex() == expected
        assert hmac_digest_batch(key, [message])[0][:16].hex() == expected


def test_numpy_sha256_nist_vectors():
    messages = [m for m, _ in NIST_SHA256]
    digests = sha256_many(messages)
    assert [d.hex() for d in digests] == [e for _, e in NIST_SHA256]


def test_numpy_sha256_padding_boundaries():
    import hashlib

    messages = [
        bytes(i % 251 for i in range(size))
        for size in (0, 1, 54, 55, 56, 57, 63, 64, 65, 119, 128, 1000)
    ]
    assert sha256_many(messages) == [
        hashlib.sha256(m).digest() for m in messages
    ]


def test_numpy_hmac_per_lane_keys_rfc4231():
    keys = [key for key, _, _ in RFC4231]
    messages = [message for _, message, _ in RFC4231]
    digests = hmac_sha256_many(keys, messages)
    assert [d.hex() for d in digests] == [expected for _, _, expected in RFC4231]
