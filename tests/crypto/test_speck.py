"""Speck64/128 and its CTR mode."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.speck import Speck64128, ctr_decrypt, ctr_encrypt

# The official Speck64/128 test vector (Beaulieu et al., Appendix C):
# key = 1b1a1918 13121110 0b0a0908 03020100, plaintext = 3b726574 7475432d,
# ciphertext = 8c6fa548 454e028b.
OFFICIAL_KEY = struct.pack("<4I", 0x03020100, 0x0B0A0908, 0x13121110, 0x1B1A1918)
OFFICIAL_PT = struct.pack("<2I", 0x7475432D, 0x3B726574)
OFFICIAL_CT = struct.pack("<2I", 0x454E028B, 0x8C6FA548)


def test_official_vector_encrypt():
    assert Speck64128(OFFICIAL_KEY).encrypt_block(OFFICIAL_PT) == OFFICIAL_CT


def test_official_vector_decrypt():
    assert Speck64128(OFFICIAL_KEY).decrypt_block(OFFICIAL_CT) == OFFICIAL_PT


def test_wrong_key_size_rejected():
    with pytest.raises(ValueError):
        Speck64128(b"short")


@pytest.mark.parametrize("bad", [b"", b"7bytes!", b"9 bytes!!"])
def test_wrong_block_size_rejected(bad):
    cipher = Speck64128(OFFICIAL_KEY)
    with pytest.raises(ValueError):
        cipher.encrypt_block(bad)
    with pytest.raises(ValueError):
        cipher.decrypt_block(bad)


@settings(max_examples=50, deadline=None)
@given(key=st.binary(min_size=16, max_size=16), block=st.binary(min_size=8, max_size=8))
def test_block_roundtrip(key, block):
    cipher = Speck64128(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@settings(max_examples=50, deadline=None)
@given(
    key=st.binary(min_size=16, max_size=16),
    nonce=st.binary(min_size=4, max_size=4),
    payload=st.binary(max_size=100),
)
def test_ctr_roundtrip(key, nonce, payload):
    cipher = Speck64128(key)
    assert ctr_decrypt(cipher, nonce, ctr_encrypt(cipher, nonce, payload)) == payload


def test_ctr_distinct_nonces_give_distinct_ciphertexts():
    cipher = Speck64128(OFFICIAL_KEY)
    payload = b"\x00" * 16
    assert ctr_encrypt(cipher, b"aaaa", payload) != ctr_encrypt(cipher, b"bbbb", payload)


def test_ctr_preserves_length():
    cipher = Speck64128(OFFICIAL_KEY)
    for size in (0, 1, 7, 8, 9, 31):
        assert len(ctr_encrypt(cipher, b"nonc", b"x" * size)) == size


def test_ctr_rejects_bad_nonce():
    cipher = Speck64128(OFFICIAL_KEY)
    with pytest.raises(ValueError):
        ctr_encrypt(cipher, b"toolong!", b"payload")
