"""Cross-backend differential suite: bit-exactness is the optimization gate.

Correctness of the masking layer means *identical wire bytes* — a masked
digest either matches its counterpart or the protocol silently breaks.  So
every crypto backend (pure reference, hashlib, numpy) must produce, on
shared seeds:

* bit-identical digests and masked tables for every primitive;
* byte-identical encoded wire messages for full submissions;
* identical round results, trace summaries, and audit verdicts for a full
  25-SU auction round, each compared against the pure-python baseline.

Each backend run starts from a cleared masked-digest cache so the backend
under test actually computes its digests instead of replaying another
backend's (which would vacuously pass).
"""

import random

import pytest

from repro import obs
from repro.analysis.trace_audit import audit_comm_cost, audit_privacy
from repro.auction.bidders import generate_users
from repro.crypto.backend import use_backend
from repro.crypto.cache import get_mask_cache
from repro.crypto.keys import generate_keyring
from repro.geo.datasets import make_database
from repro.geo.grid import GridSpec
from repro.lppa.bids_advanced import BidScale, submit_bids_advanced
from repro.lppa.codec import encode_bids, encode_location
from repro.lppa.location import submit_location, submit_locations
from repro.lppa.session import run_lppa_auction
from repro.prefix.membership import mask_prefixes, mask_range, mask_value
from repro.prefix.prefixes import prefix_family

BACKENDS = ("pure", "hashlib", "numpy")
REFERENCE = "pure"
OPTIMIZED = tuple(b for b in BACKENDS if b != REFERENCE)

N_USERS = 25
N_CHANNELS = 10
GRID = GridSpec(rows=20, cols=20, cell_km=3.75)


def _fresh(backend):
    """Context for one backend run that must do its own digest work."""
    get_mask_cache().clear()
    return use_backend(backend)


@pytest.fixture(scope="module")
def database():
    return make_database(4, n_channels=N_CHANNELS, grid=GRID)


@pytest.fixture(scope="module")
def users(database):
    return generate_users(database, N_USERS, random.Random(77))


# ---------------------------------------------------------------- primitives


@pytest.mark.parametrize("backend", OPTIMIZED)
def test_mask_value_digests_identical(backend):
    for width in (1, 4, 8, 13):
        for x in (0, 1, (1 << width) - 1, (1 << width) // 3):
            with _fresh(REFERENCE):
                reference = mask_value(b"k", x, width, domain=b"d")
            with _fresh(backend):
                candidate = mask_value(b"k", x, width, domain=b"d")
            assert candidate.digests == reference.digests


@pytest.mark.parametrize("backend", OPTIMIZED)
def test_mask_range_padded_identical(backend):
    # Same pad RNG seed on both sides: fillers must come out identical too.
    with _fresh(REFERENCE):
        reference = mask_range(
            b"k", 100, 900, 10, pad_to=18, rng=random.Random(5)
        )
    with _fresh(backend):
        candidate = mask_range(
            b"k", 100, 900, 10, pad_to=18, rng=random.Random(5)
        )
    assert candidate.digests == reference.digests


@pytest.mark.parametrize("backend", OPTIMIZED)
@pytest.mark.parametrize("digest_bytes", (8, 16, 32))
def test_truncation_identical(backend, digest_bytes):
    family = prefix_family(1234, 12)
    with _fresh(REFERENCE):
        reference = mask_prefixes(b"key", family, digest_bytes=digest_bytes)
    with _fresh(backend):
        candidate = mask_prefixes(b"key", family, digest_bytes=digest_bytes)
    assert candidate == reference


@pytest.mark.parametrize("backend", OPTIMIZED)
def test_keyring_identical(backend):
    with _fresh(REFERENCE):
        reference = generate_keyring(b"diff-seed", N_CHANNELS)
    with _fresh(backend):
        candidate = generate_keyring(b"diff-seed", N_CHANNELS)
    assert candidate == reference


# ------------------------------------------------------------- wire messages


def _location_wire(backend, keyring):
    cells = [(3 * i % GRID.rows, 7 * i % GRID.cols) for i in range(N_USERS)]
    with _fresh(backend):
        subs = submit_locations(cells, keyring.g0, GRID, 6)
        # The scalar path must agree with the population batch.
        scalar = submit_location(0, cells[0], keyring.g0, GRID, 6)
    assert scalar == subs[0]
    return [encode_location(s) for s in subs]


def _bid_wire(backend, keyring, scale):
    blobs = []
    with _fresh(backend):
        for uid in range(N_USERS):
            rng = random.Random(1000 + uid)
            bids = [rng.randrange(scale.bmax + 1) for _ in range(N_CHANNELS)]
            submission, _ = submit_bids_advanced(
                uid, bids, keyring, scale, random.Random(2000 + uid)
            )
            blobs.append(encode_bids(submission))
    return blobs


@pytest.mark.parametrize("backend", OPTIMIZED)
def test_full_submission_wire_bytes_identical(backend):
    keyring = generate_keyring(b"diff-wire", N_CHANNELS)
    scale = BidScale(bmax=127, rd=keyring.rd, cr=keyring.cr)
    assert _location_wire(backend, keyring) == _location_wire(REFERENCE, keyring)
    assert _bid_wire(backend, keyring, scale) == _bid_wire(REFERENCE, keyring, scale)


# ----------------------------------------------------------- full 25-SU round


def _traced_round(backend, users):
    with _fresh(backend):
        with obs.tracing() as recorder:
            result = run_lppa_auction(
                users, GRID, two_lambda=6, bmax=127, entropy="backend-diff:0"
            )
    return recorder, result


@pytest.fixture(scope="module")
def reference_round(users):
    return _traced_round(REFERENCE, users)


@pytest.mark.parametrize("backend", OPTIMIZED)
def test_round_matches_pure_baseline(backend, users, reference_round, database):
    """The acceptance gate: a whole round, digest for digest.

    ``LppaResult`` equality covers the outcome (winners/charges), conflict
    graph, rankings, disclosures and every byte-count; the trace summary
    covers each message's payload and framed wire size; the Theorem-4 comm
    audit and BCM privacy replay must then reach identical verdicts from
    identical adversary-visible streams.
    """
    ref_recorder, ref_result = reference_round
    recorder, result = _traced_round(backend, users)

    assert result == ref_result
    assert recorder.summary() == ref_recorder.summary()

    comm = audit_comm_cost(recorder.events())
    ref_comm = audit_comm_cost(ref_recorder.events())
    assert comm.passed and ref_comm.passed
    assert [r.measured_masked_bits for r in comm.rounds] == [
        r.measured_masked_bits for r in ref_comm.rounds
    ]

    privacy = audit_privacy(recorder.events(), database, fractions=(0.25,))
    ref_privacy = audit_privacy(ref_recorder.events(), database, fractions=(0.25,))
    assert privacy.rounds == ref_privacy.rounds


def test_warm_cache_round_identical_to_cold(users, reference_round):
    """Cache hits must be invisible: same results, same traced bytes."""
    with use_backend("hashlib"):
        get_mask_cache().clear()
        with obs.tracing() as cold_recorder:
            cold = run_lppa_auction(
                users, GRID, two_lambda=6, bmax=127, entropy="backend-diff:0"
            )
        cache = get_mask_cache()
        assert cache.stats()["entries"] > 0
        hits_before = cache.hits
        with obs.tracing() as warm_recorder:
            warm = run_lppa_auction(
                users, GRID, two_lambda=6, bmax=127, entropy="backend-diff:0"
            )
        assert cache.hits > hits_before
    assert warm == cold
    assert warm_recorder.summary() == cold_recorder.summary()
    # And both equal the pure-backend baseline round.
    assert cold == reference_round[1]
