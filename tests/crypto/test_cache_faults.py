"""Cache-invalidation faults: no stale digest may ever be served.

Three ways a cached masked digest could go stale, each driven end to end
and checked through the obs counters:

* **key rotation** — a new key ring must miss every prior entry (the key
  bytes live inside the cache key) *and* eagerly drop the old epoch's
  entries via the TTP's ``note_key_epoch`` hook;
* **SU churn** — users joining/leaving between rounds of the asyncio net
  runtime change the submission mix; reused (user, cell) pairs may hit,
  but every new user's sets must be computed fresh, and the networked
  result must still equal the in-process session;
* **mutated prefix sets** — any change to the set (value, membership,
  order-insensitive content, domain, digest size) is a different cache
  key, so a lookup can never alias the old set.
"""

import asyncio
import dataclasses
import random

import pytest

from repro import obs
from repro.crypto.cache import MaskCache, get_mask_cache, set_mask_cache
from repro.crypto.keys import generate_keyring
from repro.lppa.bids_advanced import BidScale
from repro.lppa.ttp import TrustedThirdParty
from repro.net.loadgen import LoadgenConfig, run_loadgen
from repro.prefix.membership import MaskSpec, mask_specs, mask_value
from repro.prefix.prefixes import prefix_family


@pytest.fixture()
def cache():
    fresh = MaskCache()
    previous = set_mask_cache(fresh)
    yield fresh
    set_mask_cache(previous)


def test_key_rotation_misses_the_cache(cache):
    old = generate_keyring(b"epoch-1", 4)
    new = generate_keyring(b"epoch-2", 4)
    mask_value(old.g0, 42, 8)
    with obs.collecting() as registry:
        mask_value(new.g0, 42, 8)  # same value, rotated key
    assert registry.counters["crypto.mask_cache.misses"] == 1
    assert "crypto.mask_cache.hits" not in registry.counters
    assert registry.counters["crypto.hmac"] == 9  # recomputed, not replayed


def test_key_redistribution_clears_old_epoch(cache):
    scale = BidScale(bmax=127, rd=4, cr=8)
    old = generate_keyring(b"epoch-1", 4)
    TrustedThirdParty(old, scale)
    mask_value(old.g0, 42, 8)
    assert len(cache) == 1

    with obs.collecting() as registry:
        new = generate_keyring(b"epoch-2", 4)
        TrustedThirdParty(new, scale)  # re-keyed: new epoch
    assert len(cache) == 0
    assert registry.counters["crypto.mask_cache.invalidations"] == 1

    # Same ring redistributed (every round of a seeded run) keeps it warm.
    mask_value(new.g0, 42, 8)
    TrustedThirdParty(generate_keyring(b"epoch-2", 4), scale)
    assert len(cache) == 1


def test_mutated_prefix_sets_miss_the_cache(cache):
    family = tuple(prefix_family(42, 8))
    base = MaskSpec.of(b"key", family, domain=b"d", digest_bytes=16)
    mask_specs([base])

    mutations = [
        MaskSpec.of(b"key", prefix_family(43, 8), domain=b"d"),  # new value
        MaskSpec.of(b"key", family[:-1], domain=b"d"),  # dropped element
        MaskSpec.of(b"key", family, domain=b"other"),  # new domain
        MaskSpec.of(b"key", family, domain=b"d", digest_bytes=8),  # new size
    ]
    for mutant in mutations:
        with obs.collecting() as registry:
            mask_specs([mutant])
        assert "crypto.mask_cache.hits" not in registry.counters, mutant
        assert registry.counters["crypto.mask_cache.misses"] == 1

    # The unmutated spec still hits — the entries coexist, never alias.
    with obs.collecting() as registry:
        repeat = mask_specs([base])
    assert registry.counters["crypto.mask_cache.hits"] == 1
    assert repeat == mask_specs([base])


def test_membership_rekey_preserves_stationary_su_entries(cache):
    """The epoch service's churn rekey (gc-only rotation) must not cost a
    stationary SU its warm masked digests.

    ``KeyRing.rotate_gc`` changes the fingerprint — the TTP registers a
    new key epoch — but every masking key is still live, so the selective
    invalidation drops nothing: zero ``invalidations``, and the SU's
    location set still hits.
    """
    scale = BidScale(bmax=127, rd=4, cr=8)
    ring = generate_keyring(b"service-seed", 4)
    TrustedThirdParty(ring, scale)
    mask_value(ring.g0, 42, 8)  # the stationary SU's warm entry
    assert len(cache) == 1

    rotated = ring.rotate_gc(b"service-seed", "lppa/ttp/gc/m1")
    assert rotated.fingerprint() != ring.fingerprint()
    assert rotated.g0 == ring.g0 and rotated.gb_channels == ring.gb_channels

    with obs.collecting() as registry:
        TrustedThirdParty(rotated, scale)  # join/leave key redistribution
        mask_value(ring.g0, 42, 8)
    assert "crypto.mask_cache.invalidations" not in registry.counters
    assert registry.counters["crypto.mask_cache.hits"] == 1
    assert "crypto.mask_cache.misses" not in registry.counters
    assert len(cache) == 1

    # A *full* rotation still drops the stale entry via the same hook.
    with obs.collecting() as registry:
        TrustedThirdParty(generate_keyring(b"other-seed", 4), scale)
    assert registry.counters["crypto.mask_cache.invalidations"] == 1
    assert len(cache) == 0


def test_su_churn_over_net_runtime_stays_correct(cache):
    """Join/leave churn across networked rounds: fresh users mask fresh.

    ``replace`` swaps a fraction of the population every round;
    ``check_equivalence`` re-runs each round in-process and compares the
    full result, so a stale digest anywhere would surface as a mismatch.
    """
    config = LoadgenConfig(
        n_users=8,
        n_channels=6,
        rounds=3,
        seed=13,
        replace=0.5,
        transport="memory",
        check_equivalence=True,
    )
    with obs.collecting() as registry:
        report = asyncio.run(run_loadgen(config))
    assert report.rounds_completed == 3
    assert report.equivalence_checked == 3
    totals = registry.totals()
    # Churned populations keep producing never-seen sets: every round
    # computed something fresh, and nothing was served without a lookup.
    assert totals["crypto.mask_cache.misses"] > 0
    assert totals["crypto.hmac"] > 0


def test_churned_users_never_reuse_other_users_digests(cache):
    """Population A then population B: B's new cells are all cold misses."""
    from repro.geo.grid import GridSpec
    from repro.lppa.location import submit_locations

    grid = GridSpec(rows=20, cols=20, cell_km=3.75)
    rng = random.Random(3)
    cells_a = grid.random_cells(rng, 10)
    cells_b = grid.random_cells(rng, 10)  # disjoint draw = churned roster
    submit_locations(cells_a, b"g0", grid, 6)
    fresh_cells = [c for c in cells_b if c not in set(cells_a)]
    with obs.collecting() as registry:
        submit_locations(fresh_cells, b"g0", grid, 6)
    # Coordinates can overlap across users (x or y shared), so some hits
    # are legitimate — but every hit must be for an identical (key, set):
    # assert the expensive invariant directly by recomputing cold.
    warm = submit_locations(fresh_cells, b"g0", grid, 6)
    cache.clear()
    cold = submit_locations(fresh_cells, b"g0", grid, 6)
    for w, c in zip(warm, cold):
        assert dataclasses.replace(w, user_id=0) == dataclasses.replace(
            c, user_id=0
        )
    assert registry.counters.get("crypto.mask_cache.misses", 0) > 0
