"""The pluggable HMAC backend: both implementations, switching semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.backend import get_backend, hmac_digest, set_backend, use_backend


def test_default_backend_is_stdlib():
    assert get_backend() == "stdlib"


def test_invalid_backend_rejected():
    with pytest.raises(ValueError):
        set_backend("openssl-but-faster")


def test_use_backend_restores_on_exit():
    before = get_backend()
    with use_backend("pure"):
        assert get_backend() == "pure"
    assert get_backend() == before


def test_use_backend_restores_on_exception():
    before = get_backend()
    with pytest.raises(RuntimeError):
        with use_backend("pure"):
            raise RuntimeError("boom")
    assert get_backend() == before


@settings(max_examples=30, deadline=None)
@given(key=st.binary(min_size=1, max_size=80), msg=st.binary(max_size=200))
def test_backends_are_bit_identical(key, msg):
    with use_backend("stdlib"):
        fast = hmac_digest(key, msg)
    with use_backend("pure"):
        slow = hmac_digest(key, msg)
    assert fast == slow
