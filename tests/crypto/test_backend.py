"""The pluggable HMAC backend: all implementations, switching semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.backend import (
    available_backends,
    get_backend,
    get_backend_instance,
    hmac_digest,
    hmac_digest_batch,
    hmac_digest_pairs,
    set_backend,
    use_backend,
)

ALL_BACKENDS = ("pure", "hashlib", "numpy")


def test_default_backend_is_hashlib():
    assert get_backend() == "hashlib"


def test_stdlib_is_an_alias_of_hashlib():
    with use_backend("stdlib"):
        assert get_backend() == "hashlib"


def test_invalid_backend_rejected():
    with pytest.raises(ValueError):
        set_backend("openssl-but-faster")


def test_all_backends_available():
    assert set(available_backends()) == set(ALL_BACKENDS)


def test_backend_instance_matches_name():
    for name in ALL_BACKENDS:
        with use_backend(name):
            assert get_backend_instance().name == name


def test_use_backend_restores_on_exit():
    before = get_backend()
    with use_backend("pure"):
        assert get_backend() == "pure"
    assert get_backend() == before


def test_use_backend_restores_on_exception():
    before = get_backend()
    with pytest.raises(RuntimeError):
        with use_backend("pure"):
            raise RuntimeError("boom")
    assert get_backend() == before


def test_batch_empty_input():
    for name in ALL_BACKENDS:
        with use_backend(name):
            assert hmac_digest_batch(b"k", []) == []
            assert hmac_digest_pairs([]) == []


@settings(max_examples=30, deadline=None)
@given(key=st.binary(min_size=1, max_size=80), msg=st.binary(max_size=200))
def test_backends_are_bit_identical(key, msg):
    digests = set()
    for name in ALL_BACKENDS:
        with use_backend(name):
            digests.add(hmac_digest(key, msg))
    assert len(digests) == 1


@settings(max_examples=20, deadline=None)
@given(
    key=st.binary(min_size=1, max_size=80),
    msgs=st.lists(st.binary(max_size=120), max_size=12),
)
def test_batch_matches_scalar_on_every_backend(key, msgs):
    reference = [hmac_digest(key, m) for m in msgs]
    for name in ALL_BACKENDS:
        with use_backend(name):
            assert hmac_digest_batch(key, msgs) == reference


@settings(max_examples=20, deadline=None)
@given(
    items=st.lists(
        st.tuples(st.binary(min_size=1, max_size=80), st.binary(max_size=120)),
        max_size=12,
    )
)
def test_pairs_match_scalar_on_every_backend(items):
    reference = [hmac_digest(k, m) for k, m in items]
    for name in ALL_BACKENDS:
        with use_backend(name):
            assert hmac_digest_pairs(items) == reference
