"""The keyed order-preserving encoder."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.ope import OrderPreservingEncoder


@pytest.fixture(scope="module")
def encoder():
    return OrderPreservingEncoder(b"test-key", 500)


def test_strictly_monotone(encoder):
    previous = -1
    for x in range(encoder.domain):
        c = encoder.encrypt(x)
        assert c > previous
        previous = c


def test_deterministic_per_key(encoder):
    again = OrderPreservingEncoder(b"test-key", 500)
    assert [again.encrypt(x) for x in (0, 99, 499)] == [
        encoder.encrypt(x) for x in (0, 99, 499)
    ]


def test_different_keys_differ():
    a = OrderPreservingEncoder(b"key-a", 100)
    b = OrderPreservingEncoder(b"key-b", 100)
    assert any(a.encrypt(x) != b.encrypt(x) for x in range(100))


def test_decrypt_roundtrip(encoder):
    for x in (0, 1, 250, 499):
        assert encoder.decrypt(encoder.encrypt(x)) == x


def test_decrypt_rejects_non_ciphertexts(encoder):
    with pytest.raises(ValueError):
        encoder.decrypt(encoder.encrypt(10) + 1)
    with pytest.raises(ValueError):
        encoder.decrypt(encoder._table[-1] + 10_000_000)


def test_domain_bounds(encoder):
    with pytest.raises(ValueError):
        encoder.encrypt(-1)
    with pytest.raises(ValueError):
        encoder.encrypt(500)


def test_ciphertext_bytes(encoder):
    assert encoder.ciphertext_bytes >= 1
    assert encoder.encrypt(499).bit_length() <= encoder.ciphertext_bytes * 8


def test_validation():
    with pytest.raises(ValueError):
        OrderPreservingEncoder(b"", 10)
    with pytest.raises(ValueError):
        OrderPreservingEncoder(b"k", 0)
    with pytest.raises(ValueError):
        OrderPreservingEncoder(b"k", 10, gap_bits=0)


@settings(max_examples=40, deadline=None)
@given(
    x=st.integers(min_value=0, max_value=199),
    y=st.integers(min_value=0, max_value=199),
)
def test_order_preservation_property(x, y):
    encoder = OrderPreservingEncoder(b"prop-key", 200, gap_bits=8)
    assert (encoder.encrypt(x) < encoder.encrypt(y)) == (x < y)
