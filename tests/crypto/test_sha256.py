"""The from-scratch SHA-256 against NIST vectors and hashlib."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.sha256 import SHA256, sha256

# FIPS 180-4 / NIST CAVP known-answer vectors.
NIST_VECTORS = [
    (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
    (b"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
    (
        b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
    ),
    (
        b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
        b"hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
        "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
    ),
]


@pytest.mark.parametrize("message,expected", NIST_VECTORS)
def test_nist_vectors(message, expected):
    assert sha256(message).hexdigest() == expected


def test_half_million_a():
    # Reduced version of the classic 1M-'a' vector, cross-checked via hashlib.
    message = b"a" * 500_000
    assert sha256(message).digest() == hashlib.sha256(message).digest()


@pytest.mark.parametrize("size", [0, 1, 54, 55, 56, 57, 63, 64, 65, 119, 128, 1000])
def test_padding_boundaries(size):
    """Messages straddling the 55/56/64-byte padding edges."""
    message = bytes(i % 251 for i in range(size))
    assert sha256(message).digest() == hashlib.sha256(message).digest()


def test_incremental_updates_match_one_shot():
    h = sha256()
    for chunk in (b"he", b"llo", b"", b" world", b"!" * 200):
        h.update(chunk)
    assert h.digest() == hashlib.sha256(b"hello world" + b"!" * 200).digest()


def test_digest_does_not_consume_state():
    h = sha256(b"abc")
    first = h.digest()
    assert h.digest() == first
    h.update(b"def")
    assert h.digest() == hashlib.sha256(b"abcdef").digest()


def test_copy_is_independent():
    h = sha256(b"abc")
    clone = h.copy()
    clone.update(b"def")
    assert h.digest() == hashlib.sha256(b"abc").digest()
    assert clone.digest() == hashlib.sha256(b"abcdef").digest()


def test_update_rejects_str():
    with pytest.raises(TypeError):
        sha256().update("not bytes")


def test_accepts_bytearray_and_memoryview():
    data = bytearray(b"payload")
    assert sha256(bytes(data)).digest() == SHA256(memoryview(data)).digest()


@settings(max_examples=60, deadline=None)
@given(st.binary(max_size=600))
def test_matches_hashlib_on_random_inputs(data):
    assert sha256(data).digest() == hashlib.sha256(data).digest()


@settings(max_examples=25, deadline=None)
@given(st.lists(st.binary(max_size=150), max_size=8))
def test_incremental_matches_hashlib_on_random_chunking(chunks):
    h = sha256()
    ref = hashlib.sha256()
    for chunk in chunks:
        h.update(chunk)
        ref.update(chunk)
    assert h.digest() == ref.digest()
