"""The from-scratch HMAC-SHA256 against RFC 4231 vectors and stdlib hmac."""

import hashlib
import hmac as stdlib_hmac

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hmac_impl import HMAC, hmac_sha256

# RFC 4231 test cases (SHA-256 outputs).
RFC4231 = [
    (
        b"\x0b" * 20,
        b"Hi There",
        "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
    ),
    (
        b"Jefe",
        b"what do ya want for nothing?",
        "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
    ),
    (
        b"\xaa" * 20,
        b"\xdd" * 50,
        "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe",
    ),
    (
        bytes(range(1, 26)),
        b"\xcd" * 50,
        "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b",
    ),
    (
        b"\xaa" * 131,
        b"Test Using Larger Than Block-Size Key - Hash Key First",
        "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54",
    ),
    (
        b"\xaa" * 131,
        b"This is a test using a larger than block-size key and a larger t"
        b"han block-size data. The key needs to be hashed before being use"
        b"d by the HMAC algorithm.",
        "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2",
    ),
]


@pytest.mark.parametrize("key,message,expected", RFC4231)
def test_rfc4231_vectors(key, message, expected):
    assert hmac_sha256(key, message).hex() == expected


def test_exactly_block_size_key():
    key = b"K" * 64
    assert hmac_sha256(key, b"msg") == stdlib_hmac.new(key, b"msg", hashlib.sha256).digest()


def test_incremental_updates():
    mac = HMAC(b"key")
    mac.update(b"part one ")
    mac.update(b"part two")
    assert (
        mac.digest()
        == stdlib_hmac.new(b"key", b"part one part two", hashlib.sha256).digest()
    )


def test_digest_repeatable_and_copy_independent():
    mac = HMAC(b"key", b"abc")
    first = mac.digest()
    clone = mac.copy()
    clone.update(b"def")
    assert mac.digest() == first
    assert (
        clone.digest() == stdlib_hmac.new(b"key", b"abcdef", hashlib.sha256).digest()
    )


def test_rejects_non_bytes_key():
    with pytest.raises(TypeError):
        HMAC("string key")


@settings(max_examples=60, deadline=None)
@given(key=st.binary(min_size=1, max_size=150), msg=st.binary(max_size=300))
def test_matches_stdlib_on_random_inputs(key, msg):
    assert hmac_sha256(key, msg) == stdlib_hmac.new(key, msg, hashlib.sha256).digest()
