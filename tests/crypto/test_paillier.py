"""The Paillier cryptosystem."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.paillier import PaillierPublicKey, generate_paillier_keypair


@pytest.fixture(scope="module")
def key():
    return generate_paillier_keypair(128, random.Random(42))


def test_roundtrip(key):
    rng = random.Random(0)
    for message in (0, 1, 1234, key.public.n - 1):
        assert key.decrypt(key.public.encrypt(message, rng)) == message


def test_encryption_is_probabilistic(key):
    rng = random.Random(1)
    a = key.public.encrypt(99, rng)
    b = key.public.encrypt(99, rng)
    assert a != b
    assert key.decrypt(a) == key.decrypt(b) == 99


def test_additive_homomorphism(key):
    rng = random.Random(2)
    c = key.public.add(key.public.encrypt(30, rng), key.public.encrypt(12, rng))
    assert key.decrypt(c) == 42


def test_add_constant(key):
    rng = random.Random(3)
    c = key.public.add_constant(key.public.encrypt(30, rng), 5)
    assert key.decrypt(c) == 35


def test_multiply_constant(key):
    rng = random.Random(4)
    c = key.public.multiply_constant(key.public.encrypt(7, rng), 6)
    assert key.decrypt(c) == 42


def test_message_bounds(key):
    rng = random.Random(5)
    with pytest.raises(ValueError):
        key.public.encrypt(-1, rng)
    with pytest.raises(ValueError):
        key.public.encrypt(key.public.n, rng)
    with pytest.raises(ValueError):
        key.decrypt(key.public.n_squared)


def test_ciphertext_bytes(key):
    assert key.public.ciphertext_bytes == (key.public.n_squared.bit_length() + 7) // 8


def test_keypair_generation_validation():
    with pytest.raises(ValueError):
        generate_paillier_keypair(8, random.Random(0))
    with pytest.raises(ValueError):
        PaillierPublicKey(n=4)


@settings(max_examples=20, deadline=None)
@given(
    a=st.integers(min_value=0, max_value=10_000),
    b=st.integers(min_value=0, max_value=10_000),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_homomorphism_property(key, a, b, seed):
    rng = random.Random(seed)
    public = key.public
    combined = public.add(public.encrypt(a, rng), public.encrypt(b, rng))
    assert key.decrypt(combined) == (a + b) % public.n
