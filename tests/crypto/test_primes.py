"""Prime generation."""

import random

import pytest

from repro.crypto.primes import generate_prime, is_probable_prime

KNOWN_PRIMES = [2, 3, 5, 101, 104729, 2**31 - 1, 2**61 - 1]
KNOWN_COMPOSITES = [1, 0, 4, 100, 104730, 2**31, 561, 41041]  # incl. Carmichaels


def test_known_primes():
    rng = random.Random(0)
    for p in KNOWN_PRIMES:
        assert is_probable_prime(p, rng), p


def test_known_composites():
    rng = random.Random(1)
    for c in KNOWN_COMPOSITES:
        assert not is_probable_prime(c, rng), c


def test_generated_primes_have_exact_bit_length():
    rng = random.Random(2)
    for bits in (8, 16, 32, 64):
        p = generate_prime(bits, rng)
        assert p.bit_length() == bits
        assert is_probable_prime(p, random.Random(3))


def test_generation_is_deterministic():
    assert generate_prime(32, random.Random(7)) == generate_prime(
        32, random.Random(7)
    )


def test_too_small_request_rejected():
    with pytest.raises(ValueError):
        generate_prime(4, random.Random(0))
