"""Hypothesis properties of the batch masking API and the digest cache.

Two contracts keep the optimization honest:

* **batch ≡ scalar** — ``mask_specs(specs)`` returns exactly what one
  :func:`mask_prefixes` call per spec would, for arbitrary prefix sets,
  keys, domains and digest sizes, on every backend;
* **warm ≡ cold** — across arbitrary sequences of masking rounds, results
  served from the cache are bit-identical to freshly computed ones, and
  padded range fillers draw the same RNG stream either way.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.backend import use_backend
from repro.crypto.cache import MaskCache, cache_disabled, set_mask_cache
from repro.prefix.membership import (
    MaskSpec,
    mask_prefixes,
    mask_range,
    mask_specs,
)
from repro.prefix.prefixes import Prefix, prefix_family
from repro.prefix.ranges import range_cover

BACKENDS = ("pure", "hashlib", "numpy")


@st.composite
def prefix_sets(draw):
    """An arbitrary (possibly empty, possibly duplicated) prefix tuple."""
    width = draw(st.integers(min_value=1, max_value=12))
    kind = draw(st.sampled_from(("family", "cover", "mixed")))
    if kind == "family":
        x = draw(st.integers(min_value=0, max_value=(1 << width) - 1))
        return tuple(prefix_family(x, width))
    if kind == "cover":
        low = draw(st.integers(min_value=0, max_value=(1 << width) - 1))
        high = draw(st.integers(min_value=low, max_value=(1 << width) - 1))
        return tuple(range_cover(low, high, width))
    lengths = draw(
        st.lists(st.integers(min_value=0, max_value=width), max_size=8)
    )
    return tuple(
        Prefix(
            draw(st.integers(min_value=0, max_value=(1 << length) - 1)),
            length,
            width,
        )
        for length in lengths
    )


@st.composite
def spec_lists(draw):
    keys = draw(
        st.lists(st.binary(min_size=1, max_size=24), min_size=1, max_size=3)
    )
    domains = (b"", b"lppa/loc/x", b"lppa/bid/adv")
    n = draw(st.integers(min_value=0, max_value=6))
    return [
        MaskSpec.of(
            draw(st.sampled_from(keys)),
            draw(prefix_sets()),
            domain=draw(st.sampled_from(domains)),
            digest_bytes=draw(st.sampled_from((8, 16, 32))),
        )
        for _ in range(n)
    ]


@settings(max_examples=40, deadline=None)
@given(specs=spec_lists(), backend=st.sampled_from(BACKENDS))
def test_batch_mask_equals_scalar_loop(specs, backend):
    """batch_mask(prefixes) ≡ [mask(p) for p in prefixes], any backend."""
    with use_backend(backend):
        with cache_disabled():
            batched = mask_specs(specs)
            scalars = [
                mask_prefixes(
                    s.key,
                    s.prefixes,
                    domain=s.domain,
                    digest_bytes=s.digest_bytes,
                )
                for s in specs
            ]
    assert batched == scalars


@settings(max_examples=40, deadline=None)
@given(specs=spec_lists(), backend=st.sampled_from(BACKENDS))
def test_cache_hits_equal_cold_path(specs, backend):
    """Round sequences replayed against a warm cache are bit-identical."""
    previous = set_mask_cache(MaskCache())
    try:
        with use_backend(backend):
            with cache_disabled():
                cold = mask_specs(specs)
            warming = mask_specs(specs)  # populates the fresh cache
            warm = mask_specs(specs)  # served from it
        assert warming == cold
        assert warm == cold
    finally:
        set_mask_cache(previous)


@settings(max_examples=25, deadline=None)
@given(
    width=st.integers(min_value=2, max_value=12),
    data=st.data(),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_padded_ranges_draw_identical_fillers_warm_or_cold(width, data, seed):
    """The pad RNG stream must not depend on cache state."""
    low = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    high = data.draw(st.integers(min_value=low, max_value=(1 << width) - 1))
    pad_to = data.draw(st.integers(min_value=0, max_value=2 * width + 4))

    def padded(rng):
        return mask_range(b"key", low, high, width, pad_to=pad_to, rng=rng)

    previous = set_mask_cache(MaskCache())
    try:
        with cache_disabled():
            cold = padded(random.Random(seed))
        warming = padded(random.Random(seed))
        warm = padded(random.Random(seed))
        assert warming == cold
        assert warm == cold
    finally:
        set_mask_cache(previous)
