"""Command-line entry point: ``python -m repro <command>``.

Gives the whole reproduction a zero-code driving surface:

* ``figures``   — regenerate every paper figure's series (smoke scale by
  default; ``--full`` for the EXPERIMENTS.md scale);
* ``theorems``  — the Theorem 1-3 validation tables and Theorem 4 cost;
* ``ablations`` — the design-choice ablations;
* ``coverage``  — print one area/channel's coverage map as ASCII;
* ``baselines`` — LPPA vs cloaking / Paillier / OPE comparisons;
* ``report``    — every experiment, one markdown file;
* ``demo``      — one quick private auction round with a result summary;
* ``metrics``   — inspect, validate, diff and serve ``BENCH_*.json``
  artifacts (``metrics serve`` exposes one over HTTP as OpenMetrics);
* ``trace``     — the protocol flight recorder: record, inspect, audit,
  merge and export ``TRACE_*.jsonl`` event streams;
* ``slo``       — evaluate SLO rules against a live ``/metrics`` scrape
  endpoint or a benchmark artifact; exits nonzero on breach (CI gate).

Every experiment command additionally accepts ``--metrics PATH``: the run
executes with a :mod:`repro.obs` registry collecting, the fixed crypto
calibration workload is appended so artifacts are comparable across runs,
and a schema-versioned benchmark artifact is written to PATH (see
``docs/OBSERVABILITY.md``).  ``--trace PATH`` mirrors that UX for the
flight recorder: the run executes with :mod:`repro.obs.trace` recording
and the event stream is written as JSONL to PATH.  The two flags compose.
"""

from __future__ import annotations

import argparse
import functools
import random
import sys
from typing import Any, Callable, Dict, List, Optional

from repro import __version__

__all__ = ["main", "build_parser"]

#: Commands that accept ``--metrics`` (everything that runs protocol code).
_METRICS_COMMANDS = (
    "figures",
    "theorems",
    "ablations",
    "baselines",
    "report",
    "demo",
    "serve",
    "loadgen",
    "scale",
)


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LPPA (ICDCS 2013) reproduction driver",
    )
    parser.add_argument("--version", action="version", version=__version__)
    parser.add_argument(
        "--crypto-backend",
        choices=("pure", "hashlib", "numpy"),
        default=None,
        help="HMAC-SHA256 implementation (default: $REPRO_CRYPTO_BACKEND or "
        "hashlib); all backends are bit-identical on the wire",
    )
    parser.add_argument(
        "--no-mask-cache",
        action="store_true",
        help="bypass the masked-prefix digest cache (also $REPRO_MASK_CACHE=0); "
        "results are identical either way, only the HMAC work repeats",
    )
    parser.add_argument(
        "--scheme",
        default=None,
        metavar="NAME",
        help="privacy scheme for protocol runs (default: $REPRO_SCHEME or "
        "ppbs); `repro compare` lists the registered names",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_workers_flag(command_parser) -> None:
        command_parser.add_argument(
            "--workers",
            type=int,
            default=None,
            metavar="N",
            help="parallel sweep workers (default: $REPRO_WORKERS or serial); "
            "results are bit-identical at any worker count",
        )
        command_parser.add_argument(
            "--timings",
            action="store_true",
            help="print one engine timing line per sweep to stderr",
        )

    def add_metrics_flag(command_parser) -> None:
        command_parser.add_argument(
            "--metrics",
            default=None,
            metavar="PATH",
            help="collect obs metrics for this run and write a BENCH_*.json "
            "artifact to PATH (a directory gets the canonical file name)",
        )
        command_parser.add_argument(
            "--trace",
            default=None,
            metavar="PATH",
            help="record the protocol flight recorder for this run and write "
            "the event stream as TRACE_*.jsonl to PATH (a directory gets "
            "the canonical file name); composes with --metrics",
        )

    figures = sub.add_parser("figures", help="regenerate the paper's figures")
    figures.add_argument(
        "--full", action="store_true", help="EXPERIMENTS.md scale (slow)"
    )
    figures.add_argument(
        "--only",
        choices=("fig4", "fig5"),
        default=None,
        help="restrict to one figure family",
    )
    add_workers_flag(figures)
    add_metrics_flag(figures)

    theorems = sub.add_parser("theorems", help="validate Theorems 1-4")
    add_metrics_flag(theorems)
    ablations = sub.add_parser("ablations", help="run the design-choice ablations")
    add_workers_flag(ablations)
    add_metrics_flag(ablations)

    coverage = sub.add_parser("coverage", help="print a coverage map")
    coverage.add_argument("--area", type=int, default=3, choices=(1, 2, 3, 4))
    coverage.add_argument("--channel", type=int, default=0)
    coverage.add_argument("--channels", type=int, default=30,
                          help="how many channels to build")
    coverage.add_argument("--step", type=int, default=2,
                          help="downsampling factor for the ASCII render")

    baselines = sub.add_parser(
        "baselines", help="compare LPPA against cloaking / Paillier"
    )
    add_metrics_flag(baselines)

    report = sub.add_parser("report", help="write the full markdown report")
    report.add_argument("--out", default="lppa_report.md")
    report.add_argument("--full", action="store_true")
    report.add_argument("--no-extensions", action="store_true")
    add_workers_flag(report)
    add_metrics_flag(report)

    demo = sub.add_parser("demo", help="run one private auction round")
    demo.add_argument("--users", type=int, default=40)
    demo.add_argument("--channels", type=int, default=20)
    demo.add_argument("--replace", type=float, default=0.3,
                      help="zero-replace probability 1-p0")
    demo.add_argument("--seed", type=int, default=42)
    add_metrics_flag(demo)

    def add_net_flags(command_parser) -> None:
        """Parameters a serve/loadgen pair must agree on for the runs to be
        the same auction (seed -> keys, entropy, population)."""
        command_parser.add_argument("--users", type=int, default=8)
        command_parser.add_argument("--channels", type=int, default=6)
        command_parser.add_argument("--rounds", type=int, default=3)
        command_parser.add_argument("--seed", type=int, default=1)
        command_parser.add_argument(
            "--area", type=int, default=4, choices=(1, 2, 3, 4)
        )
        command_parser.add_argument(
            "--grid", type=int, default=20, metavar="N",
            help="use an NxN cell lattice (cell size scales to keep 75 km)",
        )
        command_parser.add_argument(
            "--ttp-period", type=int, default=None, metavar="T",
            help="run the TTP periodically-online (window every T time units) "
            "instead of always-on",
        )
        command_parser.add_argument(
            "--ttp-capacity", type=int, default=None, metavar="C",
            help="charge requests served per TTP window (default: --users)",
        )

    serve = sub.add_parser(
        "serve", help="run the auctioneer as a TCP server (pair with loadgen)"
    )
    add_net_flags(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (0 binds an ephemeral port)")
    serve.add_argument("--location-deadline", type=float, default=10.0,
                       metavar="SEC", help="location-phase deadline")
    serve.add_argument("--bid-deadline", type=float, default=10.0,
                       metavar="SEC", help="bid-phase deadline")
    serve.add_argument("--join-timeout", type=float, default=60.0,
                       metavar="SEC",
                       help="how long to wait for all --users SUs to register")
    serve.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve a live OpenMetrics scrape endpoint on PORT "
        "(0 binds an ephemeral port); GET /metrics and /healthz",
    )
    serve.add_argument("--metrics-host", default="127.0.0.1",
                       help="bind address of the scrape endpoint")
    serve.add_argument(
        "--epochs", type=int, default=None, metavar="N",
        help="run as a long-lived epoch service for N epochs (fixed "
        "membership of --users SUs; entropy labels follow the service "
        "scheme, so pair clients with `loadgen --connect --entropy service`)",
    )
    serve.add_argument(
        "--epoch-interval", type=float, default=0.0, metavar="SEC",
        help="pace epoch starts on a fixed schedule (0 = as fast as "
        "the SUs answer; only with --epochs)",
    )
    serve.add_argument(
        "--run-dir", default=None, metavar="DIR",
        help="persist per-epoch results and metrics under DIR "
        "(see `repro epochs show/validate`; only with --epochs)",
    )
    serve.add_argument(
        "--uvloop", action="store_true",
        help="use uvloop if installed (falls back to asyncio with a warning)",
    )
    add_metrics_flag(serve)

    loadgen = sub.add_parser(
        "loadgen",
        help="drive concurrent SU clients against an auctioneer server",
    )
    add_net_flags(loadgen)
    loadgen.add_argument("--replace", type=float, default=0.0,
                         help="zero-replace probability 1-p0")
    loadgen.add_argument(
        "--transport", choices=("memory", "tcp"), default="memory",
        help="self-hosted server transport (ignored with --connect)",
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=0)
    loadgen.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="dial a running `repro serve` instead of self-hosting "
        "(the two sides must share --seed/--users/--channels/--area/--grid)",
    )
    loadgen.add_argument(
        "--check-equivalence", action="store_true",
        help="re-run every round in-process and demand bit-identical results",
    )
    loadgen.add_argument(
        "--raw-latencies", action="store_true",
        help="keep every raw latency sample for exact percentiles (memory "
        "grows with rounds; default: bounded histogram only)",
    )
    loadgen.add_argument(
        "--entropy", choices=("loadgen", "service"), default="loadgen",
        help="per-round entropy scheme: 'loadgen' pairs with `repro serve`, "
        "'service' with `repro serve --epochs` (ignored with --soak, which "
        "is always 'service')",
    )
    loadgen.add_argument(
        "--soak", action="store_true",
        help="soak mode: self-host an epoch service and drive --rounds "
        "epochs with Poisson SU churn between them (--users is the "
        "population; --initial-members SUs are seated at epoch 0)",
    )
    loadgen.add_argument(
        "--initial-members", type=int, default=None, metavar="N",
        help="SUs seated at epoch 0 in soak mode (default: 2/3 of --users)",
    )
    loadgen.add_argument(
        "--join-rate", type=float, default=0.0, metavar="L",
        help="soak mode: Poisson mean SU joins per epoch boundary",
    )
    loadgen.add_argument(
        "--leave-rate", type=float, default=0.0, metavar="L",
        help="soak mode: Poisson mean SU leaves per epoch boundary",
    )
    loadgen.add_argument(
        "--warmup", type=int, default=1, metavar="N",
        help="soak mode: epochs excluded from the steady-state percentiles",
    )
    loadgen.add_argument(
        "--interval", type=float, default=0.0, metavar="SEC",
        help="soak mode: pace epoch starts on a fixed schedule",
    )
    loadgen.add_argument(
        "--retire-after", type=int, default=None, metavar="K",
        help="soak mode: retire an SU after K consecutive straggled epochs",
    )
    loadgen.add_argument(
        "--run-dir", default=None, metavar="DIR",
        help="soak mode: persist per-epoch history under DIR "
        "(see `repro epochs show/validate`)",
    )
    loadgen.add_argument(
        "--uvloop", action="store_true",
        help="use uvloop if installed (falls back to asyncio with a warning)",
    )
    add_metrics_flag(loadgen)

    compare = sub.add_parser(
        "compare",
        help="run every privacy scheme on identical seeds and write "
        "BENCH_schemes.json (wire bytes, crypto ops, latency, BCM/BPM)",
    )
    compare.add_argument(
        "--schemes", default="ppbs,bloom", metavar="A,B,...",
        help="comma-separated scheme names to run (default: ppbs,bloom)",
    )
    compare.add_argument("--users", type=int, default=8)
    compare.add_argument("--channels", type=int, default=6)
    compare.add_argument("--rounds", type=int, default=2)
    compare.add_argument("--seed", type=int, default=1)
    compare.add_argument("--area", type=int, default=4, choices=(1, 2, 3, 4))
    compare.add_argument(
        "--grid", type=int, default=20, metavar="N",
        help="use an NxN cell lattice (cell size scales to keep 75 km)",
    )
    compare.add_argument(
        "--out", default="BENCH_schemes.json", metavar="PATH",
        help="artifact output path (a directory gets BENCH_schemes.json)",
    )
    compare.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="compare the deterministic columns against this committed "
        "BENCH_schemes.json; exit 1 on any divergence",
    )
    compare.add_argument(
        "--no-equivalence", action="store_true",
        help="skip the per-round bit-identity check against the in-process "
        "session (faster; the default checks every round)",
    )

    epochs = sub.add_parser(
        "epochs",
        help="inspect a persisted epoch-service run directory",
    )
    epochs_sub = epochs.add_subparsers(dest="epochs_command", required=True)
    epochs_show = epochs_sub.add_parser(
        "show", help="summarize a run's manifest and per-epoch results"
    )
    epochs_show.add_argument("run_dir", help="run directory with manifest.json")
    epochs_validate = epochs_sub.add_parser(
        "validate",
        help="verify a run's history is complete and untampered "
        "(manifest shape, file digests, artifact schemas)",
    )
    epochs_validate.add_argument("run_dir", help="run directory with manifest.json")

    scale = sub.add_parser(
        "scale",
        help="sharded-round scale sweep (BENCH_scale; see DESIGN.md §9)",
    )
    scale.add_argument(
        "--sizes",
        default=None,
        metavar="N[,N...]",
        help="comma-separated SU population sizes (default: 1000,10000,100000)",
    )
    scale.add_argument(
        "--shards",
        type=int,
        default=8,
        metavar="N",
        help="shard count for the sharded rounds (default: 8); results are "
        "bit-identical to the single-process path at any count",
    )
    scale.add_argument("--channels", type=int, default=6, metavar="N")
    scale.add_argument("--seed", type=int, default=0, metavar="N")
    scale.add_argument(
        "--no-reference",
        action="store_true",
        help="skip the single-process reference rounds (no speedup column)",
    )
    scale.add_argument(
        "--verify",
        action="store_true",
        help="run each size traced on both paths and fail unless result, "
        "trace and Theorem-4 audit are bit-identical (the CI scale-smoke "
        "check)",
    )
    add_metrics_flag(scale)

    metrics = sub.add_parser(
        "metrics", help="inspect / validate / diff BENCH_*.json artifacts"
    )
    metrics_sub = metrics.add_subparsers(dest="metrics_command", required=True)

    diff = metrics_sub.add_parser(
        "diff", help="compare two artifacts and flag regressions"
    )
    diff.add_argument("baseline", help="baseline BENCH_*.json")
    diff.add_argument("current", help="current BENCH_*.json")
    diff.add_argument(
        "--threshold",
        type=float,
        default=None,
        metavar="FRAC",
        help="relative worsening that counts as a regression (default 0.2)",
    )
    diff.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit 0 (for advisory CI gates)",
    )

    show = metrics_sub.add_parser("show", help="pretty-print one artifact")
    show.add_argument("path", help="BENCH_*.json to display")
    show.add_argument(
        "--format",
        choices=("human", "openmetrics"),
        default="human",
        help="output format (openmetrics prints the scrape exposition)",
    )

    validate = metrics_sub.add_parser(
        "validate", help="check an artifact against the schema"
    )
    validate.add_argument("path", help="BENCH_*.json to validate")

    metrics_serve = metrics_sub.add_parser(
        "serve",
        help="serve one artifact's metrics as an OpenMetrics scrape endpoint",
    )
    metrics_serve.add_argument("path", help="BENCH_*.json to serve")
    metrics_serve.add_argument("--host", default="127.0.0.1")
    metrics_serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port for GET /metrics (0 binds an ephemeral port)",
    )

    trace = sub.add_parser(
        "trace", help="record / inspect / audit protocol flight-recorder traces"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    trace_run = trace_sub.add_parser(
        "run", help="run full-crypto auction rounds and record a trace"
    )
    trace_run.add_argument("--users", type=int, default=12)
    trace_run.add_argument("--channels", type=int, default=6)
    trace_run.add_argument("--area", type=int, default=3, choices=(1, 2, 3, 4))
    trace_run.add_argument(
        "--grid", type=int, default=20, metavar="N",
        help="use an NxN cell lattice (cell size scales to keep 75 km)",
    )
    trace_run.add_argument("--rounds", type=int, default=2)
    trace_run.add_argument("--seed", type=int, default=42)
    trace_run.add_argument("--replace", type=float, default=0.3,
                           help="zero-replace probability 1-p0")
    trace_run.add_argument("--out", default="TRACE_run.jsonl", metavar="PATH")

    trace_show = trace_sub.add_parser("show", help="summarize one trace")
    trace_show.add_argument("path", help="TRACE_*.jsonl to display")

    trace_validate = trace_sub.add_parser(
        "validate", help="check a trace against the event schema"
    )
    trace_validate.add_argument("path", help="TRACE_*.jsonl to validate")

    trace_audit = trace_sub.add_parser(
        "audit",
        help="replay a trace through the comm-cost (Theorem 4) and privacy "
        "(BCM) auditors",
    )
    trace_audit.add_argument("path", help="TRACE_*.jsonl to audit")
    trace_audit.add_argument(
        "--fractions", default="0.25,0.5", metavar="F1,F2,...",
        help="top-fraction cuts for the ranking-based BCM attack",
    )
    trace_audit.add_argument(
        "--no-privacy", action="store_true",
        help="skip the privacy auditor (e.g. for traces without run metadata)",
    )
    trace_audit.add_argument(
        "--no-comm", action="store_true",
        help="skip the communication-cost auditor",
    )

    trace_export = trace_sub.add_parser(
        "export", help="convert a trace to Chrome trace-event format (Perfetto)"
    )
    trace_export.add_argument("path", help="TRACE_*.jsonl to convert")
    trace_export.add_argument("--out", default=None, metavar="PATH",
                              help="output .json (default: input with .chrome.json)")

    trace_merge = trace_sub.add_parser(
        "merge",
        help="join per-process traces (server / SUs / TTP) into one "
        "causally-ordered timeline",
    )
    trace_merge.add_argument(
        "paths", nargs="+", help="two or more TRACE_*.jsonl files to merge"
    )
    trace_merge.add_argument(
        "--out", default="TRACE_merged.jsonl", metavar="PATH",
        help="merged trace output path",
    )
    trace_merge.add_argument(
        "--roles", default=None, metavar="R1,R2,...",
        help="comma-separated role names, one per input, stamped on events "
        "that do not already carry a role",
    )

    slo = sub.add_parser(
        "slo",
        help="evaluate SLO rules against live metrics or a BENCH artifact",
    )
    slo_sub = slo.add_subparsers(dest="slo_command", required=True)
    slo_check = slo_sub.add_parser(
        "check", help="evaluate one SLO rules file; exit 1 on breach"
    )
    slo_check.add_argument("slo_file", help="SLO rules JSON (schema v1)")
    source = slo_check.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--artifact", default=None, metavar="PATH",
        help="evaluate against a BENCH_*.json artifact's metrics",
    )
    source.add_argument(
        "--url", default=None, metavar="URL",
        help="evaluate against a live scrape endpoint "
        "(e.g. http://127.0.0.1:9100/metrics)",
    )
    slo_check.add_argument(
        "--warn-only", action="store_true",
        help="report breaches but exit 0 (advisory CI gates)",
    )
    return parser


def _engine_report_hook(args):
    """``on_report=`` callback printing engine timings when asked for."""
    if not getattr(args, "timings", False):
        return None

    def emit(report) -> None:
        print(report.summary(), file=sys.stderr)

    return emit


def _cmd_figures(args) -> int:
    from repro.experiments import (
        FULL,
        SMOKE,
        fig4ab_channel_sweep,
        fig4c_four_areas,
        fig5_performance_sweep,
        fig5_privacy_sweep,
        format_table,
    )

    config = FULL if args.full else SMOKE
    workers = args.workers
    on_report = _engine_report_hook(args)
    if args.only in (None, "fig4"):
        print(format_table(fig4ab_channel_sweep(config, workers=workers,
                                                on_report=on_report),
                           title="Fig 4(a)(b): cells / success vs channels (Area 4)"))
        print()
        print(format_table(fig4c_four_areas(config, workers=workers,
                                            on_report=on_report),
                           title="Fig 4(c): the four areas"))
        print()
    if args.only in (None, "fig5"):
        print(format_table(fig5_privacy_sweep(config, workers=workers,
                                              on_report=on_report),
                           title="Fig 5(a)-(d): privacy under LPPA (Area 3)"))
        print()
        print(format_table(fig5_performance_sweep(config, workers=workers,
                                                  on_report=on_report),
                           title="Fig 5(e)(f): performance under LPPA (Area 3)"))
    return 0


def _cmd_theorems(args) -> int:
    from repro.experiments import (
        format_table,
        theorem1_table,
        theorem2_table,
        theorem3_table,
        theorem4_table,
    )

    print(format_table(theorem1_table(), title="Theorem 1"))
    print()
    print(format_table(theorem2_table(), title="Theorem 2 (see EXPERIMENTS.md erratum)"))
    print()
    print(format_table(theorem3_table(), title="Theorem 3 (printed formula approximate)"))
    print()
    print(format_table(theorem4_table(), title="Theorem 4: communication cost"))
    return 0


def _cmd_ablations(args) -> int:
    from repro.experiments import (
        ablation_cr_expansion,
        ablation_disguise_policy,
        ablation_id_mixing,
        ablation_revalidation,
        format_table,
    )

    workers = args.workers
    on_report = _engine_report_hook(args)
    print(format_table(ablation_id_mixing(), title="ID mixing (§V.C.3)"))
    print()
    print(format_table(ablation_revalidation(workers=workers,
                                             on_report=on_report),
                       title="TTP charging mode (§V.B)"))
    print()
    print(format_table(ablation_cr_expansion(workers=workers,
                                             on_report=on_report),
                       title="cr expansion (§V.B)"))
    print()
    print(format_table(ablation_disguise_policy(workers=workers,
                                                on_report=on_report),
                       title="Disguise law (§IV.C.3)"))
    return 0


def _cmd_coverage(args) -> int:
    from repro.geo import make_coverage_map
    from repro.viz import render_coverage

    if args.channel < 0 or args.channel >= args.channels:
        print("channel index outside the built range", file=sys.stderr)
        return 2
    coverage_map = make_coverage_map(args.area, n_channels=args.channels)
    cov = coverage_map.channels[args.channel]
    print(f"Area {args.area}, channel {args.channel}: "
          f"{cov.availability_fraction():.1%} of cells usable "
          f"('#' = protected PU coverage)")
    print(render_coverage(coverage_map, args.channel, step=args.step))
    return 0


def _cmd_demo(args) -> int:
    from repro.auction import generate_users, run_plain_auction
    from repro.geo import make_database
    from repro.lppa import UniformReplacePolicy, run_lppa_auction

    database = make_database(3, n_channels=args.channels)
    users = generate_users(database, args.users, random.Random(args.seed))
    result = run_lppa_auction(
        users,
        database.coverage.grid,
        two_lambda=6,
        bmax=127,
        policy=UniformReplacePolicy(args.replace),
        rng=random.Random(args.seed),
    )
    plain = run_plain_auction(users, random.Random(args.seed), two_lambda=6)
    outcome = result.outcome
    print(f"users {args.users}, channels {args.channels}, 1-p0 {args.replace}")
    print(f"revenue        {outcome.sum_of_winning_bids()} "
          f"(plain {plain.sum_of_winning_bids()})")
    print(f"satisfaction   {outcome.user_satisfaction():.1%}")
    print(f"wire volume    {result.total_bytes / 1024:.1f} KiB")
    print(f"conflict edges {result.conflict_graph.n_edges}")
    return 0


def _cmd_scale(args) -> int:
    from repro.experiments.scale import (
        DEFAULT_SIZES,
        format_scale_table,
        run_scale_sweep,
    )

    if args.sizes is None:
        sizes = list(DEFAULT_SIZES)
    else:
        try:
            sizes = [int(part) for part in args.sizes.split(",") if part.strip()]
        except ValueError:
            print("--sizes expects comma-separated integers", file=sys.stderr)
            return 2
        if not sizes or any(n < 1 for n in sizes):
            print("--sizes expects positive integers", file=sys.stderr)
            return 2
    if args.shards < 1:
        print("--shards must be >= 1", file=sys.stderr)
        return 2

    def progress(size: int) -> None:
        print(f"scale: running {size} SUs "
              f"(shards={args.shards})...", file=sys.stderr)

    points = run_scale_sweep(
        sizes,
        shards=args.shards,
        n_channels=args.channels,
        seed=args.seed,
        reference=False if args.no_reference else None,
        verify=args.verify,
        progress=progress,
    )
    print(format_scale_table(points))
    if args.verify:
        failed = [p for p in points if p.verification is None
                  or not p.verification.passed]
        if failed:
            for p in failed:
                detail = (
                    ", ".join(p.verification.failures())
                    if p.verification is not None
                    else "no verification ran"
                )
                print(f"scale: {p.size} SUs NOT bit-identical: {detail}",
                      file=sys.stderr)
            return 1
    return 0


def _cmd_baselines(args) -> int:
    from repro.experiments import (
        ablation_masking_backend,
        baseline_comparison_table,
        cloaking_comparison_table,
        format_table,
    )

    print(format_table(cloaking_comparison_table(),
                       title="Location cloaking vs LPPA (dense world)"))
    print()
    print(format_table(baseline_comparison_table(),
                       title="Paillier secure auction (ref [7]) vs LPPA, communication"))
    print()
    print(format_table(ablation_masking_backend(),
                       title="Masking backends: per-entry trade-offs"))
    return 0


def _cmd_report(args) -> int:
    from repro.experiments import FULL, SMOKE
    from repro.experiments.report import write_report

    path = write_report(
        args.out,
        FULL if args.full else SMOKE,
        include_extensions=not args.no_extensions,
        workers=args.workers,
        on_report=_engine_report_hook(args),
    )
    print(f"report written to {path}")
    return 0


def _load_artifact_or_fail(path: str) -> Optional[Dict[str, Any]]:
    """Load + validate one artifact; on failure print why and return None."""
    from repro import obs

    try:
        return obs.load_artifact(path)
    except (OSError, ValueError) as exc:
        print(f"error: {path}: {exc}", file=sys.stderr)
        return None


def _cmd_metrics(args) -> int:
    from repro import obs

    if args.metrics_command == "validate":
        if _load_artifact_or_fail(args.path) is None:
            return 2
        print(f"{args.path}: valid (schema v{obs.SCHEMA_VERSION})")
        return 0
    if args.metrics_command == "serve":
        document = _load_artifact_or_fail(args.path)
        if document is None:
            return 2
        return _serve_artifact_metrics(document, host=args.host, port=args.port)
    if args.metrics_command == "show":
        document = _load_artifact_or_fail(args.path)
        if document is None:
            return 2
        if args.format == "openmetrics":
            from repro.obs.openmetrics import render_openmetrics

            sys.stdout.write(render_openmetrics(document["metrics"]))
            return 0
        print(f"artifact   {document['name']}")
        print(f"schema     v{document['schema_version']}")
        print(f"created    {document['created_at']}")
        print(f"git sha    {document['git_sha']}")
        if document.get("config"):
            print("config:")
            for key in sorted(document["config"]):
                print(f"  {key} = {document['config'][key]!r}")
        counters = document["metrics"]["counters"]
        timers = document["metrics"]["timers"]
        if counters:
            print("counters:")
            for key in sorted(counters):
                print(f"  {key:<48} {counters[key]}")
        if timers:
            print("timers (mean seconds x count):")
            for key in sorted(timers):
                stat = timers[key]
                mean = stat["seconds"] / stat["count"] if stat["count"] else 0.0
                print(f"  {key:<48} {mean:.6f} x {stat['count']}")
        histograms = document["metrics"].get("histograms", {})
        if histograms:
            from repro.obs.hist import Histogram

            print("histograms (p50 / p99 x count):")
            for key in sorted(histograms):
                hist = Histogram.from_dict(histograms[key])
                print(f"  {key:<48} {hist.quantile(0.5):.6f} / "
                      f"{hist.quantile(0.99):.6f} x {hist.count}")
        gauges = document["metrics"].get("gauges", {})
        if gauges:
            print("gauges:")
            for key in sorted(gauges):
                print(f"  {key:<48} {gauges[key]:g}")
        return 0
    # diff
    baseline = _load_artifact_or_fail(args.baseline)
    current = _load_artifact_or_fail(args.current)
    if baseline is None or current is None:
        return 2
    kwargs: Dict[str, Any] = {}
    if args.threshold is not None:
        kwargs["threshold"] = args.threshold
    try:
        report = obs.diff_artifacts(baseline, current, **kwargs)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.format())
    if report.has_regressions and not args.warn_only:
        return 1
    return 0


def _serve_artifact_metrics(document: Dict[str, Any], *, host: str,
                            port: int) -> int:
    """Serve one loaded artifact's metrics snapshot until interrupted."""
    import asyncio

    from repro.obs.live import MetricsHttpServer

    snapshot = document["metrics"]

    async def _serve() -> int:
        server = MetricsHttpServer(lambda: snapshot, host=host, port=port)
        await server.start()
        print(f"serving OpenMetrics for artifact {document['name']!r} on "
              f"http://{server.address}/metrics (Ctrl-C to stop)", flush=True)
        try:
            while True:
                await asyncio.sleep(3600)
        finally:
            await server.stop()

    try:
        return asyncio.run(_serve())
    except KeyboardInterrupt:
        return 0


def _load_trace_or_fail(path: str):
    """Load + validate one trace; on failure print why and return None."""
    from repro.obs import trace as trace_mod

    try:
        return trace_mod.load_trace(path)
    except (OSError, ValueError) as exc:
        print(f"error: {path}: {exc}", file=sys.stderr)
        return None


def _cmd_trace_run(args) -> int:
    from repro import obs
    from repro.geo.datasets import make_database
    from repro.geo.grid import GridSpec
    from repro.auction import generate_users
    from repro.lppa import UniformReplacePolicy, run_lppa_auction

    grid = GridSpec(rows=args.grid, cols=args.grid, cell_km=75.0 / args.grid)
    database = make_database(args.area, n_channels=args.channels, grid=grid)
    users = generate_users(database, args.users, random.Random(args.seed))
    recorder = obs.TraceRecorder()
    with obs.tracing(recorder):
        # The auditors rebuild the (public) spectrum database from this
        # record; everything in it is public knowledge in the threat model.
        recorder.meta(
            "run_meta",
            vis="public",
            area=args.area,
            n_channels=args.channels,
            grid_rows=args.grid,
            grid_cols=args.grid,
            cell_km=grid.cell_km,
            db_seed="lppa-repro",
            n_users=args.users,
            rounds=args.rounds,
            seed=args.seed,
            replace=args.replace,
        )
        for round_idx in range(args.rounds):
            result = run_lppa_auction(
                users,
                grid,
                two_lambda=6,
                bmax=127,
                policy=UniformReplacePolicy(args.replace),
                entropy=f"trace-run:{args.seed}:{round_idx}",
            )
            print(
                f"round {round_idx}: {len(result.outcome.wins)} winners, "
                f"{result.framed_bytes} wire bytes"
            )
    target = recorder.write_jsonl(args.out)
    print(f"trace written to {target} ({len(recorder)} events, "
          f"{recorder.dropped} dropped)")
    return 0


def _cmd_trace_show(args) -> int:
    loaded = _load_trace_or_fail(args.path)
    if loaded is None:
        return 2
    header, events = loaded
    print(f"trace      {args.path}")
    print(f"schema     v{header['schema_version']}")
    print(f"events     {header['event_count']} "
          f"(dropped {header['dropped']}, capacity {header['capacity']})")
    by_type: Dict[str, int] = {}
    by_kind: Dict[str, int] = {}
    by_path: Dict[str, int] = {}
    rounds = set()
    wire_total = 0
    payload_total = 0
    for record in events:
        by_type[record["type"]] = by_type.get(record["type"], 0) + 1
        if record.get("round") is not None:
            rounds.add(record["round"])
        if record["type"] == "message":
            by_kind[record["kind"]] = by_kind.get(record["kind"], 0) + 1
            wire_total += record.get("wire_size") or 0
            payload_total += record.get("payload_bytes") or 0
        elif record["type"] == "span":
            by_path[record["path"]] = by_path.get(record["path"], 0) + 1
    print(f"rounds     {len(rounds)}")
    print("events by type:")
    for key in sorted(by_type):
        print(f"  {key:<24} {by_type[key]}")
    if by_kind:
        print("messages by kind:")
        for key in sorted(by_kind):
            print(f"  {key:<24} {by_kind[key]}")
        print(f"wire bytes {wire_total} (payload {payload_total})")
    if by_path:
        print("spans by path:")
        for key in sorted(by_path):
            print(f"  {key:<24} {by_path[key]}")
    return 0


def _cmd_trace_validate(args) -> int:
    from repro.obs.trace import TRACE_SCHEMA_VERSION

    if _load_trace_or_fail(args.path) is None:
        return 2
    print(f"{args.path}: valid (trace schema v{TRACE_SCHEMA_VERSION})")
    return 0


def _cmd_trace_audit(args) -> int:
    from repro.analysis.trace_audit import (
        TraceAuditError,
        audit_comm_cost,
        audit_privacy,
    )

    loaded = _load_trace_or_fail(args.path)
    if loaded is None:
        return 2
    _, events = loaded
    failed = False

    if not args.no_comm:
        try:
            comm = audit_comm_cost(events, strict=False)
        except TraceAuditError as exc:
            print(f"comm-cost audit: ERROR: {exc}", file=sys.stderr)
            return 2
        for row in comm.rounds:
            cells = row.as_row()
            print("comm-cost round {round}: N={N} k={k} w={w} "
                  "predicted {predicted_kbits} kbit, measured "
                  "{measured_kbits} kbit, exact={exact}".format(**cells))
        if comm.passed:
            print(f"comm-cost audit: PASS "
                  f"({comm.messages_checked} messages checked, "
                  f"{len(comm.rounds)} rounds exact against Theorem 4)")
        else:
            failed = True
            print(f"comm-cost audit: FAIL ({len(comm.errors)} divergences)",
                  file=sys.stderr)
            for error in comm.errors:
                print(f"  {error}", file=sys.stderr)

    if not args.no_privacy:
        database = _database_from_trace(events)
        if database is None:
            print(
                "privacy audit: SKIP (no run_meta record in the trace; "
                "record with `repro trace run` to enable it)",
                file=sys.stderr,
            )
        else:
            try:
                fractions = tuple(
                    float(f) for f in str(args.fractions).split(",") if f
                )
                privacy = audit_privacy(events, database, fractions=fractions)
            except (TraceAuditError, ValueError) as exc:
                print(f"privacy audit: ERROR: {exc}", file=sys.stderr)
                return 2
            n_cells = database.coverage.grid.n_cells
            for row in privacy.rounds:
                print(
                    f"privacy round {row.round} top-{row.fraction:.0%}: "
                    f"mean candidate area {row.mean_cells:.1f} cells "
                    f"({row.mean_cells / n_cells:.1%} of the grid), "
                    f"min {row.min_cells}, max {row.max_cells}, "
                    f"empty {row.empty_results}/{row.n_users}"
                )
            print(f"privacy audit: PASS ({privacy.n_events_consumed} "
                  "adversary-visible events consumed)")

    return 1 if failed else 0


def _database_from_trace(events):
    """Rebuild the public spectrum database a trace was recorded against."""
    from repro.geo.datasets import make_database
    from repro.geo.grid import GridSpec

    for record in events:
        if record.get("type") == "meta" and record.get("name") == "run_meta":
            meta = record.get("args") or {}
            try:
                grid = GridSpec(
                    rows=int(meta["grid_rows"]),
                    cols=int(meta["grid_cols"]),
                    cell_km=float(meta["cell_km"]),
                )
                return make_database(
                    int(meta["area"]),
                    n_channels=int(meta["n_channels"]),
                    grid=grid,
                    seed=str(meta.get("db_seed", "lppa-repro")),
                )
            except (KeyError, TypeError, ValueError):
                return None
    return None


def _cmd_trace_export(args) -> int:
    import json

    from repro.obs.trace import chrome_trace

    loaded = _load_trace_or_fail(args.path)
    if loaded is None:
        return 2
    _, events = loaded
    out = args.out
    if out is None:
        base = args.path
        if base.endswith(".jsonl"):
            base = base[: -len(".jsonl")]
        out = base + ".chrome.json"
    document = chrome_trace(events)
    with open(out, "w") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")
    print(f"chrome trace written to {out} "
          f"({len(document['traceEvents'])} trace events); load it in "
          "https://ui.perfetto.dev or chrome://tracing")
    return 0


def _cmd_trace_merge(args) -> int:
    from repro.obs.trace import merge_traces, write_jsonl_records

    traces = []
    for path in args.paths:
        loaded = _load_trace_or_fail(path)
        if loaded is None:
            return 2
        traces.append(loaded)
    roles = None
    if args.roles is not None:
        roles = [part.strip() or None for part in args.roles.split(",")]
        if len(roles) != len(traces):
            print(
                f"error: --roles names {len(roles)} sources but "
                f"{len(traces)} traces were given",
                file=sys.stderr,
            )
            return 2
    try:
        header, events = merge_traces(traces, roles=roles)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    target = write_jsonl_records(args.out, header, events)
    print(f"merged trace written to {target} "
          f"({len(events)} events from {len(traces)} sources)")
    return 0


def _cmd_trace(args) -> int:
    return {
        "run": _cmd_trace_run,
        "show": _cmd_trace_show,
        "validate": _cmd_trace_validate,
        "audit": _cmd_trace_audit,
        "export": _cmd_trace_export,
        "merge": _cmd_trace_merge,
    }[args.trace_command](args)


def _cmd_slo(args) -> int:
    from repro.obs.slo import (
        MetricsView,
        evaluate_slos,
        load_slo_file,
    )

    try:
        document = load_slo_file(args.slo_file)
    except (OSError, ValueError) as exc:
        print(f"error: {args.slo_file}: {exc}", file=sys.stderr)
        return 2
    if args.artifact is not None:
        artifact = _load_artifact_or_fail(args.artifact)
        if artifact is None:
            return 2
        view = MetricsView.from_snapshot(artifact["metrics"])
        source = args.artifact
    else:
        import urllib.error
        import urllib.request

        url = args.url
        if "://" not in url:
            url = f"http://{url}"
        if not url.rstrip("/").endswith("/metrics"):
            url = url.rstrip("/") + "/metrics"
        try:
            with urllib.request.urlopen(url, timeout=10.0) as response:
                text = response.read().decode("utf-8")
        except (urllib.error.URLError, OSError, ValueError) as exc:
            print(f"error: scraping {url}: {exc}", file=sys.stderr)
            return 2
        try:
            view = MetricsView.from_openmetrics(text)
        except ValueError as exc:
            print(f"error: {url} is not a valid exposition: {exc}",
                  file=sys.stderr)
            return 2
        source = url
    report = evaluate_slos(document, view, warn_only=args.warn_only)
    print(f"SLO check: {args.slo_file} vs {source}")
    print(report.format())
    return 1 if report.failed else 0


def _cmd_serve(args) -> int:
    import asyncio
    import contextlib

    from repro import obs
    from repro.geo.grid import GridSpec
    from repro.lppa.batching import TtpSchedule
    from repro.lppa.ttp import TrustedThirdParty
    from repro.net import (
        AuctioneerServer,
        RoundAborted,
        ServerConfig,
        TcpTransport,
        TtpService,
    )
    from repro.net.loadgen import protocol_seed, round_entropy

    grid = GridSpec(rows=args.grid, cols=args.grid, cell_km=75.0 / args.grid)
    config = ServerConfig(
        n_users=args.users,
        n_channels=args.channels,
        grid=grid,
        two_lambda=6,
        bmax=127,
        seed=protocol_seed(args.seed),
        location_deadline=args.location_deadline,
        bid_deadline=args.bid_deadline,
        metrics_port=args.metrics_port,
        metrics_host=args.metrics_host,
        scheme=_resolved_scheme(),
    )

    # A scrape endpoint with no registry collecting would serve an empty
    # exposition; when --metrics-port is given without --metrics, collect
    # for the lifetime of the serve run (the artifact is simply not
    # written).  An outer _run_with_metrics registry takes precedence.
    collect = (
        obs.collecting()
        if args.metrics_port is not None and obs.get_active() is None
        else contextlib.nullcontext()
    )

    async def _serve() -> int:
        ttp_service = None
        if args.ttp_period is not None:
            ttp, _, _ = TrustedThirdParty.setup(
                config.seed, args.channels, bmax=config.bmax
            )
            schedule = TtpSchedule(
                period=args.ttp_period,
                capacity=args.ttp_capacity or args.users,
            )
            ttp_service = TtpService(ttp, schedule)
            await ttp_service.start()
        server = AuctioneerServer(
            config, TcpTransport(args.host, args.port), ttp_service=ttp_service
        )
        await server.start()
        print(f"serving on {server.address}", flush=True)
        if server.metrics_address is not None:
            print(f"metrics on http://{server.metrics_address}/metrics",
                  flush=True)
        try:
            if args.epochs is not None:
                return await _serve_epochs(args, server)
            await server.wait_for_clients(args.users, timeout=args.join_timeout)
            for round_index in range(args.rounds):
                report = await server.run_round(
                    round_entropy(args.seed, round_index)
                )
                print(
                    f"round {round_index}: "
                    f"{len(report.result.outcome.wins)} winners, "
                    f"{len(report.participants)} participants, "
                    f"{report.latency_s * 1e3:.1f} ms",
                    flush=True,
                )
        except (RoundAborted, asyncio.TimeoutError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        finally:
            await server.stop()
            if ttp_service is not None:
                await ttp_service.stop()
        print(
            f"served {args.rounds} rounds, "
            f"{server.wire.total_bytes} wire bytes",
            flush=True,
        )
        return 0

    from repro.service.eventloop import run as run_loop

    with collect:
        return run_loop(_serve(), use_uvloop=args.uvloop)


async def _serve_epochs(args, server) -> int:
    """``repro serve --epochs``: the fixed-membership epoch loop.

    Clients hold their connections across epochs (no churn, so the ring is
    never rotated); a remote fleet pairs with
    ``repro loadgen --connect HOST:PORT --entropy service``.
    """
    from repro.net import RoundAborted
    from repro.net.loadgen import protocol_seed
    from repro.service import (
        EpochConfig,
        EpochScheduler,
        EpochStore,
        MembershipManager,
    )

    membership = MembershipManager(
        args.users,
        initial_members=range(args.users),
        master_seed=protocol_seed(args.seed),
        base_ring=server.keyring,
    )
    store = None
    if args.run_dir is not None:
        store = EpochStore(
            args.run_dir,
            config={
                "users": args.users,
                "channels": args.channels,
                "epochs": args.epochs,
                "seed": args.seed,
            },
        )
    scheduler = EpochScheduler(
        server,
        membership,
        EpochConfig(
            epochs=args.epochs,
            seed=args.seed,
            interval_s=args.epoch_interval,
            roster_timeout=args.join_timeout,
        ),
        store=store,
    )
    try:
        records = await scheduler.run()
    except (RoundAborted, TimeoutError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for record in records:
        outcome = record.report.result.outcome
        print(
            f"epoch {record.epoch}: {len(outcome.wins)} winners, "
            f"{len(record.report.participants)} participants, "
            f"{record.report.latency_s * 1e3:.1f} ms",
            flush=True,
        )
    print(
        f"served {len(records)} epochs, "
        f"{server.wire.total_bytes} wire bytes",
        flush=True,
    )
    if store is not None:
        print(f"epoch history in {store.root}", flush=True)
    return 0


def _resolved_scheme() -> str:
    """The active scheme name (set by ``--scheme`` / ``$REPRO_SCHEME``)."""
    from repro.lppa.schemes.registry import resolve_scheme

    return resolve_scheme(None).name


def _cmd_compare(args) -> int:
    from repro.experiments.compare import (
        CompareConfig,
        format_compare_table,
        run_compare,
        write_compare_artifact,
    )
    from repro.net.loadgen import EquivalenceFailure

    schemes = tuple(s.strip() for s in args.schemes.split(",") if s.strip())
    try:
        config = CompareConfig(
            schemes=schemes,
            n_users=args.users,
            n_channels=args.channels,
            rounds=args.rounds,
            seed=args.seed,
            area=args.area,
            grid_n=args.grid,
            check_equivalence=not args.no_equivalence,
        )
        measurements = run_compare(config)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except EquivalenceFailure as exc:
        print(f"equivalence FAILED: {exc}", file=sys.stderr)
        return 1
    print(format_compare_table(measurements))
    try:
        written, baseline_errors = write_compare_artifact(
            args.out, measurements, config, baseline_path=args.baseline
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"artifact written to {written} (validated)")
    if args.baseline is not None:
        if baseline_errors:
            print(
                f"baseline check FAILED against {args.baseline} "
                f"({len(baseline_errors)} divergences):",
                file=sys.stderr,
            )
            for error in baseline_errors:
                print(f"  {error}", file=sys.stderr)
            return 1
        print(f"baseline check OK against {args.baseline}")
    return 0


def _cmd_loadgen(args) -> int:
    import asyncio

    from repro.net.loadgen import EquivalenceFailure, LoadgenConfig, run_loadgen

    if args.soak:
        return _cmd_loadgen_soak(args)

    config = LoadgenConfig(
        n_users=args.users,
        n_channels=args.channels,
        rounds=args.rounds,
        seed=args.seed,
        area=args.area,
        grid_n=args.grid,
        replace=args.replace,
        transport=args.transport,
        host=args.host,
        port=args.port,
        connect=args.connect,
        check_equivalence=args.check_equivalence,
        ttp_period=args.ttp_period,
        ttp_capacity=args.ttp_capacity,
        raw_latencies=args.raw_latencies,
        entropy_scheme=args.entropy,
        scheme=_resolved_scheme(),
    )
    try:
        report = asyncio.run(run_loadgen(config))
    except EquivalenceFailure as exc:
        print(f"equivalence FAILED: {exc}", file=sys.stderr)
        return 1
    report.record_metrics()
    print(report.format())
    return 0


def _cmd_loadgen_soak(args) -> int:
    """``repro loadgen --soak``: the self-hosted epoch-service soak."""
    from repro.net.loadgen import EquivalenceFailure
    from repro.service import SoakConfig, run_soak
    from repro.service.eventloop import run as run_loop

    if args.connect is not None:
        print("error: --soak self-hosts its server; drop --connect",
              file=sys.stderr)
        return 2
    try:
        config = SoakConfig(
            population=args.users,
            initial_members=args.initial_members,
            epochs=args.rounds,
            n_channels=args.channels,
            seed=args.seed,
            area=args.area,
            grid_n=args.grid,
            join_rate=args.join_rate,
            leave_rate=args.leave_rate,
            transport=args.transport,
            host=args.host,
            port=args.port,
            interval_s=args.interval,
            warmup_epochs=args.warmup,
            check_equivalence=args.check_equivalence,
            run_dir=args.run_dir,
            retire_after=args.retire_after,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        report = run_loop(run_soak(config), use_uvloop=args.uvloop)
    except EquivalenceFailure as exc:
        print(f"equivalence FAILED: {exc}", file=sys.stderr)
        return 1
    report.loadgen.record_metrics(steady_warmup=config.warmup_epochs)
    print(report.format(warmup=config.warmup_epochs))
    return 0


def _cmd_epochs(args) -> int:
    from repro.service import load_manifest, validate_run

    if args.epochs_command == "validate":
        errors = validate_run(args.run_dir)
        if errors:
            print(f"run {args.run_dir} is INVALID:")
            for error in errors:
                print(f"  - {error}")
            return 1
        print(f"run {args.run_dir} OK")
        return 0

    # show
    try:
        manifest = load_manifest(args.run_dir)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    summary = manifest.get("summary", {})
    print(f"epoch run {args.run_dir}")
    print(f"  kind        {manifest['kind']} "
          f"(schema v{manifest['schema_version']})")
    print(f"  created     {manifest.get('created_at', '?')}")
    if manifest.get("git_sha"):
        print(f"  git         {manifest['git_sha']}")
    for key in sorted(manifest.get("config", {})):
        print(f"  config      {key} = {manifest['config'][key]}")
    print(f"  epochs      {len(manifest['epochs'])}")
    for entry in manifest["epochs"]:
        s = entry.get("summary", {})
        marks = []
        if s.get("stragglers"):
            marks.append(f"{s['stragglers']} stragglers")
        if s.get("equivalent"):
            marks.append("equivalent")
        suffix = f" ({', '.join(marks)})" if marks else ""
        print(
            f"    epoch {entry['index']}: "
            f"v{s.get('version', '?')} {s.get('members', '?')} SUs, "
            f"{s.get('winners', '?')} winners, "
            f"revenue {s.get('revenue', '?')}{suffix}"
        )
    for key in sorted(summary):
        print(f"  summary     {key} = {summary[key]}")
    if manifest.get("attachments"):
        for name in sorted(manifest["attachments"]):
            print(f"  attachment  {name}")
    return 0


def _artifact_name(args) -> str:
    """Canonical artifact name for a CLI run, e.g. ``figures-fig4``."""
    name = str(args.command)
    only = getattr(args, "only", None)
    if only:
        name = f"{name}-{only}"
    return name


def _scalar_config(args) -> Dict[str, Any]:
    """The JSON-scalar view of the parsed arguments, for artifact config."""
    config: Dict[str, Any] = {}
    for key, value in vars(args).items():
        if key in ("command", "metrics", "trace"):
            continue
        if value is None or isinstance(value, (bool, int, float, str)):
            config[key] = value
    return config


def _run_with_metrics(handler: Callable[[Any], int], args) -> int:
    """Run one command under a collecting registry; write the artifact.

    The whole command is timed as ``cli.<command>``; the fixed crypto
    calibration workload (:mod:`repro.obs.calibration`) runs afterwards so
    every artifact carries comparable hot-path baselines even when the
    command itself never touches a given primitive.
    """
    from repro import obs
    from repro.obs.calibration import run_calibration

    registry = obs.MetricsRegistry()
    with obs.collecting(registry):
        with obs.timer(f"cli.{args.command}"):
            code = handler(args)
        run_calibration()
    written = obs.write_artifact(
        args.metrics, _artifact_name(args), registry, config=_scalar_config(args)
    )
    print(f"metrics artifact written to {written}", file=sys.stderr)
    return code


def _run_with_trace(handler: Callable[[Any], int], args) -> int:
    """Run one command with the flight recorder on; write the JSONL trace."""
    from pathlib import Path

    from repro import obs
    from repro.obs.trace import TRACE_FILE_PREFIX

    recorder = obs.TraceRecorder()
    with obs.tracing(recorder):
        code = handler(args)
    target = Path(args.trace)
    if target.is_dir() or str(args.trace).endswith(("/", "\\")):
        target = target / f"{TRACE_FILE_PREFIX}{_artifact_name(args)}.jsonl"
    written = recorder.write_jsonl(target)
    print(
        f"trace written to {written} ({len(recorder)} events, "
        f"{recorder.dropped} dropped)",
        file=sys.stderr,
    )
    return code


_COMMANDS: Dict[str, Callable[[Any], int]] = {
    "figures": _cmd_figures,
    "report": _cmd_report,
    "baselines": _cmd_baselines,
    "theorems": _cmd_theorems,
    "ablations": _cmd_ablations,
    "coverage": _cmd_coverage,
    "demo": _cmd_demo,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
    "compare": _cmd_compare,
    "scale": _cmd_scale,
    "metrics": _cmd_metrics,
    "trace": _cmd_trace,
    "slo": _cmd_slo,
    "epochs": _cmd_epochs,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.crypto_backend is not None:
        from repro.crypto.backend import set_backend

        set_backend(args.crypto_backend)
    if args.no_mask_cache:
        from repro.crypto.cache import set_cache_enabled

        set_cache_enabled(False)
    if args.scheme is not None:
        from repro.lppa.schemes.registry import set_active_scheme

        try:
            set_active_scheme(args.scheme)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    handler = _COMMANDS[args.command]
    if args.command in _METRICS_COMMANDS and getattr(args, "trace", None):
        handler = functools.partial(_run_with_trace, handler)
    if args.command in _METRICS_COMMANDS and getattr(args, "metrics", None):
        return _run_with_metrics(handler, args)
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
