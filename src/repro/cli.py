"""Command-line entry point: ``python -m repro <command>``.

Gives the whole reproduction a zero-code driving surface:

* ``figures``   — regenerate every paper figure's series (smoke scale by
  default; ``--full`` for the EXPERIMENTS.md scale);
* ``theorems``  — the Theorem 1-3 validation tables and Theorem 4 cost;
* ``ablations`` — the design-choice ablations;
* ``coverage``  — print one area/channel's coverage map as ASCII;
* ``baselines`` — LPPA vs cloaking / Paillier / OPE comparisons;
* ``report``    — every experiment, one markdown file;
* ``demo``      — one quick private auction round with a result summary.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from repro import __version__

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LPPA (ICDCS 2013) reproduction driver",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_workers_flag(command_parser) -> None:
        command_parser.add_argument(
            "--workers",
            type=int,
            default=None,
            metavar="N",
            help="parallel sweep workers (default: $REPRO_WORKERS or serial); "
            "results are bit-identical at any worker count",
        )
        command_parser.add_argument(
            "--timings",
            action="store_true",
            help="print one engine timing line per sweep to stderr",
        )

    figures = sub.add_parser("figures", help="regenerate the paper's figures")
    figures.add_argument(
        "--full", action="store_true", help="EXPERIMENTS.md scale (slow)"
    )
    figures.add_argument(
        "--only",
        choices=("fig4", "fig5"),
        default=None,
        help="restrict to one figure family",
    )
    add_workers_flag(figures)

    sub.add_parser("theorems", help="validate Theorems 1-4")
    ablations = sub.add_parser("ablations", help="run the design-choice ablations")
    add_workers_flag(ablations)

    coverage = sub.add_parser("coverage", help="print a coverage map")
    coverage.add_argument("--area", type=int, default=3, choices=(1, 2, 3, 4))
    coverage.add_argument("--channel", type=int, default=0)
    coverage.add_argument("--channels", type=int, default=30,
                          help="how many channels to build")
    coverage.add_argument("--step", type=int, default=2,
                          help="downsampling factor for the ASCII render")

    sub.add_parser("baselines", help="compare LPPA against cloaking / Paillier")

    report = sub.add_parser("report", help="write the full markdown report")
    report.add_argument("--out", default="lppa_report.md")
    report.add_argument("--full", action="store_true")
    report.add_argument("--no-extensions", action="store_true")
    add_workers_flag(report)

    demo = sub.add_parser("demo", help="run one private auction round")
    demo.add_argument("--users", type=int, default=40)
    demo.add_argument("--channels", type=int, default=20)
    demo.add_argument("--replace", type=float, default=0.3,
                      help="zero-replace probability 1-p0")
    demo.add_argument("--seed", type=int, default=42)
    return parser


def _engine_report_hook(args):
    """``on_report=`` callback printing engine timings when asked for."""
    if not getattr(args, "timings", False):
        return None

    def emit(report) -> None:
        print(report.summary(), file=sys.stderr)

    return emit


def _cmd_figures(args) -> int:
    from repro.experiments import (
        FULL,
        SMOKE,
        fig4ab_channel_sweep,
        fig4c_four_areas,
        fig5_performance_sweep,
        fig5_privacy_sweep,
        format_table,
    )

    config = FULL if args.full else SMOKE
    workers = args.workers
    on_report = _engine_report_hook(args)
    if args.only in (None, "fig4"):
        print(format_table(fig4ab_channel_sweep(config, workers=workers,
                                                on_report=on_report),
                           title="Fig 4(a)(b): cells / success vs channels (Area 4)"))
        print()
        print(format_table(fig4c_four_areas(config, workers=workers,
                                            on_report=on_report),
                           title="Fig 4(c): the four areas"))
        print()
    if args.only in (None, "fig5"):
        print(format_table(fig5_privacy_sweep(config, workers=workers,
                                              on_report=on_report),
                           title="Fig 5(a)-(d): privacy under LPPA (Area 3)"))
        print()
        print(format_table(fig5_performance_sweep(config, workers=workers,
                                                  on_report=on_report),
                           title="Fig 5(e)(f): performance under LPPA (Area 3)"))
    return 0


def _cmd_theorems(args) -> int:
    from repro.experiments import (
        format_table,
        theorem1_table,
        theorem2_table,
        theorem3_table,
        theorem4_table,
    )

    print(format_table(theorem1_table(), title="Theorem 1"))
    print()
    print(format_table(theorem2_table(), title="Theorem 2 (see EXPERIMENTS.md erratum)"))
    print()
    print(format_table(theorem3_table(), title="Theorem 3 (printed formula approximate)"))
    print()
    print(format_table(theorem4_table(), title="Theorem 4: communication cost"))
    return 0


def _cmd_ablations(args) -> int:
    from repro.experiments import (
        ablation_cr_expansion,
        ablation_disguise_policy,
        ablation_id_mixing,
        ablation_revalidation,
        format_table,
    )

    workers = args.workers
    on_report = _engine_report_hook(args)
    print(format_table(ablation_id_mixing(), title="ID mixing (§V.C.3)"))
    print()
    print(format_table(ablation_revalidation(workers=workers,
                                             on_report=on_report),
                       title="TTP charging mode (§V.B)"))
    print()
    print(format_table(ablation_cr_expansion(workers=workers,
                                             on_report=on_report),
                       title="cr expansion (§V.B)"))
    print()
    print(format_table(ablation_disguise_policy(workers=workers,
                                                on_report=on_report),
                       title="Disguise law (§IV.C.3)"))
    return 0


def _cmd_coverage(args) -> int:
    from repro.geo import make_coverage_map
    from repro.viz import render_coverage

    if args.channel < 0 or args.channel >= args.channels:
        print("channel index outside the built range", file=sys.stderr)
        return 2
    coverage_map = make_coverage_map(args.area, n_channels=args.channels)
    cov = coverage_map.channels[args.channel]
    print(f"Area {args.area}, channel {args.channel}: "
          f"{cov.availability_fraction():.1%} of cells usable "
          f"('#' = protected PU coverage)")
    print(render_coverage(coverage_map, args.channel, step=args.step))
    return 0


def _cmd_demo(args) -> int:
    from repro.auction import generate_users, run_plain_auction
    from repro.geo import make_database
    from repro.lppa import UniformReplacePolicy, run_lppa_auction

    database = make_database(3, n_channels=args.channels)
    users = generate_users(database, args.users, random.Random(args.seed))
    result = run_lppa_auction(
        users,
        database.coverage.grid,
        two_lambda=6,
        bmax=127,
        policy=UniformReplacePolicy(args.replace),
        rng=random.Random(args.seed),
    )
    plain = run_plain_auction(users, random.Random(args.seed), two_lambda=6)
    outcome = result.outcome
    print(f"users {args.users}, channels {args.channels}, 1-p0 {args.replace}")
    print(f"revenue        {outcome.sum_of_winning_bids()} "
          f"(plain {plain.sum_of_winning_bids()})")
    print(f"satisfaction   {outcome.user_satisfaction():.1%}")
    print(f"wire volume    {result.total_bytes / 1024:.1f} KiB")
    print(f"conflict edges {result.conflict_graph.n_edges}")
    return 0


def _cmd_baselines(args) -> int:
    from repro.experiments import (
        ablation_masking_backend,
        baseline_comparison_table,
        cloaking_comparison_table,
        format_table,
    )

    print(format_table(cloaking_comparison_table(),
                       title="Location cloaking vs LPPA (dense world)"))
    print()
    print(format_table(baseline_comparison_table(),
                       title="Paillier secure auction (ref [7]) vs LPPA, communication"))
    print()
    print(format_table(ablation_masking_backend(),
                       title="Masking backends: per-entry trade-offs"))
    return 0


def _cmd_report(args) -> int:
    from repro.experiments import FULL, SMOKE
    from repro.experiments.report import write_report

    path = write_report(
        args.out,
        FULL if args.full else SMOKE,
        include_extensions=not args.no_extensions,
        workers=args.workers,
        on_report=_engine_report_hook(args),
    )
    print(f"report written to {path}")
    return 0


_COMMANDS = {
    "figures": _cmd_figures,
    "report": _cmd_report,
    "baselines": _cmd_baselines,
    "theorems": _cmd_theorems,
    "ablations": _cmd_ablations,
    "coverage": _cmd_coverage,
    "demo": _cmd_demo,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
