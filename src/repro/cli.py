"""Command-line entry point: ``python -m repro <command>``.

Gives the whole reproduction a zero-code driving surface:

* ``figures``   — regenerate every paper figure's series (smoke scale by
  default; ``--full`` for the EXPERIMENTS.md scale);
* ``theorems``  — the Theorem 1-3 validation tables and Theorem 4 cost;
* ``ablations`` — the design-choice ablations;
* ``coverage``  — print one area/channel's coverage map as ASCII;
* ``baselines`` — LPPA vs cloaking / Paillier / OPE comparisons;
* ``report``    — every experiment, one markdown file;
* ``demo``      — one quick private auction round with a result summary;
* ``metrics``   — inspect, validate and diff ``BENCH_*.json`` artifacts.

Every experiment command additionally accepts ``--metrics PATH``: the run
executes with a :mod:`repro.obs` registry collecting, the fixed crypto
calibration workload is appended so artifacts are comparable across runs,
and a schema-versioned benchmark artifact is written to PATH (see
``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Any, Callable, Dict, List, Optional

from repro import __version__

__all__ = ["main", "build_parser"]

#: Commands that accept ``--metrics`` (everything that runs protocol code).
_METRICS_COMMANDS = ("figures", "theorems", "ablations", "baselines", "report", "demo")


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LPPA (ICDCS 2013) reproduction driver",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_workers_flag(command_parser) -> None:
        command_parser.add_argument(
            "--workers",
            type=int,
            default=None,
            metavar="N",
            help="parallel sweep workers (default: $REPRO_WORKERS or serial); "
            "results are bit-identical at any worker count",
        )
        command_parser.add_argument(
            "--timings",
            action="store_true",
            help="print one engine timing line per sweep to stderr",
        )

    def add_metrics_flag(command_parser) -> None:
        command_parser.add_argument(
            "--metrics",
            default=None,
            metavar="PATH",
            help="collect obs metrics for this run and write a BENCH_*.json "
            "artifact to PATH (a directory gets the canonical file name)",
        )

    figures = sub.add_parser("figures", help="regenerate the paper's figures")
    figures.add_argument(
        "--full", action="store_true", help="EXPERIMENTS.md scale (slow)"
    )
    figures.add_argument(
        "--only",
        choices=("fig4", "fig5"),
        default=None,
        help="restrict to one figure family",
    )
    add_workers_flag(figures)
    add_metrics_flag(figures)

    theorems = sub.add_parser("theorems", help="validate Theorems 1-4")
    add_metrics_flag(theorems)
    ablations = sub.add_parser("ablations", help="run the design-choice ablations")
    add_workers_flag(ablations)
    add_metrics_flag(ablations)

    coverage = sub.add_parser("coverage", help="print a coverage map")
    coverage.add_argument("--area", type=int, default=3, choices=(1, 2, 3, 4))
    coverage.add_argument("--channel", type=int, default=0)
    coverage.add_argument("--channels", type=int, default=30,
                          help="how many channels to build")
    coverage.add_argument("--step", type=int, default=2,
                          help="downsampling factor for the ASCII render")

    baselines = sub.add_parser(
        "baselines", help="compare LPPA against cloaking / Paillier"
    )
    add_metrics_flag(baselines)

    report = sub.add_parser("report", help="write the full markdown report")
    report.add_argument("--out", default="lppa_report.md")
    report.add_argument("--full", action="store_true")
    report.add_argument("--no-extensions", action="store_true")
    add_workers_flag(report)
    add_metrics_flag(report)

    demo = sub.add_parser("demo", help="run one private auction round")
    demo.add_argument("--users", type=int, default=40)
    demo.add_argument("--channels", type=int, default=20)
    demo.add_argument("--replace", type=float, default=0.3,
                      help="zero-replace probability 1-p0")
    demo.add_argument("--seed", type=int, default=42)
    add_metrics_flag(demo)

    metrics = sub.add_parser(
        "metrics", help="inspect / validate / diff BENCH_*.json artifacts"
    )
    metrics_sub = metrics.add_subparsers(dest="metrics_command", required=True)

    diff = metrics_sub.add_parser(
        "diff", help="compare two artifacts and flag regressions"
    )
    diff.add_argument("baseline", help="baseline BENCH_*.json")
    diff.add_argument("current", help="current BENCH_*.json")
    diff.add_argument(
        "--threshold",
        type=float,
        default=None,
        metavar="FRAC",
        help="relative worsening that counts as a regression (default 0.2)",
    )
    diff.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit 0 (for advisory CI gates)",
    )

    show = metrics_sub.add_parser("show", help="pretty-print one artifact")
    show.add_argument("path", help="BENCH_*.json to display")

    validate = metrics_sub.add_parser(
        "validate", help="check an artifact against the schema"
    )
    validate.add_argument("path", help="BENCH_*.json to validate")
    return parser


def _engine_report_hook(args):
    """``on_report=`` callback printing engine timings when asked for."""
    if not getattr(args, "timings", False):
        return None

    def emit(report) -> None:
        print(report.summary(), file=sys.stderr)

    return emit


def _cmd_figures(args) -> int:
    from repro.experiments import (
        FULL,
        SMOKE,
        fig4ab_channel_sweep,
        fig4c_four_areas,
        fig5_performance_sweep,
        fig5_privacy_sweep,
        format_table,
    )

    config = FULL if args.full else SMOKE
    workers = args.workers
    on_report = _engine_report_hook(args)
    if args.only in (None, "fig4"):
        print(format_table(fig4ab_channel_sweep(config, workers=workers,
                                                on_report=on_report),
                           title="Fig 4(a)(b): cells / success vs channels (Area 4)"))
        print()
        print(format_table(fig4c_four_areas(config, workers=workers,
                                            on_report=on_report),
                           title="Fig 4(c): the four areas"))
        print()
    if args.only in (None, "fig5"):
        print(format_table(fig5_privacy_sweep(config, workers=workers,
                                              on_report=on_report),
                           title="Fig 5(a)-(d): privacy under LPPA (Area 3)"))
        print()
        print(format_table(fig5_performance_sweep(config, workers=workers,
                                                  on_report=on_report),
                           title="Fig 5(e)(f): performance under LPPA (Area 3)"))
    return 0


def _cmd_theorems(args) -> int:
    from repro.experiments import (
        format_table,
        theorem1_table,
        theorem2_table,
        theorem3_table,
        theorem4_table,
    )

    print(format_table(theorem1_table(), title="Theorem 1"))
    print()
    print(format_table(theorem2_table(), title="Theorem 2 (see EXPERIMENTS.md erratum)"))
    print()
    print(format_table(theorem3_table(), title="Theorem 3 (printed formula approximate)"))
    print()
    print(format_table(theorem4_table(), title="Theorem 4: communication cost"))
    return 0


def _cmd_ablations(args) -> int:
    from repro.experiments import (
        ablation_cr_expansion,
        ablation_disguise_policy,
        ablation_id_mixing,
        ablation_revalidation,
        format_table,
    )

    workers = args.workers
    on_report = _engine_report_hook(args)
    print(format_table(ablation_id_mixing(), title="ID mixing (§V.C.3)"))
    print()
    print(format_table(ablation_revalidation(workers=workers,
                                             on_report=on_report),
                       title="TTP charging mode (§V.B)"))
    print()
    print(format_table(ablation_cr_expansion(workers=workers,
                                             on_report=on_report),
                       title="cr expansion (§V.B)"))
    print()
    print(format_table(ablation_disguise_policy(workers=workers,
                                                on_report=on_report),
                       title="Disguise law (§IV.C.3)"))
    return 0


def _cmd_coverage(args) -> int:
    from repro.geo import make_coverage_map
    from repro.viz import render_coverage

    if args.channel < 0 or args.channel >= args.channels:
        print("channel index outside the built range", file=sys.stderr)
        return 2
    coverage_map = make_coverage_map(args.area, n_channels=args.channels)
    cov = coverage_map.channels[args.channel]
    print(f"Area {args.area}, channel {args.channel}: "
          f"{cov.availability_fraction():.1%} of cells usable "
          f"('#' = protected PU coverage)")
    print(render_coverage(coverage_map, args.channel, step=args.step))
    return 0


def _cmd_demo(args) -> int:
    from repro.auction import generate_users, run_plain_auction
    from repro.geo import make_database
    from repro.lppa import UniformReplacePolicy, run_lppa_auction

    database = make_database(3, n_channels=args.channels)
    users = generate_users(database, args.users, random.Random(args.seed))
    result = run_lppa_auction(
        users,
        database.coverage.grid,
        two_lambda=6,
        bmax=127,
        policy=UniformReplacePolicy(args.replace),
        rng=random.Random(args.seed),
    )
    plain = run_plain_auction(users, random.Random(args.seed), two_lambda=6)
    outcome = result.outcome
    print(f"users {args.users}, channels {args.channels}, 1-p0 {args.replace}")
    print(f"revenue        {outcome.sum_of_winning_bids()} "
          f"(plain {plain.sum_of_winning_bids()})")
    print(f"satisfaction   {outcome.user_satisfaction():.1%}")
    print(f"wire volume    {result.total_bytes / 1024:.1f} KiB")
    print(f"conflict edges {result.conflict_graph.n_edges}")
    return 0


def _cmd_baselines(args) -> int:
    from repro.experiments import (
        ablation_masking_backend,
        baseline_comparison_table,
        cloaking_comparison_table,
        format_table,
    )

    print(format_table(cloaking_comparison_table(),
                       title="Location cloaking vs LPPA (dense world)"))
    print()
    print(format_table(baseline_comparison_table(),
                       title="Paillier secure auction (ref [7]) vs LPPA, communication"))
    print()
    print(format_table(ablation_masking_backend(),
                       title="Masking backends: per-entry trade-offs"))
    return 0


def _cmd_report(args) -> int:
    from repro.experiments import FULL, SMOKE
    from repro.experiments.report import write_report

    path = write_report(
        args.out,
        FULL if args.full else SMOKE,
        include_extensions=not args.no_extensions,
        workers=args.workers,
        on_report=_engine_report_hook(args),
    )
    print(f"report written to {path}")
    return 0


def _load_artifact_or_fail(path: str) -> Optional[Dict[str, Any]]:
    """Load + validate one artifact; on failure print why and return None."""
    from repro import obs

    try:
        return obs.load_artifact(path)
    except (OSError, ValueError) as exc:
        print(f"error: {path}: {exc}", file=sys.stderr)
        return None


def _cmd_metrics(args) -> int:
    from repro import obs

    if args.metrics_command == "validate":
        if _load_artifact_or_fail(args.path) is None:
            return 2
        print(f"{args.path}: valid (schema v{obs.SCHEMA_VERSION})")
        return 0
    if args.metrics_command == "show":
        document = _load_artifact_or_fail(args.path)
        if document is None:
            return 2
        print(f"artifact   {document['name']}")
        print(f"schema     v{document['schema_version']}")
        print(f"created    {document['created_at']}")
        print(f"git sha    {document['git_sha']}")
        if document.get("config"):
            print("config:")
            for key in sorted(document["config"]):
                print(f"  {key} = {document['config'][key]!r}")
        counters = document["metrics"]["counters"]
        timers = document["metrics"]["timers"]
        if counters:
            print("counters:")
            for key in sorted(counters):
                print(f"  {key:<48} {counters[key]}")
        if timers:
            print("timers (mean seconds x count):")
            for key in sorted(timers):
                stat = timers[key]
                mean = stat["seconds"] / stat["count"] if stat["count"] else 0.0
                print(f"  {key:<48} {mean:.6f} x {stat['count']}")
        return 0
    # diff
    baseline = _load_artifact_or_fail(args.baseline)
    current = _load_artifact_or_fail(args.current)
    if baseline is None or current is None:
        return 2
    kwargs: Dict[str, Any] = {}
    if args.threshold is not None:
        kwargs["threshold"] = args.threshold
    try:
        report = obs.diff_artifacts(baseline, current, **kwargs)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.format())
    if report.has_regressions and not args.warn_only:
        return 1
    return 0


def _artifact_name(args) -> str:
    """Canonical artifact name for a CLI run, e.g. ``figures-fig4``."""
    name = str(args.command)
    only = getattr(args, "only", None)
    if only:
        name = f"{name}-{only}"
    return name


def _scalar_config(args) -> Dict[str, Any]:
    """The JSON-scalar view of the parsed arguments, for artifact config."""
    config: Dict[str, Any] = {}
    for key, value in vars(args).items():
        if key in ("command", "metrics"):
            continue
        if value is None or isinstance(value, (bool, int, float, str)):
            config[key] = value
    return config


def _run_with_metrics(handler: Callable[[Any], int], args) -> int:
    """Run one command under a collecting registry; write the artifact.

    The whole command is timed as ``cli.<command>``; the fixed crypto
    calibration workload (:mod:`repro.obs.calibration`) runs afterwards so
    every artifact carries comparable hot-path baselines even when the
    command itself never touches a given primitive.
    """
    from repro import obs
    from repro.obs.calibration import run_calibration

    registry = obs.MetricsRegistry()
    with obs.collecting(registry):
        with obs.timer(f"cli.{args.command}"):
            code = handler(args)
        run_calibration()
    written = obs.write_artifact(
        args.metrics, _artifact_name(args), registry, config=_scalar_config(args)
    )
    print(f"metrics artifact written to {written}", file=sys.stderr)
    return code


_COMMANDS: Dict[str, Callable[[Any], int]] = {
    "figures": _cmd_figures,
    "report": _cmd_report,
    "baselines": _cmd_baselines,
    "theorems": _cmd_theorems,
    "ablations": _cmd_ablations,
    "coverage": _cmd_coverage,
    "demo": _cmd_demo,
    "metrics": _cmd_metrics,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handler = _COMMANDS[args.command]
    if getattr(args, "metrics", None) and args.command in _METRICS_COMMANDS:
        return _run_with_metrics(handler, args)
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
