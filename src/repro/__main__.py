"""``python -m repro`` — see :mod:`repro.cli`."""

import sys

from repro.cli import main

try:
    sys.exit(main())
except BrokenPipeError:
    # Output piped into e.g. `head`; exit quietly like a well-behaved CLI.
    sys.exit(0)
