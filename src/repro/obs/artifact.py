"""Machine-readable benchmark artifacts (``BENCH_<name>.json``).

One artifact captures one measured run: the metrics snapshot of a
:class:`~repro.obs.registry.MetricsRegistry`, the configuration that
produced it, the git commit it measured and a timestamp.  The schema is
versioned so CI tooling can refuse artifacts it does not understand
instead of mis-reading them.

Schema (version 1)::

    {
      "schema_version": 1,
      "name": "<artifact name, e.g. 'micro_protocol'>",
      "created_at": "<ISO-8601 UTC timestamp>",
      "git_sha": "<commit hash or 'unknown'>",
      "config": { ...flat JSON object describing the workload... },
      "metrics": {
        "counters": {"<phase.path>/<metric>": int, ...},
        "timers":   {"<key>": {"seconds": float, "count": int,
                               "min": float?, "max": float?}, ...},
        "totals":   {"<metric>": int, ...},
        "histograms": {"<key>": {"count": int, "sum": float,
                                 "buckets": {"<i>": int, ...}, ...}, ...}?,
        "gauges":   {"<key>": float, ...}?
      }
    }

The ``histograms``/``gauges`` sections and the timer ``min``/``max``
fields are schema-additive: artifacts written before they existed stay
valid, and consumers must treat their absence as "not recorded" — never
as zero.

``repro metrics diff`` (:mod:`repro.obs.diff`) compares two such files;
the ``bench-artifacts`` CI job uploads them and diffs against a committed
baseline.
"""

from __future__ import annotations

import json
import subprocess
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs.registry import MetricsRegistry

__all__ = [
    "SCHEMA_VERSION",
    "ARTIFACT_PREFIX",
    "git_sha",
    "build_artifact",
    "write_artifact",
    "load_artifact",
    "validate_artifact",
]

#: Current artifact schema version; bump on breaking layout changes.
SCHEMA_VERSION = 1

#: File-name prefix the benchmark suite and CI glob for.
ARTIFACT_PREFIX = "BENCH_"


def git_sha(repo_dir: Optional[Union[str, Path]] = None) -> str:
    """The current commit hash, or ``"unknown"`` outside a usable git repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(repo_dir) if repo_dir is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def build_artifact(
    name: str,
    registry: MetricsRegistry,
    *,
    config: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the schema-versioned artifact document for one run."""
    if not name:
        raise ValueError("artifact name must be non-empty")
    return {
        "schema_version": SCHEMA_VERSION,
        "name": name,
        "created_at": datetime.now(timezone.utc).isoformat(),
        "git_sha": git_sha(),
        "config": dict(config or {}),
        "metrics": registry.snapshot(),
    }


def write_artifact(
    path: Union[str, Path],
    name: str,
    registry: MetricsRegistry,
    *,
    config: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write one artifact as pretty-printed JSON; returns the final path.

    ``path`` may be a directory (existing, or spelled with a trailing
    separator), in which case the file lands there under the canonical
    ``BENCH_<name>.json`` name; any other path is used verbatim.
    """
    document = build_artifact(name, registry, config=config)
    target = Path(path)
    if target.is_dir() or str(path).endswith(("/", "\\")):
        target = target / f"{ARTIFACT_PREFIX}{name}.json"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return target


def load_artifact(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and validate one artifact; raises ``ValueError`` when invalid."""
    document = json.loads(Path(path).read_text())
    errors = validate_artifact(document)
    if errors:
        raise ValueError(
            f"{path} is not a valid BENCH artifact: " + "; ".join(errors)
        )
    return document


def _type_error(field: str, expected: str, value: Any) -> str:
    return f"field {field!r} must be {expected}, got {type(value).__name__}"


def validate_artifact(document: Any) -> List[str]:
    """All schema violations in ``document`` (empty list == valid)."""
    errors: List[str] = []
    if not isinstance(document, dict):
        return ["artifact must be a JSON object"]
    version = document.get("schema_version")
    if version != SCHEMA_VERSION:
        errors.append(
            f"schema_version must be {SCHEMA_VERSION}, got {version!r}"
        )
    for field, kind in (("name", str), ("created_at", str), ("git_sha", str)):
        value = document.get(field)
        if not isinstance(value, kind) or not value:
            errors.append(f"field {field!r} must be a non-empty string")
    config = document.get("config")
    if not isinstance(config, dict):
        errors.append(_type_error("config", "an object", config))
    metrics = document.get("metrics")
    if not isinstance(metrics, dict):
        errors.append(_type_error("metrics", "an object", metrics))
        return errors
    counters = metrics.get("counters")
    if not isinstance(counters, dict):
        errors.append(_type_error("metrics.counters", "an object", counters))
    else:
        for key, value in counters.items():
            if not isinstance(value, int) or isinstance(value, bool):
                errors.append(
                    f"counter {key!r} must be an integer, got {value!r}"
                )
    totals = metrics.get("totals")
    if not isinstance(totals, dict):
        errors.append(_type_error("metrics.totals", "an object", totals))
    timers = metrics.get("timers")
    if not isinstance(timers, dict):
        errors.append(_type_error("metrics.timers", "an object", timers))
    else:
        for key, stat in timers.items():
            if (
                not isinstance(stat, dict)
                or not isinstance(stat.get("seconds"), (int, float))
                or isinstance(stat.get("seconds"), bool)
                or stat.get("seconds", -1) < 0
                or not isinstance(stat.get("count"), int)
                or isinstance(stat.get("count"), bool)
                or stat.get("count", 0) < 1
            ):
                errors.append(
                    f"timer {key!r} must be "
                    '{"seconds": float >= 0, "count": int >= 1}'
                )
                continue
            errors.extend(_check_min_max(f"timer {key!r}", stat))
    histograms = metrics.get("histograms")
    if histograms is not None:
        if not isinstance(histograms, dict):
            errors.append(
                _type_error("metrics.histograms", "an object", histograms)
            )
        else:
            for key, hist in histograms.items():
                errors.extend(_check_histogram(key, hist))
    gauges = metrics.get("gauges")
    if gauges is not None:
        if not isinstance(gauges, dict):
            errors.append(_type_error("metrics.gauges", "an object", gauges))
        else:
            for key, value in gauges.items():
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    errors.append(f"gauge {key!r} must be a number, got {value!r}")
    return errors


def _check_min_max(label: str, stat: Dict[str, Any]) -> List[str]:
    """Optional min/max fields: numbers with min <= max, or both absent.

    Absent means "not recorded" (an older artifact) — validation must not
    demand them, and diffing must not read absence as zero.
    """
    errors: List[str] = []
    has_min, has_max = "min" in stat, "max" in stat
    if has_min != has_max:
        errors.append(f"{label} must carry 'min' and 'max' together")
        return errors
    if not has_min:
        return errors
    for field in ("min", "max"):
        value = stat[field]
        if (
            not isinstance(value, (int, float))
            or isinstance(value, bool)
            or value < 0
        ):
            errors.append(f"{label} field {field!r} must be a number >= 0")
            return errors
    if stat["min"] > stat["max"]:
        errors.append(f"{label} has min > max")
    return errors


def _check_histogram(key: str, hist: Any) -> List[str]:
    label = f"histogram {key!r}"
    if not isinstance(hist, dict):
        return [f"{label} must be an object"]
    errors: List[str] = []
    count = hist.get("count")
    if not isinstance(count, int) or isinstance(count, bool) or count < 0:
        errors.append(f"{label} field 'count' must be a non-negative int")
        return errors
    total = hist.get("sum")
    if not isinstance(total, (int, float)) or isinstance(total, bool) or total < 0:
        errors.append(f"{label} field 'sum' must be a number >= 0")
    buckets = hist.get("buckets")
    if not isinstance(buckets, dict):
        errors.append(f"{label} field 'buckets' must be an object")
    else:
        bucket_total = 0
        for index, value in buckets.items():
            if (
                not str(index).isdigit()
                or not isinstance(value, int)
                or isinstance(value, bool)
                or value < 1
            ):
                errors.append(
                    f"{label} bucket {index!r} must map a digit index to int >= 1"
                )
                return errors
            bucket_total += value
        if bucket_total != count:
            errors.append(f"{label} bucket counts do not sum to 'count'")
    if count > 0:
        errors.extend(_check_min_max(label, hist))
    return errors
