"""The live scrape endpoint: a minimal asyncio HTTP server for OpenMetrics.

:class:`MetricsHttpServer` serves three paths:

* ``GET /metrics``  — the OpenMetrics exposition of whatever the
  ``source`` callable returns *at scrape time* (a
  :class:`~repro.obs.registry.MetricsRegistry`, a snapshot mapping, or
  ``None`` for "nothing collecting" → an empty but valid exposition);
* ``GET /healthz``  — liveness probe (``ok``);
* anything else     — 404.

Scrapes are **lock-free reads**: the process is single-threaded asyncio,
so rendering a snapshot between two protocol await-points observes a
consistent registry without synchronization, and when no ``--metrics-port``
is configured the server is simply never constructed — zero overhead on
the serving path.

This is deliberately not a web framework: HTTP/1.0-style one-shot
responses (``Connection: close``) are all Prometheus, ``curl`` and the CI
format check need.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, List, Optional, Tuple

from repro import obs
from repro.obs.openmetrics import CONTENT_TYPE, render_openmetrics

__all__ = ["MetricsHttpServer"]

#: Request lines longer than this are rejected (we only serve two paths).
_MAX_REQUEST_BYTES = 8192

_EMPTY_SNAPSHOT: dict = {
    "counters": {},
    "timers": {},
    "totals": {},
    "histograms": {},
    "gauges": {},
}


class MetricsHttpServer:
    """Opt-in OpenMetrics scrape endpoint bound to ``host:port``.

    ``port=0`` binds an ephemeral port (tests); :attr:`port` reports the
    bound one after :meth:`start`.  The default ``source`` exposes the
    process-wide active registry (:func:`repro.obs.get_active`), so a
    server started inside ``obs.collecting(...)`` serves exactly what the
    run is recording.
    """

    def __init__(
        self,
        source: Optional[Callable[[], Any]] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._source = source if source is not None else obs.get_active
        self._host = host
        self._port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._scrapes = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "MetricsHttpServer":
        """Bind and begin serving; resolves the port when it was ``0``."""
        if self._server is not None:
            raise RuntimeError("metrics server already started")
        self._server = await asyncio.start_server(
            self._handle, host=self._host, port=self._port
        )
        sockets = self._server.sockets or []
        if sockets:
            self._port = sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        """Stop accepting scrapes and release the socket (idempotent)."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    @property
    def port(self) -> int:
        return self._port

    @property
    def address(self) -> str:
        return f"{self._host}:{self._port}"

    @property
    def scrapes(self) -> int:
        """Number of ``/metrics`` requests served."""
        return self._scrapes

    # -- request handling --------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, headers, body = await self._respond(reader)
            writer.write(_http_response(status, headers, body))
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, List[Tuple[str, str]], bytes]:
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), timeout=10.0
            )
        except asyncio.TimeoutError:
            return "408 Request Timeout", [], b"request timeout\n"
        if len(request_line) > _MAX_REQUEST_BYTES:
            return "414 URI Too Long", [], b"request line too long\n"
        parts = request_line.decode("latin-1", "replace").split()
        if len(parts) < 2:
            return "400 Bad Request", [], b"malformed request line\n"
        method, path = parts[0], parts[1].split("?", 1)[0]
        # Drain headers so well-behaved clients see a clean close.
        while True:
            try:
                line = await asyncio.wait_for(reader.readline(), timeout=10.0)
            except asyncio.TimeoutError:
                break
            if line in (b"", b"\r\n", b"\n"):
                break
        if method not in ("GET", "HEAD"):
            return "405 Method Not Allowed", [], b"only GET is served\n"
        if path == "/healthz":
            return "200 OK", [("Content-Type", "text/plain")], b"ok\n"
        if path != "/metrics":
            return "404 Not Found", [], b"try /metrics\n"
        self._scrapes += 1
        source = self._source()
        snapshot = _EMPTY_SNAPSHOT if source is None else source
        body = render_openmetrics(snapshot).encode("utf-8")
        if method == "HEAD":
            body = b""
        return "200 OK", [("Content-Type", CONTENT_TYPE)], body


def _http_response(
    status: str, headers: List[Tuple[str, str]], body: bytes
) -> bytes:
    lines = [f"HTTP/1.1 {status}"]
    lines.extend(f"{name}: {value}" for name, value in headers)
    lines.append(f"Content-Length: {len(body)}")
    lines.append("Connection: close")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body
