"""``repro.obs`` — protocol observability: metrics, tracing, bench artifacts.

The paper argues LPPA's practicality through per-phase cost (Theorem 4's
communication bits, Fig. 5's computation overhead); this package makes
those quantities first-class, machine-readable outputs of every run:

* :mod:`repro.obs.registry` — the counter/timer store with nested phase
  scopes;
* :mod:`repro.obs.clock` — the single monotonic clock all timing reads;
* :mod:`repro.obs.artifact` — schema-versioned ``BENCH_*.json`` files;
* :mod:`repro.obs.diff` — artifact comparison with a regression threshold
  (the ``repro metrics diff`` CLI and the ``bench-artifacts`` CI job);
* :mod:`repro.obs.calibration` — a fixed crypto micro-workload giving
  every artifact comparable hot-path baselines.

This module is the *instrumentation surface*: the crypto, prefix, lppa and
experiment layers call :func:`count`, :func:`timer` and :func:`phase` here.
By default **nothing is collecting** and every call is a cheap early-out on
a module global — the hot paths (one :func:`count` per HMAC invocation) pay
one ``is None`` test.  Collection is opt-in::

    from repro import obs

    with obs.collecting() as registry:
        run_lppa_auction(...)
    print(registry.totals()["crypto.hmac"])

Worker processes spawned by the experiment engine do not share the parent's
registry; per-sweep rollups are recorded parent-side by the engine itself,
so sweep metrics survive parallel runs while per-op counts are only
complete in serial runs (the CLI's ``--metrics`` default).

Tracing (:mod:`repro.obs.trace`, the protocol flight recorder) composes
under the same context: ``collecting(trace=True)`` installs a trace
recorder alongside the registry, and :func:`phase` then opens a metrics
phase scope *and* a trace span together, so aggregate timings and
per-event records share one set of phase names.
"""

from __future__ import annotations

from types import TracebackType
from typing import ContextManager, Iterator, Optional, Type, Union

import contextlib

from repro.obs.artifact import (
    ARTIFACT_PREFIX,
    SCHEMA_VERSION,
    build_artifact,
    load_artifact,
    validate_artifact,
    write_artifact,
)
from repro.obs.diff import DEFAULT_THRESHOLD, DiffReport, diff_artifacts
from repro.obs.hist import Gauge, Histogram
from repro.obs.openmetrics import render_openmetrics
from repro.obs.registry import MetricsRegistry, TimerStat
from repro.obs.trace import TRACE_SCHEMA_VERSION, TraceRecorder
from repro.obs import trace  # re-export: instrumented code calls obs.trace.message(...)

# ``collecting``'s keyword argument shadows the module name in its scope.
_trace_module = trace

__all__ = [
    "ARTIFACT_PREFIX",
    "DEFAULT_THRESHOLD",
    "SCHEMA_VERSION",
    "TRACE_SCHEMA_VERSION",
    "DiffReport",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TimerStat",
    "TraceRecorder",
    "build_artifact",
    "collecting",
    "count",
    "diff_artifacts",
    "disable",
    "enable",
    "get_active",
    "load_artifact",
    "merge_histogram",
    "observe",
    "phase",
    "record_seconds",
    "render_openmetrics",
    "set_gauge",
    "timer",
    "trace",
    "tracing",
    "validate_artifact",
    "write_artifact",
]

_active: Optional[MetricsRegistry] = None


class _NullScope:
    """Shared no-op context manager returned while collection is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        """No-op entry."""
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        """No-op exit."""


_NULL_SCOPE = _NullScope()


def get_active() -> Optional[MetricsRegistry]:
    """The registry currently collecting, or ``None`` when disabled."""
    return _active


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install (and return) the active registry; a fresh one by default."""
    global _active
    _active = registry if registry is not None else MetricsRegistry()
    return _active


def disable() -> Optional[MetricsRegistry]:
    """Stop collecting; returns the registry that was active, if any."""
    global _active
    previous = _active
    _active = None
    return previous


@contextlib.contextmanager
def collecting(
    registry: Optional[MetricsRegistry] = None,
    *,
    trace: "Optional[Union[bool, TraceRecorder]]" = None,
) -> Iterator[MetricsRegistry]:
    """Enable collection for a ``with`` block, restoring the prior state.

    Yields the (possibly freshly created) registry so callers can snapshot
    it afterwards.  Nesting is allowed; the inner block's registry simply
    shadows the outer one for its duration.

    ``trace`` optionally installs the flight recorder for the same block:
    pass ``True`` for a fresh :class:`TraceRecorder`, or an existing
    recorder instance.  Retrieve it afterwards via the recorder you passed
    (or :func:`repro.obs.trace.get_active` inside the block).
    """
    global _active
    previous = _active
    installed = enable(registry)
    try:
        if trace is None or trace is False:
            yield installed
        else:
            recorder = None if trace is True else trace
            with _trace_module.recording(recorder):
                yield installed
    finally:
        _active = previous


def tracing(
    recorder: Optional[TraceRecorder] = None,
) -> "ContextManager[TraceRecorder]":
    """Enable the flight recorder alone (no metrics registry) for a block.

    Convenience re-export of :func:`repro.obs.trace.recording`.
    """
    return _trace_module.recording(recorder)


def count(name: str, n: int = 1) -> None:
    """Increment a counter on the active registry; no-op when disabled."""
    registry = _active
    if registry is not None:
        registry.count(name, n)


def record_seconds(name: str, seconds: float, count_: int = 1) -> None:
    """Record pre-measured seconds on the active registry; no-op when disabled."""
    registry = _active
    if registry is not None:
        registry.record_seconds(name, seconds, count_)


def observe(name: str, value: float, count_: int = 1) -> None:
    """Fold a histogram observation into the active registry; no-op when disabled."""
    registry = _active
    if registry is not None:
        registry.observe(name, value, count_)


def merge_histogram(name: str, hist: Histogram) -> None:
    """Merge a pre-built histogram into the active registry; no-op when disabled."""
    registry = _active
    if registry is not None:
        registry.merge_histogram(name, hist)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge on the active registry; no-op when disabled."""
    registry = _active
    if registry is not None:
        registry.set_gauge(name, value)


def timer(name: str) -> ContextManager[object]:
    """A timing context manager; a shared no-op object when disabled."""
    registry = _active
    if registry is None:
        return _NULL_SCOPE
    return registry.timer(name)


class _CombinedPhaseScope:
    """Enters a metrics phase scope and a trace span together.

    Keeps the two layers' phase names aligned: aggregate wall time lands
    under ``phase/<path>`` in the registry while the flight recorder gets
    one ``span`` record for the same interval.
    """

    __slots__ = ("_scopes",)

    def __init__(self, *scopes: ContextManager[object]) -> None:
        self._scopes = scopes

    def __enter__(self) -> "_CombinedPhaseScope":
        for scope in self._scopes:
            scope.__enter__()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        for scope in reversed(self._scopes):
            scope.__exit__(exc_type, exc, tb)


def phase(name: str) -> ContextManager[object]:
    """A phase-scope context manager; a shared no-op object when disabled.

    With only the registry active this is a metrics phase scope; with the
    flight recorder also active the same ``with`` block additionally emits
    one trace ``span`` under the same name.
    """
    registry = _active
    recorder = _trace_module.get_active()
    if registry is None and recorder is None:
        return _NULL_SCOPE
    if recorder is None:
        assert registry is not None
        return registry.phase(name)
    if registry is None:
        return recorder.span(name)
    return _CombinedPhaseScope(registry.phase(name), recorder.span(name))
