"""Fixed-bucket histograms and gauges for the metrics registry.

The registry's counters and :class:`~repro.obs.registry.TimerStat`s answer
"how much, how often"; a :class:`Histogram` answers "how is it
distributed" — tail latency of networked rounds, per-phase wall time
across rounds, loadgen round latencies — in **bounded memory**: a fixed
log-spaced bucket grid is laid down once and every observation lands in
one of ``decades * per_decade + 2`` integer cells, so a multi-hour loadgen
run costs the same bytes as a ten-second one.

Bucket semantics (shared with the OpenMetrics exposition): boundary ``i``
is ``lower * 10**(i / per_decade)``; bucket ``i`` covers
``(bound[i-1], bound[i]]``, bucket ``0`` is everything ``<= lower`` and
the last bucket is the ``+Inf`` overflow.  Quantile estimates return the
upper edge of the bucket holding the requested rank (clamped into the
exactly-tracked ``[min, max]``), which keeps them within **one bucket
width** — a multiplicative factor of ``10**(1/per_decade)`` ≈ 1.26 at the
default resolution — of the exact sorted-sample percentile.

A :class:`Gauge` is the trivial counterpart: a last-write-wins float
(mask-cache occupancy, connected clients, TTP backlog).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LOWER",
    "DEFAULT_DECADES",
    "DEFAULT_PER_DECADE",
    "Histogram",
    "Gauge",
    "quantile_from_cumulative",
]

#: Smallest distinguishable value (seconds): 1 microsecond.
DEFAULT_LOWER = 1e-6

#: Bucket grid spans ``lower`` .. ``lower * 10**decades`` (1 µs .. 10 ks).
DEFAULT_DECADES = 10

#: Buckets per decade of the log-spaced grid (resolution factor ~1.26).
DEFAULT_PER_DECADE = 10

#: Quantiles ``percentiles()`` reports, as (label, q) pairs.
PERCENTILE_LABELS: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p95", 0.95),
    ("p99", 0.99),
    ("p999", 0.999),
)

_BOUNDS_CACHE: Dict[Tuple[float, int, int], Tuple[float, ...]] = {}


def _bounds(lower: float, decades: int, per_decade: int) -> Tuple[float, ...]:
    key = (lower, decades, per_decade)
    cached = _BOUNDS_CACHE.get(key)
    if cached is None:
        cached = _BOUNDS_CACHE[key] = tuple(
            lower * 10.0 ** (i / per_decade)
            for i in range(decades * per_decade + 1)
        )
    return cached


def quantile_from_cumulative(
    cumulative: Sequence[Tuple[float, int]], q: float
) -> float:
    """Quantile estimate from ``(upper_bound, cumulative_count)`` pairs.

    ``cumulative`` is ascending in both components with the final entry
    carrying the total count (an ``+Inf`` bound is allowed) — exactly the
    shape of an OpenMetrics histogram family, which lets the SLO gate
    evaluate percentile thresholds against a scraped exposition without
    reconstructing per-bucket deltas.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile q must be in [0, 1]")
    if not cumulative:
        return 0.0
    total = cumulative[-1][1]
    if total <= 0:
        return 0.0
    target = q * (total - 1)
    chosen = cumulative[-1][0]
    for bound, count in cumulative:
        if count > target:
            chosen = bound
            break
    if chosen == float("inf"):
        # Overflow bucket: the best finite statement is the last finite bound.
        finite = [b for b, _ in cumulative if b != float("inf")]
        chosen = finite[-1] if finite else 0.0
    return chosen


class Histogram:
    """Log-spaced fixed-bucket histogram with exact count/sum/min/max.

    Plain object, not thread-safe (same contract as the registry).  All
    buckets are integers; ``observe`` costs one ``bisect`` on the shared
    boundary tuple.  ``merge`` folds another histogram of the *same grid*
    in (the sharding workers and loadgen use this to ship distributions
    across process boundaries as plain dicts).
    """

    __slots__ = (
        "_lower",
        "_decades",
        "_per_decade",
        "_bounds",
        "_counts",
        "_count",
        "_sum",
        "_min",
        "_max",
    )

    def __init__(
        self,
        *,
        lower: float = DEFAULT_LOWER,
        decades: int = DEFAULT_DECADES,
        per_decade: int = DEFAULT_PER_DECADE,
    ) -> None:
        if lower <= 0:
            raise ValueError("histogram lower bound must be positive")
        if decades < 1 or per_decade < 1:
            raise ValueError("histogram decades/per_decade must be >= 1")
        self._lower = lower
        self._decades = decades
        self._per_decade = per_decade
        self._bounds = _bounds(lower, decades, per_decade)
        # One cell per boundary (bucket i: value <= bounds[i]) + overflow.
        self._counts: List[int] = [0] * (len(self._bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    # -- recording ---------------------------------------------------------

    def observe(self, value: float, count: int = 1) -> None:
        """Fold ``count`` observations of ``value`` into the histogram."""
        if value < 0:
            raise ValueError("histogram values must be non-negative")
        if count < 1:
            raise ValueError("histogram count must be >= 1")
        self._counts[bisect_left(self._bounds, value)] += count
        self._count += count
        self._sum += value * count
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` (same bucket grid) into this histogram."""
        if other._bounds is not self._bounds and other._bounds != self._bounds:
            raise ValueError("cannot merge histograms with different buckets")
        for i, c in enumerate(other._counts):
            if c:
                self._counts[i] += c
        self._count += other._count
        self._sum += other._sum
        if other._min is not None and (self._min is None or other._min < self._min):
            self._min = other._min
        if other._max is not None and (self._max is None or other._max > self._max):
            self._max = other._max

    def copy(self) -> "Histogram":
        """An independent histogram with the same grid and contents."""
        dup = Histogram(
            lower=self._lower,
            decades=self._decades,
            per_decade=self._per_decade,
        )
        dup.merge(self)
        return dup

    # -- views -------------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def min(self) -> Optional[float]:
        """Exact smallest observation (``None`` when empty — never a sentinel)."""
        return self._min

    @property
    def max(self) -> Optional[float]:
        """Exact largest observation (``None`` when empty)."""
        return self._max

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def growth(self) -> float:
        """Multiplicative bucket width — the quantile-estimate error bound."""
        return 10.0 ** (1.0 / self._per_decade)

    def bounds(self) -> Tuple[float, ...]:
        """The finite bucket boundaries (the overflow bucket is ``+Inf``)."""
        return self._bounds

    def cumulative(self) -> List[Tuple[float, int]]:
        """Ascending ``(upper_bound, cumulative_count)`` pairs, ``+Inf`` last.

        Zero-delta boundaries are elided (except the first) so expositions
        stay compact; the ``+Inf`` entry always carries the total count.
        """
        out: List[Tuple[float, int]] = []
        running = 0
        for i, c in enumerate(self._counts[:-1]):
            running += c
            if c or not out:
                out.append((self._bounds[i], running))
        out.append((float("inf"), self._count))
        return out

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile: the bucket upper edge at that rank.

        Clamped into the exact ``[min, max]``; within one bucket width
        (factor :attr:`growth`) of the sorted-sample percentile at rank
        ``round(q * (count - 1))``.
        """
        if self._count == 0:
            return 0.0
        estimate = quantile_from_cumulative(self.cumulative(), q)
        assert self._min is not None and self._max is not None
        return min(max(estimate, self._min), self._max)

    def percentiles(self) -> Dict[str, float]:
        """The standard report: ``{"p50": ..., "p95": ..., "p99": ..., "p999": ...}``."""
        return {label: self.quantile(q) for label, q in PERCENTILE_LABELS}

    # -- (de)serialization -------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (sparse buckets; min/max only when non-empty)."""
        out: Dict[str, Any] = {
            "count": self._count,
            "sum": self._sum,
            "lower": self._lower,
            "decades": self._decades,
            "per_decade": self._per_decade,
            "buckets": {
                str(i): c for i, c in enumerate(self._counts) if c
            },
        }
        if self._count:
            out["min"] = self._min
            out["max"] = self._max
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Histogram":
        """Rebuild a histogram from :meth:`as_dict` output."""
        hist = cls(
            lower=float(data.get("lower", DEFAULT_LOWER)),
            decades=int(data.get("decades", DEFAULT_DECADES)),
            per_decade=int(data.get("per_decade", DEFAULT_PER_DECADE)),
        )
        buckets = data.get("buckets", {})
        for index, count in buckets.items():
            i = int(index)
            if not 0 <= i < len(hist._counts):
                raise ValueError(f"histogram bucket index {i} out of range")
            if not isinstance(count, int) or count < 1:
                raise ValueError("histogram bucket count must be int >= 1")
            hist._counts[i] += count
        hist._count = int(data.get("count", 0))
        hist._sum = float(data.get("sum", 0.0))
        if sum(hist._counts) != hist._count:
            raise ValueError("histogram bucket counts do not sum to count")
        if hist._count:
            hist._min = float(data["min"])
            hist._max = float(data["max"])
        return hist

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (
            self._bounds == other._bounds
            and self._counts == other._counts
            and self._count == other._count
            and self._sum == other._sum
            and self._min == other._min
            and self._max == other._max
        )

    def __repr__(self) -> str:
        return (
            f"Histogram(count={self._count}, sum={self._sum:.6f}, "
            f"min={self._min}, max={self._max})"
        )


class Gauge:
    """A last-write-wins float: occupancy, backlog depth, connected clients."""

    __slots__ = ("_value",)

    def __init__(self, value: float = 0.0) -> None:
        self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        """Replace the current value."""
        self._value = float(value)

    def inc(self, delta: float = 1.0) -> None:
        """Add ``delta`` (default 1) to the current value."""
        self._value += delta

    def dec(self, delta: float = 1.0) -> None:
        """Subtract ``delta`` (default 1) from the current value."""
        self._value -= delta

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Gauge):
            return self._value == other._value
        return NotImplemented

    def __repr__(self) -> str:
        return f"Gauge({self._value!r})"
