"""Fixed crypto micro-calibration recorded into every metrics artifact.

A ``BENCH_*.json`` produced by ``repro figures --metrics`` only contains
the operations that workload happened to execute — the Fig. 4 attack
sweeps, for instance, never touch the HMAC masking at all.  CI still needs
every artifact to answer "did this PR make the crypto hot paths slower?",
so the CLI appends this deterministic, fixed-size micro-workload to every
``--metrics`` run (and the benchmark suite records it too):

* HMAC prefix-family masking and a padded range cover (the PPBS wire
  objects; also drives the ``crypto.hmac`` counter);
* masked membership checks (the auctioneer's only primitive);
* Paillier keygen/encrypt/add/decrypt (the ref-[7] comparator's hot ops);
* the keyed OPE table build + encrypt/decrypt (the §IV.B alternative).

Everything is seeded through the label-addressed RNG scheme, so the *work*
is identical on every machine and across runs — only the measured seconds
differ, which is exactly what ``repro metrics diff`` compares.  All metrics
land under the ``calibration`` phase, keeping them separable from the
surrounding workload's own numbers.
"""

from __future__ import annotations

from typing import Optional

from repro import obs
from repro.obs.registry import MetricsRegistry

__all__ = ["CALIBRATION_PHASE", "run_calibration"]

#: Phase name under which every calibration metric is recorded.
CALIBRATION_PHASE = "calibration"

_SEED = "obs-calibration"
_HMAC_KEY = b"obs-calibration-key"
_WIDTH = 12  # prefix bit width: 2^12 domain, the bid-scale order of magnitude
_PAILLIER_BITS = 128  # exercises the math, not the hardness (cheap keygen)
_OPE_DOMAIN = 256


def run_calibration(
    registry: Optional[MetricsRegistry] = None, *, repeats: int = 8
) -> None:
    """Record the fixed micro-workload's counters and timers.

    Uses the explicitly passed ``registry`` if given, else whatever is
    currently collecting; a silent no-op when neither exists, so callers
    never need to guard the call.
    """
    # Imported lazily: repro.obs is imported *by* the crypto layer, so a
    # module-level import here would be circular.
    from repro.crypto.cache import cache_disabled
    from repro.crypto.ope import OrderPreservingEncoder
    from repro.crypto.paillier import generate_paillier_keypair
    from repro.prefix.membership import (
        MaskSpec,
        is_member,
        mask_range,
        mask_specs,
        mask_value,
    )
    from repro.prefix.prefixes import prefix_family
    from repro.utils.rng import spawn_rng

    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if registry is not None:
        with obs.collecting(registry):
            run_calibration(repeats=repeats)
        return
    if obs.get_active() is None:
        return

    with obs.phase(CALIBRATION_PHASE):
        pad_rng = spawn_rng(_SEED, "pad")
        # The masked-digest cache is bypassed so the calibration performs
        # the same HMAC work no matter what ran before it in the process —
        # the whole point is cross-run comparability of a fixed workload.
        with cache_disabled():
            with obs.timer("mask_value"):
                families = [
                    mask_value(_HMAC_KEY, 37 * (i + 1) % (1 << _WIDTH), _WIDTH)
                    for i in range(repeats)
                ]
            with obs.timer("mask_specs_batch"):
                mask_specs(
                    [
                        MaskSpec.of(
                            _HMAC_KEY,
                            prefix_family(37 * (i + 1) % (1 << _WIDTH), _WIDTH),
                        )
                        for i in range(repeats)
                    ]
                )
            with obs.timer("mask_range"):
                ranges = [
                    mask_range(
                        _HMAC_KEY,
                        100 * i,
                        100 * i + 512,
                        _WIDTH,
                        pad_to=2 * _WIDTH - 2,
                        rng=pad_rng,
                    )
                    for i in range(repeats)
                ]
        with obs.timer("membership"):
            for family in families:
                for masked_range in ranges:
                    is_member(family, masked_range)

        paillier_rng = spawn_rng(_SEED, "paillier")
        with obs.timer("paillier_keygen"):
            key = generate_paillier_keypair(_PAILLIER_BITS, paillier_rng)
        with obs.timer("paillier_roundtrip"):
            total = key.public.encrypt(0, paillier_rng)
            for i in range(repeats):
                total = key.public.add(
                    total, key.public.encrypt(i + 1, paillier_rng)
                )
            decrypted = key.decrypt(total)
        if decrypted != repeats * (repeats + 1) // 2:
            raise AssertionError("Paillier calibration round-trip failed")

        with obs.timer("ope_setup"):
            encoder = OrderPreservingEncoder(_HMAC_KEY, _OPE_DOMAIN)
        with obs.timer("ope_roundtrip"):
            for i in range(repeats):
                value = (53 * i) % _OPE_DOMAIN
                if encoder.decrypt(encoder.encrypt(value)) != value:
                    raise AssertionError("OPE calibration round-trip failed")
