"""Declarative SLO thresholds evaluated against metrics ("``repro slo check``").

An SLO file is JSON — structured expressions, not a string grammar,
because metric keys themselves contain ``/`` and ``.``::

    {
      "schema_version": 1,
      "rules": [
        {"name": "loadgen p99 latency",
         "value": {"kind": "histogram", "key": "net.loadgen.latency",
                   "stat": "p99"},
         "max": 5.0},
        {"name": "rounds per second",
         "value": {"kind": "ratio",
                   "num": {"kind": "counter", "key": "net.loadgen.rounds"},
                   "den": {"kind": "timer", "key": "net.loadgen.elapsed",
                           "stat": "sum"}},
         "min": 0.02},
        {"name": "mask cache hit ratio",
         "value": {"kind": "ratio",
                   "num": {"kind": "counter", "key": "crypto.mask_cache.hits"},
                   "den": {"kind": "sum", "terms": [
                       {"kind": "counter", "key": "crypto.mask_cache.hits"},
                       {"kind": "counter", "key": "crypto.mask_cache.misses"}]}},
         "min": 0.05, "warn_only": true}
      ]
    }

Expression kinds: ``counter`` (phase-folded total, or a scoped key when
the key contains ``/``), ``timer`` (``stat``: ``sum`` | ``mean`` |
``count``), ``histogram`` (``stat``: ``p50`` | ``p95`` | ``p99`` |
``p999`` | ``mean`` | ``count`` | ``sum``), ``gauge``, ``ratio``
(``num``/``den`` sub-expressions; an undefined denominator makes the rule
*missing*, not zero), ``sum`` (``terms`` list) and ``const``.

The same rules evaluate against either metrics source — a loaded
``BENCH_*.json`` artifact or a scraped OpenMetrics exposition
(:class:`MetricsView` normalizes both) — so the thresholds gating a CI
loadgen artifact also gate a live ``--metrics-port`` endpoint.  A rule
whose metric is absent is a breach (*missing*), never silently skipped:
an SLO that stops being measured must fail loudly.  ``warn_only`` (per
rule, or globally via ``--warn-only``) downgrades breaches to warnings.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.obs.hist import Histogram, quantile_from_cumulative
from repro.obs.openmetrics import METRIC_PREFIX, _sanitize, parse_openmetrics

__all__ = [
    "SLO_SCHEMA_VERSION",
    "MetricsView",
    "SloResult",
    "SloReport",
    "load_slo_file",
    "evaluate_slos",
]

#: Current SLO-file schema version.
SLO_SCHEMA_VERSION = 1

_EXPR_KINDS = ("counter", "timer", "histogram", "gauge", "ratio", "sum", "const")
_TIMER_STATS = ("sum", "mean", "count")
_HIST_STATS = ("p50", "p95", "p99", "p999", "mean", "count", "sum")

#: Cumulative histogram shape shared by both sources.
_Cumulative = List[Tuple[float, int]]


class MetricsView:
    """One lookup surface over either metrics source.

    Keys are the registry's dotted metric names; the OpenMetrics
    constructor folds label sets (phases) back together, mirroring
    :meth:`MetricsRegistry.totals`, and indexes families by their
    sanitized names so ``net.loadgen.rounds`` finds
    ``repro_net_loadgen_rounds`` transparently.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._timers: Dict[str, Tuple[float, float]] = {}  # sum, count
        self._hists: Dict[str, Tuple[_Cumulative, float, float]] = {}
        self._gauges: Dict[str, float] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, Any]) -> "MetricsView":
        """From a registry snapshot / BENCH artifact ``metrics`` mapping.

        Metrics are folded across phase scopes (the same fold the
        OpenMetrics exposition's ``phase`` labels represent), so a rule's
        ``key`` is always the bare dotted metric name.
        """
        view = cls()
        totals = snapshot.get("totals")
        if totals is None:
            totals = {}
            for key, value in (snapshot.get("counters") or {}).items():
                bare = key.rsplit("/", 1)[-1]
                totals[bare] = totals.get(bare, 0) + value
        for key, value in totals.items():
            view._counters[_sanitize(key)] = float(value)
        for key, stat in (snapshot.get("timers") or {}).items():
            name = _family_name(key, kind="timer")
            seconds, count = float(stat["seconds"]), float(stat["count"])
            prior = view._timers.get(name, (0.0, 0.0))
            view._timers[name] = (prior[0] + seconds, prior[1] + count)
        folded: Dict[str, Histogram] = {}
        for key, data in (snapshot.get("histograms") or {}).items():
            hist = data if isinstance(data, Histogram) else Histogram.from_dict(data)
            name = _family_name(key, kind="histogram")
            if name in folded:
                folded[name].merge(hist)
            else:
                folded[name] = hist.copy()
        for name, hist in folded.items():
            view._hists[name] = (hist.cumulative(), hist.sum, float(hist.count))
        for key, value in (snapshot.get("gauges") or {}).items():
            view._gauges[_sanitize(key.rsplit("/", 1)[-1])] = float(value)
        return view

    @classmethod
    def from_openmetrics(cls, text: str) -> "MetricsView":
        """From a scraped exposition (``GET /metrics`` response body)."""
        view = cls()
        for family in parse_openmetrics(text).values():
            if family.type == "counter":
                total = sum(v for name, _, v in family.samples if name.endswith("_total"))
                view._counters[family.name] = total
            elif family.type == "gauge":
                if family.samples:
                    view._gauges[family.name] = family.samples[-1][2]
            elif family.type == "summary":
                seconds = sum(v for n, _, v in family.samples if n.endswith("_sum"))
                count = sum(v for n, _, v in family.samples if n.endswith("_count"))
                view._timers[family.name] = (seconds, count)
            elif family.type == "histogram":
                per_le: Dict[float, int] = {}
                seconds = count = 0.0
                for name, labels, value in family.samples:
                    if name.endswith("_bucket") and "le" in labels:
                        le = float("inf") if labels["le"] == "+Inf" else float(labels["le"])
                        per_le[le] = per_le.get(le, 0) + int(value)
                    elif name.endswith("_sum"):
                        seconds += value
                    elif name.endswith("_count"):
                        count += value
                cumulative = sorted(per_le.items())
                view._hists[family.name] = (cumulative, seconds, count)
        return view

    # -- lookups (None == not measured) ------------------------------------

    def counter(self, key: str) -> Optional[float]:
        """Phase-folded counter total, or ``None`` when not measured."""
        return self._counters.get(_lookup_name(key))

    def timer(self, key: str, stat: str) -> Optional[float]:
        """Timer ``sum``/``mean``/``count``, or ``None`` when not measured."""
        entry = self._timers.get(_lookup_name(key, seconds=True))
        if entry is None:
            return None
        seconds, count = entry
        if stat == "sum":
            return seconds
        if stat == "count":
            return count
        return seconds / count if count else None

    def histogram(self, key: str, stat: str) -> Optional[float]:
        """Histogram percentile/``mean``/``count``/``sum``, or ``None``."""
        entry = self._hists.get(_lookup_name(key, seconds=True))
        if entry is None:
            return None
        cumulative, seconds, count = entry
        if stat == "count":
            return count
        if stat == "sum":
            return seconds
        if stat == "mean":
            return seconds / count if count else None
        if not count:
            return None
        q = {"p50": 0.5, "p95": 0.95, "p99": 0.99, "p999": 0.999}[stat]
        return quantile_from_cumulative(cumulative, q)

    def gauge(self, key: str) -> Optional[float]:
        """Last-written gauge value, or ``None`` when not measured."""
        return self._gauges.get(_lookup_name(key))


def _family_name(key: str, *, kind: str) -> str:
    """A scoped registry timer/histogram key -> its exposition family name."""
    if "/" in key:
        path, bare = key.split("/", 1)
        if path == "phase":
            special = "phase" if kind == "timer" else "phase_duration"
            return _sanitize(special) + "_seconds"
        return _sanitize(bare) + "_seconds"
    return _sanitize(key) + "_seconds"


def _lookup_name(key: str, *, seconds: bool = False) -> str:
    """A rule's dotted key (or a raw family name) -> the view's index name."""
    if key.startswith(METRIC_PREFIX):
        return key
    name = _sanitize(key)
    return name + "_seconds" if seconds else name


@dataclass(frozen=True)
class SloResult:
    """One evaluated rule."""

    name: str
    status: str  # "pass" | "warn" | "fail" | "missing-warn" | "missing-fail"
    value: Optional[float]
    limit: str

    @property
    def ok(self) -> bool:
        return self.status in ("pass", "warn", "missing-warn")

    def describe(self) -> str:
        """One aligned human-readable line for the check table."""
        shown = "missing" if self.value is None else f"{self.value:.6g}"
        mark = {
            "pass": "ok  ",
            "warn": "WARN",
            "missing-warn": "WARN",
            "fail": "FAIL",
            "missing-fail": "FAIL",
        }[self.status]
        return f"{mark} {self.name:<40} value={shown:<12} limit: {self.limit}"


@dataclass
class SloReport:
    """Every rule's outcome; ``failed`` drives the CLI exit code."""

    results: List[SloResult] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        return any(not r.ok for r in self.results)

    def format(self) -> str:
        """The multi-line report ``repro slo check`` prints."""
        lines = [r.describe() for r in self.results]
        failures = sum(1 for r in self.results if not r.ok)
        warns = sum(1 for r in self.results if r.status in ("warn", "missing-warn"))
        lines.append(
            f"slo check: {len(self.results)} rules, "
            f"{failures} breached, {warns} warnings"
        )
        return "\n".join(lines)


def load_slo_file(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and validate an SLO rules file; raises ``ValueError`` when bad."""
    document = json.loads(Path(path).read_text())
    errors = validate_slo_document(document)
    if errors:
        raise ValueError(f"{path} is not a valid SLO file: " + "; ".join(errors))
    return document


def validate_slo_document(document: Any) -> List[str]:
    """All schema violations in an SLO document (empty list == valid)."""
    errors: List[str] = []
    if not isinstance(document, dict):
        return ["SLO document must be a JSON object"]
    if document.get("schema_version") != SLO_SCHEMA_VERSION:
        errors.append(f"schema_version must be {SLO_SCHEMA_VERSION}")
    rules = document.get("rules")
    if not isinstance(rules, list) or not rules:
        return errors + ["'rules' must be a non-empty list"]
    for i, rule in enumerate(rules):
        label = f"rule {i}"
        if not isinstance(rule, dict):
            errors.append(f"{label} must be an object")
            continue
        if not isinstance(rule.get("name"), str) or not rule.get("name"):
            errors.append(f"{label} needs a non-empty 'name'")
        if "max" not in rule and "min" not in rule:
            errors.append(f"{label} needs 'max' and/or 'min'")
        for bound in ("max", "min"):
            if bound in rule and (
                not isinstance(rule[bound], (int, float))
                or isinstance(rule[bound], bool)
            ):
                errors.append(f"{label} {bound!r} must be a number")
        errors.extend(_validate_expr(rule.get("value"), f"{label} value"))
    return errors


def _validate_expr(expr: Any, label: str) -> List[str]:
    if not isinstance(expr, dict):
        return [f"{label} must be an expression object"]
    kind = expr.get("kind")
    if kind not in _EXPR_KINDS:
        return [f"{label} kind must be one of {_EXPR_KINDS}"]
    errors: List[str] = []
    if kind in ("counter", "timer", "histogram", "gauge"):
        if not isinstance(expr.get("key"), str) or not expr.get("key"):
            errors.append(f"{label} needs a non-empty 'key'")
    if kind == "timer" and expr.get("stat", "mean") not in _TIMER_STATS:
        errors.append(f"{label} timer stat must be one of {_TIMER_STATS}")
    if kind == "histogram" and expr.get("stat", "p99") not in _HIST_STATS:
        errors.append(f"{label} histogram stat must be one of {_HIST_STATS}")
    if kind == "ratio":
        errors.extend(_validate_expr(expr.get("num"), f"{label}.num"))
        errors.extend(_validate_expr(expr.get("den"), f"{label}.den"))
    if kind == "sum":
        terms = expr.get("terms")
        if not isinstance(terms, list) or not terms:
            errors.append(f"{label} sum needs a non-empty 'terms' list")
        else:
            for j, term in enumerate(terms):
                errors.extend(_validate_expr(term, f"{label}.terms[{j}]"))
    if kind == "const" and (
        not isinstance(expr.get("value"), (int, float))
        or isinstance(expr.get("value"), bool)
    ):
        errors.append(f"{label} const needs a numeric 'value'")
    return errors


def _evaluate_expr(expr: Mapping[str, Any], view: MetricsView) -> Optional[float]:
    kind = expr["kind"]
    if kind == "counter":
        return view.counter(expr["key"])
    if kind == "timer":
        return view.timer(expr["key"], expr.get("stat", "mean"))
    if kind == "histogram":
        return view.histogram(expr["key"], expr.get("stat", "p99"))
    if kind == "gauge":
        return view.gauge(expr["key"])
    if kind == "const":
        return float(expr["value"])
    if kind == "sum":
        total = 0.0
        for term in expr["terms"]:
            value = _evaluate_expr(term, view)
            if value is None:
                return None
            total += value
        return total
    assert kind == "ratio"
    num = _evaluate_expr(expr["num"], view)
    den = _evaluate_expr(expr["den"], view)
    if num is None or den is None or den == 0:
        return None
    return num / den


def evaluate_slos(
    document: Mapping[str, Any],
    view: MetricsView,
    *,
    warn_only: bool = False,
) -> SloReport:
    """Evaluate every rule of a validated SLO document against ``view``."""
    report = SloReport()
    for rule in document["rules"]:
        value = _evaluate_expr(rule["value"], view)
        soft = warn_only or bool(rule.get("warn_only"))
        limits = []
        if "max" in rule:
            limits.append(f"<= {rule['max']:g}")
        if "min" in rule:
            limits.append(f">= {rule['min']:g}")
        limit = " and ".join(limits)
        if value is None:
            status = "missing-warn" if soft else "missing-fail"
        else:
            breached = ("max" in rule and value > rule["max"]) or (
                "min" in rule and value < rule["min"]
            )
            if not breached:
                status = "pass"
            else:
                status = "warn" if soft else "fail"
        report.results.append(
            SloResult(name=rule["name"], status=status, value=value, limit=limit)
        )
    return report
