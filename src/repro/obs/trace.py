"""``repro.obs.trace`` — the protocol flight recorder.

Where :mod:`repro.obs.registry` aggregates (counters and timers), this
module *records*: every protocol event — phase spans with parent/child
nesting, each :class:`~repro.lppa.messages.LocationSubmission` /
:class:`~repro.lppa.messages.BidSubmission` with its exact serialized wire
size, the TTP charging messages, the adversary-visible per-channel bid
rankings — lands as one schema-versioned record in an in-memory ring
buffer.  The paper's claims are per-message (Theorem 4 bounds what each SU
transmits) and per-round (the BCM/BPM threat model is about what the
auctioneer observes message by message); a trace lets the auditors in
:mod:`repro.analysis.trace_audit` check those claims against what the
protocol *actually emitted*.

Event record shapes (schema version 1, one JSON object per JSONL line):

* header (always the first line of an export)::

      {"type": "trace_header", "schema_version": 1, "clock": "perf_counter",
       "event_count": N, "dropped": D, "capacity": C}

* common event fields: ``type`` (``span`` | ``message`` | ``instant`` |
  ``meta`` | ``ranking``), ``seq`` (monotonic int), ``ts`` (seconds since
  the recorder started, from :mod:`repro.obs.clock`), ``round``
  (auction-round index or ``null``), ``vis`` (who can observe the event:
  ``public`` | ``auctioneer`` | ``su`` | ``ttp``); optionally ``session``
  (the :func:`correlation_key` both ends of a connection derive from the
  WELCOME announcement), ``role`` (``server`` | ``su:<id>`` | ``ttp`` |
  ...) and — on merged traces — ``src`` (source index in the merge);
* ``span`` — ``name``, ``path`` (dot-joined nesting), ``parent`` (path or
  ``null``), ``dur`` (seconds; ``ts`` is the span's *start*);
* ``message`` — ``kind`` (``location_submission`` | ``bid_submission`` |
  ``charge_request`` | ``charge_decision``), ``su``, ``channel``,
  ``payload_bytes`` (what ``wire_bytes()`` / Theorem 4 model),
  ``wire_size`` (exact serialized size including framing), plus
  kind-specific extras (``masked_set_bytes``, ``digest_bytes``,
  ``n_channels``, ``status``, ...);
* ``instant`` — ``name`` plus free-form ``args``;
* ``meta`` — ``name`` plus free-form ``args`` (run/protocol parameters);
* ``ranking`` — ``channel`` and ``classes`` (the per-channel masked-bid
  equivalence classes, best first — exactly the curious auctioneer's view).

The module-level layer mirrors :mod:`repro.obs`: nothing records by
default, every emit helper is a cheap early-out on a module global, and
call sites that would *compute* event payloads guard on
:func:`get_active` so tracing disabled costs one ``is None`` test.
"""

from __future__ import annotations

import collections
import hashlib
import json
from pathlib import Path
from types import TracebackType
from typing import (
    Any,
    ContextManager,
    Deque,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

import contextlib

from repro.obs.clock import monotonic

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "DEFAULT_CAPACITY",
    "EVENT_TYPES",
    "MESSAGE_KINDS",
    "VISIBILITIES",
    "TRACE_FILE_PREFIX",
    "TraceRecorder",
    "get_active",
    "enable",
    "disable",
    "recording",
    "span",
    "message",
    "instant",
    "meta",
    "ranking",
    "round_begin",
    "round_end",
    "adversary_view",
    "correlation_key",
    "load_trace",
    "merge_traces",
    "write_jsonl_records",
    "validate_trace",
    "chrome_trace",
]

#: Current trace schema version; bump on breaking record-layout changes.
TRACE_SCHEMA_VERSION = 1

#: Default ring-buffer capacity (events); oldest events drop beyond this.
DEFAULT_CAPACITY = 1 << 16

#: File-name prefix the CLI and CI glob for (``TRACE_<name>.jsonl``).
TRACE_FILE_PREFIX = "TRACE_"

EVENT_TYPES = ("span", "message", "instant", "meta", "ranking")

MESSAGE_KINDS = (
    "location_submission",
    "bid_submission",
    "charge_request",
    "charge_decision",
)

#: Who can observe an event.  ``auctioneer`` marks the honest-but-curious
#: adversary's view — the privacy auditor consumes exactly ``public`` +
#: ``auctioneer`` events and nothing else.
VISIBILITIES = ("public", "auctioneer", "su", "ttp")

Record = Dict[str, Any]


def correlation_key(announcement: Dict[str, Any]) -> str:
    """The cross-process session id derived from data already on the wire.

    Both ends of a connection hash the WELCOME announcement (the auction
    parameters the server broadcasts anyway) — canonical JSON, SHA-256,
    first 12 hex characters — so server, every SU client and the TTP
    service stamp the *same* ``session`` into their trace events without a
    single extra wire byte.  Together with the per-event ``round`` and the
    span ``path`` (phase), that makes ``(session, round, phase)`` the
    correlation key ``repro trace merge`` joins on.
    """
    canonical = json.dumps(
        announcement, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


class _NullScope:
    """Shared no-op context manager returned while recording is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        """No-op entry."""
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        """No-op exit."""


_NULL_SCOPE = _NullScope()


class _SpanScope:
    """Context manager emitting one ``span`` record when its block closes.

    The record's ``ts`` is the span's *start*; ``dur`` its wall seconds
    (both from the single :mod:`repro.obs.clock`).  Nesting is tracked on
    the recorder's span stack so the record carries its dot-joined ``path``
    and its ``parent`` path.
    """

    __slots__ = ("_recorder", "_name", "_vis", "_args", "_start", "_path", "_parent")

    def __init__(
        self,
        recorder: "TraceRecorder",
        name: str,
        vis: str,
        args: Dict[str, Any],
    ) -> None:
        self._recorder = recorder
        self._name = name
        self._vis = vis
        self._args = args
        self._start = 0.0
        self._path = ""
        self._parent: Optional[str] = None

    def __enter__(self) -> "_SpanScope":
        stack = self._recorder._span_stack
        self._parent = ".".join(stack) if stack else None
        stack.append(self._name)
        self._path = ".".join(stack)
        self._start = self._recorder._now()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        dur = self._recorder._now() - self._start
        stack = self._recorder._span_stack
        if not stack or stack[-1] != self._name:
            raise RuntimeError(
                f"span stack corrupted: closing {self._name!r} "
                f"but stack is {stack!r}"
            )
        stack.pop()
        record: Record = {
            "type": "span",
            "name": self._name,
            "path": self._path,
            "parent": self._parent,
            "dur": dur,
            "vis": self._vis,
        }
        if self._args:
            record["args"] = self._args
        self._recorder._emit(record, ts=self._start)


class TraceRecorder:
    """In-memory ring buffer of protocol events.

    Plain object — create as many as you like; the module-level layer
    (:func:`enable` / :func:`recording`) decides which one, if any, the
    instrumented code feeds.  When the buffer is full the *oldest* events
    drop (flight-recorder semantics: the most recent window survives) and
    :attr:`dropped` counts the loss, which exports surface in the header.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("trace capacity must be >= 1")
        self._capacity = capacity
        self._events: Deque[Record] = collections.deque(maxlen=capacity)
        self._seq = 0
        self._dropped = 0
        self._t0 = monotonic()
        self._round: Optional[int] = None
        self._rounds_started = 0
        self._span_stack: List[str] = []
        self._session: Optional[str] = None
        self._role: Optional[str] = None

    # -- recording ---------------------------------------------------------

    def _now(self) -> float:
        return monotonic() - self._t0

    def _emit(self, record: Record, *, ts: Optional[float] = None) -> None:
        record["seq"] = self._seq
        record["ts"] = self._now() if ts is None else ts
        record["round"] = self._round
        if self._session is not None:
            record["session"] = self._session
        if self._role is not None:
            record["role"] = self._role
        self._seq += 1
        if len(self._events) == self._capacity:
            self._dropped += 1
        self._events.append(record)

    def set_correlation(
        self,
        *,
        session: Optional[str] = None,
        role: Optional[str] = None,
    ) -> None:
        """Default ``session``/``role`` stamps for every subsequent event.

        Optional extra fields only — summaries, the Theorem-4 audit and
        the wire bytes are computed from fields that predate them, so
        stamping changes no audited quantity (the differential tests pin
        this).  ``None`` leaves the respective default unchanged.
        """
        if session is not None:
            self._session = session
        if role is not None:
            self._role = role

    @contextlib.contextmanager
    def corr_scope(
        self,
        *,
        session: Optional[str] = None,
        role: Optional[str] = None,
        round_: Optional[int] = None,
    ) -> Iterator["TraceRecorder"]:
        """Temporarily override correlation stamps for a synchronous block.

        Used where one recorder serves several logical processes in one
        event loop (the TTP service inside the server process, self-hosted
        loadgen): events emitted inside the block carry the overridden
        ``session``/``role``/``round``.  The block must not ``await`` —
        an interleaved coroutine would inherit the override.
        """
        prev = (self._session, self._role, self._round)
        if session is not None:
            self._session = session
        if role is not None:
            self._role = role
        if round_ is not None:
            self._round = round_
        try:
            yield self
        finally:
            self._session, self._role, self._round = prev

    def span(
        self, name: str, *, vis: str = "public", **args: Any
    ) -> _SpanScope:
        """Open a span scope: ``with recorder.span("bid_submission"): ...``."""
        _check_name(name)
        _check_vis(vis)
        return _SpanScope(self, name, vis, args)

    def message(
        self,
        kind: str,
        *,
        su: Optional[int] = None,
        channel: Optional[int] = None,
        payload_bytes: Optional[int] = None,
        wire_size: Optional[int] = None,
        vis: str = "auctioneer",
        **extra: Any,
    ) -> None:
        """Record one wire message with its exact size accounting."""
        if kind not in MESSAGE_KINDS:
            raise ValueError(f"unknown message kind {kind!r}")
        _check_vis(vis)
        record: Record = {
            "type": "message",
            "kind": kind,
            "su": su,
            "channel": channel,
            "payload_bytes": payload_bytes,
            "wire_size": wire_size,
            "vis": vis,
        }
        record.update(extra)
        self._emit(record)

    def instant(self, name: str, *, vis: str = "public", **args: Any) -> None:
        """Record one point-in-time event."""
        _check_name(name)
        _check_vis(vis)
        record: Record = {"type": "instant", "name": name, "vis": vis}
        if args:
            record["args"] = args
        self._emit(record)

    def meta(self, name: str, *, vis: str = "public", **args: Any) -> None:
        """Record run/protocol parameters (``protocol_setup``, ``run_meta``, ...)."""
        _check_name(name)
        _check_vis(vis)
        self._emit({"type": "meta", "name": name, "vis": vis, "args": args})

    def ranking(self, channel: int, classes: Sequence[Sequence[int]]) -> None:
        """Record one channel's masked-bid ranking (the adversary's view)."""
        if channel < 0:
            raise ValueError("channel must be non-negative")
        self._emit(
            {
                "type": "ranking",
                "channel": channel,
                "classes": [list(map(int, cls)) for cls in classes],
                "vis": "auctioneer",
            }
        )

    def round_begin(self) -> int:
        """Start attributing events to the next auction round; returns its index."""
        self._round = self._rounds_started
        self._rounds_started += 1
        self.instant("round_begin")
        return self._round

    def round_end(self, **args: Any) -> None:
        """Close the current round (events return to round ``null``)."""
        self.instant("round_end", **args)
        self._round = None

    # -- views -------------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def dropped(self) -> int:
        """Events lost to ring-buffer wraparound."""
        return self._dropped

    @property
    def current_round(self) -> Optional[int]:
        return self._round

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> List[Record]:
        """A snapshot list of the buffered events (oldest first)."""
        return list(self._events)

    def header(self) -> Record:
        """The export header record."""
        return {
            "type": "trace_header",
            "schema_version": TRACE_SCHEMA_VERSION,
            "clock": "perf_counter",
            "event_count": len(self._events),
            "dropped": self._dropped,
            "capacity": self._capacity,
        }

    def wire_totals(self) -> Dict[str, int]:
        """Payload bytes summed per message kind (missing sizes count 0)."""
        totals: Dict[str, int] = {}
        for record in self._events:
            if record["type"] != "message":
                continue
            size = record.get("payload_bytes") or 0
            kind = record["kind"]
            totals[kind] = totals.get(kind, 0) + size
        return totals

    def summary(self) -> Dict[str, Any]:
        """Aggregate view used by ``repro trace show`` and the bench artifact."""
        by_type: Dict[str, int] = {}
        by_kind: Dict[str, int] = {}
        by_phase: Dict[str, int] = {}
        wire_size_total = 0
        rounds: set = set()
        for record in self._events:
            by_type[record["type"]] = by_type.get(record["type"], 0) + 1
            if record.get("round") is not None:
                rounds.add(record["round"])
            if record["type"] == "message":
                by_kind[record["kind"]] = by_kind.get(record["kind"], 0) + 1
                wire_size_total += record.get("wire_size") or 0
            elif record["type"] == "span":
                by_phase[record["path"]] = by_phase.get(record["path"], 0) + 1
        return {
            "events": len(self._events),
            "dropped": self._dropped,
            "rounds": len(rounds),
            "by_type": by_type,
            "messages_by_kind": by_kind,
            "spans_by_path": by_phase,
            "payload_bytes_by_kind": self.wire_totals(),
            "wire_size_total": wire_size_total,
        }

    # -- exports -----------------------------------------------------------

    def jsonl_lines(self) -> Iterator[str]:
        """Header line followed by one compact JSON object per event."""
        yield json.dumps(self.header(), sort_keys=True)
        for record in self._events:
            yield json.dumps(record, sort_keys=True)

    def write_jsonl(self, path: Union[str, Path]) -> Path:
        """Export the buffer as JSONL; returns the final path.

        ``path`` may be a directory (existing, or spelled with a trailing
        separator), in which case the file lands there as
        ``TRACE_<name>.jsonl`` with name ``trace`` — callers wanting the
        canonical per-command name pass a full path.
        """
        target = Path(path)
        if target.is_dir() or str(path).endswith(("/", "\\")):
            target = target / f"{TRACE_FILE_PREFIX}trace.jsonl"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text("\n".join(self.jsonl_lines()) + "\n")
        return target

    def write_chrome(self, path: Union[str, Path]) -> Path:
        """Export in Chrome trace-event format (load in Perfetto / chrome://tracing)."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(chrome_trace(self.events()), indent=1) + "\n")
        return target


# -- module-level no-op layer (mirrors repro.obs) --------------------------

_active: Optional[TraceRecorder] = None


def get_active() -> Optional[TraceRecorder]:
    """The recorder currently recording, or ``None`` when disabled."""
    return _active


def enable(recorder: Optional[TraceRecorder] = None) -> TraceRecorder:
    """Install (and return) the active recorder; a fresh one by default."""
    global _active
    _active = recorder if recorder is not None else TraceRecorder()
    return _active


def disable() -> Optional[TraceRecorder]:
    """Stop recording; returns the recorder that was active, if any."""
    global _active
    previous = _active
    _active = None
    return previous


@contextlib.contextmanager
def recording(
    recorder: Optional[TraceRecorder] = None,
) -> Iterator[TraceRecorder]:
    """Enable recording for a ``with`` block, restoring the prior state."""
    global _active
    previous = _active
    installed = enable(recorder)
    try:
        yield installed
    finally:
        _active = previous


def span(name: str, *, vis: str = "public", **args: Any) -> ContextManager[object]:
    """A span context manager; the shared no-op object when disabled."""
    recorder = _active
    if recorder is None:
        return _NULL_SCOPE
    return recorder.span(name, vis=vis, **args)


def message(kind: str, **fields: Any) -> None:
    """Record a message on the active recorder; no-op when disabled."""
    recorder = _active
    if recorder is not None:
        recorder.message(kind, **fields)


def instant(name: str, *, vis: str = "public", **args: Any) -> None:
    """Record an instant event; no-op when disabled."""
    recorder = _active
    if recorder is not None:
        recorder.instant(name, vis=vis, **args)


def meta(name: str, *, vis: str = "public", **args: Any) -> None:
    """Record a meta event; no-op when disabled."""
    recorder = _active
    if recorder is not None:
        recorder.meta(name, vis=vis, **args)


def ranking(channel: int, classes: Sequence[Sequence[int]]) -> None:
    """Record a channel ranking; no-op when disabled."""
    recorder = _active
    if recorder is not None:
        recorder.ranking(channel, classes)


def round_begin() -> Optional[int]:
    """Open the next auction round on the active recorder, if any."""
    recorder = _active
    if recorder is None:
        return None
    return recorder.round_begin()


def round_end(**args: Any) -> None:
    """Close the current auction round on the active recorder, if any."""
    recorder = _active
    if recorder is not None:
        recorder.round_end(**args)


# -- consumption helpers ---------------------------------------------------

#: Visibilities the honest-but-curious auctioneer observes.
_ADVERSARY_VIS = ("public", "auctioneer")


def adversary_view(records: Iterable[Record]) -> List[Record]:
    """Only the events the auctioneer can observe (``public`` + ``auctioneer``).

    This is the stream the privacy auditor replays: SU-side and TTP-side
    events (true bids, keys, decrypted charges) never reach it.
    """
    return [r for r in records if r.get("vis") in _ADVERSARY_VIS]


def load_trace(path: Union[str, Path]) -> Tuple[Record, List[Record]]:
    """Read and validate a JSONL trace; returns ``(header, events)``.

    Raises ``ValueError`` when the file is not a valid schema-v1 trace.
    """
    lines = Path(path).read_text().splitlines()
    try:
        records = [json.loads(line) for line in lines if line.strip()]
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path} is not JSONL: {exc}") from exc
    errors = validate_trace(records)
    if errors:
        raise ValueError(
            f"{path} is not a valid trace: "
            + "; ".join(errors[:5])
            + ("; ..." if len(errors) > 5 else "")
        )
    return records[0], records[1:]


def merge_traces(
    traces: Sequence[Tuple[Record, List[Record]]],
    *,
    roles: Optional[Sequence[Optional[str]]] = None,
) -> Tuple[Record, List[Record]]:
    """Join per-process traces into one causally-ordered timeline.

    ``traces`` holds ``(header, events)`` pairs (the shape
    :func:`load_trace` returns); ``roles`` optionally names each source —
    events that do not already carry a ``role`` are stamped with their
    source's name, and every event records its source index as ``src``.

    Ordering is deterministic and clock-free (per-process ``ts`` values
    come from unrelated monotonic clocks and are kept only as within-source
    timing): events sort by auction ``round`` (``null`` first), then by
    source order, then by each source's own ``seq`` — so within a round
    the server's record of a message and the client's record of sending it
    land adjacently regardless of shard count or scheduling.  ``seq`` is
    reassigned to the merged order.
    """
    if not traces:
        raise ValueError("merge_traces needs at least one trace")
    if roles is not None and len(roles) != len(traces):
        raise ValueError("roles must match traces one-to-one")
    merged: List[Record] = []
    for source_index, (_, events) in enumerate(traces):
        role = roles[source_index] if roles is not None else None
        for event in events:
            record = dict(event)
            if role and "role" not in record:
                record["role"] = role
            record["src"] = str(source_index)
            merged.append(record)

    def order(record: Record) -> Tuple[int, int, int]:
        round_ = record.get("round")
        return (
            -1 if round_ is None else int(round_),
            int(record["src"]),
            int(record.get("seq", 0)),
        )

    merged.sort(key=order)
    for seq, record in enumerate(merged):
        record["seq"] = seq
    header: Record = {
        "type": "trace_header",
        "schema_version": TRACE_SCHEMA_VERSION,
        "clock": "perf_counter",
        "event_count": len(merged),
        "dropped": sum(int(h.get("dropped", 0)) for h, _ in traces),
        "capacity": max(int(h.get("capacity", 0)) for h, _ in traces),
        "merged_from": len(traces),
    }
    if roles is not None:
        header["sources"] = [role or f"src{i}" for i, role in enumerate(roles)]
    return header, merged


def write_jsonl_records(
    path: Union[str, Path], header: Record, events: Sequence[Record]
) -> Path:
    """Write an arbitrary ``(header, events)`` pair as a JSONL trace file."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    lines = [json.dumps(header, sort_keys=True)]
    lines.extend(json.dumps(event, sort_keys=True) for event in events)
    target.write_text("\n".join(lines) + "\n")
    return target


def _err(index: int, message_: str) -> str:
    return f"record {index}: {message_}"


def validate_trace(records: Sequence[Record]) -> List[str]:
    """All schema violations in a parsed trace (empty list == valid)."""
    errors: List[str] = []
    if not records:
        return ["trace is empty (expected a trace_header line)"]
    header = records[0]
    if not isinstance(header, dict) or header.get("type") != "trace_header":
        errors.append("first record must be the trace_header")
    else:
        if header.get("schema_version") != TRACE_SCHEMA_VERSION:
            errors.append(
                f"schema_version must be {TRACE_SCHEMA_VERSION}, "
                f"got {header.get('schema_version')!r}"
            )
        for field in ("event_count", "dropped", "capacity"):
            value = header.get(field)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                errors.append(f"header field {field!r} must be a non-negative int")
    previous_seq = -1
    for index, record in enumerate(records[1:], start=1):
        if not isinstance(record, dict):
            errors.append(_err(index, "event must be a JSON object"))
            continue
        kind = record.get("type")
        if kind not in EVENT_TYPES:
            errors.append(_err(index, f"unknown event type {kind!r}"))
            continue
        seq = record.get("seq")
        if not isinstance(seq, int) or isinstance(seq, bool):
            errors.append(_err(index, "seq must be an integer"))
        elif seq <= previous_seq:
            errors.append(_err(index, f"seq must increase ({seq} after {previous_seq})"))
        else:
            previous_seq = seq
        ts = record.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            errors.append(_err(index, "ts must be a non-negative number"))
        round_ = record.get("round")
        if round_ is not None and (
            not isinstance(round_, int) or isinstance(round_, bool) or round_ < 0
        ):
            errors.append(_err(index, "round must be null or a non-negative int"))
        if record.get("vis") not in VISIBILITIES:
            errors.append(_err(index, f"vis must be one of {VISIBILITIES}"))
        for field in ("session", "role", "src"):
            value = record.get(field)
            if value is not None and (not isinstance(value, str) or not value):
                errors.append(
                    _err(index, f"{field} must be a non-empty string when present")
                )
        if kind == "span":
            if not isinstance(record.get("name"), str) or not record.get("name"):
                errors.append(_err(index, "span name must be a non-empty string"))
            if not isinstance(record.get("path"), str) or not record.get("path"):
                errors.append(_err(index, "span path must be a non-empty string"))
            dur = record.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
                errors.append(_err(index, "span dur must be a non-negative number"))
            parent = record.get("parent")
            if parent is not None and not isinstance(parent, str):
                errors.append(_err(index, "span parent must be null or a string"))
        elif kind == "message":
            if record.get("kind") not in MESSAGE_KINDS:
                errors.append(
                    _err(index, f"message kind must be one of {MESSAGE_KINDS}")
                )
            for field in ("su", "channel", "payload_bytes", "wire_size"):
                value = record.get(field)
                if value is not None and (
                    not isinstance(value, int) or isinstance(value, bool) or value < 0
                ):
                    errors.append(
                        _err(index, f"message {field} must be null or a non-negative int")
                    )
        elif kind in ("instant", "meta"):
            if not isinstance(record.get("name"), str) or not record.get("name"):
                errors.append(_err(index, f"{kind} name must be a non-empty string"))
            if kind == "meta" and not isinstance(record.get("args"), dict):
                errors.append(_err(index, "meta args must be an object"))
        elif kind == "ranking":
            channel = record.get("channel")
            if not isinstance(channel, int) or isinstance(channel, bool) or channel < 0:
                errors.append(_err(index, "ranking channel must be a non-negative int"))
            classes = record.get("classes")
            if not isinstance(classes, list) or not all(
                isinstance(cls, list)
                and all(isinstance(u, int) and not isinstance(u, bool) for u in cls)
                for cls in classes
            ):
                errors.append(_err(index, "ranking classes must be a list of int lists"))
    return errors


def chrome_trace(records: Sequence[Record]) -> Dict[str, Any]:
    """Convert events to the Chrome trace-event format (Perfetto-loadable).

    Spans become complete (``"ph": "X"``) events; messages become instants
    plus a cumulative ``wire bytes`` counter track; rankings, metas and
    plain instants become instant events.  Timestamps are microseconds.
    """
    trace_events: List[Dict[str, Any]] = []
    wire_running = 0
    for record in records:
        ts_us = float(record.get("ts", 0.0)) * 1e6
        base: Dict[str, Any] = {"pid": 1, "ts": ts_us}
        kind = record.get("type")
        if kind == "span":
            trace_events.append(
                {
                    **base,
                    "tid": 1,
                    "ph": "X",
                    "name": record.get("path", record.get("name", "span")),
                    "dur": float(record.get("dur", 0.0)) * 1e6,
                    "cat": "phase",
                    "args": {
                        "round": record.get("round"),
                        **(record.get("args") or {}),
                    },
                }
            )
        elif kind == "message":
            trace_events.append(
                {
                    **base,
                    "tid": 2,
                    "ph": "i",
                    "s": "t",
                    "name": record.get("kind", "message"),
                    "cat": "message",
                    "args": {
                        "su": record.get("su"),
                        "channel": record.get("channel"),
                        "payload_bytes": record.get("payload_bytes"),
                        "wire_size": record.get("wire_size"),
                        "round": record.get("round"),
                    },
                }
            )
            wire_running += record.get("wire_size") or 0
            trace_events.append(
                {
                    **base,
                    "tid": 2,
                    "ph": "C",
                    "name": "wire bytes",
                    "args": {"bytes": wire_running},
                }
            )
        elif kind == "ranking":
            trace_events.append(
                {
                    **base,
                    "tid": 3,
                    "ph": "i",
                    "s": "t",
                    "name": f"ranking ch{record.get('channel')}",
                    "cat": "adversary",
                    "args": {
                        "classes": record.get("classes"),
                        "round": record.get("round"),
                    },
                }
            )
        else:  # instant / meta
            trace_events.append(
                {
                    **base,
                    "tid": 1,
                    "ph": "i",
                    "s": "t",
                    "name": record.get("name", kind or "event"),
                    "cat": kind or "event",
                    "args": {
                        "round": record.get("round"),
                        **(record.get("args") or {}),
                    },
                }
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def _check_name(name: str) -> None:
    if not name:
        raise ValueError("trace event names must be non-empty")


def _check_vis(vis: str) -> None:
    if vis not in VISIBILITIES:
        raise ValueError(f"vis must be one of {VISIBILITIES}, got {vis!r}")
