"""The one clock every timing measurement in the reproduction reads.

Before the observability layer existed, three modules called ``time.*``
directly and each picked its own clock (``time.time`` in the report writer,
``time.perf_counter`` in the engine).  Centralising the choice here means:

* every wall-time number in a report, a :class:`~repro.experiments.engine.SweepReport`
  or a ``BENCH_*.json`` artifact is measured the same way (monotonic,
  highest available resolution, immune to NTP steps);
* tests can reason about a single seam instead of chasing ad-hoc clocks.

Nothing in this module is ever disabled — reading a clock is not a metric,
it is how metrics (and plain diagnostics) get their numbers.
"""

from __future__ import annotations

import time

__all__ = ["monotonic", "Stopwatch"]


def monotonic() -> float:
    """Seconds from a monotonic high-resolution clock (``perf_counter``)."""
    return time.perf_counter()


class Stopwatch:
    """Elapsed-seconds helper: created running, read with :meth:`elapsed`.

    The pattern ``start = time.perf_counter(); ...; time.perf_counter() - start``
    as an object, so call sites carry one name instead of two and always
    subtract against the right clock.
    """

    __slots__ = ("_start",)

    def __init__(self) -> None:
        self._start = monotonic()

    def elapsed(self) -> float:
        """Seconds since construction (or the last :meth:`restart`)."""
        return monotonic() - self._start

    def restart(self) -> float:
        """Return the elapsed seconds and reset the start point to now."""
        now = monotonic()
        elapsed = now - self._start
        self._start = now
        return elapsed
