"""OpenMetrics / Prometheus text-format exposition of a metrics snapshot.

:func:`render_openmetrics` turns a :class:`~repro.obs.registry.MetricsRegistry`
— or the ``metrics`` snapshot embedded in a ``BENCH_*.json`` artifact, the
two render identically — into the text format Prometheus scrapes and
``promtool`` understands:

* counters  -> ``repro_<name>_total{phase="<path>"}``  (``# TYPE`` counter)
* timers    -> ``repro_<name>_seconds_sum`` / ``_count``  (summary); phase
  wall timers land in the single ``repro_phase_seconds`` family with the
  phase path as the label
* histograms -> cumulative ``repro_<name>_seconds_bucket{le="..."}`` plus
  ``_sum``/``_count`` (phase-duration histograms: ``repro_phase_duration_seconds``)
* gauges    -> ``repro_<name>``  (``# TYPE`` gauge)

Metric names are sanitized (``[^a-zA-Z0-9_:]`` -> ``_``); the registry's
``<phase.path>/<metric>`` scoping becomes a ``phase`` label so Prometheus
can aggregate across phases with ``sum without (phase)``.

:func:`parse_openmetrics` / :func:`validate_openmetrics` are the matching
consumers: the SLO gate evaluates thresholds against a scraped exposition
and the ``obs-live`` CI job runs the validator as its format check (pure
Python — no promtool dependency).
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.obs.hist import Histogram

__all__ = [
    "CONTENT_TYPE",
    "METRIC_PREFIX",
    "Sample",
    "Family",
    "render_openmetrics",
    "parse_openmetrics",
    "validate_openmetrics",
]

#: The scrape response content type (OpenMetrics text format).
CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

#: Every exposed family is namespaced under this prefix.
METRIC_PREFIX = "repro_"

#: Suffixes OpenMetrics attaches to family names, longest first.
_SUFFIXES = ("_bucket", "_count", "_total", "_sum")

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)(?:\s+\S+)?$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

#: One sample: (full sample name, labels, value).
Sample = Tuple[str, Dict[str, str], float]


class Family:
    """One metric family of a parsed exposition."""

    __slots__ = ("name", "type", "samples")

    def __init__(self, name: str, type_: str) -> None:
        self.name = name
        self.type = type_
        self.samples: List[Sample] = []


def _sanitize(name: str) -> str:
    clean = _NAME_RE.sub("_", name)
    return METRIC_PREFIX + clean


def _split_scoped(key: str) -> Tuple[Optional[str], str]:
    """``"<phase.path>/<metric>"`` -> (path or None, metric)."""
    if "/" in key:
        path, bare = key.split("/", 1)
        return path, bare
    return None, key


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _fmt_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _snapshot_of(source: Union[Mapping[str, Any], Any]) -> Mapping[str, Any]:
    snapshot = getattr(source, "snapshot", None)
    if callable(snapshot):
        return snapshot()
    if isinstance(source, Mapping):
        return source
    raise TypeError(
        "render_openmetrics wants a MetricsRegistry or a metrics snapshot "
        f"mapping, got {type(source).__name__}"
    )


def render_openmetrics(source: Union[Mapping[str, Any], Any]) -> str:
    """The full exposition text (ends with ``# EOF``) for one snapshot.

    ``source`` is a :class:`~repro.obs.registry.MetricsRegistry` or the
    ``metrics`` mapping of a loaded ``BENCH_*.json`` artifact; a registry
    and its own snapshot render byte-identically, which is what makes the
    live scrape endpoint and ``repro metrics serve`` interchangeable.
    """
    snap = _snapshot_of(source)
    # family name -> (type, [(sample suffix, labels, value lines)])
    families: Dict[str, Tuple[str, List[Tuple[str, Dict[str, str], str]]]] = {}

    def family(name: str, type_: str) -> List[Tuple[str, Dict[str, str], str]]:
        existing = families.get(name)
        if existing is None:
            samples: List[Tuple[str, Dict[str, str], str]] = []
            families[name] = (type_, samples)
            return samples
        if existing[0] != type_:
            raise ValueError(
                f"metric family {name!r} rendered with conflicting types "
                f"{existing[0]!r} and {type_!r}"
            )
        return existing[1]

    for key in sorted(snap.get("counters", {})):
        value = snap["counters"][key]
        path, bare = _split_scoped(key)
        labels = {"phase": path} if path else {}
        family(_sanitize(bare), "counter").append(
            ("_total", labels, _fmt_value(value))
        )

    for key in sorted(snap.get("gauges", {})):
        value = snap["gauges"][key]
        path, bare = _split_scoped(key)
        labels = {"phase": path} if path else {}
        family(_sanitize(bare), "gauge").append(("", labels, _fmt_value(value)))

    for key in sorted(snap.get("timers", {})):
        stat = snap["timers"][key]
        path, bare = _split_scoped(key)
        if path == "phase":
            # phase/<path> wall timers: one family, the path as the label.
            name, labels = _sanitize("phase") + "_seconds", {"phase": bare}
        else:
            name = _sanitize(bare) + "_seconds"
            labels = {"phase": path} if path else {}
        samples = family(name, "summary")
        samples.append(("_sum", labels, _fmt_value(float(stat["seconds"]))))
        samples.append(("_count", labels, _fmt_value(int(stat["count"]))))

    for key in sorted(snap.get("histograms", {})):
        data = snap["histograms"][key]
        hist = data if isinstance(data, Histogram) else Histogram.from_dict(data)
        path, bare = _split_scoped(key)
        if path == "phase":
            name, labels = _sanitize("phase_duration") + "_seconds", {"phase": bare}
        else:
            name = _sanitize(bare) + "_seconds"
            labels = {"phase": path} if path else {}
        samples = family(name, "histogram")
        for bound, cumulative in hist.cumulative():
            samples.append(
                ("_bucket", {**labels, "le": _fmt_value(bound)}, str(cumulative))
            )
        samples.append(("_sum", labels, _fmt_value(hist.sum)))
        samples.append(("_count", labels, str(hist.count)))

    lines: List[str] = []
    for name in sorted(families):
        type_, samples = families[name]
        lines.append(f"# TYPE {name} {type_}")
        for suffix, labels, value in samples:
            lines.append(f"{name}{suffix}{_fmt_labels(labels)} {value}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# -- consumption ------------------------------------------------------------


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def _family_of(sample_name: str, declared: Mapping[str, Family]) -> Optional[str]:
    if sample_name in declared:
        return sample_name
    for suffix in _SUFFIXES:
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in declared:
                return base
    return None


def parse_openmetrics(text: str) -> Dict[str, Family]:
    """Parse an exposition into ``{family name: Family}``.

    Raises ``ValueError`` on lines that are neither valid samples nor
    recognized comments; use :func:`validate_openmetrics` for a full
    error listing instead of fail-fast parsing.
    """
    families: Dict[str, Family] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if parts[:2] == ["#", "TYPE"] and len(parts) >= 4:
                families[parts[2]] = Family(parts[2], parts[3])
            continue  # HELP / UNIT / EOF
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: not a valid metric sample: {raw!r}")
        name, labels_text, value_text = match.groups()
        labels = {
            k: v.replace('\\"', '"').replace("\\n", "\n").replace("\\\\", "\\")
            for k, v in _LABEL_RE.findall(labels_text or "")
        }
        fam_name = _family_of(name, families)
        if fam_name is None:
            fam_name = name
            families[fam_name] = Family(fam_name, "unknown")
        families[fam_name].samples.append((name, labels, _parse_value(value_text)))
    return families


def validate_openmetrics(text: str) -> List[str]:
    """All format violations in an exposition (empty list == valid).

    Checks the line grammar, that every sample's family was declared with
    ``# TYPE`` first, counter/histogram value sanity, histogram bucket
    monotonicity with a ``+Inf`` bucket matching ``_count``, and the
    mandatory terminating ``# EOF``.
    """
    errors: List[str] = []
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines or lines[-1].strip() != "# EOF":
        errors.append("exposition must end with '# EOF'")
    if sum(1 for line in lines if line.strip() == "# EOF") > 1:
        errors.append("'# EOF' must appear exactly once")

    declared: Dict[str, Family] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if parts[:2] == ["#", "TYPE"]:
                if len(parts) < 4:
                    errors.append(f"line {lineno}: malformed TYPE comment")
                elif parts[2] in declared:
                    errors.append(
                        f"line {lineno}: duplicate TYPE for {parts[2]!r}"
                    )
                else:
                    declared[parts[2]] = Family(parts[2], parts[3])
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            errors.append(f"line {lineno}: not a valid metric sample: {raw!r}")
            continue
        name, labels_text, value_text = match.groups()
        try:
            value = _parse_value(value_text)
        except ValueError:
            errors.append(f"line {lineno}: bad sample value {value_text!r}")
            continue
        fam_name = _family_of(name, declared)
        if fam_name is None:
            errors.append(
                f"line {lineno}: sample {name!r} has no preceding TYPE"
            )
            continue
        family = declared[fam_name]
        labels = dict(_LABEL_RE.findall(labels_text or ""))
        if family.type in ("counter", "histogram") and value < 0:
            errors.append(f"line {lineno}: {family.type} value must be >= 0")
        family.samples.append((name, labels, value))

    for family in declared.values():
        if family.type == "histogram":
            errors.extend(_check_histogram_family(family))
    return errors


def _check_histogram_family(family: Family) -> List[str]:
    errors: List[str] = []
    # Group by label set without 'le'.
    series: Dict[Tuple[Tuple[str, str], ...], Dict[str, Any]] = {}
    for name, labels, value in family.samples:
        key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
        entry = series.setdefault(key, {"buckets": [], "count": None})
        if name.endswith("_bucket"):
            if "le" not in labels:
                errors.append(f"{family.name}: bucket sample without 'le' label")
                continue
            entry["buckets"].append((_parse_value(labels["le"]), value))
        elif name.endswith("_count"):
            entry["count"] = value
    for key, entry in series.items():
        buckets = entry["buckets"]
        if not buckets:
            errors.append(f"{family.name}{dict(key)}: histogram has no buckets")
            continue
        in_order = sorted(buckets, key=lambda b: b[0])
        counts = [c for _, c in in_order]
        if counts != sorted(counts):
            errors.append(
                f"{family.name}{dict(key)}: bucket counts are not cumulative"
            )
        if in_order[-1][0] != float("inf"):
            errors.append(f"{family.name}{dict(key)}: missing '+Inf' bucket")
        elif entry["count"] is not None and in_order[-1][1] != entry["count"]:
            errors.append(
                f"{family.name}{dict(key)}: '+Inf' bucket != _count sample"
            )
    return errors
