"""The metrics registry: counters, timers and phase scopes.

One :class:`MetricsRegistry` holds everything a run records:

* **counters** — monotonically increasing integers (HMAC invocations,
  Paillier operations, masked-set digests, wire bytes, ...);
* **timers** — accumulated wall seconds plus an invocation count, so a
  timer's *mean* is meaningful ("seconds per trial");
* **phase scopes** — a context-manager stack of names.  While a phase is
  open, every counter and timer recorded lands under a scoped key
  ``<phase.path>/<metric.name>``, and closing the phase records its own
  wall time under ``phase/<phase.path>``.  That is how "HMAC calls during
  bid submission" and "HMAC calls during TTP charging" stay separable.

Naming convention: metric names use dots (``crypto.hmac``,
``lppa.bid_bytes``); the single ``/`` separates the phase path from the
name.  :meth:`MetricsRegistry.totals` folds the scoped counters back into
per-metric totals by splitting on that ``/``.

Registries are plain objects — create as many as you like.  The module-level
convenience layer that the instrumented code calls (and that makes the whole
subsystem a no-op when nothing is collecting) lives in :mod:`repro.obs`.

Not thread-safe by design: the protocol and experiment code are
single-threaded per process, and the parallel sweep engine's worker
*processes* do not share the parent's registry (worker-side counts are not
folded back; the engine records its rollups in the parent).
"""

from __future__ import annotations

from dataclasses import dataclass
from types import TracebackType
from typing import Dict, List, Optional, Type

from repro.obs.clock import Stopwatch

__all__ = ["PHASE_TIMER_PREFIX", "TimerStat", "MetricsRegistry"]

#: Timer-key prefix under which phase wall times are recorded.
PHASE_TIMER_PREFIX = "phase"


@dataclass
class TimerStat:
    """Accumulated wall seconds and invocation count of one timer key."""

    seconds: float = 0.0
    count: int = 0

    def add(self, seconds: float, count: int = 1) -> None:
        """Fold one measurement (or a pre-aggregated batch) into the stat."""
        if seconds < 0:
            raise ValueError("timer seconds must be non-negative")
        if count < 1:
            raise ValueError("timer count must be >= 1")
        self.seconds += seconds
        self.count += count

    @property
    def mean(self) -> float:
        """Seconds per invocation."""
        return self.seconds / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        """JSON-ready ``{"seconds": ..., "count": ...}`` form."""
        return {"seconds": self.seconds, "count": self.count}


class _TimerScope:
    """Context manager recording its ``with`` block's wall time."""

    __slots__ = ("_registry", "_name", "_watch")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._watch: Optional[Stopwatch] = None

    def __enter__(self) -> "_TimerScope":
        self._watch = Stopwatch()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        assert self._watch is not None, "timer scope exited before entry"
        self._registry.record_seconds(self._name, self._watch.elapsed())


class _PhaseScope:
    """Context manager pushing a phase name and timing the whole phase.

    The phase's wall time is recorded under ``phase/<path>`` using the
    *parent* scope (the phase key identifies the nesting already).

    A phase opened directly inside a phase of the *same name* is
    reentrant: the inner scope neither pushes the stack nor records time.
    Its interval is wholly contained in the outer one, so recording both
    ``phase/a`` and ``phase/a.a`` would double-count the same wall-clock
    seconds in any per-name rollup.  Sibling same-name phases (close, then
    reopen) are *not* reentrant — their intervals are disjoint, and each
    records into the shared key.
    """

    __slots__ = ("_registry", "_name", "_watch", "_path", "_reentrant")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._watch: Optional[Stopwatch] = None
        self._path = ""
        self._reentrant = False

    def __enter__(self) -> "_PhaseScope":
        phases = self._registry._phases
        if phases and phases[-1] == self._name:
            self._reentrant = True
            return self
        self._registry._push_phase(self._name)
        self._path = self._registry.phase_path()
        self._watch = Stopwatch()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        if self._reentrant:
            return
        assert self._watch is not None, "phase scope exited before entry"
        elapsed = self._watch.elapsed()
        self._registry._pop_phase(self._name)
        self._registry.record_raw_seconds(
            f"{PHASE_TIMER_PREFIX}/{self._path}", elapsed
        )


class MetricsRegistry:
    """Counter/timer store with a phase-scope stack.

    All mutation goes through :meth:`count`, :meth:`record_seconds`,
    :meth:`timer` and :meth:`phase`; :meth:`snapshot` returns the
    JSON-ready view that artifacts embed.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._timers: Dict[str, TimerStat] = {}
        self._phases: List[str] = []

    # -- phase scoping -----------------------------------------------------

    def phase(self, name: str) -> _PhaseScope:
        """Open a phase scope: ``with registry.phase("bid_submission"): ...``."""
        self._check_name(name)
        return _PhaseScope(self, name)

    def phase_path(self) -> str:
        """Dot-joined path of currently open phases (``""`` at top level)."""
        return ".".join(self._phases)

    def _push_phase(self, name: str) -> None:
        self._phases.append(name)

    def _pop_phase(self, name: str) -> None:
        if not self._phases or self._phases[-1] != name:
            raise RuntimeError(
                f"phase stack corrupted: closing {name!r} "
                f"but stack is {self._phases!r}"
            )
        self._phases.pop()

    def _scoped(self, name: str) -> str:
        path = self.phase_path()
        return f"{path}/{name}" if path else name

    # -- counters ----------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the counter ``name`` under the current phase scope."""
        key = self._scoped(name)
        self._counters[key] = self._counters.get(key, 0) + n

    # -- timers ------------------------------------------------------------

    def timer(self, name: str) -> _TimerScope:
        """A context manager timing its block under the current phase scope."""
        self._check_name(name)
        return _TimerScope(self, name)

    def record_seconds(self, name: str, seconds: float, count: int = 1) -> None:
        """Record externally measured seconds under the current phase scope."""
        self.record_raw_seconds(self._scoped(name), seconds, count)

    def record_raw_seconds(self, key: str, seconds: float, count: int = 1) -> None:
        """Record seconds under an exact key, bypassing phase scoping."""
        stat = self._timers.get(key)
        if stat is None:
            stat = self._timers[key] = TimerStat()
        stat.add(seconds, count)

    # -- views -------------------------------------------------------------

    @property
    def counters(self) -> Dict[str, int]:
        """Scoped counter keys -> accumulated values (copy)."""
        return dict(self._counters)

    @property
    def timers(self) -> Dict[str, TimerStat]:
        """Scoped timer keys -> :class:`TimerStat` (shallow copy)."""
        return dict(self._timers)

    def totals(self) -> Dict[str, int]:
        """Counters folded across phases: bare metric name -> total."""
        rolled: Dict[str, int] = {}
        for key, value in self._counters.items():
            bare = key.rsplit("/", 1)[-1]
            rolled[bare] = rolled.get(bare, 0) + value
        return rolled

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready view: scoped counters, scoped timers, counter totals."""
        return {
            "counters": dict(self._counters),
            "timers": {k: t.as_dict() for k, t in self._timers.items()},
            "totals": self.totals(),
        }

    def reset(self) -> None:
        """Drop every recorded metric (open phases survive)."""
        self._counters.clear()
        self._timers.clear()

    @staticmethod
    def _check_name(name: str) -> None:
        if not name:
            raise ValueError("metric/phase names must be non-empty")
        if "/" in name:
            raise ValueError(
                f"metric/phase names must not contain '/' (got {name!r}); "
                "'/' separates the phase path from the metric name"
            )
