"""The metrics registry: counters, timers and phase scopes.

One :class:`MetricsRegistry` holds everything a run records:

* **counters** — monotonically increasing integers (HMAC invocations,
  Paillier operations, masked-set digests, wire bytes, ...);
* **timers** — accumulated wall seconds plus an invocation count (and the
  min/max batch mean), so a timer's *mean* is meaningful ("seconds per
  trial");
* **histograms** — bounded log-bucket distributions
  (:class:`~repro.obs.hist.Histogram`) for tail-latency questions the
  aggregate timers cannot answer;
* **gauges** — last-write-wins floats (:class:`~repro.obs.hist.Gauge`):
  cache occupancy, connected clients, queue backlogs;
* **phase scopes** — a context-manager stack of names.  While a phase is
  open, every counter and timer recorded lands under a scoped key
  ``<phase.path>/<metric.name>``, and closing the phase records its own
  wall time under ``phase/<phase.path>``.  That is how "HMAC calls during
  bid submission" and "HMAC calls during TTP charging" stay separable.

Naming convention: metric names use dots (``crypto.hmac``,
``lppa.bid_bytes``); the single ``/`` separates the phase path from the
name.  :meth:`MetricsRegistry.totals` folds the scoped counters back into
per-metric totals by splitting on that ``/``.

Registries are plain objects — create as many as you like.  The module-level
convenience layer that the instrumented code calls (and that makes the whole
subsystem a no-op when nothing is collecting) lives in :mod:`repro.obs`.

Not thread-safe by design: the protocol and experiment code are
single-threaded per process, and the parallel sweep engine's worker
*processes* do not share the parent's registry (worker-side counts are not
folded back; the engine records its rollups in the parent).
"""

from __future__ import annotations

from dataclasses import dataclass
from types import TracebackType
from typing import Dict, List, Optional, Type

from repro.obs.clock import Stopwatch
from repro.obs.hist import Gauge, Histogram

__all__ = ["PHASE_TIMER_PREFIX", "TimerStat", "MetricsRegistry"]

#: Timer-key prefix under which phase wall times are recorded.
PHASE_TIMER_PREFIX = "phase"


@dataclass
class TimerStat:
    """Accumulated wall seconds and invocation count of one timer key.

    ``min_seconds``/``max_seconds`` track the smallest and largest batch
    *mean* folded in (for ``count=1`` adds, the sample itself).  They are
    ``None`` — never a numeric sentinel — until the first :meth:`add`, and
    :meth:`as_dict` only emits ``min``/``max`` once there is data, so a
    never-updated timer serializes exactly as before and artifact diffs
    never confuse "absent" with "zero".
    """

    seconds: float = 0.0
    count: int = 0
    min_seconds: Optional[float] = None
    max_seconds: Optional[float] = None

    def add(self, seconds: float, count: int = 1) -> None:
        """Fold one measurement (or a pre-aggregated batch) into the stat."""
        if seconds < 0:
            raise ValueError("timer seconds must be non-negative")
        if count < 1:
            raise ValueError("timer count must be >= 1")
        self.seconds += seconds
        self.count += count
        sample = seconds / count
        if self.min_seconds is None or sample < self.min_seconds:
            self.min_seconds = sample
        if self.max_seconds is None or sample > self.max_seconds:
            self.max_seconds = sample

    @property
    def mean(self) -> float:
        """Seconds per invocation."""
        return self.seconds / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        """JSON-ready form; ``min``/``max`` appear only once data exists."""
        out: Dict[str, float] = {"seconds": self.seconds, "count": self.count}
        if self.count:
            assert self.min_seconds is not None and self.max_seconds is not None
            out["min"] = self.min_seconds
            out["max"] = self.max_seconds
        return out


class _TimerScope:
    """Context manager recording its ``with`` block's wall time."""

    __slots__ = ("_registry", "_name", "_watch")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._watch: Optional[Stopwatch] = None

    def __enter__(self) -> "_TimerScope":
        self._watch = Stopwatch()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        assert self._watch is not None, "timer scope exited before entry"
        self._registry.record_seconds(self._name, self._watch.elapsed())


class _PhaseScope:
    """Context manager pushing a phase name and timing the whole phase.

    The phase's wall time is recorded under ``phase/<path>`` using the
    *parent* scope (the phase key identifies the nesting already).

    A phase opened directly inside a phase of the *same name* is
    reentrant: the inner scope neither pushes the stack nor records time.
    Its interval is wholly contained in the outer one, so recording both
    ``phase/a`` and ``phase/a.a`` would double-count the same wall-clock
    seconds in any per-name rollup.  Sibling same-name phases (close, then
    reopen) are *not* reentrant — their intervals are disjoint, and each
    records into the shared key.
    """

    __slots__ = ("_registry", "_name", "_watch", "_path", "_reentrant")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._watch: Optional[Stopwatch] = None
        self._path = ""
        self._reentrant = False

    def __enter__(self) -> "_PhaseScope":
        phases = self._registry._phases
        if phases and phases[-1] == self._name:
            self._reentrant = True
            return self
        self._registry._push_phase(self._name)
        self._path = self._registry.phase_path()
        self._watch = Stopwatch()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        if self._reentrant:
            return
        assert self._watch is not None, "phase scope exited before entry"
        elapsed = self._watch.elapsed()
        self._registry._pop_phase(self._name)
        key = f"{PHASE_TIMER_PREFIX}/{self._path}"
        self._registry.record_raw_seconds(key, elapsed)
        # Per-phase *distribution* (one sample per phase close) alongside
        # the aggregate timer: tail phase cost across rounds is visible.
        self._registry.observe_raw(key, elapsed)


class MetricsRegistry:
    """Counter/timer store with a phase-scope stack.

    All mutation goes through :meth:`count`, :meth:`record_seconds`,
    :meth:`timer` and :meth:`phase`; :meth:`snapshot` returns the
    JSON-ready view that artifacts embed.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._timers: Dict[str, TimerStat] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._phases: List[str] = []

    # -- phase scoping -----------------------------------------------------

    def phase(self, name: str) -> _PhaseScope:
        """Open a phase scope: ``with registry.phase("bid_submission"): ...``."""
        self._check_name(name)
        return _PhaseScope(self, name)

    def phase_path(self) -> str:
        """Dot-joined path of currently open phases (``""`` at top level)."""
        return ".".join(self._phases)

    def _push_phase(self, name: str) -> None:
        self._phases.append(name)

    def _pop_phase(self, name: str) -> None:
        if not self._phases or self._phases[-1] != name:
            raise RuntimeError(
                f"phase stack corrupted: closing {name!r} "
                f"but stack is {self._phases!r}"
            )
        self._phases.pop()

    def _scoped(self, name: str) -> str:
        path = self.phase_path()
        return f"{path}/{name}" if path else name

    # -- counters ----------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the counter ``name`` under the current phase scope."""
        key = self._scoped(name)
        self._counters[key] = self._counters.get(key, 0) + n

    # -- timers ------------------------------------------------------------

    def timer(self, name: str) -> _TimerScope:
        """A context manager timing its block under the current phase scope."""
        self._check_name(name)
        return _TimerScope(self, name)

    def record_seconds(self, name: str, seconds: float, count: int = 1) -> None:
        """Record externally measured seconds under the current phase scope."""
        self.record_raw_seconds(self._scoped(name), seconds, count)

    def record_raw_seconds(self, key: str, seconds: float, count: int = 1) -> None:
        """Record seconds under an exact key, bypassing phase scoping."""
        stat = self._timers.get(key)
        if stat is None:
            stat = self._timers[key] = TimerStat()
        stat.add(seconds, count)

    # -- histograms --------------------------------------------------------

    def observe(self, name: str, value: float, count: int = 1) -> None:
        """Fold ``value`` into the histogram ``name`` under the current scope."""
        self._check_name(name)
        self.observe_raw(self._scoped(name), value, count)

    def observe_raw(self, key: str, value: float, count: int = 1) -> None:
        """Fold into the histogram at an exact key, bypassing phase scoping."""
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = Histogram()
        hist.observe(value, count)

    def merge_histogram(self, name: str, other: Histogram) -> None:
        """Fold a whole pre-built histogram in (worker rollups, loadgen)."""
        self._check_name(name)
        self.merge_histogram_raw(self._scoped(name), other)

    def merge_histogram_raw(self, key: str, other: Histogram) -> None:
        """Fold a pre-built histogram at an exact key, bypassing phase scoping."""
        hist = self._histograms.get(key)
        if hist is None:
            self._histograms[key] = other.copy()
        else:
            hist.merge(other)

    # -- gauges ------------------------------------------------------------

    def set_gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` (last write wins) under the current scope."""
        self._check_name(name)
        self.set_gauge_raw(self._scoped(name), value)

    def set_gauge_raw(self, key: str, value: float) -> None:
        """Set the gauge at an exact key, bypassing phase scoping."""
        gauge = self._gauges.get(key)
        if gauge is None:
            self._gauges[key] = Gauge(value)
        else:
            gauge.set(value)

    # -- views -------------------------------------------------------------

    @property
    def counters(self) -> Dict[str, int]:
        """Scoped counter keys -> accumulated values (copy)."""
        return dict(self._counters)

    @property
    def timers(self) -> Dict[str, TimerStat]:
        """Scoped timer keys -> :class:`TimerStat` (shallow copy)."""
        return dict(self._timers)

    @property
    def histograms(self) -> Dict[str, Histogram]:
        """Scoped histogram keys -> :class:`Histogram` (shallow copy)."""
        return dict(self._histograms)

    @property
    def gauges(self) -> Dict[str, float]:
        """Scoped gauge keys -> current values (copy)."""
        return {k: g.value for k, g in self._gauges.items()}

    def totals(self) -> Dict[str, int]:
        """Counters folded across phases: bare metric name -> total."""
        rolled: Dict[str, int] = {}
        for key, value in self._counters.items():
            bare = key.rsplit("/", 1)[-1]
            rolled[bare] = rolled.get(bare, 0) + value
        return rolled

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready view: counters, timers, totals, histograms, gauges."""
        return {
            "counters": dict(self._counters),
            "timers": {k: t.as_dict() for k, t in self._timers.items()},
            "totals": self.totals(),
            "histograms": {k: h.as_dict() for k, h in self._histograms.items()},
            "gauges": {k: g.value for k, g in self._gauges.items()},
        }

    def reset(self) -> None:
        """Drop every recorded metric (open phases survive)."""
        self._counters.clear()
        self._timers.clear()
        self._histograms.clear()
        self._gauges.clear()

    @staticmethod
    def _check_name(name: str) -> None:
        if not name:
            raise ValueError("metric/phase names must be non-empty")
        if "/" in name:
            raise ValueError(
                f"metric/phase names must not contain '/' (got {name!r}); "
                "'/' separates the phase path from the metric name"
            )
