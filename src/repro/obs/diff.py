"""Regression detection between two ``BENCH_*.json`` artifacts.

``diff_artifacts`` compares a *baseline* artifact against a *current* one
and classifies every shared metric:

* **counters** (scoped keys) — a regression when the current value exceeds
  the baseline by more than ``threshold`` (e.g. a refactor that doubles the
  HMAC invocations of bid submission shows up here even if wall time hides
  it on a fast machine);
* **timers** — compared by *mean* seconds per invocation, so artifacts
  measured over different trial counts stay comparable.  Means below
  ``min_seconds`` are ignored: sub-100µs timers are noise on shared CI
  runners.  The optional ``min``/``max`` fields newer artifacts carry are
  compared (as ``timer-min``) only when **both** sides recorded them —
  absence means "not recorded", never zero, so a baseline written before
  the fields existed cannot produce an infinite-ratio regression;
* **histograms** — compared by their p99 estimate (``hist-p99``), the
  tail the aggregate mean hides, with the same ``min_seconds`` noise
  floor;
* **gauges** — compared directly (``gauge``); occupancy and backlog
  levels are deterministic for a fixed workload.

Keys present on only one side are reported as added/removed — each named
with its kind (``counter:lppa.rounds``), never as regressions: new
instrumentation must not fail CI retroactively.  The one-sided check is
per kind, so a key that *moved* kinds (say a counter re-recorded as a
gauge) shows up as removed from one list and added to the other instead of
silently disappearing from the comparison.

The CLI front-end is ``python -m repro metrics diff`` (warn-only in CI to
start, per the rollout plan; drop ``--warn-only`` to make it gating).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping

__all__ = ["DEFAULT_THRESHOLD", "MIN_TIMER_SECONDS", "Delta", "DiffReport", "diff_artifacts"]

#: Relative increase beyond which a metric counts as regressed (20 %).
DEFAULT_THRESHOLD = 0.2

#: Timer means below this many seconds are treated as noise and skipped.
MIN_TIMER_SECONDS = 1e-4


@dataclass(frozen=True)
class Delta:
    """One compared metric: baseline vs current and the relative change."""

    key: str
    kind: str  # "counter" | "timer-mean" | "timer-min" | "hist-p99" | "gauge"
    base: float
    current: float

    @property
    def ratio(self) -> float:
        """``current / base`` (infinity when the baseline is zero)."""
        if self.base == 0:
            return float("inf") if self.current else 1.0
        return self.current / self.base

    @property
    def change_pct(self) -> float:
        """Relative change in percent (positive == current is larger)."""
        return (self.ratio - 1.0) * 100.0

    def describe(self) -> str:
        """One aligned human-readable line for the diff table."""
        if self.kind == "counter":
            values = f"{int(self.base)} -> {int(self.current)}"
        elif self.kind == "gauge":
            values = f"{self.base:g} -> {self.current:g}"
        else:
            values = f"{self.base * 1e3:.3f}ms -> {self.current * 1e3:.3f}ms"
        return f"{self.kind:<10} {self.key:<48} {values}  ({self.change_pct:+.1f}%)"


@dataclass
class DiffReport:
    """Everything one artifact comparison found."""

    baseline_name: str
    current_name: str
    threshold: float
    deltas: List[Delta] = field(default_factory=list)
    regressions: List[Delta] = field(default_factory=list)
    improvements: List[Delta] = field(default_factory=list)
    added: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)

    @property
    def has_regressions(self) -> bool:
        """True when at least one metric regressed beyond the threshold."""
        return bool(self.regressions)

    def format(self) -> str:
        """The multi-line report ``repro metrics diff`` prints."""
        summary = (
            f"compared {len(self.deltas)} shared metrics: "
            f"{len(self.regressions)} regressed, "
            f"{len(self.improvements)} improved >= threshold"
        )
        if self.regressions:
            # The summary line is what CI logs and humans grep first — it
            # must name the offending keys, not just count them.
            shown = [d.key for d in self.regressions[:6]]
            summary += (
                " (regressed: "
                + ", ".join(shown)
                + (", ..." if len(self.regressions) > 6 else "")
                + ")"
            )
        lines = [
            f"metrics diff: {self.baseline_name} (baseline) vs "
            f"{self.current_name} (current), threshold {self.threshold:.0%}",
            summary,
        ]
        if self.regressions:
            lines.append("REGRESSIONS:")
            lines.extend(f"  {d.describe()}" for d in self.regressions)
        if self.improvements:
            lines.append("improvements:")
            lines.extend(f"  {d.describe()}" for d in self.improvements)
        # Name every one-sided key: a truncated or empty list here is how
        # a renamed metric slips past CI unnoticed.
        if self.added:
            lines.append(f"only in current ({len(self.added)}): "
                         + ", ".join(sorted(self.added)))
        if self.removed:
            lines.append(f"only in baseline ({len(self.removed)}): "
                         + ", ".join(sorted(self.removed)))
        if not self.regressions:
            lines.append("no regressions beyond the threshold")
        return "\n".join(lines)


def _classify(report: DiffReport, delta: Delta) -> None:
    report.deltas.append(delta)
    if delta.ratio > 1.0 + report.threshold:
        report.regressions.append(delta)
    elif delta.ratio < 1.0 - report.threshold:
        report.improvements.append(delta)


def diff_artifacts(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    *,
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = MIN_TIMER_SECONDS,
) -> DiffReport:
    """Compare two loaded artifacts; see the module docstring for the rules."""
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    report = DiffReport(
        baseline_name=str(baseline.get("name", "?")),
        current_name=str(current.get("name", "?")),
        threshold=threshold,
    )
    base_metrics = baseline.get("metrics", {})
    cur_metrics = current.get("metrics", {})

    base_counters: Dict[str, int] = dict(base_metrics.get("counters", {}))
    cur_counters: Dict[str, int] = dict(cur_metrics.get("counters", {}))
    for key in sorted(base_counters.keys() & cur_counters.keys()):
        _classify(
            report,
            Delta(
                key=key,
                kind="counter",
                base=float(base_counters[key]),
                current=float(cur_counters[key]),
            ),
        )

    base_timers: Dict[str, Dict[str, float]] = dict(base_metrics.get("timers", {}))
    cur_timers: Dict[str, Dict[str, float]] = dict(cur_metrics.get("timers", {}))
    for key in sorted(base_timers.keys() & cur_timers.keys()):
        base_stat, cur_stat = base_timers[key], cur_timers[key]
        base_mean = base_stat["seconds"] / max(base_stat["count"], 1)
        cur_mean = cur_stat["seconds"] / max(cur_stat["count"], 1)
        if base_mean >= min_seconds:
            _classify(
                report,
                Delta(key=key, kind="timer-mean", base=base_mean, current=cur_mean),
            )
        # min is optional (older artifacts lack it): compare only when both
        # sides recorded one — absent is "not recorded", not zero.
        if "min" in base_stat and "min" in cur_stat:
            base_min, cur_min = float(base_stat["min"]), float(cur_stat["min"])
            if base_min >= min_seconds:
                _classify(
                    report,
                    Delta(key=key, kind="timer-min", base=base_min, current=cur_min),
                )

    base_hists: Dict[str, Dict[str, Any]] = dict(base_metrics.get("histograms") or {})
    cur_hists: Dict[str, Dict[str, Any]] = dict(cur_metrics.get("histograms") or {})
    for key in sorted(base_hists.keys() & cur_hists.keys()):
        base_p99 = _hist_p99(base_hists[key])
        cur_p99 = _hist_p99(cur_hists[key])
        if base_p99 < min_seconds:
            continue
        _classify(
            report,
            Delta(key=key, kind="hist-p99", base=base_p99, current=cur_p99),
        )

    base_gauges: Dict[str, float] = dict(base_metrics.get("gauges") or {})
    cur_gauges: Dict[str, float] = dict(cur_metrics.get("gauges") or {})
    for key in sorted(base_gauges.keys() & cur_gauges.keys()):
        _classify(
            report,
            Delta(
                key=key,
                kind="gauge",
                base=float(base_gauges[key]),
                current=float(cur_gauges[key]),
            ),
        )

    # One-sided keys, per kind: comparing the unions across kinds would let
    # a key recorded as a counter in one artifact and a gauge in the other
    # vanish from the report entirely (on both sides of the union, so
    # neither added nor removed — yet never compared either).
    for kind, base_keys, cur_keys in (
        ("counter", base_counters.keys(), cur_counters.keys()),
        ("timer", base_timers.keys(), cur_timers.keys()),
        ("histogram", base_hists.keys(), cur_hists.keys()),
        ("gauge", base_gauges.keys(), cur_gauges.keys()),
    ):
        report.added.extend(f"{kind}:{key}" for key in sorted(cur_keys - base_keys))
        report.removed.extend(f"{kind}:{key}" for key in sorted(base_keys - cur_keys))
    report.added.sort()
    report.removed.sort()
    return report


def _hist_p99(data: Mapping[str, Any]) -> float:
    from repro.obs.hist import Histogram

    return Histogram.from_dict(dict(data)).quantile(0.99)
