"""SU membership across epochs: admission, retirement, keys, identities.

The paper's auction is repeated — the PU leases spectrum round after round
while SUs arrive and depart.  :class:`MembershipManager` owns everything
that changes *between* rounds of the long-lived service:

* **the member set** — logical SU indices into a fixed population roster;
  joins and leaves are applied in batches at epoch boundaries
  (:class:`MembershipDelta`), never mid-round;
* **dense wire ids** — the masked-table layer numbers submissions
  ``0..m-1``, and the networked round is bit-identical to the in-process
  session exactly when wire ids are dense (the PR-4 remap-is-identity
  argument).  The manager therefore re-derives the dense assignment
  (members sorted by logical id) on every membership change, reusing the
  server's dense-remap convention;
* **pseudonyms** — each member holds a wire-unlinked pseudonym from an
  :class:`~repro.lppa.idpool.EpochIdPool`; a mid-run departure quarantines
  the pseudonym for the remainder of the epoch window so it can never be
  reissued to a newcomer within the window (the id-collision fix), and the
  pool's window advances at every epoch boundary;
* **key epochs** — any membership change rotates the TTP sealing key
  ``gc`` (:meth:`repro.crypto.keys.KeyRing.rotate_gc`): a departed SU
  keeps its copy of the old ring, so ciphertexts sealed after its
  departure must move to a key it never held.  The masking keys stay, so
  ``KeyRing.fingerprint()`` changes on every join/leave while stationary
  SUs' mask-cache entries survive (selective invalidation).  The rotation
  is a pure function of ``(master seed, membership version)``, which is
  how a ``--connect`` soak fleet derives the same ring the server holds
  without any extra wire bytes.

Determinism contract: every decision here is a pure function of the
construction arguments plus the sequence of applied deltas — no clocks, no
ambient randomness — so an epoch run is replayable end to end and each
epoch's result can be differentially checked against a fresh single-round
:func:`~repro.lppa.session.run_lppa_auction` over the same final
membership.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Sequence, Tuple

from repro import obs
from repro.crypto.keys import KeyRing
from repro.lppa.idpool import EpochIdPool

__all__ = [
    "MembershipDelta",
    "MembershipError",
    "MembershipSnapshot",
    "MembershipManager",
    "rotate_ring",
]


def rotate_ring(base_ring: KeyRing, master: bytes, version: int) -> KeyRing:
    """The service key ring at membership ``version``.

    Version 0 is the TTP's bootstrap ring untouched; every later version
    re-derives ``gc`` under a version-labelled HKDF expansion.  Pure in
    ``(base_ring, master, version)`` so the server, a remote soak fleet
    and the differential tests all agree on the ring without coordination.
    """
    if version < 0:
        raise ValueError("membership version must be non-negative")
    if version == 0:
        return base_ring
    return base_ring.rotate_gc(master, f"lppa/ttp/gc/m{version}")


class MembershipError(ValueError):
    """An inadmissible join or leave (unknown, duplicate, or out of range)."""


@dataclass(frozen=True)
class MembershipDelta:
    """One epoch boundary's churn: who joins, who leaves (logical ids)."""

    joins: Tuple[int, ...] = ()
    leaves: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if len(set(self.joins)) != len(self.joins):
            raise MembershipError("duplicate join")
        if len(set(self.leaves)) != len(self.leaves):
            raise MembershipError("duplicate leave")
        if set(self.joins) & set(self.leaves):
            raise MembershipError("an SU cannot join and leave in one delta")

    def __bool__(self) -> bool:
        return bool(self.joins or self.leaves)


@dataclass(frozen=True)
class MembershipSnapshot:
    """The service's view of one epoch's final membership."""

    version: int
    members: Tuple[int, ...]          # logical ids, sorted
    wire_ids: Dict[int, int] = field(default_factory=dict)  # logical -> dense
    pseudonyms: Dict[int, int] = field(default_factory=dict)  # logical -> pool id

    @property
    def size(self) -> int:
        return len(self.members)

    def wire_roster(self) -> Tuple[int, ...]:
        """The dense wire ids the server must see connected: ``0..m-1``."""
        return tuple(range(len(self.members)))

    def logical_for_wire(self, wire_id: int) -> int:
        """Invert the dense assignment (wire ids are sorted logical order)."""
        return self.members[wire_id]

    def as_document(self) -> Dict[str, object]:
        """JSON-safe membership record for the epoch store."""
        return {
            "version": self.version,
            "members": list(self.members),
            "pseudonyms": {str(k): v for k, v in sorted(self.pseudonyms.items())},
        }


class MembershipManager:
    """Admits, retires and re-identifies SUs between epochs."""

    def __init__(
        self,
        population: int,
        *,
        initial_members: Sequence[int],
        master_seed: bytes,
        base_ring: KeyRing,
        pseudonym_space: int = 1 << 20,
    ) -> None:
        if population < 1:
            raise ValueError("population must be positive")
        members = sorted(initial_members)
        if len(set(members)) != len(members):
            raise MembershipError("duplicate initial member")
        if members and not 0 <= members[0] <= members[-1] < population:
            raise MembershipError("initial member outside the population")
        if not members:
            raise MembershipError("need at least one initial member")
        self._population = population
        self._members: FrozenSet[int] = frozenset(members)
        self._master_seed = master_seed
        self._base_ring = base_ring
        self._version = 0
        # Pseudonym draws are addressed by the master seed only, so a
        # replayed run re-issues identical pseudonyms.
        self._pool = EpochIdPool(
            random.Random(b"service-pseudonyms:" + master_seed),
            id_space=pseudonym_space,
        )
        self._pseudonyms: Dict[int, int] = {
            logical: self._pool.acquire() for logical in members
        }

    # -- introspection -------------------------------------------------------

    @property
    def population(self) -> int:
        return self._population

    @property
    def version(self) -> int:
        """Bumped once per applied non-empty delta (never mid-epoch)."""
        return self._version

    @property
    def members(self) -> Tuple[int, ...]:
        return tuple(sorted(self._members))

    @property
    def size(self) -> int:
        return len(self._members)

    def keyring(self) -> KeyRing:
        """The ring of the current membership version (gc rotated)."""
        return rotate_ring(self._base_ring, self._master_seed, self._version)

    def snapshot(self) -> MembershipSnapshot:
        """The current epoch's immutable view: version, members, dense
        wire ids and pseudonyms."""
        members = self.members
        return MembershipSnapshot(
            version=self._version,
            members=members,
            wire_ids={logical: i for i, logical in enumerate(members)},
            pseudonyms={m: self._pseudonyms[m] for m in members},
        )

    # -- epoch-boundary transitions ------------------------------------------

    def check(self, delta: MembershipDelta) -> None:
        """Raise :class:`MembershipError` when ``delta`` is inadmissible."""
        for logical in delta.joins:
            if not 0 <= logical < self._population:
                raise MembershipError(
                    f"join {logical} outside the population of {self._population}"
                )
            if logical in self._members:
                raise MembershipError(f"SU {logical} is already a member")
        for logical in delta.leaves:
            if logical not in self._members:
                raise MembershipError(f"SU {logical} is not a member")
        if set(delta.leaves) == self._members and not delta.joins:
            raise MembershipError("delta would empty the membership")

    def apply(self, delta: MembershipDelta) -> MembershipSnapshot:
        """Apply one epoch boundary's churn; returns the new snapshot.

        An empty delta is a no-op that *keeps the membership version* —
        no key rotation, no cache invalidation — which is exactly what
        lets a stationary service stay warm across quiet epochs.
        """
        self.check(delta)
        if delta:
            for logical in delta.leaves:
                self._pool.release(self._pseudonyms.pop(logical))
            self._members = (self._members - set(delta.leaves)) | set(delta.joins)
            for logical in sorted(delta.joins):
                self._pseudonyms[logical] = self._pool.acquire()
            self._version += 1
            obs.count("service.joins", len(delta.joins))
            obs.count("service.leaves", len(delta.leaves))
        obs.set_gauge("service.membership", float(len(self._members)))
        return self.snapshot()

    def advance_epoch_window(self) -> int:
        """Roll the pseudonym quarantine window at the epoch boundary."""
        return self._pool.advance_epoch()

    def retire(self, logical_ids: Sequence[int]) -> MembershipDelta:
        """A leave-only delta for SUs the scheduler is retiring (e.g.
        repeat stragglers); composed by the caller into the next boundary's
        churn so retirement follows the same path as voluntary departure."""
        return MembershipDelta(leaves=tuple(sorted(set(logical_ids))))
