"""Persistent epoch history: one run directory, one validated manifest.

A long-lived auction service is only auditable if every epoch it ran can
be re-examined after the fact.  :class:`EpochStore` owns one *run
directory*::

    <run_dir>/
      manifest.json                     # written last, by finalize()
      TRACE_service.jsonl               # optional run-level attachments
      epochs/
        epoch_0000/
          result.json                   # membership + outcome document
          BENCH_epoch_0000.json         # optional per-epoch obs artifact
        epoch_0001/
          ...

``manifest.json`` (schema v1) indexes every epoch with the SHA-256 digest
of each file it produced, so ``repro epochs validate`` can prove the
on-disk history is complete (no index gaps) and untampered (digests
match), and ``repro epochs show`` can summarize a run without parsing
every epoch.  The manifest is written once, at :meth:`EpochStore.finalize`
— a run directory without one is, by definition, an interrupted run.

Per-epoch BENCH artifacts reuse the schema-versioned
:mod:`repro.obs.artifact` format, so ``repro metrics show/diff`` work on
an epoch's metrics file exactly as they do on any other artifact.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs.artifact import git_sha, validate_artifact, write_artifact
from repro.obs.registry import MetricsRegistry

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "MANIFEST_NAME",
    "RUN_KIND",
    "EpochStore",
    "load_manifest",
    "load_epoch_result",
    "validate_run",
]

#: Current manifest schema version; bump on breaking layout changes.
MANIFEST_SCHEMA_VERSION = 1

MANIFEST_NAME = "manifest.json"
RUN_KIND = "lppa-epoch-run"

_EPOCH_DIR = "epochs"
_RESULT_FILE = "result.json"


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return f"sha256:{digest.hexdigest()}"


@dataclass(frozen=True)
class _EpochEntry:
    index: int
    directory: str
    files: Dict[str, str]
    summary: Dict[str, Any]

    def as_document(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "dir": self.directory,
            "files": dict(self.files),
            "summary": dict(self.summary),
        }


class EpochStore:
    """Writes one epoch run's history under a run directory."""

    def __init__(
        self,
        run_dir: Union[str, Path],
        *,
        config: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._root = Path(run_dir)
        self._root.mkdir(parents=True, exist_ok=True)
        (self._root / _EPOCH_DIR).mkdir(exist_ok=True)
        self._config = dict(config or {})
        self._entries: List[_EpochEntry] = []
        self._attachments: Dict[str, str] = {}
        self._finalized = False

    @property
    def root(self) -> Path:
        return self._root

    @property
    def n_epochs(self) -> int:
        return len(self._entries)

    def epoch_dir(self, index: int) -> Path:
        """Directory one epoch's files land in (``epochs/epoch_NNNN``)."""
        return self._root / _EPOCH_DIR / f"epoch_{index:04d}"

    def record_epoch(
        self,
        index: int,
        document: Dict[str, Any],
        *,
        registry: Optional[MetricsRegistry] = None,
        summary: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Persist one epoch: its result document and optional metrics.

        Epochs must arrive in order (``index == n_epochs``) — the manifest
        guarantees a gap-free history, so the store refuses to create one.
        """
        if self._finalized:
            raise RuntimeError("run already finalized")
        if index != len(self._entries):
            raise ValueError(
                f"epoch {index} out of order (expected {len(self._entries)})"
            )
        directory = self.epoch_dir(index)
        directory.mkdir(parents=True, exist_ok=True)
        files: Dict[str, str] = {}

        result_path = directory / _RESULT_FILE
        result_path.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n"
        )
        files[_RESULT_FILE] = _sha256_file(result_path)

        if registry is not None:
            artifact_path = write_artifact(
                directory,
                f"epoch_{index:04d}",
                registry,
                config={"epoch": index, **self._config},
            )
            files[artifact_path.name] = _sha256_file(artifact_path)

        self._entries.append(
            _EpochEntry(
                index=index,
                directory=str(directory.relative_to(self._root)),
                files=files,
                summary=dict(summary or {}),
            )
        )
        return directory

    def attach_file(self, name: str, content: Union[str, bytes]) -> Path:
        """Write one run-level file (e.g. a merged trace) into the run dir
        and register its digest in the manifest."""
        if self._finalized:
            raise RuntimeError("run already finalized")
        if "/" in name or name in (MANIFEST_NAME, _EPOCH_DIR):
            raise ValueError(f"bad attachment name {name!r}")
        path = self._root / name
        if isinstance(content, str):
            path.write_text(content)
        else:
            path.write_bytes(content)
        self._attachments[name] = _sha256_file(path)
        return path

    def finalize(self, summary: Optional[Dict[str, Any]] = None) -> Path:
        """Write ``manifest.json``; the run is complete and read-only."""
        if self._finalized:
            raise RuntimeError("run already finalized")
        manifest = {
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "kind": RUN_KIND,
            "created_at": datetime.now(timezone.utc).isoformat(),
            "git_sha": git_sha(),
            "config": dict(self._config),
            "epochs": [entry.as_document() for entry in self._entries],
            "attachments": dict(self._attachments),
            "summary": dict(summary or {}),
        }
        path = self._root / MANIFEST_NAME
        path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        self._finalized = True
        return path


# -- reading and validating a finished run ------------------------------------


def load_manifest(run_dir: Union[str, Path]) -> Dict[str, Any]:
    """Read a run's manifest; raises ``ValueError`` when structurally bad."""
    path = Path(run_dir) / MANIFEST_NAME
    try:
        document = json.loads(path.read_text())
    except OSError as exc:
        raise ValueError(f"{run_dir}: no readable manifest ({exc})") from exc
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON ({exc})") from exc
    errors = _manifest_shape_errors(document)
    if errors:
        raise ValueError(f"{path}: " + "; ".join(errors))
    return document


def load_epoch_result(run_dir: Union[str, Path], index: int) -> Dict[str, Any]:
    """One epoch's ``result.json`` document."""
    manifest = load_manifest(run_dir)
    for entry in manifest["epochs"]:
        if entry["index"] == index:
            path = Path(run_dir) / entry["dir"] / _RESULT_FILE
            return json.loads(path.read_text())
    raise ValueError(f"{run_dir}: no epoch {index} in the manifest")


def _manifest_shape_errors(document: Any) -> List[str]:
    errors: List[str] = []
    if not isinstance(document, dict):
        return ["manifest must be a JSON object"]
    if document.get("schema_version") != MANIFEST_SCHEMA_VERSION:
        errors.append(
            f"schema_version must be {MANIFEST_SCHEMA_VERSION}, "
            f"got {document.get('schema_version')!r}"
        )
    if document.get("kind") != RUN_KIND:
        errors.append(f"kind must be {RUN_KIND!r}, got {document.get('kind')!r}")
    epochs = document.get("epochs")
    if not isinstance(epochs, list):
        return errors + ["'epochs' must be a list"]
    for i, entry in enumerate(epochs):
        if not isinstance(entry, dict):
            errors.append(f"epoch entry {i} must be an object")
            continue
        if entry.get("index") != i:
            errors.append(
                f"epoch entry {i} has index {entry.get('index')!r} "
                "(history must be gap-free and ordered)"
            )
        if not isinstance(entry.get("dir"), str) or not entry.get("dir"):
            errors.append(f"epoch entry {i} needs a non-empty 'dir'")
        files = entry.get("files")
        if not isinstance(files, dict) or _RESULT_FILE not in files:
            errors.append(f"epoch entry {i} must list files incl. {_RESULT_FILE!r}")
    attachments = document.get("attachments")
    if attachments is not None and not isinstance(attachments, dict):
        errors.append("'attachments' must be an object")
    return errors


def validate_run(run_dir: Union[str, Path]) -> List[str]:
    """Every integrity violation in a finished run (empty list == valid).

    Checks the manifest shape, that every referenced file exists with a
    matching SHA-256 digest, that each ``result.json`` parses, and that
    per-epoch BENCH artifacts still satisfy the artifact schema.
    """
    root = Path(run_dir)
    try:
        manifest = load_manifest(root)
    except ValueError as exc:
        return [str(exc)]
    errors: List[str] = []
    for entry in manifest["epochs"]:
        directory = root / entry["dir"]
        for name, digest in entry["files"].items():
            path = directory / name
            if not path.is_file():
                errors.append(f"epoch {entry['index']}: missing file {path}")
                continue
            actual = _sha256_file(path)
            if actual != digest:
                errors.append(
                    f"epoch {entry['index']}: digest mismatch on {name} "
                    f"(manifest {digest}, file {actual})"
                )
                continue
            if name == _RESULT_FILE:
                try:
                    document = json.loads(path.read_text())
                except json.JSONDecodeError as exc:
                    errors.append(f"{path}: not valid JSON ({exc})")
                    continue
                for field in ("epoch", "membership", "result"):
                    if field not in document:
                        errors.append(f"{path}: missing field {field!r}")
                if document.get("epoch") != entry["index"]:
                    errors.append(
                        f"{path}: epoch field {document.get('epoch')!r} "
                        f"disagrees with manifest index {entry['index']}"
                    )
            elif name.startswith("BENCH_"):
                try:
                    artifact = json.loads(path.read_text())
                except json.JSONDecodeError as exc:
                    errors.append(f"{path}: not valid JSON ({exc})")
                    continue
                for problem in validate_artifact(artifact):
                    errors.append(f"{path}: {problem}")
    for name, digest in (manifest.get("attachments") or {}).items():
        path = root / name
        if not path.is_file():
            errors.append(f"missing attachment {path}")
        elif _sha256_file(path) != digest:
            errors.append(f"attachment {name}: digest mismatch")
    return errors
