"""Sustained-load soak driver: epochs, Poisson churn, SLO-ready telemetry.

``repro loadgen --soak`` promotes the one-shot load generator into a
long-running harness: it hosts an :class:`~repro.net.server.AuctioneerServer`
(memory or TCP transport), seats an initial SU roster out of a fixed
*population*, and then drives N epochs through the
:class:`~repro.service.scheduler.EpochScheduler` while SUs join and leave
between epochs on a deterministic Poisson churn plan.

Everything is a pure function of the soak seed:

* the population (the CLI's ``make_database``/``generate_users`` recipe),
* the churn plan (:func:`churn_plan` — Poisson draws from a seeded PRNG
  over a simulated membership, so any party holding the seed derives the
  identical join/leave schedule without coordination),
* the per-epoch entropy labels
  (:func:`~repro.service.scheduler.service_entropy`),
* the key-ring rotations (membership version -> ``gc`` label).

That determinism is what makes the soak *checkable*: with
``check_equivalence=True`` every full-participation epoch is re-run as a
single-round in-process :func:`~repro.lppa.session.run_lppa_auction` over
the same epoch's final membership and demanded bit-identical.  (An epoch
with stragglers is skipped: survivor wire ids are non-contiguous, so the
dense-id equivalence contract does not apply — the PR-4 caveat.)

Latency telemetry lands in a :class:`~repro.net.loadgen.LoadgenReport`
with **per-epoch histograms**: the steady-state percentiles exclude the
configured warm-up epochs, so a cold first epoch (cache fills, connection
ramp) cannot mask a tail regression in the epochs that matter.
"""

from __future__ import annotations

import asyncio
import contextlib
import math
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.auction.bidders import SecondaryUser
from repro.geo.grid import GridSpec
from repro.lppa.policies import KeepZeroPolicy
from repro.lppa.session import run_lppa_auction
from repro.net.client import ServerGoodbye, SUClient
from repro.net.loadgen import (
    LoadgenConfig,
    LoadgenReport,
    build_population,
    check_result_equivalence,
    protocol_seed,
)
from repro.net.server import AuctioneerServer, NetRoundReport, ServerConfig
from repro.net.transport import MemoryTransport, TcpTransport, Transport
from repro.obs.clock import monotonic
from repro.service.membership import (
    MembershipDelta,
    MembershipManager,
    MembershipSnapshot,
)
from repro.service.scheduler import (
    EpochConfig,
    EpochRecord,
    EpochScheduler,
    service_entropy,
)
from repro.service.store import EpochStore

__all__ = ["SoakConfig", "SoakReport", "churn_plan", "run_soak"]


@dataclass(frozen=True)
class SoakConfig:
    """One soak run; defaults are CI-smoke sized."""

    population: int = 12          # roster capacity (logical ids 0..P-1)
    initial_members: Optional[int] = None  # first N logical ids (default: 2/3)
    epochs: int = 5
    n_channels: int = 6
    seed: int = 1
    area: int = 4
    grid_n: int = 20
    two_lambda: int = 6
    bmax: int = 127
    join_rate: float = 0.0        # Poisson mean joins per epoch boundary
    leave_rate: float = 0.0       # Poisson mean leaves per epoch boundary
    transport: str = "memory"     # "memory" | "tcp"
    host: str = "127.0.0.1"
    port: int = 0
    interval_s: float = 0.0
    warmup_epochs: int = 1
    check_equivalence: bool = False
    run_dir: Optional[str] = None
    retire_after: Optional[int] = None
    location_deadline: float = 10.0
    bid_deadline: float = 10.0
    frame_timeout: float = 60.0
    roster_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.transport not in ("memory", "tcp"):
            raise ValueError(f"unknown transport {self.transport!r}")
        if self.population < 2:
            raise ValueError("a soak needs a population of at least 2")
        if self.epochs < 1:
            raise ValueError("need at least one epoch")
        if self.join_rate < 0 or self.leave_rate < 0:
            raise ValueError("churn rates must be non-negative")
        if not 0 <= self.warmup_epochs < self.epochs:
            raise ValueError("warmup must leave at least one steady epoch")
        members = self.n_initial
        if not 1 <= members <= self.population:
            raise ValueError("initial members must be within the population")

    @property
    def n_initial(self) -> int:
        if self.initial_members is not None:
            return self.initial_members
        return max(1, (2 * self.population) // 3)


@dataclass
class SoakReport:
    """What one soak run measured and proved."""

    loadgen: LoadgenReport
    records: List[EpochRecord] = field(default_factory=list)
    joins: int = 0
    leaves: int = 0
    run_dir: Optional[Path] = None

    @property
    def epochs_completed(self) -> int:
        return len(self.records)

    @property
    def equivalence_checked(self) -> int:
        return sum(1 for r in self.records if r.equivalent)

    def format(self, *, warmup: int = 1) -> str:
        """The human-readable report ``repro loadgen --soak`` prints."""
        lines = [
            f"soak: {self.epochs_completed} epochs against "
            f"{self.loadgen.address} "
            f"({self.joins} joins, {self.leaves} leaves)",
        ]
        lines.extend(self.loadgen.format(steady_warmup=warmup).splitlines()[1:])
        for record in self.records:
            outcome = record.report.result.outcome
            marks = []
            if record.straggler_logicals:
                marks.append(f"stragglers {list(record.straggler_logicals)}")
            if record.retired:
                marks.append(f"retired {list(record.retired)}")
            if record.equivalent:
                marks.append("equivalent")
            suffix = f" ({', '.join(marks)})" if marks else ""
            lines.append(
                f"  epoch {record.epoch}: v{record.version} "
                f"{len(record.members)} SUs, "
                f"{len(outcome.wins)} winners, "
                f"revenue {outcome.sum_of_winning_bids()}, "
                f"{record.report.latency_s * 1e3:.1f} ms{suffix}"
            )
        if self.run_dir is not None:
            lines.append(f"  history      {self.run_dir}")
        return "\n".join(lines)


def _poisson(rng: random.Random, lam: float) -> int:
    """One Poisson draw (Knuth's product method; lam is CI-small)."""
    if lam <= 0:
        return 0
    threshold = math.exp(-lam)
    k, product = 0, rng.random()
    while product > threshold:
        k += 1
        product *= rng.random()
    return k


def churn_plan(config: SoakConfig) -> List[MembershipDelta]:
    """The run's deterministic join/leave schedule, one delta per epoch.

    Simulates the membership forward from the initial roster, drawing
    Poisson-many leaves (never emptying the roster) and joins (bounded by
    the population) per boundary from ``random.Random(f"soak-churn:{seed}")``.
    Epoch 0 is always empty — the initial roster *is* epoch 0's churn.
    Pure in the config, so tests, a paired fleet, or a replay all derive
    the same plan.
    """
    rng = random.Random(f"soak-churn:{config.seed}")
    members = set(range(config.n_initial))
    deltas: List[MembershipDelta] = [MembershipDelta()]
    for _ in range(1, config.epochs):
        n_leave = min(_poisson(rng, config.leave_rate), len(members) - 1)
        leaves = tuple(rng.sample(sorted(members), n_leave)) if n_leave else ()
        members -= set(leaves)
        outsiders = sorted(
            set(range(config.population)) - members - set(leaves)
        )
        n_join = min(_poisson(rng, config.join_rate), len(outsiders))
        joins = tuple(rng.sample(outsiders, n_join)) if n_join else ()
        members |= set(joins)
        deltas.append(
            MembershipDelta(joins=tuple(sorted(joins)),
                            leaves=tuple(sorted(leaves)))
        )
    return deltas


class _Seat:
    """One seated member: its client object and its round-loop task."""

    __slots__ = ("client", "task")

    def __init__(self, client: SUClient, task: asyncio.Task) -> None:
        self.client = client
        self.task = task


class _Fleet:
    """The soak's SU clients, reseated as the membership evolves."""

    def __init__(
        self,
        config: SoakConfig,
        grid: GridSpec,
        users: Sequence[SecondaryUser],
        server: AuctioneerServer,
        transport: Transport,
        report: LoadgenReport,
    ) -> None:
        self._config = config
        self._grid = grid
        self._users = users
        self._server = server
        self._transport = transport
        self._report = report
        self._seats: Dict[int, _Seat] = {}

    @property
    def wire_bytes(self) -> int:
        return sum(
            seat.client.bytes_sent + seat.client.bytes_received
            for seat in self._seats.values()
        )

    async def reseat(
        self,
        epoch: int,
        snapshot: MembershipSnapshot,
        ring,
        delta: MembershipDelta,
    ) -> None:
        """Apply one boundary's churn to the client fleet.

        Leavers (and members whose dense wire id shifted) are disconnected
        first and their departure *awaited* on the server roster — a new
        HELLO under a freed wire id must not race the old connection's
        teardown (the server rejects duplicate SUs).  Stationary members
        keep their connection and simply adopt the redistributed ring.
        """
        member_set = set(snapshot.members)
        kept: List[int] = []
        dropped = 0
        for logical, seat in list(self._seats.items()):
            wire = snapshot.wire_ids.get(logical)
            if logical in member_set and seat.client.su_id == wire:
                seat.client.rekey(ring)
                kept.append(seat.client.su_id)
                continue
            await self._dismiss(logical)
            dropped += 1
        if dropped:
            await self._server.wait_for_roster(
                kept, timeout=self._config.roster_timeout
            )
        seated = 0
        for logical in snapshot.members:
            if logical in self._seats:
                continue
            self._seat(logical, snapshot.wire_ids[logical], ring)
            seated += 1
        if seated or dropped:
            obs.count("service.reseats", seated + dropped)

    def _seat(self, logical: int, wire_id: int, ring) -> None:
        client = SUClient(
            wire_id,
            self._users[logical],
            ring,
            self._server.scale,
            self._grid,
            self._config.two_lambda,
            self._transport,
            policy=KeepZeroPolicy(),
            frame_timeout=self._config.frame_timeout,
        )
        task = asyncio.ensure_future(self._member_loop(client))
        self._seats[logical] = _Seat(client, task)

    async def _dismiss(self, logical: int) -> None:
        """Close first, then await: cancelling a loop task parked on an
        already-completed read can be swallowed by ``wait_for``, stalling
        the dismissal until the client's own frame timeout.  Closing the
        connection wakes both ends immediately — and buffered frames stay
        readable past EOF, so the task still consumes its final RESULT
        (recording the last latency sample) before dying on the next read."""
        seat = self._seats.pop(logical)
        seat.client.close()
        try:
            await asyncio.wait_for(seat.task, self._config.roster_timeout)
        except Exception:
            # Timeout (wait_for already cancelled the task), a connection
            # error, or any other loop failure: the seat is gone either way.
            pass

    async def _member_loop(self, client: SUClient) -> None:
        """Connect, then play every round until dismissed or told BYE."""
        try:
            await client.connect()
            while True:
                record = await client.run_round()
                self._report.record_latency(
                    record.latency_s, epoch=record.round_index
                )
        except ServerGoodbye:
            pass
        except (asyncio.IncompleteReadError, ConnectionError, RuntimeError):
            # The connection went away (a dismissal closing under us, or
            # the server stopping): a normal end of service, not an error.
            pass
        finally:
            client.close()

    async def dismiss_all(self) -> None:
        for logical in list(self._seats):
            await self._dismiss(logical)


async def run_soak(config: SoakConfig) -> SoakReport:
    """Run one configured soak; see the module docstring."""
    base = LoadgenConfig(
        n_users=config.population,
        n_channels=config.n_channels,
        rounds=config.epochs,
        seed=config.seed,
        area=config.area,
        grid_n=config.grid_n,
        two_lambda=config.two_lambda,
        bmax=config.bmax,
    )
    grid, users = build_population(base)

    transport: Transport
    if config.transport == "tcp":
        transport = TcpTransport(config.host, config.port)
    else:
        transport = MemoryTransport()
    server = AuctioneerServer(
        ServerConfig(
            n_users=config.population,
            n_channels=config.n_channels,
            grid=grid,
            two_lambda=config.two_lambda,
            bmax=config.bmax,
            seed=protocol_seed(config.seed),
            location_deadline=config.location_deadline,
            bid_deadline=config.bid_deadline,
        ),
        transport,
    )
    membership = MembershipManager(
        config.population,
        initial_members=range(config.n_initial),
        master_seed=protocol_seed(config.seed),
        base_ring=server.keyring,
    )
    deltas = churn_plan(config)

    report = LoadgenReport(
        address="",
        n_users=config.population,
        rounds_completed=0,
        elapsed_s=0.0,
    )
    fleet = _Fleet(config, grid, users, server, transport, report)

    def _check(
        epoch: int, snapshot: MembershipSnapshot, net: NetRoundReport
    ) -> Optional[bool]:
        if not config.check_equivalence:
            return None
        if net.stragglers:
            # Survivor wire ids are non-contiguous; the dense-id remap is
            # not the identity, so bit-equality does not apply (PR-4).
            obs.count("service.equivalence_skipped")
            return None
        session = run_lppa_auction(
            [users[logical] for logical in snapshot.members],
            grid,
            two_lambda=config.two_lambda,
            bmax=config.bmax,
            seed=protocol_seed(config.seed),
            policy=KeepZeroPolicy(),
            entropy=service_entropy(config.seed, epoch),
        )
        check_result_equivalence(net.result, session)
        return True

    store: Optional[EpochStore] = None
    if config.run_dir is not None:
        store = EpochStore(
            config.run_dir,
            config={
                "population": config.population,
                "initial_members": config.n_initial,
                "epochs": config.epochs,
                "n_channels": config.n_channels,
                "seed": config.seed,
                "join_rate": config.join_rate,
                "leave_rate": config.leave_rate,
                "transport": config.transport,
            },
        )

    scheduler = EpochScheduler(
        server,
        membership,
        EpochConfig(
            epochs=config.epochs,
            seed=config.seed,
            interval_s=config.interval_s,
            roster_timeout=config.roster_timeout,
            retire_after=config.retire_after,
        ),
        plan=lambda epoch: deltas[epoch],
        store=store,
        on_membership=fleet.reseat,
        check_epoch=_check,
    )

    await server.start()
    t0 = monotonic()
    try:
        records = await scheduler.run()
    finally:
        elapsed = monotonic() - t0
        wire_bytes = fleet.wire_bytes
        await fleet.dismiss_all()
        await server.stop()

    report.address = server.address
    report.rounds_completed = len(records)
    report.elapsed_s = elapsed
    report.wire_bytes = server.wire.total_bytes or wire_bytes
    report.stragglers = sum(len(r.straggler_logicals) for r in records)
    report.equivalence_checked = sum(1 for r in records if r.equivalent)
    for record in records:
        outcome = record.report.result.outcome
        report.round_summaries.append(
            {
                "round": record.epoch,
                "winners": len(outcome.wins),
                "revenue": outcome.sum_of_winning_bids(),
                "framed_bytes": record.report.result.framed_bytes,
            }
        )

    soak = SoakReport(
        loadgen=report,
        records=list(records),
        joins=sum(len(deltas[r.epoch].joins) for r in records),
        leaves=sum(len(deltas[r.epoch].leaves) for r in records)
        + sum(len(r.retired) for r in records),
        run_dir=store.root if store is not None else None,
    )
    return soak
