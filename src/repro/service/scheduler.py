"""The epoch loop: a one-shot auctioneer promoted to a long-lived service.

:class:`~repro.net.server.AuctioneerServer` runs *one* round per call;
:class:`EpochScheduler` drives it continuously.  Each **epoch** is one
auction round plus the boundary work around it:

1. **churn** — the epoch's :class:`~repro.service.membership.MembershipDelta`
   (from the planner, merged with any straggler retirements) is applied to
   the :class:`~repro.service.membership.MembershipManager`; a non-empty
   delta bumps the membership version, rotates ``gc`` and redistributes
   the ring to the server (:meth:`AuctioneerServer.redistribute_keys`) and
   — via the ``on_membership`` hook — to the SU clients;
2. **barrier** — :meth:`AuctioneerServer.wait_for_roster` blocks until the
   connected set is exactly the epoch's dense wire roster, so leavers are
   gone and joiners present before the round snapshots its participants;
3. **round** — ``server.run_round(service_entropy(seed, epoch))`` under a
   *fresh* metrics registry, which is folded into the enclosing registry
   afterwards (the sharding rollup pattern), giving both per-epoch and
   whole-run telemetry from one instrumentation pass;
4. **audit** — an optional ``check_epoch`` hook (the soak driver's
   differential equivalence against a single-round in-process session);
5. **persist** — the epoch's result document and metrics land in the
   :class:`~repro.service.store.EpochStore`, and the pseudonym quarantine
   window advances.

Cadence: ``interval_s == 0`` runs as fast as the SUs answer;
``interval_s > 0`` paces epoch *starts* on a fixed monotonic schedule
(late epochs are not compensated with bursts — the next start is always
``interval_s`` after the previous one was due).

Straggler retirement: an SU that misses its deadlines ``retire_after``
epochs in a row is composed into the next boundary's leaves, exactly as a
voluntary departure (its pseudonym quarantined, the ring rotated).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.crypto.keys import KeyRing
from repro.obs.clock import monotonic
from repro.obs.registry import MetricsRegistry
from repro.net.server import AuctioneerServer, NetRoundReport
from repro.service.membership import (
    MembershipDelta,
    MembershipManager,
    MembershipSnapshot,
)
from repro.service.store import EpochStore

__all__ = [
    "service_entropy",
    "EpochConfig",
    "EpochRecord",
    "EpochScheduler",
    "result_document",
]

#: Planner: epoch index -> that boundary's churn (epoch 0 should be empty).
ChurnPlanner = Callable[[int], MembershipDelta]

#: Hook run after churn is applied, before the roster barrier: the driver
#: reconnects/rekeys its SU clients here.  (epoch, snapshot, ring, delta).
MembershipHook = Callable[
    [int, MembershipSnapshot, KeyRing, MembershipDelta], Awaitable[None]
]

#: Per-epoch audit: returns True (checked OK) or None (skipped); raises on
#: divergence.  (epoch, snapshot, report).
EpochCheck = Callable[[int, MembershipSnapshot, NetRoundReport], Optional[bool]]


def service_entropy(seed: int, epoch: int) -> str:
    """The entropy label of epoch ``epoch`` under service ``seed``.

    The epoch-service sibling of :func:`repro.net.loadgen.round_entropy`:
    a pure function of the shared seed, so the differential check can hand
    the in-process session the exact label the wire round used.
    """
    return f"service:{seed}:{epoch}"


@dataclass(frozen=True)
class EpochConfig:
    """The scheduler's knobs (population/protocol knobs live elsewhere)."""

    epochs: int
    seed: int = 1
    interval_s: float = 0.0
    roster_timeout: float = 30.0
    retire_after: Optional[int] = None

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("need at least one epoch")
        if self.interval_s < 0:
            raise ValueError("interval must be non-negative")
        if self.roster_timeout <= 0:
            raise ValueError("roster timeout must be positive")
        if self.retire_after is not None and self.retire_after < 1:
            raise ValueError("retire_after must be >= 1 straggles")


@dataclass(frozen=True)
class EpochRecord:
    """One completed epoch, service-side."""

    epoch: int
    version: int
    members: Tuple[int, ...]
    report: NetRoundReport
    straggler_logicals: Tuple[int, ...]
    retired: Tuple[int, ...]
    equivalent: Optional[bool]
    registry: MetricsRegistry = field(repr=False, compare=False, hash=False)


def result_document(
    epoch: int,
    entropy: str,
    snapshot: MembershipSnapshot,
    report: NetRoundReport,
    *,
    equivalent: Optional[bool],
) -> Dict[str, object]:
    """The JSON result document the epoch store persists.

    Mirrors the RESULT broadcast (winner list in *wire* ids, revenue, the
    Theorem-4 byte accounting) plus the service-side context a broadcast
    does not carry: membership, pseudonyms and straggler logical ids.
    """
    outcome = report.result.outcome
    return {
        "epoch": epoch,
        "entropy": entropy,
        "membership": snapshot.as_document(),
        "participants": list(report.participants),
        "stragglers": [
            snapshot.logical_for_wire(w) for w in report.stragglers
        ],
        "latency_s": report.latency_s,
        "equivalent": equivalent,
        "result": {
            "wins": [
                {
                    "su": report.participants[w.bidder],
                    "logical": snapshot.logical_for_wire(
                        report.participants[w.bidder]
                    ),
                    "channel": w.channel,
                    "charge": w.charge,
                    "valid": w.valid,
                }
                for w in outcome.wins
            ],
            "revenue": outcome.sum_of_winning_bids(),
            "location_bytes": report.result.location_bytes,
            "bid_bytes": report.result.bid_bytes,
            "masked_set_bytes": report.result.masked_set_bytes,
            "framed_bytes": report.result.framed_bytes,
        },
    }


class EpochScheduler:
    """Runs the configured number of epochs against one server."""

    def __init__(
        self,
        server: AuctioneerServer,
        membership: MembershipManager,
        config: EpochConfig,
        *,
        plan: Optional[ChurnPlanner] = None,
        store: Optional[EpochStore] = None,
        on_membership: Optional[MembershipHook] = None,
        check_epoch: Optional[EpochCheck] = None,
    ) -> None:
        self._server = server
        self._membership = membership
        self._config = config
        self._plan = plan
        self._store = store
        self._on_membership = on_membership
        self._check_epoch = check_epoch
        self._straggle_streaks: Dict[int, int] = {}
        self._forced_leaves: Tuple[int, ...] = ()
        self.records: List[EpochRecord] = []

    async def run(self) -> List[EpochRecord]:
        """Drive every epoch; returns the per-epoch records in order."""
        next_due = monotonic()
        for epoch in range(self._config.epochs):
            if self._config.interval_s > 0:
                delay = next_due - monotonic()
                if delay > 0:
                    await asyncio.sleep(delay)
                next_due += self._config.interval_s
            await self._run_epoch(epoch)
        if self._store is not None:
            self._store.finalize(self.summary())
        return self.records

    def summary(self) -> Dict[str, object]:
        """Run-level rollup for the store manifest."""
        return {
            "epochs": len(self.records),
            "final_version": self._membership.version,
            "final_members": list(self._membership.members),
            "straggler_epochs": sum(
                1 for r in self.records if r.straggler_logicals
            ),
            "equivalence_checked": sum(
                1 for r in self.records if r.equivalent
            ),
            "retired": sorted(
                {logical for r in self.records for logical in r.retired}
            ),
        }

    # -- one epoch ----------------------------------------------------------

    async def _run_epoch(self, epoch: int) -> None:
        config = self._config
        delta = self._epoch_delta(epoch)
        retired = self._forced_leaves
        self._forced_leaves = ()

        previous_version = self._membership.version
        snapshot = self._membership.apply(delta)
        ring = self._membership.keyring()
        if self._membership.version != previous_version:
            self._server.redistribute_keys(ring)
        if self._on_membership is not None:
            await self._on_membership(epoch, snapshot, ring, delta)
        await self._server.wait_for_roster(
            snapshot.wire_roster(), timeout=config.roster_timeout
        )

        entropy = service_entropy(config.seed, epoch)
        outer = obs.get_active()
        registry = MetricsRegistry()
        with obs.collecting(registry):
            report = await self._server.run_round(entropy)
        _fold_registry(outer, registry)

        straggler_logicals = tuple(
            snapshot.logical_for_wire(w) for w in report.stragglers
        )
        self._note_straggles(snapshot, straggler_logicals)

        equivalent: Optional[bool] = None
        if self._check_epoch is not None:
            equivalent = self._check_epoch(epoch, snapshot, report)
            if equivalent:
                obs.count("service.equivalence_ok")

        record = EpochRecord(
            epoch=epoch,
            version=snapshot.version,
            members=snapshot.members,
            report=report,
            straggler_logicals=straggler_logicals,
            retired=retired,
            equivalent=equivalent,
            registry=registry,
        )
        self.records.append(record)
        if self._store is not None:
            self._store.record_epoch(
                epoch,
                result_document(
                    epoch, entropy, snapshot, report, equivalent=equivalent
                ),
                registry=registry,
                summary={
                    "version": snapshot.version,
                    "members": len(snapshot.members),
                    "winners": len(report.result.outcome.wins),
                    "revenue": report.result.outcome.sum_of_winning_bids(),
                    "stragglers": len(straggler_logicals),
                    "equivalent": equivalent,
                    "latency_s": report.latency_s,
                },
            )
        self._membership.advance_epoch_window()
        obs.count("service.epochs")
        obs.set_gauge("service.epoch", float(epoch))

    def _epoch_delta(self, epoch: int) -> MembershipDelta:
        """The planner's delta merged with forced retirements, sanitized
        against the *actual* membership (retirements skew the planner's
        simulated evolution, so inadmissible parts are dropped, never
        raised — the service must not die because a planned joiner is
        already back)."""
        planned = self._plan(epoch) if self._plan is not None else MembershipDelta()
        members = set(self._membership.members)
        leaves = {
            logical
            for logical in (*planned.leaves, *self._forced_leaves)
            if logical in members
        }
        joins = sorted(
            logical
            for logical in set(planned.joins)
            if logical not in members and logical not in leaves
        )
        if leaves >= members and not joins:
            # Never empty the service: keep the smallest member seated.
            leaves.discard(min(members))
        return MembershipDelta(joins=tuple(joins), leaves=tuple(sorted(leaves)))

    def _note_straggles(
        self, snapshot: MembershipSnapshot, stragglers: Tuple[int, ...]
    ) -> None:
        straggler_set = set(stragglers)
        for logical in snapshot.members:
            if logical in straggler_set:
                self._straggle_streaks[logical] = (
                    self._straggle_streaks.get(logical, 0) + 1
                )
            else:
                self._straggle_streaks.pop(logical, None)
        if stragglers:
            obs.count("service.straggler_epochs")
        retire_after = self._config.retire_after
        if retire_after is None:
            return
        due = tuple(
            sorted(
                logical
                for logical, streak in self._straggle_streaks.items()
                if streak >= retire_after
            )
        )
        if due:
            self._forced_leaves = due
            for logical in due:
                self._straggle_streaks.pop(logical, None)
            obs.count("service.retirements", len(due))


def _fold_registry(
    outer: Optional[MetricsRegistry], registry: MetricsRegistry
) -> None:
    """Fold one epoch's registry into the enclosing one (if any).

    The sharding rollup pattern (:mod:`repro.lppa.round.sharding`): the
    epoch's keys already carry their phase scopes, and the scheduler holds
    no outer phase open, so counters/timers/histograms land on identical
    keys — whole-run totals equal the sum of the epochs.  Gauges are
    last-write-wins by definition.
    """
    if outer is None or outer is registry:
        return
    for key, value in registry.counters.items():
        outer.count(key, value)
    for key, stat in registry.timers.items():
        timing = stat.as_dict()
        outer.record_seconds(key, timing["seconds"], int(timing["count"]))
    for key, hist in registry.histograms.items():
        outer.merge_histogram_raw(key, hist.copy())
    for key, value in registry.gauges.items():
        outer.set_gauge_raw(key, value)
