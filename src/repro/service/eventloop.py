"""Event-loop selection for the long-lived service (optional uvloop).

The epoch service and the soak driver are pure asyncio; on CPython's
default loop they are correct and fast enough for CI.  For sustained-load
soaks with thousands of concurrent SU connections, `uvloop
<https://github.com/MagicStack/uvloop>`_ (libuv-backed) typically cuts
per-frame scheduling overhead substantially — but it is an *optional*
dependency that this repository never requires: every entry point takes a
``use_uvloop`` flag and falls back to stock asyncio, with a one-line
warning, when the import fails.

Nothing about results depends on the loop implementation — the protocol's
determinism contract is entropy-label based, not scheduling based — so
the flag is purely a throughput knob.
"""

from __future__ import annotations

import asyncio
import sys
from typing import Any, Coroutine, TypeVar

__all__ = ["uvloop_available", "run"]

_T = TypeVar("_T")


def uvloop_available() -> bool:
    """Whether the optional uvloop package can be imported."""
    try:
        import uvloop  # noqa: F401
    except ImportError:
        return False
    return True


def run(coro: Coroutine[Any, Any, _T], *, use_uvloop: bool = False) -> _T:
    """``asyncio.run`` with an optional uvloop policy for this one call.

    ``use_uvloop=True`` on a machine without uvloop degrades gracefully:
    a warning on stderr, then the default loop.  The previous event-loop
    policy is always restored so embedding callers are unaffected.
    """
    if not use_uvloop:
        return asyncio.run(coro)
    try:
        import uvloop
    except ImportError:
        print(
            "warning: uvloop requested but not installed; "
            "falling back to asyncio's default event loop",
            file=sys.stderr,
        )
        return asyncio.run(coro)
    previous = asyncio.get_event_loop_policy()
    asyncio.set_event_loop_policy(uvloop.EventLoopPolicy())
    try:
        return asyncio.run(coro)
    finally:
        asyncio.set_event_loop_policy(previous)
