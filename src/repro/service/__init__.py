"""The epoch service: a long-lived auctioneer with churn and history.

This package promotes the one-shot networked round of :mod:`repro.net`
into a production-style service:

* :mod:`repro.service.membership` — SU admission/retirement between
  epochs, dense wire-id reassignment, pseudonym quarantine and the
  version-keyed ``gc`` ring rotation;
* :mod:`repro.service.scheduler` — the epoch loop itself (churn →
  roster barrier → round → audit → persist) with fixed-interval or
  as-fast-as-possible cadence and straggler retirement;
* :mod:`repro.service.store` — the persistent, digest-manifested epoch
  history behind ``repro epochs show/validate``;
* :mod:`repro.service.soak` — the sustained-load soak driver (Poisson
  join/leave churn, concurrent SU fleets, per-epoch differential
  equivalence) behind ``repro loadgen --soak``;
* :mod:`repro.service.eventloop` — optional uvloop selection.
"""

from repro.service.eventloop import run, uvloop_available
from repro.service.membership import (
    MembershipDelta,
    MembershipError,
    MembershipManager,
    MembershipSnapshot,
    rotate_ring,
)
from repro.service.scheduler import (
    EpochConfig,
    EpochRecord,
    EpochScheduler,
    result_document,
    service_entropy,
)
from repro.service.soak import SoakConfig, SoakReport, churn_plan, run_soak
from repro.service.store import (
    MANIFEST_NAME,
    MANIFEST_SCHEMA_VERSION,
    RUN_KIND,
    EpochStore,
    load_epoch_result,
    load_manifest,
    validate_run,
)

__all__ = [
    "EpochConfig",
    "EpochRecord",
    "EpochScheduler",
    "EpochStore",
    "MANIFEST_NAME",
    "MANIFEST_SCHEMA_VERSION",
    "MembershipDelta",
    "MembershipError",
    "MembershipManager",
    "MembershipSnapshot",
    "RUN_KIND",
    "SoakConfig",
    "SoakReport",
    "churn_plan",
    "load_epoch_result",
    "load_manifest",
    "result_document",
    "rotate_ring",
    "run",
    "run_soak",
    "service_entropy",
    "uvloop_available",
    "validate_run",
]
