"""Key material generation and distribution (the TTP's bootstrap role).

Section IV of the paper assumes a periodically-available TTP that generates:

* ``g0``   — the HMAC key masking *location* prefixes (known to SUs + TTP);
* ``gb``   — the HMAC key of the *basic* bid submission protocol;
* ``gb_1 … gb_k`` — per-channel HMAC keys of the *advanced* scheme, so the
  auctioneer cannot compare ciphertexts across channels;
* ``gc``   — the TTP's symmetric key under which true bid values travel;
* ``rd``   — the secret additive offset applied to every bid (zero bids are
  spread uniformly over ``[0, rd]``);
* ``cr``   — the secret multiplicative expansion factor mapping bid ``x``
  into the range ``[cr*x, cr*(x+1)-1]`` so equal bids encrypt differently.

All of it is distributed to the bidders out of band and withheld from the
auctioneer.  :class:`KeyRing` is that bundle; :func:`generate_keyring` derives
it deterministically from a seed so experiments are reproducible.
"""

from __future__ import annotations

import dataclasses
import hashlib
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.crypto.backend import hmac_digest, hmac_digest_batch

__all__ = ["KeyRing", "generate_keyring", "derive_key"]

_KEY_BYTES = 16


def derive_key(master: bytes, label: str) -> bytes:
    """Derive a 16-byte subkey from ``master`` for the given label.

    A tiny HKDF-expand-style derivation: one HMAC invocation keyed by the
    master secret over the ASCII label, truncated to the Speck/HMAC key size.
    Routed through the active :mod:`repro.crypto.backend` so key-ring
    bootstrap is accelerated alongside masking.
    """
    return hmac_digest(master, label.encode("ascii"))[:_KEY_BYTES]


@dataclass(frozen=True)
class KeyRing:
    """All secrets shared between the TTP and the bidders.

    The auctioneer never receives an instance of this class; the protocol
    endpoints in :mod:`repro.lppa` keep it on the SU/TTP side only.
    """

    g0: bytes
    gb: bytes
    gb_channels: List[bytes] = field(default_factory=list)
    gc: bytes = b""
    rd: int = 0
    cr: int = 1

    def __post_init__(self) -> None:
        if self.rd < 0:
            raise ValueError("rd offset must be non-negative")
        if self.cr < 1:
            raise ValueError("cr expansion factor must be >= 1")

    @property
    def n_channels(self) -> int:
        return len(self.gb_channels)

    def channel_key(self, channel: int) -> bytes:
        """HMAC key for the advanced scheme on the given channel index."""
        if not 0 <= channel < len(self.gb_channels):
            raise IndexError(
                f"channel {channel} outside 0..{len(self.gb_channels) - 1}"
            )
        return self.gb_channels[channel]

    def describe(self) -> Dict[str, object]:
        """Non-secret summary (key sizes and public-ish parameters only)."""
        return {
            "n_channels": self.n_channels,
            "rd": self.rd,
            "cr": self.cr,
            "key_bytes": _KEY_BYTES,
        }

    def live_keys(self) -> Tuple[bytes, ...]:
        """Every key byte-string in the ring, for selective cache eviction.

        Handed to :func:`repro.crypto.cache.note_key_epoch` so a partial
        rotation (the epoch service replaces only ``gc`` on membership
        change) drops only masked-digest entries of *retired* keys.
        """
        return (self.g0, self.gb, self.gc, *self.gb_channels)

    def rotate_gc(self, master: bytes, label: str) -> "KeyRing":
        """A new ring with ``gc`` re-derived for a fresh key epoch.

        The epoch service calls this on every membership change: the
        departed SU keeps its knowledge of the old ring, so the TTP key
        sealing future true-bid ciphertexts must rotate, while the masking
        keys (``g0``/``gb_*``) stay — masked digests are one-way, so a
        former member learns nothing new from them, and keeping them
        preserves every stationary SU's warm mask cache.  ``gc`` is
        size-neutral (Speck key, fixed ciphertext framing), so rotation
        never changes results or wire accounting.
        """
        return dataclasses.replace(self, gc=derive_key(master, label))

    def fingerprint(self) -> bytes:
        """Digest identifying this key epoch for cache invalidation.

        A one-way hash over all key material and disguise parameters; the
        TTP hands it to :func:`repro.crypto.cache.note_key_epoch` at every
        key (re)distribution so masked-digest caches of a previous epoch
        are dropped eagerly.  It stays on the SU/TTP side of the trust
        boundary, like the keys themselves.
        """
        h = hashlib.sha256(b"lppa/keyring/fingerprint/v1")
        for part in (self.g0, self.gb, self.gc, *self.gb_channels):
            h.update(struct.pack(">I", len(part)))
            h.update(part)
        h.update(struct.pack(">II", self.rd, self.cr))
        return h.digest()


def generate_keyring(
    seed: bytes,
    n_channels: int,
    *,
    rd: int = 4,
    cr: int = 8,
) -> KeyRing:
    """Deterministically generate the full TTP key ring from a seed.

    Parameters
    ----------
    seed:
        Master secret; experiments pass a fixed seed for reproducibility,
        a deployment would draw it from an OS CSPRNG.
    n_channels:
        Number of auctioned channels ``k`` (one advanced-scheme HMAC key per
        channel).
    rd:
        Secret additive offset; zero bids are mapped uniformly into
        ``[0, rd]``.  Must satisfy ``rd >= 1`` for the disguise to work.
    cr:
        Secret expansion factor; bid ``x`` is mapped uniformly into
        ``[cr*x, cr*(x+1)-1]`` before encryption so that identical bids do
        not produce identical prefix sets or ciphertexts.
    """
    if n_channels < 1:
        raise ValueError("need at least one channel")
    if not seed:
        raise ValueError("seed must be non-empty bytes")
    labels = [
        "lppa/location/g0",
        "lppa/bid/gb",
        "lppa/ttp/gc",
        *(
            f"lppa/bid/gb_{struct.pack('>I', ch).hex()}"
            for ch in range(n_channels)
        ),
    ]
    # One batch through the backend: every subkey shares the master key.
    g0, gb, gc, *gb_channels = (
        d[:_KEY_BYTES]
        for d in hmac_digest_batch(seed, [lb.encode("ascii") for lb in labels])
    )
    return KeyRing(g0=g0, gb=gb, gb_channels=gb_channels, gc=gc, rd=rd, cr=cr)
