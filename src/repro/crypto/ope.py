"""A keyed order-preserving encoding (the design alternative the paper cites).

Section IV.B notes that "prefix membership verification based encryption is
a kind of order preserving encryption [12]" (Agrawal et al., SIGMOD'04).
The natural design question — why ship ``3w - 1`` digests per bid instead
of *one* order-preserving ciphertext? — deserves a concrete artefact to
compare against, so here is a compact keyed OPE:

    Enc_k(x) = sum_{i=0..x} g_i,   g_i = 1 + (HMAC_k(i) mod 2^gap_bits)

The cumulative sum of positive pseudorandom gaps is strictly monotone, so
ciphertext comparison equals plaintext comparison.  What it trades away
(quantified in ``ablation_masking_backend``):

* **determinism** — equal plaintexts produce equal ciphertexts, so the
  frequency analysis of §IV.C.1 applies directly (LPPA needs the ``cr``
  expansion either way, which restores probabilistic behaviour);
* **distance leakage** — ciphertext differences approximate plaintext
  differences within a factor ~2^gap_bits, a strictly stronger leak than
  the prefix scheme's pure ordering;
* **no membership queries** — prefix masking answers "is x in [a, b]?"
  for *hidden* ranges, which the location protocol needs and OPE cannot do.

The encoder precomputes the cumulative table over the domain (the expanded
bid domain is a few thousand values), making encryption O(1) after an
O(domain) setup.
"""

from __future__ import annotations

import bisect
from typing import List

from repro import obs
from repro.crypto.backend import hmac_digest

__all__ = ["OrderPreservingEncoder"]


class OrderPreservingEncoder:
    """Keyed, deterministic, strictly monotone integer encoding."""

    def __init__(self, key: bytes, domain: int, *, gap_bits: int = 16) -> None:
        """``domain`` is the exclusive plaintext upper bound [0, domain)."""
        if domain < 1:
            raise ValueError("domain must be >= 1")
        if not 1 <= gap_bits <= 64:
            raise ValueError("gap_bits must be in 1..64")
        if not key:
            raise ValueError("key must be non-empty")
        self._domain = domain
        self._gap_bits = gap_bits
        mask = (1 << gap_bits) - 1
        cumulative: List[int] = []
        total = 0
        for i in range(domain):
            digest = hmac_digest(key, i.to_bytes(8, "big"))
            total += 1 + (int.from_bytes(digest[:8], "big") & mask)
            cumulative.append(total)
        self._table = cumulative

    @property
    def domain(self) -> int:
        return self._domain

    @property
    def ciphertext_bytes(self) -> int:
        """Fixed serialized size of one ciphertext."""
        return (self._table[-1].bit_length() + 7) // 8

    def encrypt(self, x: int) -> int:
        """The strictly monotone ciphertext of ``x``."""
        obs.count("crypto.ope.encrypt")
        if not 0 <= x < self._domain:
            raise ValueError(f"{x} outside [0, {self._domain})")
        return self._table[x]

    def decrypt(self, ciphertext: int) -> int:
        """Key-holder inversion (binary search over the table)."""
        obs.count("crypto.ope.decrypt")
        index = bisect.bisect_left(self._table, ciphertext)
        if index >= self._domain or self._table[index] != ciphertext:
            raise ValueError("not a valid ciphertext under this key")
        return index
