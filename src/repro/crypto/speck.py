"""Speck64/128 block cipher in CTR mode — the TTP's symmetric key ``gc``.

LPPA's charging protocol (PSD, section V.B) requires each bidder to attach a
copy of every bid encrypted under a symmetric key ``gc`` known only to the
TTP.  The auctioneer forwards the winning ciphertext to the TTP, which
decrypts it, strips the ``cr`` expansion and ``rd`` offset, and returns the
charge (or an *invalid winner* notification for a disguised zero).

Speck64/128 (Beaulieu et al., NSA 2013) is used because it is compact enough
to implement from scratch and its 64-bit block comfortably holds the 32-bit
expanded bid plus a per-message random nonce, which gives the
ciphertext-indistinguishability that the paper's ``cr`` trick relies on (the
auctioneer must not be able to match equal plaintext bids by equal
ciphertexts).
"""

from __future__ import annotations

import struct

__all__ = ["Speck64128", "ctr_encrypt", "ctr_decrypt"]

_MASK32 = 0xFFFFFFFF
_ROUNDS = 27  # Speck64/128


def _ror(x: int, r: int) -> int:
    return ((x >> r) | (x << (32 - r))) & _MASK32


def _rol(x: int, r: int) -> int:
    return ((x << r) | (x >> (32 - r))) & _MASK32


class Speck64128:
    """Speck with a 64-bit block and 128-bit key.

    The class exposes raw single-block ``encrypt_block``/``decrypt_block``
    plus the CTR-mode helpers used by the protocol.
    """

    block_size = 8
    key_size = 16

    def __init__(self, key: bytes) -> None:
        if len(key) != self.key_size:
            raise ValueError(
                f"Speck64/128 needs a {self.key_size}-byte key, got {len(key)}"
            )
        # Key words l[2], l[1], l[0], k[0] little-endian per the Speck paper.
        k0, l0, l1, l2 = struct.unpack("<4I", key)
        self._round_keys = [k0]
        l = [l0, l1, l2]
        for i in range(_ROUNDS - 1):
            new_l = (self._round_keys[i] + _ror(l[i], 8)) & _MASK32
            new_l ^= i
            new_k = _rol(self._round_keys[i], 3) ^ new_l
            l.append(new_l)
            self._round_keys.append(new_k)

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 8-byte block."""
        if len(block) != self.block_size:
            raise ValueError("Speck64 block must be 8 bytes")
        y, x = struct.unpack("<2I", block)
        for k in self._round_keys:
            x = ((_ror(x, 8) + y) & _MASK32) ^ k
            y = _rol(y, 3) ^ x
        return struct.pack("<2I", y, x)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 8-byte block."""
        if len(block) != self.block_size:
            raise ValueError("Speck64 block must be 8 bytes")
        y, x = struct.unpack("<2I", block)
        for k in reversed(self._round_keys):
            y = _ror(y ^ x, 3)
            x = _rol(((x ^ k) - y) & _MASK32, 8)
        return struct.pack("<2I", y, x)

    def _keystream(self, nonce: bytes, n_bytes: int) -> bytes:
        if len(nonce) != 4:
            raise ValueError("CTR nonce must be 4 bytes")
        stream = bytearray()
        counter = 0
        while len(stream) < n_bytes:
            block = nonce + struct.pack("<I", counter)
            stream += self.encrypt_block(block)
            counter += 1
        return bytes(stream[:n_bytes])


def ctr_encrypt(cipher: Speck64128, nonce: bytes, plaintext: bytes) -> bytes:
    """Encrypt ``plaintext`` under CTR mode with a caller-chosen nonce.

    The nonce must be unique per message under a given key; the protocol
    layer draws it from the bidder's RNG and prepends it to the ciphertext
    on the wire.
    """
    stream = cipher._keystream(nonce, len(plaintext))
    return bytes(p ^ s for p, s in zip(plaintext, stream))


def ctr_decrypt(cipher: Speck64128, nonce: bytes, ciphertext: bytes) -> bytes:
    """CTR decryption (identical to encryption)."""
    return ctr_encrypt(cipher, nonce, ciphertext)
