"""Cryptographic substrate built from scratch: SHA-256, HMAC, Speck64/128-CTR.

The paper's PPBS protocol only needs two primitives — a keyed hash whose
outputs the auctioneer can compare for equality but not invert (HMAC), and a
symmetric cipher for the TTP charging channel (key ``gc``).  Both are
implemented here without external dependencies.
"""

from repro.crypto.backend import (
    CryptoBackend,
    available_backends,
    get_backend,
    hmac_digest,
    hmac_digest_batch,
    hmac_digest_pairs,
    set_backend,
    use_backend,
)
from repro.crypto.cache import (
    MaskCache,
    cache_disabled,
    get_mask_cache,
    note_key_epoch,
)
from repro.crypto.hmac_impl import HMAC, hmac_sha256
from repro.crypto.paillier import (
    PaillierPrivateKey,
    PaillierPublicKey,
    generate_paillier_keypair,
)
from repro.crypto.primes import generate_prime, is_probable_prime
from repro.crypto.keys import KeyRing, derive_key, generate_keyring
from repro.crypto.sha256 import SHA256, sha256
from repro.crypto.speck import Speck64128, ctr_decrypt, ctr_encrypt

__all__ = [
    "CryptoBackend",
    "available_backends",
    "get_backend",
    "hmac_digest",
    "hmac_digest_batch",
    "hmac_digest_pairs",
    "set_backend",
    "use_backend",
    "MaskCache",
    "cache_disabled",
    "get_mask_cache",
    "note_key_epoch",
    "HMAC",
    "PaillierPrivateKey",
    "PaillierPublicKey",
    "generate_paillier_keypair",
    "generate_prime",
    "is_probable_prime",
    "hmac_sha256",
    "KeyRing",
    "derive_key",
    "generate_keyring",
    "SHA256",
    "sha256",
    "Speck64128",
    "ctr_decrypt",
    "ctr_encrypt",
]
