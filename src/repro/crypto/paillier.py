"""The Paillier cryptosystem, from scratch — the comparator's substrate.

The paper's related work (Pan et al., IEEE JSAC 2011 — its reference [7])
protects bid privacy with Paillier encryption and secret-shared decryption
among several auctioneers, which the paper dismisses for its communication
cost.  To make that comparison quantitative rather than rhetorical,
``repro`` implements the cryptosystem itself and prices a [7]-style bid
submission against LPPA's masked sets
(:mod:`repro.experiments.paillier_baseline`).

Standard textbook Paillier (n = p*q, g = n + 1):

* ``Enc(m; r) = (1 + n)^m * r^n  mod n^2`` — additively homomorphic;
* ``Dec(c) = L(c^lambda mod n^2) * mu  mod n`` with ``L(x) = (x-1)/n``.

Key sizes are a parameter; experiments use small keys (testing the maths,
not the hardness) and the cost model scales sizes analytically.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro import obs
from repro.crypto.primes import generate_prime

__all__ = ["PaillierPublicKey", "PaillierPrivateKey", "generate_paillier_keypair"]


@dataclass(frozen=True)
class PaillierPublicKey:
    """Encryption key: the modulus ``n`` (with ``g = n + 1`` fixed)."""

    n: int

    def __post_init__(self) -> None:
        if self.n < 6:
            raise ValueError("modulus too small")

    @property
    def n_squared(self) -> int:
        return self.n * self.n

    @property
    def ciphertext_bytes(self) -> int:
        """Serialized ciphertext size: one element of Z_{n^2}."""
        return (self.n_squared.bit_length() + 7) // 8

    def encrypt(self, message: int, rng: random.Random) -> int:
        """``Enc(m; r)`` with a fresh unit ``r``."""
        obs.count("crypto.paillier.encrypt")
        if not 0 <= message < self.n:
            raise ValueError(f"message {message} outside [0, n)")
        while True:
            r = rng.randrange(1, self.n)
            if math.gcd(r, self.n) == 1:
                break
        n2 = self.n_squared
        # (1 + n)^m = 1 + m*n  (mod n^2) — the classic shortcut.
        gm = (1 + message * self.n) % n2
        return (gm * pow(r, self.n, n2)) % n2

    def add(self, c1: int, c2: int) -> int:
        """Homomorphic addition: Dec(add(E(a), E(b))) = a + b mod n."""
        obs.count("crypto.paillier.add")
        return (c1 * c2) % self.n_squared

    def add_constant(self, c: int, k: int) -> int:
        """Dec(add_constant(E(a), k)) = a + k mod n."""
        obs.count("crypto.paillier.add")
        return (c * (1 + (k % self.n) * self.n)) % self.n_squared

    def multiply_constant(self, c: int, k: int) -> int:
        """Dec(multiply_constant(E(a), k)) = a * k mod n."""
        obs.count("crypto.paillier.multiply")
        return pow(c, k % self.n, self.n_squared)


@dataclass(frozen=True)
class PaillierPrivateKey:
    """Decryption key: ``lambda = lcm(p-1, q-1)`` and ``mu``."""

    public: PaillierPublicKey
    lam: int
    mu: int

    def decrypt(self, ciphertext: int) -> int:
        """Recover the plaintext of a Paillier ciphertext."""
        obs.count("crypto.paillier.decrypt")
        n = self.public.n
        n2 = self.public.n_squared
        if not 0 <= ciphertext < n2:
            raise ValueError("ciphertext outside Z_{n^2}")
        x = pow(ciphertext, self.lam, n2)
        l_value = (x - 1) // n
        return (l_value * self.mu) % n


def generate_paillier_keypair(
    bits: int, rng: random.Random
) -> PaillierPrivateKey:
    """A keypair with a ~``bits``-bit modulus (p, q of bits/2 each)."""
    if bits < 16:
        raise ValueError("modulus must be at least 16 bits")
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(half, rng)
        if p != q:
            break
    n = p * q
    lam = (p - 1) * (q - 1) // math.gcd(p - 1, q - 1)
    public = PaillierPublicKey(n=n)
    # mu = L(g^lambda mod n^2)^-1 mod n; with g = n + 1, g^lam = 1 + lam*n.
    l_value = ((1 + lam * n) % (n * n) - 1) // n
    mu = pow(l_value, -1, n)
    return PaillierPrivateKey(public=public, lam=lam, mu=mu)
