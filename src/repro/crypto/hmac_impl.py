"""Pure-Python HMAC (RFC 2104 / FIPS 198-1) over the from-scratch SHA-256.

PPBS masks every numericalized location and bid prefix with
``HMAC_g(O(prefix))`` where ``g`` is a key the TTP distributes to the
secondary users but withholds from the auctioneer.  Equality of HMAC outputs
is the only operation the auctioneer ever performs on masked prefixes, so the
construction here is the trust boundary of the whole scheme.
"""

from __future__ import annotations

from repro.crypto.sha256 import SHA256

__all__ = ["HMAC", "hmac_sha256"]

_IPAD = 0x36
_OPAD = 0x5C


class HMAC:
    """HMAC-SHA256 with an incremental ``update``/``digest`` API."""

    digest_size = 32
    block_size = 64

    def __init__(self, key: bytes, msg: bytes = b"") -> None:
        if not isinstance(key, (bytes, bytearray, memoryview)):
            raise TypeError("HMAC key must be bytes-like")
        key = bytes(key)
        if len(key) > self.block_size:
            key = SHA256(key).digest()
        key = key.ljust(self.block_size, b"\x00")
        self._outer_key = bytes(b ^ _OPAD for b in key)
        self._inner = SHA256(bytes(b ^ _IPAD for b in key))
        if msg:
            self._inner.update(msg)

    def update(self, msg: bytes) -> None:
        """Absorb more message bytes."""
        self._inner.update(msg)

    def digest(self) -> bytes:
        """The 32-byte MAC of everything absorbed so far (state preserved)."""
        return SHA256(self._outer_key + self._inner.digest()).digest()

    def hexdigest(self) -> str:
        """Hexadecimal form of :meth:`digest`."""
        return self.digest().hex()

    def copy(self) -> "HMAC":
        """An independent clone sharing the absorbed state so far."""
        clone = HMAC.__new__(HMAC)
        clone._outer_key = self._outer_key
        clone._inner = self._inner.copy()
        return clone


def hmac_sha256(key: bytes, msg: bytes) -> bytes:
    """One-shot HMAC-SHA256 digest of ``msg`` under ``key``."""
    return HMAC(key, msg).digest()
