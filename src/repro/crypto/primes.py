"""Deterministic prime generation (Miller-Rabin) for the Paillier baseline.

Primes are drawn from a caller-supplied RNG so key generation is
reproducible in experiments; Miller-Rabin with 40 rounds gives an error
probability below 2^-80, ample for a benchmark comparator.
"""

from __future__ import annotations

import random

__all__ = ["is_probable_prime", "generate_prime"]

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
)


def is_probable_prime(n: int, rng: random.Random, *, rounds: int = 40) -> bool:
    """Miller-Rabin primality test with random bases."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Write n - 1 = d * 2^s with d odd.
    d = n - 1
    s = 0
    while d % 2 == 0:
        d //= 2
        s += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(s - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """A random prime with exactly ``bits`` bits."""
    if bits < 8:
        raise ValueError("need at least 8-bit primes")
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, rng):
            return candidate
