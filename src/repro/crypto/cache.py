"""Masked-prefix digest cache: stop re-masking identical sets every round.

A stationary SU submits the *same* location prefix family and interference
cover round after round, and the TTP re-derives the same masked bid family
at charging time that the bidder already computed at submission time.  Both
are deterministic functions of ``(HMAC key, domain, digest size, prefix
set)`` — so the masking layer keeps a bounded LRU of exactly that mapping.

Correctness is structural: the cache key *contains the key material*, so a
rotated key can never alias a stale entry — a new key ring simply misses.
On top of that, :class:`repro.lppa.ttp.TrustedThirdParty` notes the key
ring fingerprint on every key (re)distribution via :func:`note_key_epoch`,
which drops stale entries whenever the fingerprint changes; dead epochs
are evicted eagerly instead of lingering until LRU pressure.  The TTP
passes the new ring's live key set, so a *partial* rotation — the epoch
service rotates only ``gc`` on membership change — drops only entries
masked under retired keys and a stationary SU's digests stay warm.

Observability: every lookup lands on ``crypto.mask_cache.hits`` or
``crypto.mask_cache.misses``; clears count ``crypto.mask_cache.invalidations``
and LRU pressure counts ``crypto.mask_cache.evictions``; live occupancy is
exported as the ``crypto.mask_cache.size`` gauge.  The fault-test
suite uses these counters to prove no stale digest is ever served across
key rotation, SU churn and prefix-set mutation.

The cache is enabled by default (results are bit-identical either way —
only the HMAC work is skipped); disable it process-wide with
``REPRO_MASK_CACHE=0``, temporarily with :func:`cache_disabled`, or from
the CLI with ``--no-mask-cache``.  Like :mod:`repro.obs`, it is
single-threaded by design; forked sweep workers inherit a snapshot, which
is harmless because entries are pure functions of their keys.
"""

from __future__ import annotations

import contextlib
import os
from collections import OrderedDict
from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro import obs

__all__ = [
    "MaskCache",
    "get_mask_cache",
    "set_mask_cache",
    "cache_enabled",
    "set_cache_enabled",
    "cache_disabled",
    "note_key_epoch",
]

#: Digests of one masked prefix set, in the set's prefix order.
CachedDigests = Tuple[bytes, ...]

#: Lookup key: (HMAC key, domain, digest_bytes, numericalized message tuple).
CacheKey = Tuple[bytes, bytes, int, Tuple[bytes, ...]]

_DEFAULT_MAX_ENTRIES = 65536


class MaskCache:
    """Bounded LRU of masked-prefix digest tuples.

    Entries map a :data:`CacheKey` to the truncated digests of the set, in
    input order — order matters so batch lookups reproduce the exact bytes
    a cold mask would produce.
    """

    __slots__ = ("_entries", "_max_entries", "_epoch", "hits", "misses", "evictions")

    def __init__(self, max_entries: int = _DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self._entries: "OrderedDict[CacheKey, CachedDigests]" = OrderedDict()
        self._max_entries = max_entries
        self._epoch: Optional[bytes] = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def max_entries(self) -> int:
        return self._max_entries

    @property
    def epoch(self) -> Optional[bytes]:
        """Fingerprint of the key epoch the cache was last validated for."""
        return self._epoch

    def get(self, key: CacheKey) -> Optional[CachedDigests]:
        """Look one set up; counts a hit or a miss either way."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            obs.count("crypto.mask_cache.misses")
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        obs.count("crypto.mask_cache.hits")
        return entry

    def put(self, key: CacheKey, digests: CachedDigests) -> None:
        """Store one set's digests, evicting the LRU entry on overflow."""
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
            return
        entries[key] = digests
        if len(entries) > self._max_entries:
            entries.popitem(last=False)
            self.evictions += 1
            obs.count("crypto.mask_cache.evictions")
        obs.set_gauge("crypto.mask_cache.size", float(len(entries)))

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        if dropped:
            obs.count("crypto.mask_cache.invalidations")
            obs.set_gauge("crypto.mask_cache.size", 0.0)
        return dropped

    def drop_stale_keys(self, live_keys: Iterable[bytes]) -> int:
        """Drop entries masked under keys outside ``live_keys``.

        The selective counterpart of :meth:`clear` for *partial* key
        rotations: a membership change rotates only the affected subkeys
        (the epoch service rotates ``gc`` on join/leave), so a stationary
        SU's masked digests — keyed by the unchanged ``g0``/``gb_*``
        material — survive unrelated churn.  Counts one
        ``crypto.mask_cache.invalidations`` event when anything dropped.
        """
        live = frozenset(live_keys)
        stale = [key for key in self._entries if key[0] not in live]
        for key in stale:
            del self._entries[key]
        if stale:
            obs.count("crypto.mask_cache.invalidations")
            obs.set_gauge("crypto.mask_cache.size", float(len(self._entries)))
        return len(stale)

    def note_key_epoch(
        self, fingerprint: bytes, live_keys: Optional[Iterable[bytes]] = None
    ) -> bool:
        """Record a key (re)distribution; invalidates on a new epoch.

        Returns ``True`` when the fingerprint changed (stale entries
        dropped).  Re-distributing the *same* keys — every round of a
        seeded experiment re-runs :meth:`TrustedThirdParty.setup` with the
        same seed — keeps the cache warm across rounds.

        With ``live_keys`` (the new ring's complete key material) a new
        epoch drops only entries masked under keys *not* in that set —
        partial rotations keep every still-valid entry warm.  Without it,
        the conservative full :meth:`clear` applies.
        """
        if fingerprint == self._epoch:
            return False
        changed = self._epoch is not None
        self._epoch = fingerprint
        if changed:
            if live_keys is not None:
                self.drop_stale_keys(live_keys)
            else:
                self.clear()
        return changed

    def stats(self) -> Dict[str, int]:
        """Counters snapshot for reports and tests."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


_cache = MaskCache()
_enabled = os.environ.get("REPRO_MASK_CACHE", "1").lower() not in ("0", "off", "false")


def get_mask_cache() -> MaskCache:
    """The process-wide cache instance the masking layer consults."""
    return _cache


def set_mask_cache(cache: MaskCache) -> MaskCache:
    """Swap in a different cache instance (tests); returns the previous one."""
    global _cache
    previous = _cache
    _cache = cache
    return previous


def cache_enabled() -> bool:
    """Whether the masking layer consults the cache at all."""
    return _enabled


def set_cache_enabled(enabled: bool) -> None:
    """Globally enable/disable cache consultation (bytes never change)."""
    global _enabled
    _enabled = bool(enabled)


@contextlib.contextmanager
def cache_disabled() -> Iterator[None]:
    """Temporarily bypass the cache — the calibration's fixed-work guard."""
    previous = _enabled
    set_cache_enabled(False)
    try:
        yield
    finally:
        set_cache_enabled(previous)


def note_key_epoch(
    fingerprint: bytes, live_keys: Optional[Iterable[bytes]] = None
) -> bool:
    """Module-level convenience for :meth:`MaskCache.note_key_epoch`."""
    return _cache.note_key_epoch(fingerprint, live_keys)
