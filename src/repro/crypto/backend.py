"""Pluggable HMAC backends with batch APIs: pure, hashlib, numpy.

The repository ships its own SHA-256/HMAC (:mod:`repro.crypto.sha256`,
:mod:`repro.crypto.hmac_impl`) so the masking layer is auditable end to end.
Pure-Python compression is ~300x slower than CPython's built-in OpenSSL
binding, however, and a 129-channel, 200-bidder auction performs millions of
HMAC invocations.  The protocol layer therefore routes every digest through
this seam, which dispatches to one of three :class:`CryptoBackend`
implementations:

* ``"hashlib"`` (default) — ``hmac``/``hashlib`` from the standard library,
  with a per-key precomputed HMAC state that batches amortize via
  ``HMAC.copy()`` (the ipad block is compressed once per key, not once per
  message);
* ``"pure"`` — the in-repo reference implementation, same copy() trick;
* ``"numpy"`` — lane-parallel SHA-256 over ``uint32`` matrices
  (:mod:`repro.crypto.sha256_numpy`); batches of masked sets run through
  the compression function together.

``"stdlib"`` is accepted as an alias of ``"hashlib"`` for backward
compatibility.  All backends are bit-identical; the differential suite in
``tests/crypto/test_backend_equivalence.py`` asserts it digest-for-digest,
including full protocol rounds.  Select a backend with
:func:`set_backend` / :func:`use_backend`, the ``REPRO_CRYPTO_BACKEND``
environment variable, or the CLI's ``--crypto-backend`` flag.

The masking layer batches whole prefix sets into
:func:`hmac_digest_batch` / :func:`hmac_digest_pairs`; scalar callers use
:func:`hmac_digest`.  Every digest is counted under the ``crypto.hmac``
metric when :mod:`repro.obs` is collecting (these functions are the choke
point all masking flows through), and each batch call additionally counts
``crypto.hmac_batches``.
"""

from __future__ import annotations

import contextlib
import hashlib
import hmac as _stdlib_hmac
import os
from typing import Dict, Iterator, List, Sequence, Tuple

from repro import obs
from repro.crypto.hmac_impl import HMAC as _PureHMAC

__all__ = [
    "CryptoBackend",
    "PureBackend",
    "HashlibBackend",
    "NumpyBackend",
    "hmac_digest",
    "hmac_digest_batch",
    "hmac_digest_pairs",
    "available_backends",
    "get_backend",
    "get_backend_instance",
    "set_backend",
    "use_backend",
]


class CryptoBackend:
    """One HMAC-SHA256 execution strategy.

    Subclasses implement :meth:`hmac`; the batch entry points have generic
    loop implementations that subclasses override when they can do better
    (shared-key state reuse, lane-parallel matrices).  Whatever the
    strategy, outputs must be bit-identical across backends — that contract
    is what lets the protocol switch backends without moving a wire byte.
    """

    #: Registry name, set by subclasses.
    name: str = ""

    def hmac(self, key: bytes, msg: bytes) -> bytes:
        """HMAC-SHA256 of one message."""
        raise NotImplementedError

    def hmac_batch(self, key: bytes, msgs: Sequence[bytes]) -> List[bytes]:
        """HMAC-SHA256 of every message under one shared key."""
        return [self.hmac(key, m) for m in msgs]

    def hmac_pairs(self, items: Sequence[Tuple[bytes, bytes]]) -> List[bytes]:
        """HMAC-SHA256 of ``(key, msg)`` pairs — keys may differ per item.

        The default groups consecutive same-key runs into
        :meth:`hmac_batch` calls, which matches how the masking layer
        flattens per-channel sets into one request.
        """
        out: List[bytes] = []
        i = 0
        n = len(items)
        while i < n:
            key = items[i][0]
            j = i
            while j < n and items[j][0] == key:
                j += 1
            out.extend(self.hmac_batch(key, [m for _, m in items[i:j]]))
            i = j
        return out


class PureBackend(CryptoBackend):
    """The in-repo reference implementation (auditable, slow)."""

    name = "pure"

    def hmac(self, key: bytes, msg: bytes) -> bytes:
        return _PureHMAC(key, msg).digest()

    def hmac_batch(self, key: bytes, msgs: Sequence[bytes]) -> List[bytes]:
        if not msgs:
            return []
        # Compress the ipad block once per key; copy() per message.
        base = _PureHMAC(key)
        out = []
        for m in msgs:
            h = base.copy()
            h.update(m)
            out.append(h.digest())
        return out


class HashlibBackend(CryptoBackend):
    """The standard library's OpenSSL-backed HMAC (fastest per digest)."""

    name = "hashlib"

    def hmac(self, key: bytes, msg: bytes) -> bytes:
        return _stdlib_hmac.new(key, msg, hashlib.sha256).digest()

    def hmac_batch(self, key: bytes, msgs: Sequence[bytes]) -> List[bytes]:
        if not msgs:
            return []
        base = _stdlib_hmac.new(key, None, hashlib.sha256)
        out = []
        for m in msgs:
            h = base.copy()
            h.update(m)
            out.append(h.digest())
        return out


class NumpyBackend(CryptoBackend):
    """Lane-parallel SHA-256 over message matrices (see sha256_numpy).

    Scalar calls fall back to hashlib — a one-lane matrix would only add
    overhead — so the numpy strategy kicks in exactly where it differs:
    on batches.
    """

    name = "numpy"

    def __init__(self) -> None:
        # Import here so environments without numpy can still construct
        # the registry (available_backends() gates on importability).
        from repro.crypto import sha256_numpy

        self._vec = sha256_numpy

    def hmac(self, key: bytes, msg: bytes) -> bytes:
        return _stdlib_hmac.new(key, msg, hashlib.sha256).digest()

    def hmac_batch(self, key: bytes, msgs: Sequence[bytes]) -> List[bytes]:
        if not msgs:
            return []
        return self._vec.hmac_sha256_many(key, msgs)

    def hmac_pairs(self, items: Sequence[Tuple[bytes, bytes]]) -> List[bytes]:
        if not items:
            return []
        return self._vec.hmac_sha256_many(
            [k for k, _ in items], [m for _, m in items]
        )


_FACTORIES = {
    "pure": PureBackend,
    "hashlib": HashlibBackend,
    "numpy": NumpyBackend,
}
_ALIASES = {"stdlib": "hashlib"}
_DEFAULT = "hashlib"

_instances: Dict[str, CryptoBackend] = {}


def _canonical(name: str) -> str:
    name = _ALIASES.get(name, name)
    if name not in _FACTORIES:
        valid = sorted(set(_FACTORIES) | set(_ALIASES))
        raise ValueError(f"backend must be one of {valid}, got {name!r}")
    return name


def _instance(name: str) -> CryptoBackend:
    backend = _instances.get(name)
    if backend is None:
        backend = _instances[name] = _FACTORIES[name]()
    return backend


def available_backends() -> List[str]:
    """Canonical backend names constructible in this environment."""
    names = []
    for name in _FACTORIES:
        try:
            _instance(name)
        except ImportError:  # pragma: no cover - numpy is a dependency
            continue
        names.append(name)
    return names


_backend = _instance(_canonical(os.environ.get("REPRO_CRYPTO_BACKEND", _DEFAULT)))


def get_backend() -> str:
    """Name of the active HMAC backend."""
    return _backend.name


def get_backend_instance() -> CryptoBackend:
    """The active :class:`CryptoBackend` object."""
    return _backend


def set_backend(name: str) -> None:
    """Select the HMAC backend globally (``pure``/``hashlib``/``numpy``)."""
    global _backend
    _backend = _instance(_canonical(name))


@contextlib.contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Temporarily switch the HMAC backend."""
    previous = get_backend()
    set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)


def hmac_digest(key: bytes, msg: bytes) -> bytes:
    """HMAC-SHA256 digest through the active backend."""
    obs.count("crypto.hmac")
    return _backend.hmac(key, msg)


def hmac_digest_batch(key: bytes, msgs: Sequence[bytes]) -> List[bytes]:
    """HMAC-SHA256 of every message under one key, through the backend."""
    obs.count("crypto.hmac", len(msgs))
    obs.count("crypto.hmac_batches")
    return _backend.hmac_batch(key, msgs)


def hmac_digest_pairs(items: Sequence[Tuple[bytes, bytes]]) -> List[bytes]:
    """HMAC-SHA256 of ``(key, msg)`` pairs, through the backend."""
    obs.count("crypto.hmac", len(items))
    obs.count("crypto.hmac_batches")
    return _backend.hmac_pairs(items)
