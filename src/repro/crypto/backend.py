"""Pluggable HMAC backend: from-scratch reference vs stdlib-accelerated.

The repository ships its own SHA-256/HMAC (:mod:`repro.crypto.sha256`,
:mod:`repro.crypto.hmac_impl`) so the masking layer is auditable end to end.
Pure-Python compression is ~300x slower than CPython's built-in OpenSSL
binding, however, and a 129-channel, 200-bidder auction performs millions of
HMAC invocations.  The protocol layer therefore calls
:func:`hmac_digest`, which dispatches to either implementation:

* ``"stdlib"`` (default) — ``hmac``/``hashlib`` from the standard library;
* ``"pure"`` — the in-repo implementation.

The two are bit-identical; the test suite asserts it over random inputs and
runs the protocol under both backends.  Use :func:`use_backend` to switch
temporarily.

Every call is counted under the ``crypto.hmac`` metric when
:mod:`repro.obs` is collecting (this function is the single choke point all
masking flows through), at the cost of one ``is None`` test when it is not.
"""

from __future__ import annotations

import contextlib
import hashlib
import hmac as _stdlib_hmac
from typing import Iterator

from repro import obs
from repro.crypto.hmac_impl import hmac_sha256 as _pure_hmac

__all__ = ["hmac_digest", "get_backend", "set_backend", "use_backend"]

_VALID = ("stdlib", "pure")
_backend = "stdlib"


def get_backend() -> str:
    """Name of the active HMAC backend."""
    return _backend


def set_backend(name: str) -> None:
    """Select the HMAC backend globally (``"stdlib"`` or ``"pure"``)."""
    global _backend
    if name not in _VALID:
        raise ValueError(f"backend must be one of {_VALID}, got {name!r}")
    _backend = name


@contextlib.contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Temporarily switch the HMAC backend."""
    previous = get_backend()
    set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)


def hmac_digest(key: bytes, msg: bytes) -> bytes:
    """HMAC-SHA256 digest through the active backend."""
    obs.count("crypto.hmac")
    if _backend == "stdlib":
        return _stdlib_hmac.new(key, msg, hashlib.sha256).digest()
    return _pure_hmac(key, msg)
