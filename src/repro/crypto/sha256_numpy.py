"""Numpy-vectorized SHA-256 / HMAC-SHA256 over message matrices.

The PPBS masking layer hashes *sets*: a location submission masks four
prefix sets under one key, a bid submission masks two sets per channel, and
the batch APIs in :mod:`repro.prefix.membership` deliver all of it to the
crypto backend as one message list.  This module computes those batches
lane-parallel: messages are padded, grouped by padded length, and the FIPS
180-4 compression function runs once per block position over a ``uint32``
matrix with one lane per message.

The arithmetic is a direct vectorization of :mod:`repro.crypto.sha256`
(same ``_K``/``_H0`` constants, same schedule and round functions), so the
output is bit-identical by construction — the cross-backend differential
suite asserts it digest-for-digest.  Per-lane throughput beats the pure
backend by orders of magnitude but only approaches OpenSSL (the ``hashlib``
backend) for batches of a few thousand lanes; the backend exists primarily
to prove the batch seam carries a genuinely different execution strategy
without moving a single wire byte.

``numpy`` is a package dependency, but the import stays local to this
module so environments without it can still run the pure/hashlib backends
(:func:`repro.crypto.backend.available_backends` gates on importability).
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Union

import numpy as np

from repro.crypto.sha256 import _H0, _K

__all__ = ["sha256_many", "hmac_sha256_many"]

_BLOCK = 64
_IPAD = 0x36
_OPAD = 0x5C

_K_VEC = np.array(_K, dtype=np.uint32)
_H0_VEC = np.array(_H0, dtype=np.uint32)


def _rotr(x: "np.ndarray", n: int) -> "np.ndarray":
    """Lane-wise 32-bit right rotation."""
    return (x >> np.uint32(n)) | (x << np.uint32(32 - n))


def _compress_many(state: "np.ndarray", block_words: "np.ndarray") -> None:
    """One compression round over all lanes, updating ``state`` in place.

    ``state`` is ``(8, N)`` and ``block_words`` ``(16, N)``, both
    ``uint32``; additions wrap mod 2**32 exactly as the scalar reference.
    """
    n_lanes = state.shape[1]
    w = np.empty((64, n_lanes), dtype=np.uint32)
    w[:16] = block_words
    for t in range(16, 64):
        wt15 = w[t - 15]
        wt2 = w[t - 2]
        s0 = _rotr(wt15, 7) ^ _rotr(wt15, 18) ^ (wt15 >> np.uint32(3))
        s1 = _rotr(wt2, 17) ^ _rotr(wt2, 19) ^ (wt2 >> np.uint32(10))
        w[t] = w[t - 16] + s0 + w[t - 7] + s1

    a, b, c, d, e, f, g, h = (state[i].copy() for i in range(8))
    for t in range(64):
        big_s1 = _rotr(e, 6) ^ _rotr(e, 11) ^ _rotr(e, 25)
        ch = (e & f) ^ (~e & g)
        t1 = h + big_s1 + ch + _K_VEC[t] + w[t]
        big_s0 = _rotr(a, 2) ^ _rotr(a, 13) ^ _rotr(a, 22)
        maj = (a & b) ^ (a & c) ^ (b & c)
        t2 = big_s0 + maj
        h = g
        g = f
        f = e
        e = d + t1
        d = c
        c = b
        b = a
        a = t1 + t2

    state[0] += a
    state[1] += b
    state[2] += c
    state[3] += d
    state[4] += e
    state[5] += f
    state[6] += g
    state[7] += h


def _pad(message: bytes) -> bytes:
    """FIPS 180-4 padding: 0x80, zeros to 56 mod 64, 64-bit bit length."""
    pad_len = (55 - len(message)) % _BLOCK
    return (
        message
        + b"\x80"
        + b"\x00" * pad_len
        + struct.pack(">Q", 8 * len(message))
    )


def sha256_many(messages: Sequence[bytes]) -> List[bytes]:
    """SHA-256 digests of every message, computed lane-parallel.

    Messages are grouped by padded length; each group's lanes run through
    the vectorized compression together.  Equivalent to
    ``[hashlib.sha256(m).digest() for m in messages]`` bit for bit.
    """
    out: List[bytes] = [b""] * len(messages)
    groups: dict = {}
    padded: List[bytes] = []
    for index, message in enumerate(messages):
        p = _pad(bytes(message))
        padded.append(p)
        groups.setdefault(len(p), []).append(index)

    for size, indices in groups.items():
        n_lanes = len(indices)
        words = (
            np.frombuffer(
                b"".join(padded[i] for i in indices), dtype=">u4"
            )
            .reshape(n_lanes, size // 4)
            .astype(np.uint32)
        )
        state = np.repeat(_H0_VEC[:, None], n_lanes, axis=1)
        for block in range(size // _BLOCK):
            _compress_many(state, words[:, block * 16 : block * 16 + 16].T)
        digest_bytes = np.ascontiguousarray(state.T).astype(">u4").tobytes()
        for lane, index in enumerate(indices):
            out[index] = digest_bytes[lane * 32 : lane * 32 + 32]
    return out


def _key_block(key: bytes, digested: List[bytes]) -> bytes:
    """The 64-byte HMAC key block (long keys arrive pre-hashed)."""
    if len(key) > _BLOCK:
        key = digested.pop(0)
    return key.ljust(_BLOCK, b"\x00")


def hmac_sha256_many(
    keys: Union[bytes, Sequence[bytes]], messages: Sequence[bytes]
) -> List[bytes]:
    """HMAC-SHA256 of each message, vectorized, with per-lane keys.

    ``keys`` is either one key shared by every lane or a sequence aligned
    with ``messages``.  Output is bit-identical to looping
    ``hmac.new(key, msg, sha256).digest()``.
    """
    if isinstance(keys, (bytes, bytearray, memoryview)):
        key_list = [bytes(keys)] * len(messages)
    else:
        key_list = [bytes(k) for k in keys]
        if len(key_list) != len(messages):
            raise ValueError("one key per message required")

    # Keys longer than the block size are replaced by their digest first —
    # itself computed through the vectorized core.
    long_keys = [k for k in key_list if len(k) > _BLOCK]
    digested = sha256_many(long_keys) if long_keys else []
    blocks = [_key_block(k, digested) for k in key_list]

    inner = sha256_many(
        [
            bytes(b ^ _IPAD for b in block) + bytes(message)
            for block, message in zip(blocks, messages)
        ]
    )
    return sha256_many(
        [
            bytes(b ^ _OPAD for b in block) + digest
            for block, digest in zip(blocks, inner)
        ]
    )
