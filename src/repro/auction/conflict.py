"""Interference conflict graphs.

The paper models each SU's interference range as a square of side ``2λ``
centred on the user: users ``i`` and ``j`` conflict iff

    |loc_x^i - loc_x^j| < 2λ   and   |loc_y^i - loc_y^j| < 2λ.

This module builds that graph from *plaintext* locations — the baseline the
auctioneer uses when privacy is off, and the reference against which the
private location submission protocol (:mod:`repro.lppa.location`) is checked
for exactness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Sequence, Set, Tuple

from repro.geo.grid import Cell

__all__ = ["ConflictGraph", "build_conflict_graph", "cells_conflict"]


def cells_conflict(a: Cell, b: Cell, two_lambda: int) -> bool:
    """The paper's conflict predicate on integer (cell) coordinates."""
    if two_lambda < 1:
        raise ValueError("two_lambda must be >= 1")
    return abs(a[0] - b[0]) < two_lambda and abs(a[1] - b[1]) < two_lambda


@dataclass(frozen=True)
class ConflictGraph:
    """Adjacency over bidder ids; node ``i`` conflicts with ``neighbors(i)``."""

    n_users: int
    edges: FrozenSet[Tuple[int, int]]

    def __post_init__(self) -> None:
        for u, v in self.edges:
            if not (0 <= u < self.n_users and 0 <= v < self.n_users):
                raise ValueError(f"edge ({u}, {v}) references unknown user")
            if u >= v:
                raise ValueError("edges must be stored as (u < v) pairs")

    def neighbors(self, user: int) -> Set[int]:
        """``N(user)``: bidders that cannot share a channel with ``user``."""
        if not 0 <= user < self.n_users:
            raise ValueError(f"unknown user {user}")
        result = set()
        for u, v in self.edges:
            if u == user:
                result.add(v)
            elif v == user:
                result.add(u)
        return result

    def are_conflicting(self, u: int, v: int) -> bool:
        """True when users ``u`` and ``v`` may not share a channel."""
        if u == v:
            return False
        a, b = min(u, v), max(u, v)
        return (a, b) in self.edges

    def adjacency(self) -> Dict[int, Set[int]]:
        """Full adjacency map (precomputed once for hot loops)."""
        adj: Dict[int, Set[int]] = {i: set() for i in range(self.n_users)}
        for u, v in self.edges:
            adj[u].add(v)
            adj[v].add(u)
        return adj

    @property
    def n_edges(self) -> int:
        return len(self.edges)


def build_conflict_graph(
    cells: Sequence[Cell], two_lambda: int
) -> ConflictGraph:
    """Plaintext conflict graph over users located at ``cells``.

    Quadratic pairwise check; N is a few hundred in every experiment, and
    the private protocol it is validated against is quadratic anyway.
    """
    if two_lambda < 1:
        raise ValueError("two_lambda must be >= 1")
    edges = set()
    for i in range(len(cells)):
        for j in range(i + 1, len(cells)):
            if cells_conflict(cells[i], cells[j], two_lambda):
                edges.add((i, j))
    return ConflictGraph(n_users=len(cells), edges=frozenset(edges))
