"""Secondary users and truthful bid generation.

The paper's experiment generates each SU's bid on channel ``j`` as

    b_j^i = q_j * beta_i + eta,       |eta| <= 20% * q_j * beta_i

where ``q_j`` is the channel quality at the SU's cell (from the geo-location
database), ``beta_i`` the user's *transmission emergency* (urgency) value,
and ``eta`` sensing noise.  Bids on unavailable channels are zero, and bids
are non-negative integers (the prefix machinery works on integers).

Note the consequence the paper itself points out: an *available* channel of
very low quality can legitimately produce a zero bid.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

from repro.geo.database import GeoLocationDatabase
from repro.geo.grid import Cell

__all__ = [
    "SecondaryUser",
    "generate_users",
    "generate_users_from_sensing",
    "rebid_users",
    "DEFAULT_BETA_RANGE",
    "BID_NOISE_FRACTION",
]

#: Default uniform range of the transmission-emergency value beta_i.
DEFAULT_BETA_RANGE = (20.0, 100.0)
#: The paper's |eta| <= 20% bound.
BID_NOISE_FRACTION = 0.2


@dataclass(frozen=True)
class SecondaryUser:
    """One bidder: identity, (secret) location, urgency, true bid vector."""

    user_id: int
    cell: Cell
    beta: float
    bids: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.beta <= 0:
            raise ValueError("beta must be positive")
        if any(b < 0 for b in self.bids):
            raise ValueError("bids must be non-negative")

    @property
    def n_channels(self) -> int:
        return len(self.bids)

    def available_set(self) -> Set[int]:
        """``AS(i)`` as inferable from the bids: channels bid positively.

        The paper's attacker equates "bid > 0" with "available"; channels
        that are available but of such low quality that the truthful bid
        rounds to zero are invisible to it.
        """
        return {ch for ch, b in enumerate(self.bids) if b > 0}

    def max_bid(self) -> int:
        """The user's largest bid, the paper's per-user ``b(max)``."""
        return max(self.bids) if self.bids else 0


def _truthful_bid(quality: float, beta: float, rng: random.Random) -> int:
    value = quality * beta
    noise = rng.uniform(-BID_NOISE_FRACTION, BID_NOISE_FRACTION) * value
    return max(0, round(value + noise))


def generate_users_from_sensing(
    database: GeoLocationDatabase,
    n_users: int,
    rng: random.Random,
    detector,
    *,
    beta_range: Tuple[float, float] = DEFAULT_BETA_RANGE,
    cells: Sequence[Cell] = (),
) -> List[SecondaryUser]:
    """SUs whose channel knowledge comes from spectrum sensing, not the DB.

    The paper's initial phase offers both paths; this one derives each bid
    from an :class:`~repro.geo.sensing.EnergyDetector` sweep, so the bid
    noise is the *physical* sensing error rather than the abstract
    ``|eta| <= 20%`` perturbation.  Mis-detections show up as bids on
    channels the database would call unavailable — which is realistic, and
    exactly the measurement discrepancy the paper cites as the reason BPM
    returns multiple cells.
    """
    if n_users < 1:
        raise ValueError("need at least one user")
    lo, hi = beta_range
    if not 0 < lo <= hi:
        raise ValueError("beta_range must satisfy 0 < lo <= hi")
    grid = database.coverage.grid
    if cells:
        if len(cells) != n_users:
            raise ValueError("cells, when given, must have one entry per user")
        placements = list(cells)
    else:
        placements = grid.random_cells(rng, n_users)

    users = []
    for uid, cell in enumerate(placements):
        grid.require(cell)
        beta = rng.uniform(lo, hi)
        reports = detector.sense_all(database, cell, rng)
        bids = tuple(
            max(0, round(report.quality_estimate * beta)) if report.available else 0
            for report in reports
        )
        users.append(SecondaryUser(user_id=uid, cell=cell, beta=beta, bids=bids))
    return users


def rebid_users(
    users: Sequence[SecondaryUser],
    database: GeoLocationDatabase,
    rng: random.Random,
) -> List[SecondaryUser]:
    """Fresh truthful bids for an existing population (a new auction round).

    Between rounds each SU re-evaluates its channels — same cell, same
    urgency ``beta``, fresh sensing noise ``eta``.  This is the bid dynamic
    the multi-round linkage attack (section V.C.3) exploits: the *noise*
    varies per round, the underlying availability does not.
    """
    result = []
    for user in users:
        qualities = database.coverage.quality_vector(user.cell)
        available = database.available_channels(user.cell)
        bids = tuple(
            _truthful_bid(float(qualities[ch]), user.beta, rng)
            if ch in available
            else 0
            for ch in range(database.n_channels)
        )
        result.append(
            SecondaryUser(
                user_id=user.user_id, cell=user.cell, beta=user.beta, bids=bids
            )
        )
    return result


def generate_users(
    database: GeoLocationDatabase,
    n_users: int,
    rng: random.Random,
    *,
    beta_range: Tuple[float, float] = DEFAULT_BETA_RANGE,
    cells: Sequence[Cell] = (),
) -> List[SecondaryUser]:
    """Create ``n_users`` SUs with truthful noisy bids.

    Users are placed uniformly at random over the grid unless explicit
    ``cells`` are given (length must then equal ``n_users``).
    """
    if n_users < 1:
        raise ValueError("need at least one user")
    lo, hi = beta_range
    if not 0 < lo <= hi:
        raise ValueError("beta_range must satisfy 0 < lo <= hi")
    grid = database.coverage.grid
    if cells:
        if len(cells) != n_users:
            raise ValueError("cells, when given, must have one entry per user")
        placements = list(cells)
    else:
        placements = grid.random_cells(rng, n_users)

    users = []
    for uid, cell in enumerate(placements):
        grid.require(cell)
        beta = rng.uniform(lo, hi)
        qualities = database.coverage.quality_vector(cell)
        available = database.available_channels(cell)
        bids = tuple(
            _truthful_bid(float(qualities[ch]), beta, rng) if ch in available else 0
            for ch in range(database.n_channels)
        )
        users.append(SecondaryUser(user_id=uid, cell=cell, beta=beta, bids=bids))
    return users
