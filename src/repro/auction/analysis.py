"""Conflict-graph and reuse analytics.

Spectrum reusability — the paper's defining departure from classical
auctions — is bounded by the conflict graph's structure: a channel can be
shared by any *independent set* of bidders, and the minimum number of
channels needed to serve everyone is the graph's chromatic number.  This
module provides the standard graph-theoretic lenses (degree statistics,
greedy-colouring bounds, independence checks), plus a bridge to networkx
for anything heavier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.auction.conflict import ConflictGraph

__all__ = [
    "ConflictStats",
    "conflict_stats",
    "greedy_coloring",
    "is_independent_set",
    "to_networkx",
]


@dataclass(frozen=True)
class ConflictStats:
    """Degree and density statistics of a conflict graph."""

    n_users: int
    n_edges: int
    max_degree: int
    mean_degree: float
    density: float
    greedy_colors: int

    def as_row(self) -> Dict[str, object]:
        """Flat dict for table emission."""
        return {
            "users": self.n_users,
            "edges": self.n_edges,
            "max_degree": self.max_degree,
            "mean_degree": round(self.mean_degree, 2),
            "density": round(self.density, 4),
            "greedy_colors": self.greedy_colors,
        }


def conflict_stats(graph: ConflictGraph) -> ConflictStats:
    """Summarise a conflict graph's structure."""
    adjacency = graph.adjacency()
    degrees = [len(neighbors) for neighbors in adjacency.values()]
    n = graph.n_users
    possible = n * (n - 1) / 2 if n > 1 else 1
    return ConflictStats(
        n_users=n,
        n_edges=graph.n_edges,
        max_degree=max(degrees) if degrees else 0,
        mean_degree=sum(degrees) / n if n else 0.0,
        density=graph.n_edges / possible,
        greedy_colors=len(set(greedy_coloring(graph).values())),
    )


def greedy_coloring(graph: ConflictGraph) -> Dict[int, int]:
    """Largest-degree-first greedy colouring.

    The colour count upper-bounds the chromatic number, i.e. the number of
    channels that would suffice to serve *every* bidder simultaneously —
    the reuse ceiling Algorithm 3 is implicitly working against.
    """
    adjacency = graph.adjacency()
    order = sorted(
        range(graph.n_users), key=lambda u: len(adjacency[u]), reverse=True
    )
    colors: Dict[int, int] = {}
    for user in order:
        taken = {colors[v] for v in adjacency[user] if v in colors}
        color = 0
        while color in taken:
            color += 1
        colors[user] = color
    return colors


def is_independent_set(graph: ConflictGraph, users: Sequence[int]) -> bool:
    """True when no two of the given users conflict (can share a channel)."""
    unique = list(dict.fromkeys(users))
    for i in range(len(unique)):
        for j in range(i + 1, len(unique)):
            if graph.are_conflicting(unique[i], unique[j]):
                return False
    return True


def to_networkx(graph: ConflictGraph):
    """The conflict graph as a ``networkx.Graph`` (for heavier analysis)."""
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(graph.n_users))
    g.add_edges_from(graph.edges)
    return g
