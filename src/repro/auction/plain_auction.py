"""The non-private baseline auction.

This is the auction the paper assumes as its starting point (section II.A):
SUs submit ID, plaintext location and plaintext bid vector; the auctioneer
builds the conflict graph directly from the locations, runs the greedy
allocation on the plaintext table, and charges first price.  It serves two
roles in the reproduction:

1. the attack surface for BCM/BPM (the attacker sees everything it sees),
2. the performance yardstick for Fig. 5(e)(f) — LPPA's revenue and
   satisfaction are reported relative to this baseline.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.auction.allocation import greedy_allocate
from repro.auction.bidders import SecondaryUser
from repro.auction.pricing import greedy_allocate_priced, second_price_charge
from repro.auction.conflict import ConflictGraph, build_conflict_graph
from repro.auction.outcome import AuctionOutcome, WinRecord
from repro.auction.table import PlainBidTable

__all__ = ["run_plain_auction"]


def run_plain_auction(
    users: Sequence[SecondaryUser],
    rng: random.Random,
    *,
    two_lambda: int,
    conflict: ConflictGraph = None,
    pricing: str = "first",
) -> AuctionOutcome:
    """One complete plaintext auction round.

    Parameters
    ----------
    users:
        The bidders (locations and true bids are visible to the auctioneer).
    rng:
        Randomness for channel selection and tie-breaking in Algorithm 3.
    two_lambda:
        Interference-square side length in cell units.
    conflict:
        Pre-built conflict graph (else built from the users' plaintext cells).
    pricing:
        ``"first"`` (the paper's rule: winners pay their bid) or
        ``"second"`` (winners pay the best losing bid at the moment of
        sale — the truthfulness extension).
    """
    if not users:
        raise ValueError("need at least one user")
    if pricing not in ("first", "second"):
        raise ValueError('pricing must be "first" or "second"')
    if conflict is None:
        conflict = build_conflict_graph([u.cell for u in users], two_lambda)
    table = PlainBidTable([u.bids for u in users])

    def true_bid(bidder: int, channel: int) -> int:
        return users[bidder].bids[channel]

    if pricing == "second":
        sales = greedy_allocate_priced(table, conflict, rng)
        wins = tuple(
            WinRecord(
                bidder=sale.bidder,
                channel=sale.channel,
                charge=second_price_charge(sale, true_bid),
                valid=True,
            )
            for sale in sales
        )
    else:
        assignments = greedy_allocate(table, conflict, rng)
        wins = tuple(
            WinRecord(
                bidder=a.bidder,
                channel=a.channel,
                charge=true_bid(a.bidder, a.channel),
                valid=True,  # a plaintext table never contains zero bids
            )
            for a in assignments
        )
    return AuctionOutcome(n_users=len(users), wins=wins)
