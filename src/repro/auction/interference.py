"""Interference accounting: did the allocation actually respect physics?

The conflict graph is the auctioneer's *model* of interference; the ground
truth is the bidders' real positions.  When the model is exact (plaintext
locations, or LPPA's masked-but-exact protocol) allocations are clean by
construction.  When the model is approximate — e.g. the cloaking baseline
in :mod:`repro.lppa.cloaking` coarsens locations before submission — two
winners of one channel can end up within interference range: a *violation*
that jams a primary-protected band in the real world.

:func:`count_violations` measures that against true cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.auction.conflict import cells_conflict
from repro.auction.outcome import AuctionOutcome
from repro.geo.grid import Cell

__all__ = ["InterferenceReport", "count_violations"]


@dataclass(frozen=True)
class InterferenceReport:
    """Ground-truth interference audit of one outcome."""

    n_pairs_checked: int
    violations: Tuple[Tuple[int, int, int], ...]  # (channel, bidder, bidder)

    @property
    def n_violations(self) -> int:
        return len(self.violations)

    @property
    def violation_rate(self) -> float:
        if self.n_pairs_checked == 0:
            return 0.0
        return self.n_violations / self.n_pairs_checked


def count_violations(
    outcome: AuctionOutcome,
    cells: Sequence[Cell],
    two_lambda: int,
) -> InterferenceReport:
    """Audit co-channel winner pairs against true positions.

    Checks every pair of winners (valid or not — an invalid winner still
    transmits nothing, so only *valid* wins are audited) sharing a channel.
    """
    per_channel: Dict[int, List[int]] = {}
    for win in outcome.valid_wins:
        if not 0 <= win.bidder < len(cells):
            raise ValueError(f"no true cell for bidder {win.bidder}")
        per_channel.setdefault(win.channel, []).append(win.bidder)

    checked = 0
    violations = []
    for channel, bidders in sorted(per_channel.items()):
        for i in range(len(bidders)):
            for j in range(i + 1, len(bidders)):
                checked += 1
                a, b = bidders[i], bidders[j]
                if cells_conflict(cells[a], cells[b], two_lambda):
                    violations.append((channel, min(a, b), max(a, b)))
    return InterferenceReport(
        n_pairs_checked=checked, violations=tuple(violations)
    )
