"""Greedy spectrum allocation — Algorithm 3 of the paper.

The auctioneer repeatedly: picks a channel uniformly at random from a pool
``R`` (refilled once exhausted, so channels are revisited — this is what
implements *spectrum reuse*: a channel won in one round is re-auctioned to
the winner's non-conflicting peers in later rounds), finds the maximum
remaining bid in that column, declares the bidder a winner, deletes the
winner's whole row (one channel per buyer) and the conflicting neighbours'
entries in that column.

The algorithm is written against :class:`~repro.auction.table.BidTable`, so
it is *identical* for the plaintext baseline and for LPPA's masked table —
faithfully reflecting the paper's claim that PSD lets the auctioneer run the
auction "transparently".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.auction.conflict import ConflictGraph
from repro.auction.table import BidTable

__all__ = ["Assignment", "greedy_allocate", "greedy_allocate_validated"]


@dataclass(frozen=True)
class Assignment:
    """One winner: bidder ``bx`` gets ``channel`` r (the ``[bx, r]`` of W)."""

    bidder: int
    channel: int


def greedy_allocate(
    table: BidTable,
    conflict: ConflictGraph,
    rng: random.Random,
) -> List[Assignment]:
    """Run Algorithm 3 to completion and return the winner list ``W``.

    ``table`` is consumed (entries are deleted as the algorithm runs).
    Termination: every visit to a non-empty column deletes at least the
    winner's row, and the channel pool guarantees each channel is visited
    once per refill cycle, so the table strictly shrinks.
    """
    adjacency = conflict.adjacency()
    winners: List[Assignment] = []
    pool: List[int] = []
    while table.has_entries():
        if not pool:
            pool = list(range(table.n_channels))
        channel = pool.pop(rng.randrange(len(pool)))
        if not table.has_channel_entries(channel):
            continue
        candidates = table.max_bidders(channel)
        winner = candidates[rng.randrange(len(candidates))]
        winners.append(Assignment(bidder=winner, channel=channel))
        for neighbor in adjacency.get(winner, ()):  # delete T[o, r], o in N(bx)
            table.remove_entry(neighbor, channel)
        table.remove_row(winner)
    return winners


def greedy_allocate_validated(
    table: BidTable,
    conflict: ConflictGraph,
    rng: random.Random,
    is_valid: Callable[[int, int], bool],
) -> Tuple[List[Assignment], int]:
    """Algorithm 3 with the TTP's invalid-winner notification in the loop.

    Section V.B: when the TTP reports a winning price as invalid (a
    disguised or spread zero), the auctioneer learns the win is worthless.
    This extension feeds that notification back *during* allocation: an
    invalid winner's entry is deleted (not its row — the bidder may still
    hold genuine bids elsewhere) and the channel's max search re-runs,
    until a valid winner emerges or the column drains.  It trades extra
    TTP round-trips — the second return value counts the rejected
    queries — for recovering the revenue a wasted channel would lose.

    ``is_valid(bidder, channel)`` is the TTP oracle; in the real protocol
    it decrypts the ``gc`` ciphertext (see
    :meth:`repro.lppa.ttp.TrustedThirdParty.process_charge`).
    """
    adjacency = conflict.adjacency()
    winners: List[Assignment] = []
    rejected = 0
    pool: List[int] = []
    while table.has_entries():
        if not pool:
            pool = list(range(table.n_channels))
        channel = pool.pop(rng.randrange(len(pool)))
        while table.has_channel_entries(channel):
            candidates = table.max_bidders(channel)
            winner = candidates[rng.randrange(len(candidates))]
            if not is_valid(winner, channel):
                rejected += 1
                table.remove_entry(winner, channel)
                continue
            winners.append(Assignment(bidder=winner, channel=channel))
            for neighbor in adjacency.get(winner, ()):
                table.remove_entry(neighbor, channel)
            table.remove_row(winner)
            break
    return winners, rejected
