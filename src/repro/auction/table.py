"""Bid tables: the auctioneer's working state during allocation.

Algorithm 3 operates on a table ``T`` whose rows are bidders and whose
columns are channels, repeatedly finding column maxima and deleting entries.
The greedy allocator is written against the small :class:`BidTable`
interface below so the *same* algorithm runs on

* :class:`PlainBidTable` — plaintext bids (the non-private baseline), and
* the masked table of :mod:`repro.lppa.psd`, where "find the maximum" is the
  prefix-membership search over HMAC-masked sets.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Sequence, Set

__all__ = ["BidTable", "PlainBidTable"]


class BidTable(abc.ABC):
    """What Algorithm 3 needs from a bid table."""

    @property
    @abc.abstractmethod
    def n_channels(self) -> int:
        """Number of columns ``k``."""

    @abc.abstractmethod
    def has_entries(self) -> bool:
        """True while any (bidder, channel) entry remains."""

    @abc.abstractmethod
    def channel_bidders(self, channel: int) -> Set[int]:
        """Bidders with a remaining entry in this column."""

    def has_channel_entries(self, channel: int) -> bool:
        """True while this column has at least one remaining entry.

        The allocator probes emptiness once per channel visit; tables with
        per-channel live sets override this to skip the defensive set copy
        :meth:`channel_bidders` makes (O(1) instead of O(live)).
        """
        return bool(self.channel_bidders(channel))

    @abc.abstractmethod
    def max_bidders(self, channel: int) -> List[int]:
        """All bidders holding a maximal remaining bid in this column.

        More than one element means a genuine tie; the allocator breaks it
        uniformly at random.  Must only be called on non-empty columns.
        """

    @abc.abstractmethod
    def remove_row(self, bidder: int) -> None:
        """Delete every remaining entry of this bidder (a winner's row)."""

    @abc.abstractmethod
    def remove_entry(self, bidder: int, channel: int) -> None:
        """Delete one entry if present (a conflicting neighbour's bid)."""


class PlainBidTable(BidTable):
    """Plaintext table; zero bids are not entries.

    A plaintext auctioneer can see that a zero bid is worthless (and that
    the channel is unavailable to the bidder), so zeros never enter the
    table — this is the baseline behaviour LPPA is compared against.
    """

    def __init__(self, bid_rows: Sequence[Sequence[int]]) -> None:
        if not bid_rows:
            raise ValueError("bid table needs at least one row")
        widths = {len(row) for row in bid_rows}
        if len(widths) != 1:
            raise ValueError("all bid rows must have the same channel count")
        self._n_channels = widths.pop()
        if self._n_channels < 1:
            raise ValueError("bid table needs at least one channel")
        self._entries: Dict[int, Dict[int, int]] = {}
        for bidder, row in enumerate(bid_rows):
            live = {ch: int(b) for ch, b in enumerate(row) if b > 0}
            if live:
                self._entries[bidder] = live

    @property
    def n_channels(self) -> int:
        return self._n_channels

    def has_entries(self) -> bool:
        return bool(self._entries)

    def channel_bidders(self, channel: int) -> Set[int]:
        self._check_channel(channel)
        return {b for b, row in self._entries.items() if channel in row}

    def has_channel_entries(self, channel: int) -> bool:
        self._check_channel(channel)
        return any(channel in row for row in self._entries.values())

    def max_bidders(self, channel: int) -> List[int]:
        self._check_channel(channel)
        best: List[int] = []
        best_bid = -1
        for bidder in sorted(self._entries):
            bid = self._entries[bidder].get(channel)
            if bid is None:
                continue
            if bid > best_bid:
                best, best_bid = [bidder], bid
            elif bid == best_bid:
                best.append(bidder)
        if not best:
            raise ValueError(f"channel {channel} has no remaining bids")
        return best

    def ranking(self, channel: int) -> List[List[int]]:
        """Equivalence-class ranking of the *live* column, best first.

        Mirrors the masked tables' ranking interface so pricing rules that
        need the runner-up order work over either representation.
        """
        self._check_channel(channel)
        by_value: Dict[int, List[int]] = {}
        for bidder in sorted(self._entries):
            bid = self._entries[bidder].get(channel)
            if bid is not None:
                by_value.setdefault(bid, []).append(bidder)
        return [by_value[v] for v in sorted(by_value, reverse=True)]

    def bid_of(self, bidder: int, channel: int) -> int:
        """The remaining bid value (plaintext tables only)."""
        self._check_channel(channel)
        try:
            return self._entries[bidder][channel]
        except KeyError:
            raise KeyError(f"no live entry for bidder {bidder}, channel {channel}")

    def remove_row(self, bidder: int) -> None:
        self._entries.pop(bidder, None)

    def remove_entry(self, bidder: int, channel: int) -> None:
        self._check_channel(channel)
        row = self._entries.get(bidder)
        if row is None:
            return
        row.pop(channel, None)
        if not row:
            del self._entries[bidder]

    def _check_channel(self, channel: int) -> None:
        if not 0 <= channel < self._n_channels:
            raise IndexError(f"channel {channel} outside 0..{self._n_channels - 1}")
