"""Dynamic spectrum auction substrate: bidders, conflicts, greedy allocation.

Implements the paper's baseline auction (section II.A) and the pieces LPPA
reuses: truthful bid generation, the 2λ interference conflict graph, the
greedy Algorithm 3 allocator (generic over plaintext / masked bid tables),
first-price charging, and outcome metrics.
"""

from repro.auction.analysis import (
    ConflictStats,
    conflict_stats,
    greedy_coloring,
    is_independent_set,
    to_networkx,
)
from repro.auction.allocation import (
    Assignment,
    greedy_allocate,
    greedy_allocate_validated,
)
from repro.auction.bidders import (
    BID_NOISE_FRACTION,
    DEFAULT_BETA_RANGE,
    SecondaryUser,
    generate_users,
    generate_users_from_sensing,
    rebid_users,
)
from repro.auction.conflict import ConflictGraph, build_conflict_graph, cells_conflict
from repro.auction.interference import InterferenceReport, count_violations
from repro.auction.outcome import AuctionOutcome, WinRecord
from repro.auction.pricing import (
    PricedAssignment,
    greedy_allocate_priced,
    second_price_charge,
)
from repro.auction.plain_auction import run_plain_auction
from repro.auction.table import BidTable, PlainBidTable

__all__ = [
    "ConflictStats",
    "conflict_stats",
    "greedy_coloring",
    "is_independent_set",
    "to_networkx",
    "Assignment",
    "greedy_allocate",
    "greedy_allocate_validated",
    "BID_NOISE_FRACTION",
    "DEFAULT_BETA_RANGE",
    "SecondaryUser",
    "generate_users",
    "generate_users_from_sensing",
    "rebid_users",
    "ConflictGraph",
    "build_conflict_graph",
    "cells_conflict",
    "InterferenceReport",
    "count_violations",
    "AuctionOutcome",
    "WinRecord",
    "PricedAssignment",
    "greedy_allocate_priced",
    "second_price_charge",
    "run_plain_auction",
    "BidTable",
    "PlainBidTable",
]
