"""Pricing rules: first price (the paper's choice) and second price.

Section V.C.1: "We choose our charging algorithm as the first-price payment
where the winner pays the exact amount of his bid.  Note that although this
auction may not be truthful (strategy-proof) ... [we] leave the truthfulness
of the auction to future work."  This module supplies that future work as
an optional extension:

* **first price** — the winner pays its own bid (charging stays exactly as
  in :mod:`repro.lppa.ttp`);
* **second price** — the winner pays the highest *losing* bid remaining in
  the column at the moment of sale (the classical incentive for truthful
  bidding).  Under LPPA the auctioneer reads the runner-up off the masked
  ranking and forwards *that* bidder's ciphertext to the TTP; a disguised
  zero runner-up is skipped (the TTP walks down the recorded order), so the
  disguises cannot deflate a winner's charge to zero.

:func:`greedy_allocate_priced` is Algorithm 3 with the per-sale runner-up
order recorded; it works over any table exposing ``ranking`` and the
:class:`~repro.auction.table.BidTable` interface (plaintext, integer and
masked tables all do).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.auction.conflict import ConflictGraph

__all__ = [
    "PricedAssignment",
    "greedy_allocate_priced",
    "second_price_charge",
]


@dataclass(frozen=True)
class PricedAssignment:
    """One sale with the runner-up order captured at the moment of sale.

    ``losers_desc`` lists the bidders still competing in the column when it
    was sold, best first, excluding the winner — the candidates a
    second-price rule charges from.
    """

    bidder: int
    channel: int
    losers_desc: Tuple[int, ...]


def greedy_allocate_priced(
    table,
    conflict: ConflictGraph,
    rng: random.Random,
) -> List[PricedAssignment]:
    """Algorithm 3, recording each sale's remaining column order.

    ``table`` must implement :class:`~repro.auction.table.BidTable` plus
    ``ranking(channel) -> List[List[int]]``.
    """
    adjacency = conflict.adjacency()
    sales: List[PricedAssignment] = []
    pool: List[int] = []
    while table.has_entries():
        if not pool:
            pool = list(range(table.n_channels))
        channel = pool.pop(rng.randrange(len(pool)))
        live = table.channel_bidders(channel)
        if not live:
            continue
        candidates = table.max_bidders(channel)
        winner = candidates[rng.randrange(len(candidates))]
        losers = tuple(
            bidder
            for tie_class in table.ranking(channel)
            for bidder in tie_class
            if bidder in live and bidder != winner
        )
        sales.append(
            PricedAssignment(bidder=winner, channel=channel, losers_desc=losers)
        )
        for neighbor in adjacency.get(winner, ()):
            table.remove_entry(neighbor, channel)
        table.remove_row(winner)
    return sales


def second_price_charge(
    sale: PricedAssignment,
    true_bid_of: Callable[[int, int], int],
) -> int:
    """The winner's second-price charge for one sale.

    Walks the recorded runner-up order and charges the first *genuine*
    losing bid (``true_bid_of > 0`` — under LPPA the TTP performs this walk
    on decrypted values, so disguised zeros are transparent to it).  A sale
    with no genuine competition charges the winner its own bid, the
    standard reserve-at-own-bid fallback.
    """
    for loser in sale.losers_desc:
        loser_bid = true_bid_of(loser, sale.channel)
        if loser_bid > 0:
            return loser_bid
    return true_bid_of(sale.bidder, sale.channel)
