"""Auction outcomes and the paper's performance metrics.

Section VI.D evaluates the protocol's cost through two aggregates:

* **sum of winning bids** — "the gross of all the winners' charges";
* **user satisfaction** — "the proportion of the bidders possessing the
  spectrum".

Under LPPA a disguised zero bid can win (section IV.C.3); such a win is
wasted: the TTP flags the charge as invalid (price in ``[0, rd]``), the
auctioneer collects nothing, and the bidder has not obtained spectrum it
actually wanted — yet its conflicting neighbours were still blocked on that
channel.  :class:`AuctionOutcome` therefore tracks per-winner validity and
computes both metrics over *valid* wins only, which is what produces the
paper's 95 % -> 73 % performance degradation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["WinRecord", "AuctionOutcome"]


@dataclass(frozen=True)
class WinRecord:
    """One allocation with its charging result."""

    bidder: int
    channel: int
    charge: int
    valid: bool

    def __post_init__(self) -> None:
        if self.charge < 0:
            raise ValueError("charge must be non-negative")
        if self.valid and self.charge == 0:
            raise ValueError("a valid win must carry a positive charge")
        if not self.valid and self.charge != 0:
            raise ValueError("an invalid win pays nothing")


@dataclass(frozen=True)
class AuctionOutcome:
    """The full result of one auction round."""

    n_users: int
    wins: Tuple[WinRecord, ...]

    def __post_init__(self) -> None:
        if self.n_users < 1:
            raise ValueError("n_users must be positive")
        bidders = [w.bidder for w in self.wins]
        if len(bidders) != len(set(bidders)):
            raise ValueError("a bidder can win at most one channel")
        for w in self.wins:
            if not 0 <= w.bidder < self.n_users:
                raise ValueError(f"unknown bidder {w.bidder}")

    @property
    def valid_wins(self) -> Tuple[WinRecord, ...]:
        return tuple(w for w in self.wins if w.valid)

    def sum_of_winning_bids(self) -> int:
        """Gross revenue: total charges over valid wins."""
        return sum(w.charge for w in self.valid_wins)

    def user_satisfaction(self) -> float:
        """Fraction of bidders holding spectrum they actually valued."""
        return len(self.valid_wins) / self.n_users

    def channels_used(self) -> int:
        """Number of distinct channels with at least one valid winner."""
        return len({w.channel for w in self.valid_wins})

    def reuse_factor(self) -> float:
        """Average number of simultaneous valid winners per used channel."""
        used = self.channels_used()
        return len(self.valid_wins) / used if used else 0.0
