"""Text and image rendering of maps, candidate regions and results.

Dependency-free visual output: ASCII panels for terminals (the examples use
these) and binary PGM (portable graymap) export for anything that wants an
actual image of an RSS field, quality surface or attack posterior.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.geo.coverage import CoverageMap
from repro.geo.grid import Cell

__all__ = ["render_mask", "render_coverage", "save_pgm"]


def render_mask(
    mask: np.ndarray,
    true_cell: Optional[Cell] = None,
    *,
    step: int = 1,
    hit_char: str = "*",
    miss_char: str = ".",
    marker_char: str = "X",
) -> str:
    """ASCII view of a boolean cell mask, optionally marking the true cell.

    ``step`` downsamples: each output character covers a ``step x step``
    block and shows ``hit_char`` if any cell in the block is set.
    """
    if mask.ndim != 2 or mask.dtype != bool:
        raise ValueError("mask must be a 2-D boolean array")
    if step < 1:
        raise ValueError("step must be >= 1")
    rows = []
    for m in range(0, mask.shape[0], step):
        row = []
        for n in range(0, mask.shape[1], step):
            char = hit_char if mask[m:m + step, n:n + step].any() else miss_char
            if true_cell is not None and (
                m <= true_cell[0] < m + step and n <= true_cell[1] < n + step
            ):
                char = marker_char
            row.append(char)
        rows.append("".join(row))
    return "\n".join(rows)


def render_coverage(
    coverage_map: CoverageMap, channel: int, *, step: int = 1
) -> str:
    """ASCII view of one channel's protected coverage ('#') vs white space."""
    if step < 1:
        raise ValueError("step must be >= 1")
    return render_mask(
        coverage_map.channels[channel].covered,
        step=step,
        hit_char="#",
        miss_char=".",
    )


def save_pgm(
    field: np.ndarray,
    path: Union[str, Path],
    *,
    invert: bool = False,
) -> Path:
    """Write a 2-D numeric field as an 8-bit binary PGM image.

    Values are min-max normalised to 0..255 (a constant field renders mid
    grey).  Boolean arrays work too — True maps to white (or black with
    ``invert``).
    """
    if field.ndim != 2:
        raise ValueError("field must be a 2-D array")
    data = np.asarray(field, dtype=float)
    low, high = float(data.min()), float(data.max())
    if high > low:
        scaled = (data - low) / (high - low)
    else:
        scaled = np.full_like(data, 0.5)
    if invert:
        scaled = 1.0 - scaled
    pixels = (scaled * 255).round().astype(np.uint8)
    path = Path(path)
    header = f"P5\n{pixels.shape[1]} {pixels.shape[0]}\n255\n".encode("ascii")
    path.write_bytes(header + pixels.tobytes())
    return path
