"""Truthfulness experiment — the paper's stated future work (§V.C.1).

First-price charging is not strategy-proof: a bidder that *shades* (bids a
fraction of its true value) pays less when it still wins, so truthful
bidding is not a best response.  Under second-price charging the winner's
payment is set by the runner-up, so shading can only lose auctions it would
have won at an unchanged price.

:func:`shading_experiment` measures exactly that: one designated bidder
scales its true bid vector by each shading factor, everyone else stays
truthful, and the bidder's expected *utility* (true value of won channels
minus charges, averaged over auction randomness) is reported under both
pricing rules.

Measured shape (recorded in EXPERIMENTS.md): under first price truthful
utility is zero by construction and shading strictly gains; under second
price truthful utility is positive and the shading *gain* shrinks — but it
does not vanish, because Algorithm 3's greedy channel *assignment* is
itself manipulable: by shading, a bidder can dodge an early low-surplus
sale and be routed to a more profitable channel later.  Making the whole
multi-channel mechanism strategy-proof needs more than per-sale Vickrey
pricing (cf. the VCG-style constructions in the paper's refs [2], [9]) —
a genuinely useful negative result for anyone extending LPPA.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.auction.bidders import SecondaryUser, generate_users
from repro.auction.plain_auction import run_plain_auction
from repro.experiments.config import ExperimentConfig, default_config
from repro.geo.datasets import make_database
from repro.utils.rng import spawn_rng

__all__ = ["shading_experiment"]


def _shade(user: SecondaryUser, factor: float) -> SecondaryUser:
    return SecondaryUser(
        user_id=user.user_id,
        cell=user.cell,
        beta=user.beta,
        bids=tuple(round(b * factor) for b in user.bids),
    )


def _utility(
    outcome, bidder: int, true_bids: Sequence[int]
) -> int:
    """True value of won channels minus charges, for one bidder."""
    total = 0
    for win in outcome.wins:
        if win.bidder == bidder and win.valid:
            total += true_bids[win.channel] - win.charge
    return total


def shading_experiment(
    config: Optional[ExperimentConfig] = None,
    *,
    area: int = 3,
    shades: Sequence[float] = (0.5, 0.7, 0.9, 1.0),
    n_rounds: int = 30,
    target_bidder: int = 0,
) -> List[Dict[str, object]]:
    """Utility of one strategic bidder vs shading factor, per pricing rule.

    Under *first* price utility = value - own (shaded) bid on wins, so
    shading pays; under *second* price the charge is exogenous and truthful
    bidding is (weakly) dominant.
    """
    if config is None:
        config = default_config()
    database = make_database(area, n_channels=config.n_channels, seed=config.seed)
    users = generate_users(
        database, config.n_users, spawn_rng(config.seed, "truthful", "users")
    )
    true_bids = users[target_bidder].bids

    rows: List[Dict[str, object]] = []
    for shade in shades:
        utilities = {"first": 0.0, "second": 0.0}
        strategic = list(users)
        strategic[target_bidder] = _shade(users[target_bidder], shade)
        for round_idx in range(n_rounds):
            seed_val = spawn_rng(
                config.seed, "truthful", f"{shade}-{round_idx}"
            ).random()
            for pricing in ("first", "second"):
                outcome = run_plain_auction(
                    strategic,
                    random.Random(seed_val),
                    two_lambda=config.two_lambda,
                    pricing=pricing,
                )
                utilities[pricing] += _utility(outcome, target_bidder, true_bids)
        rows.append(
            {
                "shade": shade,
                "utility_first_price": round(utilities["first"] / n_rounds, 2),
                "utility_second_price": round(utilities["second"] / n_rounds, 2),
            }
        )
    return rows
