"""Ablations of LPPA's design choices (beyond the paper's evaluation).

The independent-trial ablations (re-validation, ``cr`` expansion, crowd
mixing, disguise law) run on the parallel experiment engine — one task per
design point, label-addressed randomness, results identical at any worker
count.  The multi-round linkage ablations (ID mixing, winner lists) are
inherently sequential — round ``t`` rebids the population produced by
round ``t - 1`` — and stay serial.

Each ablation isolates one mechanism DESIGN.md calls out and measures what
the system loses without it:

* **ID mixing** (§V.C.3) — the multi-round linkage attack against stable
  identities vs fresh per-round pseudonyms;
* **TTP re-validation** (§V.B) — feeding invalid-winner notifications back
  into allocation vs the paper's fire-and-forget batch charging;
* **``cr`` expansion** (§V.B) — how many masked-bid collisions (and hence
  plaintext-ciphertext dereferences after charging) each expansion factor
  leaves on the table;
* **disguise law** (§IV.C.3) — the linear-decreasing vs conditional-uniform
  substitution laws, on both privacy and performance.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence

from repro.attacks.against_lppa import lppa_bcm_attack
from repro.attacks.metrics import aggregate_scores, score_attack
from repro.attacks.multiround import multiround_linkage_attack
from repro.auction.bidders import generate_users, rebid_users
from repro.auction.plain_auction import run_plain_auction
from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.engine import SweepReport, run_sweep
from repro.geo.datasets import cached_database, make_database
from repro.lppa.bids_advanced import BidScale, disguise_and_expand
from repro.lppa.fastsim import run_fast_lppa
from repro.lppa.policies import LinearDecreasingPolicy, UniformReplacePolicy
from repro.utils.rng import spawn_rng

__all__ = [
    "ablation_id_mixing",
    "ablation_winner_lists",
    "ablation_revalidation",
    "ablation_colocation",
    "ablation_cr_expansion",
    "ablation_crowd_mixing",
    "ablation_masking_backend",
    "ablation_disguise_policy",
]


def ablation_id_mixing(
    config: Optional[ExperimentConfig] = None,
    *,
    area: int = 3,
    n_rounds: int = 5,
    replace_prob: float = 0.1,
    fraction: float = 0.25,
) -> List[Dict[str, object]]:
    """Linked identities vs per-round mixing, over a multi-round campaign.

    One row per number of observed rounds; columns give the linkage
    attacker's candidate count and failure rate.  The single-round row is
    what a mixed-ID adversary is limited to forever.
    """
    if config is None:
        config = default_config()
    database = make_database(area, n_channels=config.n_channels, seed=config.seed)
    grid = database.coverage.grid
    user_rng = spawn_rng(config.seed, "abl-mix", "users")
    users = generate_users(database, config.n_users, user_rng)

    rounds_rankings = []
    population = users
    for round_idx in range(n_rounds):
        round_rng = random.Random(
            spawn_rng(config.seed, "abl-mix", f"round{round_idx}").random()
        )
        result = run_fast_lppa(
            population,
            two_lambda=config.two_lambda,
            bmax=config.bmax,
            policy=UniformReplacePolicy(replace_prob),
            rng=round_rng,
        )
        rounds_rankings.append(result.rankings)
        population = rebid_users(population, database, round_rng)

    rows = []
    for upto in range(1, n_rounds + 1):
        masks = multiround_linkage_attack(
            database, rounds_rankings[:upto], len(users), fraction
        )
        agg = aggregate_scores(
            [score_attack(m, u.cell, grid) for m, u in zip(masks, users)]
        )
        rows.append(
            {
                "rounds_linked": upto,
                "identities": "mixed (per-round)" if upto == 1 else "stable",
                "cells": round(agg.mean_cells, 1),
                "failure_rate": round(agg.failure_rate, 4),
            }
        )
    return rows


def ablation_winner_lists(
    config: Optional[ExperimentConfig] = None,
    *,
    area: int = 4,
    n_rounds: int = 40,
    checkpoints: Sequence[int] = (1, 5, 10, 20, 40),
    replace_prob: float = 0.5,
) -> List[Dict[str, object]]:
    """§V.C.3's second threat: BCM from published winner lists.

    With stable identities the attacker accumulates each user's won
    channels across rounds.  Valid wins are genuine availability — the
    disguises cannot poison this channel — so the attack *never* fails;
    it is merely slow (one channel per user per round, mostly
    uninformative clear channels).  The one-round row is the ceiling a
    per-round ID pool imposes forever.
    """
    if config is None:
        config = default_config()
    from repro.attacks.winners import winner_list_attack
    from repro.lppa.campaign import Campaign

    database = make_database(area, n_channels=config.n_channels, seed=config.seed)
    grid = database.coverage.grid
    users = generate_users(
        database, config.n_users, spawn_rng(config.seed, "abl-win", "users")
    )
    campaign = Campaign(
        database,
        users,
        two_lambda=config.two_lambda,
        bmax=config.bmax,
        policy=UniformReplacePolicy(replace_prob),
        mix_ids=False,
        rng=random.Random(spawn_rng(config.seed, "abl-win", "rng").random()),
    )
    campaign.run(n_rounds)
    outcomes = campaign.public_outcomes()

    rows = []
    for upto in checkpoints:
        if upto > n_rounds:
            continue
        masks = winner_list_attack(database, outcomes[:upto], len(users))
        agg = aggregate_scores(
            [score_attack(m, u.cell, grid) for m, u in zip(masks, users)]
        )
        rows.append(
            {
                "rounds_observed": upto,
                "identities": "mixed (per-round)" if upto == 1 else "stable",
                "cells": round(agg.mean_cells, 1),
                "failure_rate": round(agg.failure_rate, 4),
            }
        )
    return rows


def _revalidation_round(spec: Dict[str, object]) -> Dict[str, float]:
    """One (charging mode, round) trial of the re-validation ablation."""
    config: ExperimentConfig = spec["config"]
    area: int = spec["area"]
    replace_prob: float = spec["replace_prob"]
    revalidate: bool = spec["revalidate"]
    round_idx: int = spec["round_idx"]
    database = cached_database(
        area, n_channels=config.n_channels, seed=config.seed
    )
    users = generate_users(
        database, config.n_users, spawn_rng(config.seed, "abl-reval", "users")
    )
    seed_val = spawn_rng(
        config.seed, "abl-reval", f"{revalidate}-{round_idx}"
    ).random()
    plain = run_plain_auction(
        users, random.Random(seed_val), two_lambda=config.two_lambda
    )
    private = run_fast_lppa(
        users,
        two_lambda=config.two_lambda,
        bmax=config.bmax,
        policy=UniformReplacePolicy(replace_prob),
        rng=random.Random(seed_val),
        revalidate=revalidate,
    )
    return {
        "revenue": private.outcome.sum_of_winning_bids()
        / plain.sum_of_winning_bids(),
        "satisfaction": private.outcome.user_satisfaction()
        / max(plain.user_satisfaction(), 1e-9),
        "rejections": private.ttp_rejections,
    }


def ablation_revalidation(
    config: Optional[ExperimentConfig] = None,
    *,
    area: int = 3,
    replace_prob: float = 0.8,
    workers: Optional[int] = None,
    on_report: Optional[Callable[[SweepReport], None]] = None,
) -> List[Dict[str, object]]:
    """Batch charging (paper) vs in-loop TTP re-validation (extension)."""
    if config is None:
        config = default_config()
    modes = (False, True)
    specs = [
        {
            "config": config,
            "area": area,
            "replace_prob": replace_prob,
            "revalidate": revalidate,
            "round_idx": round_idx,
        }
        for revalidate in modes
        for round_idx in range(config.n_rounds)
    ]
    trials = run_sweep(
        _revalidation_round,
        specs,
        workers=workers,
        name="abl-reval",
        on_report=on_report,
    )
    rows = []
    for mode_idx, revalidate in enumerate(modes):
        chunk = trials[mode_idx * config.n_rounds : (mode_idx + 1) * config.n_rounds]
        rows.append(
            {
                "charging": "revalidated" if revalidate else "batched (paper)",
                "revenue_ratio": round(
                    sum(t["revenue"] for t in chunk) / len(chunk), 4
                ),
                "satisfaction_ratio": round(
                    sum(t["satisfaction"] for t in chunk) / len(chunk), 4
                ),
                "ttp_rejections": round(
                    sum(t["rejections"] for t in chunk) / len(chunk), 1
                ),
            }
        )
    return rows


def _cr_expansion_point(spec: Dict[str, object]) -> Dict[str, object]:
    """Collision count for one expansion factor ``cr`` (engine task)."""
    cr: int = spec["cr"]
    n_users: int = spec["n_users"]
    scale = BidScale(bmax=spec["bmax"], rd=spec["rd"], cr=cr)
    rng = random.Random(spawn_rng(spec["seed"], "abl-cr", str(cr)).random())
    bids = [rng.randint(0, spec["bmax"]) for _ in range(n_users)]
    disclosures = disguise_and_expand(bids, scale, rng)
    values = [d.masked_expanded for d in disclosures]
    collisions = len(values) - len(set(values))
    return {
        "cr": cr,
        "width_bits": scale.width,
        "collisions": collisions,
        "collision_rate": round(collisions / n_users, 4),
    }


def ablation_cr_expansion(
    *,
    n_users: int = 60,
    bmax: int = 127,
    rd: int = 4,
    seed: str = "lppa-repro",
    workers: Optional[int] = None,
    on_report: Optional[Callable[[SweepReport], None]] = None,
) -> List[Dict[str, object]]:
    """Masked-value collisions per channel as a function of ``cr``.

    After charging, the auctioneer holds plaintext-ciphertext pairs for the
    winners; every *collision* (two users submitting the same masked value
    on a channel) lets it dereference a second bidder's price for free.
    ``cr = 1`` disables the expansion and maximises collisions.
    """
    specs = [
        {"cr": cr, "n_users": n_users, "bmax": bmax, "rd": rd, "seed": seed}
        for cr in (1, 2, 4, 8, 16)
    ]
    return run_sweep(
        _cr_expansion_point,
        specs,
        workers=workers,
        name="abl-cr",
        on_report=on_report,
    )


def ablation_colocation(
    config: Optional[ExperimentConfig] = None,
    *,
    area: int = 3,
    anchor_counts: Sequence[int] = (1, 2, 5, 10, 20),
) -> List[Dict[str, object]]:
    """The conflict-graph side channel vs anchor (sybil) density.

    The conflict bits LPPA must reveal let an adversary with ``a`` known-
    location anchors box every other bidder (no bids needed, disguises
    irrelevant, failure rate identically zero).  This prices the one leak
    the protocol cannot remove: how many deployed radios buy how much
    localisation.
    """
    if config is None:
        config = default_config()
    from repro.attacks.colocation import colocation_attack
    from repro.auction.conflict import build_conflict_graph
    from repro.geo.grid import GridSpec

    grid = GridSpec()
    rng = spawn_rng(config.seed, "abl-coloc", "cells")
    cells = grid.random_cells(rng, config.n_users)
    conflict = build_conflict_graph(cells, config.two_lambda)
    rows = []
    for n_anchors in anchor_counts:
        if n_anchors >= config.n_users:
            continue
        anchors = {i: cells[i] for i in range(n_anchors)}
        masks = colocation_attack(grid, conflict, anchors, config.two_lambda)
        agg = aggregate_scores(
            [
                score_attack(mask, cells[user], grid)
                for user, mask in enumerate(masks)
                if user >= n_anchors
            ]
        )
        rows.append(
            {
                "anchors": n_anchors,
                "cells": round(agg.mean_cells, 1),
                "uncertainty_bits": round(agg.mean_uncertainty_bits, 3),
                "failure_rate": round(agg.failure_rate, 4),
            }
        )
    return rows


def _crowd_mixing_point(spec: Dict[str, object]) -> Dict[str, object]:
    """One protector-fraction point of the crowd ablation (engine task)."""
    from repro.lppa.policies import KeepZeroPolicy

    config: ExperimentConfig = spec["config"]
    area: int = spec["area"]
    prot_fraction: float = spec["prot_fraction"]
    replace_prob: float = spec["replace_prob"]
    fraction: float = spec["fraction"]
    database = cached_database(
        area, n_channels=config.n_channels, seed=config.seed
    )
    grid = database.coverage.grid
    users = generate_users(
        database, config.n_users, spawn_rng(config.seed, "abl-crowd", "users")
    )
    n_protectors = round(prot_fraction * len(users))
    policies = [
        UniformReplacePolicy(replace_prob)
        if idx < n_protectors
        else KeepZeroPolicy()
        for idx in range(len(users))
    ]
    result = run_fast_lppa(
        users,
        two_lambda=config.two_lambda,
        bmax=config.bmax,
        policy=policies,
        rng=random.Random(
            spawn_rng(config.seed, "abl-crowd", f"{prot_fraction}").random()
        ),
    )
    masks = lppa_bcm_attack(database, result.rankings, len(users), fraction)
    scores = [
        score_attack(mask, user.cell, grid)
        for mask, user in zip(masks, users)
    ]
    row: Dict[str, object] = {"protector_fraction": prot_fraction}
    groups = {
        "protectors": scores[:n_protectors],
        "optouts": scores[n_protectors:],
    }
    for name, group in groups.items():
        if group:
            agg = aggregate_scores(group)
            row[f"{name}_failure"] = round(agg.failure_rate, 3)
            row[f"{name}_cells"] = round(agg.mean_cells, 1)
        else:
            row[f"{name}_failure"] = "-"
            row[f"{name}_cells"] = "-"
    return row


def ablation_crowd_mixing(
    config: Optional[ExperimentConfig] = None,
    *,
    area: int = 3,
    protector_fractions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    replace_prob: float = 0.8,
    fraction: float = 0.5,
    workers: Optional[int] = None,
    on_report: Optional[Callable[[SweepReport], None]] = None,
) -> List[Dict[str, object]]:
    """Heterogeneous crowds (§IV.C.3): do opt-outs ride free on the rest?

    The paper lets every user pick its own zero-replace probability.  Here
    a *protector* share of the population disguises at ``replace_prob``
    while the rest opt out entirely (``p0 = 1``), and the anti-LPPA
    attacker is scored per group.  The interesting question is the
    externality: does a larger protecting crowd change the attacker's
    success against the opt-outs?
    """
    if config is None:
        config = default_config()
    specs = [
        {
            "config": config,
            "area": area,
            "prot_fraction": prot_fraction,
            "replace_prob": replace_prob,
            "fraction": fraction,
        }
        for prot_fraction in protector_fractions
    ]
    return run_sweep(
        _crowd_mixing_point,
        specs,
        workers=workers,
        name="abl-crowd",
        on_report=on_report,
    )


def ablation_masking_backend(
    *,
    bmax: int = 127,
    rd: int = 4,
    cr: int = 8,
    digest_bytes: int = 16,
) -> List[Dict[str, object]]:
    """Prefix masking vs one-ciphertext OPE vs Paillier, per bid entry.

    What each backend sends per (user, channel) and what it can / cannot
    do — the design-space row the paper's §IV.B remark ("a kind of order
    preserving encryption") invites.
    """
    from repro.crypto.ope import OrderPreservingEncoder
    from repro.experiments.paillier_baseline import paillier_submission_bytes

    scale = BidScale(bmax=bmax, rd=rd, cr=cr)
    prefix_bytes = (3 * scale.width - 1) * digest_bytes
    encoder = OrderPreservingEncoder(b"ablation-key", scale.emax + 1)
    paillier_bytes = paillier_submission_bytes(1, 1, 2048)
    return [
        {
            "backend": "prefix sets (LPPA)",
            "bytes_per_entry": prefix_bytes,
            "local_compare": "yes",
            "hidden_range_query": "yes",
            "equality_leak": "no (after cr)",
        },
        {
            "backend": "keyed OPE",
            "bytes_per_entry": encoder.ciphertext_bytes,
            "local_compare": "yes",
            "hidden_range_query": "no",
            "equality_leak": "yes + distance",
        },
        {
            "backend": "Paillier (ref [7])",
            "bytes_per_entry": paillier_bytes,
            "local_compare": "no (interactive)",
            "hidden_range_query": "no",
            "equality_leak": "no",
        },
    ]


def _disguise_policy_point(spec: Dict[str, object]) -> Dict[str, object]:
    """One substitution law of the disguise ablation (engine task).

    The plaintext baseline is recomputed per task from its own label — a
    small duplication that keeps every task independent of sweep order.
    """
    config: ExperimentConfig = spec["config"]
    area: int = spec["area"]
    name: str = spec["policy"]
    replace_prob: float = spec["replace_prob"]
    fraction: float = spec["fraction"]
    policy = (
        LinearDecreasingPolicy(replace_prob)
        if name == "linear-decreasing"
        else UniformReplacePolicy(replace_prob)
    )
    database = cached_database(
        area, n_channels=config.n_channels, seed=config.seed
    )
    grid = database.coverage.grid
    users = generate_users(
        database, config.n_users, spawn_rng(config.seed, "abl-pol", "users")
    )
    plain = run_plain_auction(
        users,
        random.Random(spawn_rng(config.seed, "abl-pol", "plain").random()),
        two_lambda=config.two_lambda,
    )
    result = run_fast_lppa(
        users,
        two_lambda=config.two_lambda,
        bmax=config.bmax,
        policy=policy,
        rng=random.Random(spawn_rng(config.seed, "abl-pol", name).random()),
    )
    masks = lppa_bcm_attack(database, result.rankings, len(users), fraction)
    agg = aggregate_scores(
        [score_attack(m, u.cell, grid) for m, u in zip(masks, users)]
    )
    return {
        "policy": name,
        "attacker_failure": round(agg.failure_rate, 4),
        "attacker_cells": round(agg.mean_cells, 1),
        "revenue_ratio": round(
            result.outcome.sum_of_winning_bids() / plain.sum_of_winning_bids(),
            4,
        ),
        "satisfaction": round(result.outcome.user_satisfaction(), 4),
    }


def ablation_disguise_policy(
    config: Optional[ExperimentConfig] = None,
    *,
    area: int = 3,
    replace_prob: float = 0.8,
    fraction: float = 0.5,
    workers: Optional[int] = None,
    on_report: Optional[Callable[[SweepReport], None]] = None,
) -> List[Dict[str, object]]:
    """Linear-decreasing vs conditional-uniform substitution laws."""
    if config is None:
        config = default_config()
    specs = [
        {
            "config": config,
            "area": area,
            "policy": name,
            "replace_prob": replace_prob,
            "fraction": fraction,
        }
        for name in ("linear-decreasing", "uniform")
    ]
    return run_sweep(
        _disguise_policy_point,
        specs,
        workers=workers,
        name="abl-pol",
        on_report=on_report,
    )
