"""The Paillier-based secure-auction baseline (the paper's reference [7]).

Pan et al. seal bids with Paillier encryption; a set of auctioneers holding
shares of the private key jointly compare encrypted bids.  The paper
rejects the approach because "it requires several auctioneers to share the
secret and leads to a large number of communication costs".  This module
prices that claim:

* **submission cost** — per (user, channel): one Paillier ciphertext of
  ``2 * |n|`` bits (vs LPPA's ``(3w - 1)`` masked digests);
* **comparison cost** — finding a column maximum needs ``N - 1`` pairwise
  secure comparisons; each secure comparison on Paillier ciphertexts costs
  one re-randomised ciphertext exchange per share-holding auctioneer
  (modelled as ``n_auctioneers`` ciphertexts, the standard DGK/Veugen-style
  round shape);
* LPPA's comparison is **free** (a local set intersection).

The arithmetic itself runs on the real from-scratch cryptosystem
(:mod:`repro.crypto.paillier`) at a reduced key size; wire sizes for
production keys are produced analytically from the same formulas, which the
measured sizes validate at the small key size.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.crypto.paillier import generate_paillier_keypair
from repro.experiments.config import ExperimentConfig, default_config
from repro.lppa.bids_advanced import BidScale

__all__ = ["paillier_submission_bytes", "paillier_comparison_bytes", "baseline_comparison_table"]


def paillier_submission_bytes(
    n_users: int, n_channels: int, modulus_bits: int
) -> int:
    """Wire bytes for every bidder to seal every bid: N*k ciphertexts."""
    if n_users < 1 or n_channels < 1:
        raise ValueError("need at least one user and channel")
    ciphertext_bytes = (2 * modulus_bits + 7) // 8
    return n_users * n_channels * ciphertext_bytes


def paillier_comparison_bytes(
    n_users: int,
    n_channels: int,
    modulus_bits: int,
    *,
    n_auctioneers: int = 3,
) -> int:
    """Wire bytes for one max-per-channel pass over the whole bid table.

    ``N - 1`` pairwise comparisons per channel, each moving one ciphertext
    through every share-holding auctioneer.
    """
    if n_auctioneers < 2:
        raise ValueError("threshold decryption needs >= 2 auctioneers")
    ciphertext_bytes = (2 * modulus_bits + 7) // 8
    comparisons = n_channels * max(0, n_users - 1)
    return comparisons * n_auctioneers * ciphertext_bytes


def _lppa_submission_bytes(
    n_users: int, n_channels: int, scale: BidScale, digest_bytes: int = 16
) -> int:
    """LPPA's masked prefix material for the same table (Theorem 4)."""
    per_entry = (3 * scale.width - 1) * digest_bytes
    return n_users * n_channels * per_entry


def baseline_comparison_table(
    config: Optional[ExperimentConfig] = None,
    *,
    modulus_bits: int = 2048,
    n_auctioneers: int = 3,
    demo_key_bits: int = 256,
    sweep: Sequence[tuple] = ((50, 20), (100, 60), (200, 129)),
) -> List[Dict[str, object]]:
    """LPPA vs Paillier-baseline communication, per (N, k) point.

    ``modulus_bits`` prices the production system (2048-bit moduli are the
    contemporary floor); ``demo_key_bits`` sizes the real keypair used to
    validate the ciphertext-size formula against an actual encryption.
    """
    if config is None:
        config = default_config()
    scale = BidScale(bmax=config.bmax, rd=4, cr=8)

    # Validate the analytic ciphertext size against the real cryptosystem.
    rng = random.Random(7)
    key = generate_paillier_keypair(demo_key_bits, rng)
    ciphertext = key.public.encrypt(123, rng)
    measured = (ciphertext.bit_length() + 7) // 8
    assert measured <= key.public.ciphertext_bytes

    rows = []
    for n_users, n_channels in sweep:
        lppa = _lppa_submission_bytes(n_users, n_channels, scale)
        paillier_submit = paillier_submission_bytes(
            n_users, n_channels, modulus_bits
        )
        paillier_compare = paillier_comparison_bytes(
            n_users, n_channels, modulus_bits, n_auctioneers=n_auctioneers
        )
        total = paillier_submit + paillier_compare
        rows.append(
            {
                "N": n_users,
                "k": n_channels,
                "lppa_kib": round(lppa / 1024, 1),
                "paillier_submit_kib": round(paillier_submit / 1024, 1),
                "paillier_compare_kib": round(paillier_compare / 1024, 1),
                "paillier_total_kib": round(total / 1024, 1),
                "overhead_x": round(total / lppa, 2),
            }
        )
    return rows
