"""Scale sweep: sharded LPPA rounds at 1k–100k SUs (``BENCH_scale``).

ROADMAP item 2: the paper evaluates 100-SU rounds, but a deployed CRN
auction clears far larger regions.  This sweep measures one full-crypto
round per population size through the sharded round core
(:mod:`repro.lppa.round.sharding`) and — where feasible — the legacy
single-process path as a reference, so the scaling curve lands in the perf
trajectory next to the micro benches.

What the numbers mean
---------------------
``round_wall_s`` is the whole round: bidder-side masking, auctioneer-side
conflict graph + psd allocation, and TTP charging.  ``auctioneer_wall_s``
isolates the two auctioneer-side phases the tentpole shards (conflict-graph
construction and psd allocation: the ``lppa.conflict_graph`` timer plus the
``psd_allocation`` phase) — that is where the Θ(N²) pair scan lives and
where the grid-bucket prefilter + sharding pay off, so the headline
``speedup`` compares *those phases* against the single-process reference.
Bidder-side synthesis is client-side work in a deployment (each SU masks
its own submission) and is identical in both paths; on a small host the
whole-round speedup is therefore diluted by it, which the artifact records
honestly via both wall times.

The population is synthetic (uniform cells, uniform bids) at the paper's
density — the grid side grows as ``ceil(sqrt(10 N))`` so ~10% of cells are
occupied at every size, matching the 100-SU / 100×100-grid evaluation
setup.  All randomness is label-addressed off ``scale:<seed>:<size>``, so
any two runs (and the sharded/reference pair) see the same users.

``verify=True`` additionally runs the reference round under the flight
recorder and demands the sharded round be **bit-identical**: equal
:class:`~repro.lppa.round.results.LppaResult`, equal trace summary, equal
timestamp-stripped event streams and an equal Theorem-4 communication
audit.  The CI ``scale-smoke`` matrix runs exactly this at 1k SUs for
shard counts 1, 2 and 8.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.analysis.trace_audit import audit_comm_cost
from repro.auction.bidders import SecondaryUser
from repro.geo.grid import GridSpec
from repro.lppa.session import run_lppa_auction
from repro.obs.clock import Stopwatch
from repro.obs.registry import MetricsRegistry, PHASE_TIMER_PREFIX
from repro.obs.trace import TraceRecorder

__all__ = [
    "DEFAULT_SIZES",
    "REFERENCE_CEILING",
    "ScalePoint",
    "ScaleVerification",
    "grid_side",
    "synthesize_population",
    "run_scale_point",
    "run_scale_sweep",
    "format_scale_table",
]

#: The committed-baseline sweep sizes.
DEFAULT_SIZES = (1_000, 10_000, 100_000)

#: Largest size for which the all-pairs single-process reference is run by
#: default — beyond this the Θ(N²) scan is hours of wall time.
REFERENCE_CEILING = 10_000

_TWO_LAMBDA = 6
_BMAX = 127
_N_CHANNELS = 6

#: Event keys stripped before comparing sharded vs reference event streams
#: (wall-clock timestamps/durations are the only legitimately varying fields).
_TIME_KEYS = frozenset(("ts", "ts_end", "dur"))


def grid_side(n_users: int) -> int:
    """Grid side keeping the paper's SU density (~10 cells per SU).

    1k SUs land on the paper's own 100×100 lattice; larger populations get
    proportionally larger areas so conflict-degree statistics stay
    comparable across sizes instead of saturating.
    """
    if n_users < 1:
        raise ValueError("need at least one user")
    return max(100, math.isqrt(10 * n_users - 1) + 1)


def synthesize_population(
    n_users: int,
    *,
    n_channels: int = _N_CHANNELS,
    bmax: int = _BMAX,
    seed: int = 0,
) -> Tuple[List[SecondaryUser], GridSpec]:
    """A uniform synthetic population at the paper's density.

    Deterministic in ``(n_users, n_channels, bmax, seed)`` — the sweep's
    sharded and reference rounds must audition the same users, and so must
    any two machines reproducing the committed baseline.
    """
    side = grid_side(n_users)
    grid = GridSpec(rows=side, cols=side)
    rng = random.Random(f"scale:{seed}:{n_users}")
    users = [
        SecondaryUser(
            user_id=i,
            cell=(rng.randrange(side), rng.randrange(side)),
            beta=1.0,
            bids=tuple(rng.randrange(0, bmax + 1) for _ in range(n_channels)),
        )
        for i in range(n_users)
    ]
    return users, grid


@dataclass(frozen=True)
class ScaleVerification:
    """Bit-exactness verdicts of one sharded-vs-reference comparison."""

    result_equal: bool
    trace_summary_equal: bool
    trace_events_equal: bool
    audit_equal: bool

    @property
    def passed(self) -> bool:
        return (
            self.result_equal
            and self.trace_summary_equal
            and self.trace_events_equal
            and self.audit_equal
        )

    def failures(self) -> List[str]:
        """Names of the comparisons that did not come out equal."""
        return [
            name
            for name, ok in (
                ("result", self.result_equal),
                ("trace summary", self.trace_summary_equal),
                ("trace events", self.trace_events_equal),
                ("theorem-4 audit", self.audit_equal),
            )
            if not ok
        ]


@dataclass
class ScalePoint:
    """One population size's measurements."""

    size: int
    shards: int
    grid_side: int
    n_channels: int
    n_edges: int
    winners: int
    round_wall_s: float
    auctioneer_wall_s: float
    reference_round_wall_s: Optional[float] = None
    reference_auctioneer_wall_s: Optional[float] = None
    verification: Optional[ScaleVerification] = None
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def speedup(self) -> Optional[float]:
        """Auctioneer-phase speedup vs the single-process reference."""
        if not self.reference_auctioneer_wall_s or not self.auctioneer_wall_s:
            return None
        return self.reference_auctioneer_wall_s / self.auctioneer_wall_s

    @property
    def round_speedup(self) -> Optional[float]:
        """Whole-round speedup (diluted by the shared bidder-side work)."""
        if not self.reference_round_wall_s or not self.round_wall_s:
            return None
        return self.reference_round_wall_s / self.round_wall_s


def _strip_times(events: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    return [
        {k: v for k, v in event.items() if k not in _TIME_KEYS}
        for event in events
    ]


def _auctioneer_seconds(registry: MetricsRegistry) -> float:
    """Conflict-graph + psd-allocation wall time from one round's registry."""
    total = 0.0
    for key, stat in registry.timers.items():
        if key.endswith("/lppa.conflict_graph") or key == "lppa.conflict_graph":
            total += stat.seconds
        elif key == f"{PHASE_TIMER_PREFIX}/psd_allocation":
            total += stat.seconds
    return total


def _timed_round(
    users: Sequence[SecondaryUser],
    grid: GridSpec,
    *,
    shards: Optional[int],
    entropy: bytes,
    traced: bool,
):
    """One round under a private registry (and optionally the recorder)."""
    recorder = (
        TraceRecorder(capacity=max(65_536, 16 * len(users))) if traced else None
    )
    watch = Stopwatch()
    # NB: an empty TraceRecorder is falsy — select on ``traced``, not on
    # the recorder's truthiness.
    with obs.collecting(
        MetricsRegistry(), trace=recorder if traced else None
    ) as registry:
        result = run_lppa_auction(
            users,
            grid,
            two_lambda=_TWO_LAMBDA,
            bmax=_BMAX,
            entropy=entropy,
            shards=shards,
        )
    wall = watch.elapsed()
    return result, wall, _auctioneer_seconds(registry), recorder


def _verify(reference_recorder, sharded_recorder, ref_result, sh_result):
    ref_events = reference_recorder.events()
    sh_events = sharded_recorder.events()
    return ScaleVerification(
        result_equal=ref_result == sh_result,
        trace_summary_equal=(
            reference_recorder.summary() == sharded_recorder.summary()
        ),
        trace_events_equal=_strip_times(ref_events) == _strip_times(sh_events),
        audit_equal=(
            audit_comm_cost(ref_events, strict=False)
            == audit_comm_cost(sh_events, strict=False)
        ),
    )


def run_scale_point(
    size: int,
    *,
    shards: int,
    n_channels: int = _N_CHANNELS,
    seed: int = 0,
    reference: Optional[bool] = None,
    verify: bool = False,
) -> ScalePoint:
    """Measure one population size; optionally verify against the reference.

    ``reference=None`` auto-enables the single-process reference up to
    :data:`REFERENCE_CEILING` SUs.  ``verify`` implies ``reference`` and
    runs both rounds under the flight recorder.
    """
    if reference is None:
        reference = size <= REFERENCE_CEILING
    if verify:
        reference = True
    users, grid = synthesize_population(
        size, n_channels=n_channels, seed=seed
    )
    entropy = f"scale:{seed}:{size}".encode()

    sh_result, sh_wall, sh_auct, sh_rec = _timed_round(
        users, grid, shards=shards, entropy=entropy, traced=verify
    )
    point = ScalePoint(
        size=size,
        shards=shards,
        grid_side=grid.rows,
        n_channels=n_channels,
        n_edges=sh_result.conflict_graph.n_edges,
        winners=len(sh_result.outcome.wins),
        round_wall_s=sh_wall,
        auctioneer_wall_s=sh_auct,
    )
    if reference:
        ref_result, ref_wall, ref_auct, ref_rec = _timed_round(
            users, grid, shards=None, entropy=entropy, traced=verify
        )
        point.reference_round_wall_s = ref_wall
        point.reference_auctioneer_wall_s = ref_auct
        if verify:
            assert ref_rec is not None and sh_rec is not None
            point.verification = _verify(
                ref_rec, sh_rec, ref_result, sh_result
            )
    _record_point(point)
    return point


def _record_point(point: ScalePoint) -> None:
    """Fold one point into the ambient obs registry (the BENCH artifact)."""
    if obs.get_active() is None:
        return
    prefix = f"scale.{point.size}"
    obs.record_seconds(f"{prefix}.sharded.round", point.round_wall_s)
    obs.record_seconds(f"{prefix}.sharded.auctioneer", point.auctioneer_wall_s)
    obs.count(f"{prefix}.shards", point.shards)
    obs.count(f"{prefix}.edges", point.n_edges)
    obs.count(f"{prefix}.winners", point.winners)
    if point.reference_round_wall_s is not None:
        obs.record_seconds(
            f"{prefix}.reference.round", point.reference_round_wall_s
        )
    if point.reference_auctioneer_wall_s is not None:
        obs.record_seconds(
            f"{prefix}.reference.auctioneer", point.reference_auctioneer_wall_s
        )
    if point.speedup is not None:
        # Speedups are dimensionless; counters carry them as ×1000 fixed
        # point so the artifact schema (int counters / seconds timers)
        # stays untouched.
        obs.count(f"{prefix}.speedup.auctioneer_x1000", int(point.speedup * 1000))
    if point.round_speedup is not None:
        obs.count(f"{prefix}.speedup.round_x1000", int(point.round_speedup * 1000))
    if point.verification is not None:
        obs.count(f"{prefix}.verified", 1 if point.verification.passed else 0)


def run_scale_sweep(
    sizes: Sequence[int] = DEFAULT_SIZES,
    *,
    shards: int,
    n_channels: int = _N_CHANNELS,
    seed: int = 0,
    reference: Optional[bool] = None,
    verify: bool = False,
    progress=None,
) -> List[ScalePoint]:
    """One :func:`run_scale_point` per size, smallest first."""
    points = []
    for size in sorted(sizes):
        if progress is not None:
            progress(size)
        points.append(
            run_scale_point(
                size,
                shards=shards,
                n_channels=n_channels,
                seed=seed,
                reference=reference,
                verify=verify,
            )
        )
    return points


def format_scale_table(points: Sequence[ScalePoint]) -> str:
    """The human-readable sweep summary the CLI prints."""
    lines = [
        f"{'SUs':>8}  {'grid':>9}  {'edges':>9}  {'winners':>8}  "
        f"{'round':>9}  {'auctioneer':>11}  {'ref auct':>9}  {'speedup':>8}",
    ]
    for p in points:
        ref = (
            f"{p.reference_auctioneer_wall_s:9.2f}"
            if p.reference_auctioneer_wall_s is not None
            else f"{'-':>9}"
        )
        speed = f"{p.speedup:7.1f}x" if p.speedup is not None else f"{'-':>8}"
        lines.append(
            f"{p.size:>8}  {p.grid_side:>4}x{p.grid_side:<4}  {p.n_edges:>9}  "
            f"{p.winners:>8}  {p.round_wall_s:8.2f}s  "
            f"{p.auctioneer_wall_s:10.2f}s  {ref}  {speed}"
        )
        if p.verification is not None:
            verdict = (
                "bit-identical to single-process path"
                if p.verification.passed
                else "MISMATCH: " + ", ".join(p.verification.failures())
            )
            lines.append(f"{'':>8}  verify({p.shards} shards): {verdict}")
    return "\n".join(lines)
