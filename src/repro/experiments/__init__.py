"""Experiment harnesses regenerating every figure of the paper's evaluation."""

from repro.experiments.ablations import (
    ablation_colocation,
    ablation_cr_expansion,
    ablation_crowd_mixing,
    ablation_disguise_policy,
    ablation_id_mixing,
    ablation_masking_backend,
    ablation_revalidation,
    ablation_winner_lists,
)
from repro.experiments.cloaking_baseline import cloaking_comparison_table
from repro.experiments.comm import theorem4_table
from repro.experiments.config import FULL, SMOKE, ExperimentConfig, default_config
from repro.experiments.engine import (
    WORKERS_ENV,
    SweepReport,
    resolve_workers,
    run_sweep,
)
from repro.experiments.fig4 import (
    attack_population,
    fig4ab_channel_sweep,
    fig4c_four_areas,
)
from repro.experiments.fig5 import fig5_performance_sweep, fig5_privacy_sweep
from repro.experiments.paillier_baseline import (
    baseline_comparison_table,
    paillier_comparison_bytes,
    paillier_submission_bytes,
)
from repro.experiments.report import write_report
from repro.experiments.scale import (
    ScalePoint,
    format_scale_table,
    run_scale_point,
    run_scale_sweep,
)
from repro.experiments.tables import format_table
from repro.experiments.truthfulness import shading_experiment
from repro.experiments.theorem_tables import (
    DEFAULT_PROBS,
    theorem1_table,
    theorem2_table,
    theorem3_table,
)

__all__ = [
    "ablation_colocation",
    "ablation_cr_expansion",
    "ablation_crowd_mixing",
    "ablation_disguise_policy",
    "ablation_id_mixing",
    "ablation_masking_backend",
    "ablation_revalidation",
    "ablation_winner_lists",
    "cloaking_comparison_table",
    "theorem4_table",
    "FULL",
    "SMOKE",
    "WORKERS_ENV",
    "SweepReport",
    "resolve_workers",
    "run_sweep",
    "ExperimentConfig",
    "default_config",
    "attack_population",
    "fig4ab_channel_sweep",
    "fig4c_four_areas",
    "fig5_performance_sweep",
    "fig5_privacy_sweep",
    "format_table",
    "ScalePoint",
    "format_scale_table",
    "run_scale_point",
    "run_scale_sweep",
    "write_report",
    "baseline_comparison_table",
    "paillier_comparison_bytes",
    "paillier_submission_bytes",
    "shading_experiment",
    "DEFAULT_PROBS",
    "theorem1_table",
    "theorem2_table",
    "theorem3_table",
]
