"""Experiment presets.

Every figure-regeneration function takes an :class:`ExperimentConfig`;
:func:`default_config` returns the *smoke* preset (minutes on a laptop,
same qualitative shapes) unless the environment variable ``REPRO_FULL=1``
selects the full-scale runs used for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Tuple

__all__ = ["ExperimentConfig", "default_config", "SMOKE", "FULL"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by the Fig. 4 / Fig. 5 harnesses."""

    n_users: int
    n_channels: int
    channel_sweep: Tuple[int, ...]
    bpm_fractions: Tuple[float, ...]
    attack_fractions: Tuple[float, ...]
    zero_replace_probs: Tuple[float, ...]
    n_users_sweep: Tuple[int, ...]
    n_rounds: int
    bpm_max_cells: int
    two_lambda: int
    bmax: int
    seed: str

    def __post_init__(self) -> None:
        if self.n_users < 1 or self.n_channels < 1:
            raise ValueError("population and channel count must be positive")
        if self.n_rounds < 1:
            raise ValueError("n_rounds must be positive")


SMOKE = ExperimentConfig(
    n_users=60,
    n_channels=129,
    channel_sweep=(20, 60, 129),
    bpm_fractions=(0.5, 0.25),
    attack_fractions=(0.25, 0.5, 0.8),
    zero_replace_probs=(0.1, 0.5, 1.0),
    n_users_sweep=(60, 120),
    n_rounds=2,
    bpm_max_cells=250,
    two_lambda=6,
    bmax=127,
    seed="lppa-repro",
)

FULL = ExperimentConfig(
    n_users=200,
    n_channels=129,
    channel_sweep=(20, 40, 60, 80, 100, 129),
    bpm_fractions=(0.5, 0.33, 0.25, 0.2),
    attack_fractions=(0.25, 0.5, 0.66, 0.8),
    zero_replace_probs=(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
    n_users_sweep=(100, 200, 300),
    n_rounds=5,
    bpm_max_cells=250,
    two_lambda=6,
    bmax=127,
    seed="lppa-repro",
)


def default_config() -> ExperimentConfig:
    """``FULL`` when ``REPRO_FULL=1`` is exported, else ``SMOKE``."""
    return FULL if os.environ.get("REPRO_FULL") == "1" else SMOKE
