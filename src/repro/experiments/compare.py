"""Cross-scheme comparison harness (``repro compare``).

Runs every requested privacy scheme through the *networked* runtime
(self-hosted memory transport, the loadgen driver) on **identical seeds**:
the population, the protocol seed and every round's entropy label are pure
functions of the compare seed, so the schemes answer the same auction with
the same bidders and the same masking randomness.  Per scheme the harness
measures

* **wire bytes** — exact bytes on the (memory) transport, plus the
  protocol-level framed/location/bid byte split from the round results;
* **crypto ops** — the instrumented primitive counters
  (``crypto.hmac``, ``crypto.ope.encrypt`` / ``decrypt``, ...);
* **round wall time** — loadgen's measured elapsed seconds and latency
  histogram (machine-dependent; excluded from baseline comparisons);
* **adversary replay** — the recorded trace is replayed through the
  paper's attacks: the ranking-based BCM candidate-area attack
  (:func:`repro.attacks.against_lppa.lppa_bcm_attack`) and the BPM
  refinement (:func:`repro.attacks.bpm.bpm_attack`), reporting mean
  candidate cells per user — *smaller means more leakage*;
* **audit exactness** — the same trace must pass the scheme's strict
  communication-cost audit (Theorem 4 for PPBS, the OPE width model for
  Bloom).

Everything lands in one ``BENCH_schemes.json`` artifact (standard obs
schema) under per-scheme key prefixes (``schemes.<name>.*``), so
``repro metrics show/validate/diff`` all work on it.  The committed
baseline under ``benchmarks/baselines/`` is checked with
:func:`check_against_baseline`, which compares only the deterministic
keys — counters and gauges, never wall-clock — and names every mismatched
or one-sided key.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro import obs
from repro.obs import trace
from repro.attacks.against_lppa import lppa_bcm_attack
from repro.attacks.bpm import bpm_attack
from repro.crypto.cache import get_mask_cache
from repro.geo.datasets import make_database
from repro.lppa.bids_ope import reset_ope_cache
from repro.lppa.schemes.registry import get_scheme
from repro.net.loadgen import LoadgenConfig, build_population, run_loadgen

__all__ = [
    "ARTIFACT_NAME",
    "CompareConfig",
    "SchemeMeasurement",
    "run_compare",
    "fold_measurements",
    "format_compare_table",
    "deterministic_view",
    "check_against_baseline",
]

#: Canonical artifact name: ``repro compare`` writes ``BENCH_schemes.json``.
ARTIFACT_NAME = "schemes"

#: Key substrings that mark a metric as wall-clock / environment dependent;
#: such keys never participate in baseline comparisons.
_NONDETERMINISTIC_MARKERS = ("latency", "elapsed", "rtt", "retries", "cache")


@dataclass(frozen=True)
class CompareConfig:
    """One comparison run: which schemes, over which (shared) auction."""

    schemes: Tuple[str, ...] = ("ppbs", "bloom")
    n_users: int = 8
    n_channels: int = 6
    rounds: int = 2
    seed: int = 1
    area: int = 4
    grid_n: int = 20
    check_equivalence: bool = True
    #: Top-fraction cut the ranking-based BCM attack uses.
    bcm_fraction: float = 0.5
    #: Candidate-cell fraction the BPM refinement keeps (smallest dq first).
    bpm_keep_fraction: float = 0.25

    def __post_init__(self) -> None:
        if not self.schemes:
            raise ValueError("need at least one scheme to compare")
        if len(set(self.schemes)) != len(self.schemes):
            raise ValueError("duplicate scheme names in the compare set")
        if self.rounds < 1:
            raise ValueError("need at least one round")

    def loadgen_config(self, scheme: str) -> LoadgenConfig:
        """The identical-seed loadgen run of one scheme."""
        return LoadgenConfig(
            n_users=self.n_users,
            n_channels=self.n_channels,
            rounds=self.rounds,
            seed=self.seed,
            area=self.area,
            grid_n=self.grid_n,
            transport="memory",
            check_equivalence=self.check_equivalence,
            scheme=scheme,
        )


@dataclass(frozen=True)
class SchemeMeasurement:
    """Everything the harness measured about one scheme's run."""

    scheme: str
    rounds: int
    wire_bytes: int
    framed_bytes: int
    revenue: int
    elapsed_s: float
    p50_latency_s: float
    bcm_mean_cells: float
    bpm_mean_cells: float
    comm_audit_exact: bool
    equivalence_checked: int
    counters: Dict[str, int]

    def crypto_ops(self) -> Dict[str, int]:
        """The primitive-operation counters (``crypto.*``) of this run."""
        return {
            key: value
            for key, value in self.counters.items()
            if key.startswith("crypto.") and "cache" not in key
        }

    def as_row(self) -> Dict[str, object]:
        """Flat dict for table emission (the README's measured table)."""
        return {
            "scheme": self.scheme,
            "wire_bytes": self.wire_bytes,
            "framed_bytes": self.framed_bytes,
            "hmac_ops": self.counters.get("crypto.hmac", 0),
            "ope_ops": (
                self.counters.get("crypto.ope.encrypt", 0)
                + self.counters.get("crypto.ope.decrypt", 0)
            ),
            "round_ms": round(self.elapsed_s / self.rounds * 1e3, 2),
            "bcm_cells": round(self.bcm_mean_cells, 1),
            "bpm_cells": round(self.bpm_mean_cells, 1),
            "revenue": self.revenue,
            "audit_exact": self.comm_audit_exact,
        }


def _rankings_by_round(
    events: Sequence[Mapping[str, Any]],
) -> Dict[int, Dict[int, List[List[int]]]]:
    """Adversary-visible per-channel rankings, grouped by round."""
    visible = trace.adversary_view(list(events))
    grouped: Dict[int, Dict[int, List[List[int]]]] = {}
    for record in visible:
        if record.get("type") != "ranking":
            continue
        round_idx = int(record.get("round") or 0)
        grouped.setdefault(round_idx, {})[int(record["channel"])] = [
            list(cls) for cls in record["classes"]
        ]
    return grouped


def _replay_attacks(
    events: Sequence[Mapping[str, Any]],
    config: CompareConfig,
    users,
    database,
) -> Tuple[float, float]:
    """Mean BCM / BPM candidate cells per user, averaged over rounds.

    Both numbers come from the *recorded* trace — the same events a curious
    auctioneer holds — never from protocol-internal state, so they are
    honest adversary-replay measurements.
    """
    by_round = _rankings_by_round(events)
    if not by_round:
        raise ValueError("trace carries no adversary-visible rankings")
    bcm_means: List[float] = []
    bpm_means: List[float] = []
    for round_idx in sorted(by_round):
        channels = by_round[round_idx]
        rankings = [channels[ch] for ch in range(database.n_channels)]
        masks = lppa_bcm_attack(
            database, rankings, config.n_users, config.bcm_fraction
        )
        bcm_means.append(
            sum(int(mask.sum()) for mask in masks) / len(masks)
        )
        refined = [
            int(
                bpm_attack(
                    database,
                    users[su],
                    mask,
                    keep_fraction=config.bpm_keep_fraction,
                ).sum()
            )
            for su, mask in enumerate(masks)
        ]
        bpm_means.append(sum(refined) / len(refined))
    return (
        sum(bcm_means) / len(bcm_means),
        sum(bpm_means) / len(bpm_means),
    )


def _run_scheme(name: str, config: CompareConfig) -> SchemeMeasurement:
    """One scheme's full instrumented run (fresh registry + recorder)."""
    from repro.analysis.trace_audit import audit_comm_cost

    # Fairness: no scheme inherits another's warm caches.
    get_mask_cache().clear()
    reset_ope_cache()

    registry = obs.MetricsRegistry()
    recorder = trace.TraceRecorder()
    with obs.collecting(registry), obs.tracing(recorder):
        report = asyncio.run(run_loadgen(config.loadgen_config(name)))
    events = recorder.events()

    comm = audit_comm_cost(events, strict=True)
    grid, users = build_population(config.loadgen_config(name))
    database = make_database(
        config.area, n_channels=config.n_channels, grid=grid
    )
    bcm_cells, bpm_cells = _replay_attacks(events, config, users, database)

    return SchemeMeasurement(
        scheme=name,
        rounds=report.rounds_completed,
        wire_bytes=report.wire_bytes,
        framed_bytes=sum(
            int(s["framed_bytes"]) for s in report.round_summaries
        ),
        revenue=sum(int(s["revenue"]) for s in report.round_summaries),
        elapsed_s=report.elapsed_s,
        p50_latency_s=report.p50_latency_s,
        bcm_mean_cells=bcm_cells,
        bpm_mean_cells=bpm_cells,
        comm_audit_exact=all(r.exact for r in comm.rounds),
        equivalence_checked=report.equivalence_checked,
        counters=registry.totals(),
    )


def run_compare(
    config: CompareConfig,
) -> List[SchemeMeasurement]:
    """Run every configured scheme on identical seeds; see module docstring.

    Raises ``ValueError`` for unknown scheme names (before any run starts)
    and propagates :class:`~repro.net.loadgen.EquivalenceFailure` if a
    networked round diverges from its in-process session.
    """
    for name in config.schemes:
        get_scheme(name)  # fail fast on unknown names, before any run
    return [_run_scheme(name, config) for name in config.schemes]


def fold_measurements(
    measurements: Sequence[SchemeMeasurement],
) -> obs.MetricsRegistry:
    """All measurements folded into one registry under per-scheme prefixes.

    The result is a normal obs registry, so the standard artifact writer,
    validator, OpenMetrics renderer and ``repro metrics diff`` all apply.
    """
    registry = obs.MetricsRegistry()
    for m in measurements:
        prefix = f"schemes.{m.scheme}"
        for key, value in sorted(m.counters.items()):
            registry.count(f"{prefix}.{key}", value)
        registry.count(f"{prefix}.wire_bytes", m.wire_bytes)
        registry.count(f"{prefix}.framed_bytes", m.framed_bytes)
        registry.count(f"{prefix}.rounds", m.rounds)
        registry.count(f"{prefix}.equivalence_checked", m.equivalence_checked)
        registry.set_gauge(f"{prefix}.revenue", float(m.revenue))
        registry.set_gauge(f"{prefix}.bcm_mean_cells", m.bcm_mean_cells)
        registry.set_gauge(f"{prefix}.bpm_mean_cells", m.bpm_mean_cells)
        registry.set_gauge(
            f"{prefix}.comm_audit_exact", 1.0 if m.comm_audit_exact else 0.0
        )
        # Wall clock: recorded for humans, excluded from baseline checks.
        registry.record_seconds(f"{prefix}.elapsed", m.elapsed_s, m.rounds)
    return registry


def format_compare_table(measurements: Sequence[SchemeMeasurement]) -> str:
    """The human-readable cross-scheme table ``repro compare`` prints."""
    from repro.experiments.tables import format_table

    return format_table(
        [m.as_row() for m in measurements],
        title="Privacy schemes on identical seeds (networked runtime)",
    )


def deterministic_view(document: Mapping[str, Any]) -> Dict[str, float]:
    """The baseline-comparable slice of one ``BENCH_schemes.json``.

    Counters and gauges under the ``schemes.`` prefix, minus anything
    wall-clock or environment dependent.  Timers and histograms are
    excluded wholesale — they measure the machine, not the scheme.
    """
    metrics = document.get("metrics", {})
    view: Dict[str, float] = {}
    for kind in ("counters", "gauges"):
        for key, value in (metrics.get(kind) or {}).items():
            if not key.startswith("schemes."):
                continue
            if any(marker in key for marker in _NONDETERMINISTIC_MARKERS):
                continue
            view[f"{kind[:-1]}:{key}"] = float(value)
    return view


def check_against_baseline(
    current: Mapping[str, Any], baseline: Mapping[str, Any]
) -> List[str]:
    """Exact-compare the deterministic slices; names every divergent key.

    Returns the list of mismatch descriptions (empty == pass).  One-sided
    keys are named explicitly — a renamed metric must fail the gate, not
    silently narrow it.
    """
    cur = deterministic_view(current)
    base = deterministic_view(baseline)
    errors: List[str] = []
    for key in sorted(base.keys() - cur.keys()):
        errors.append(f"{key}: in baseline only (baseline {base[key]:g})")
    for key in sorted(cur.keys() - base.keys()):
        errors.append(f"{key}: in current only (current {cur[key]:g})")
    for key in sorted(base.keys() & cur.keys()):
        if base[key] != cur[key]:
            errors.append(
                f"{key}: baseline {base[key]:g} != current {cur[key]:g}"
            )
    return errors


def write_compare_artifact(
    path: str,
    measurements: Sequence[SchemeMeasurement],
    config: CompareConfig,
    *,
    baseline_path: Optional[str] = None,
) -> Tuple[Any, List[str]]:
    """Write (and re-validate) the artifact; optionally check a baseline.

    Returns ``(written_path, baseline_errors)``; the artifact on disk has
    already passed :func:`repro.obs.artifact.load_artifact` validation.
    """
    registry = fold_measurements(measurements)
    written = obs.write_artifact(
        path,
        ARTIFACT_NAME,
        registry,
        config={
            "schemes": ",".join(config.schemes),
            "users": config.n_users,
            "channels": config.n_channels,
            "rounds": config.rounds,
            "seed": config.seed,
            "area": config.area,
            "grid": config.grid_n,
            "bcm_fraction": config.bcm_fraction,
            "bpm_keep_fraction": config.bpm_keep_fraction,
        },
    )
    document = obs.load_artifact(written)  # round-trip validation
    errors: List[str] = []
    if baseline_path is not None:
        baseline = obs.load_artifact(baseline_path)
        errors = check_against_baseline(document, baseline)
    return written, errors
