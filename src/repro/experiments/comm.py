"""Communication-cost experiment (Theorem 4): predicted vs measured bytes.

Runs the *full cryptographic* submission path (not the fast simulator — the
object under test here is the wire format itself) for a sweep of population
sizes and channel counts, and reports Theorem 4's prediction next to the
measured masked-set volume.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.analysis.comm_cost import measure_bid_cost, measure_location_cost
from repro.auction.bidders import generate_users
from repro.experiments.config import ExperimentConfig, default_config
from repro.geo.datasets import make_database
from repro.lppa.bids_advanced import submit_bids_advanced
from repro.lppa.location import submit_location
from repro.lppa.ttp import TrustedThirdParty
from repro.utils.rng import spawn_rng

__all__ = ["theorem4_table"]


def theorem4_table(
    config: Optional[ExperimentConfig] = None,
    *,
    sweep: Sequence[tuple] = ((10, 8), (20, 8), (10, 16), (30, 16)),
    area: int = 3,
) -> List[Dict[str, object]]:
    """Rows of (N, k) -> predicted vs measured bits.

    ``sweep`` holds (n_users, n_channels) pairs; kept small because each
    point performs the genuine HMAC masking for every submission.
    """
    if config is None:
        config = default_config()
    rows: List[Dict[str, object]] = []
    for n_users, n_channels in sweep:
        database = make_database(area, n_channels=n_channels, seed=config.seed)
        users = generate_users(
            database,
            n_users,
            spawn_rng(config.seed, "thm4", f"{n_users}-{n_channels}"),
        )
        ttp, keyring, scale = TrustedThirdParty.setup(
            b"comm-cost", n_channels, bmax=config.bmax
        )
        # Seed from the label-addressed integer stream; seeding from
        # .random() would collapse the 2^256 label space to a 52-bit float.
        rng = random.Random(
            spawn_rng(config.seed, "thm4", f"rng-{n_users}-{n_channels}").getrandbits(64)
        )
        submissions = [
            submit_bids_advanced(i, u.bids, keyring, scale, rng)[0]
            for i, u in enumerate(users)
        ]
        report = measure_bid_cost(submissions, scale)
        row = report.as_row()
        grid = database.coverage.grid
        locations = [
            submit_location(i, u.cell, keyring.g0, grid, config.two_lambda)
            for i, u in enumerate(users)
        ]
        row["location_kbits"] = round(measure_location_cost(locations) * 8 / 1000, 1)
        rows.append(row)
    return rows
