"""Fig. 5 — LPPA's privacy gain (a-d) and performance cost (e-f).

Privacy sweep (panels a-d), Area 3: for each zero-replace probability
``1 - p0`` the bidders run the advanced scheme; the attacker keeps the top
25/50/66/80 % of each channel's masked-bid ranking, infers availability and
runs BCM.  Reference rows give BCM and BPM against the *unprotected*
auction.  Reported per point: uncertainty, incorrectness, number of
possible cells, failure rate.

Performance sweep (panels e-f): sum of winning bids and user satisfaction
of the LPPA auction relative to the plaintext baseline, versus ``1 - p0``,
for several population sizes (the paper's scalability claim: N matters
little; the cost tops out near 30 %).

Both sweeps run on the parallel experiment engine: one task per sweep
point.  Each task rebuilds its (memoised) database and regenerates the
population from the same master-seed labels the serial code used, so the
row tables are bit-identical at any worker count.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.attacks.against_lppa import lppa_bcm_attack
from repro.attacks.bcm import bcm_attack
from repro.attacks.bpm import bpm_attack
from repro.attacks.metrics import aggregate_scores, score_attack
from repro.auction.bidders import generate_users
from repro.auction.plain_auction import run_plain_auction
from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.engine import SweepReport, run_sweep
from repro.geo.datasets import cached_database
from repro.lppa.fastsim import run_fast_lppa
from repro.lppa.policies import UniformReplacePolicy
from repro.utils.rng import spawn_rng
from repro.utils.stats import bootstrap_ci

__all__ = ["fig5_privacy_sweep", "fig5_performance_sweep"]


def _privacy_users(config: ExperimentConfig, area: int):
    database = cached_database(
        area, n_channels=config.n_channels, seed=config.seed
    )
    users = generate_users(
        database, config.n_users, spawn_rng(config.seed, "fig5", "users")
    )
    return database, users


def _fig5_reference_rows(spec: Dict[str, object]) -> List[Dict[str, object]]:
    """Attacks on the unprotected auction (engine task)."""
    config: ExperimentConfig = spec["config"]
    area: int = spec["area"]
    database, users = _privacy_users(config, area)
    grid = database.coverage.grid
    bcm_scores, bpm_scores = [], []
    for user in users:
        possible = bcm_attack(database, user)
        bcm_scores.append(score_attack(possible, user.cell, grid))
        if user.available_set():
            refined = bpm_attack(
                database,
                user,
                possible,
                keep_fraction=config.bpm_fractions[0],
                max_cells=config.bpm_max_cells,
            )
            bpm_scores.append(score_attack(refined, user.cell, grid))
    rows: List[Dict[str, object]] = []
    for name, scores in (("BCM (no LPPA)", bcm_scores), ("BPM (no LPPA)", bpm_scores)):
        if not scores:
            continue
        agg = aggregate_scores(scores)
        rows.append(
            {
                "zero_replace": "-",
                "attack": name,
                "cells": round(agg.mean_cells, 1),
                "uncertainty_bits": round(agg.mean_uncertainty_bits, 3),
                "incorrectness_cells": round(agg.mean_incorrectness_cells, 2),
                "failure_rate": round(agg.failure_rate, 4),
            }
        )
    return rows


def _fig5_privacy_point(spec: Dict[str, object]) -> List[Dict[str, object]]:
    """One zero-replace probability of the privacy sweep (engine task)."""
    config: ExperimentConfig = spec["config"]
    area: int = spec["area"]
    replace_prob: float = spec["replace_prob"]
    database, users = _privacy_users(config, area)
    grid = database.coverage.grid
    result = run_fast_lppa(
        users,
        two_lambda=config.two_lambda,
        bmax=config.bmax,
        policy=UniformReplacePolicy(replace_prob),
        rng=random.Random(
            spawn_rng(config.seed, "fig5", f"round-{replace_prob}").random()
        ),
    )
    rows: List[Dict[str, object]] = []
    for fraction in config.attack_fractions:
        masks = lppa_bcm_attack(database, result.rankings, len(users), fraction)
        scores = [
            score_attack(mask, user.cell, grid)
            for mask, user in zip(masks, users)
        ]
        agg = aggregate_scores(scores)
        rows.append(
            {
                "zero_replace": round(replace_prob, 2),
                "attack": f"LPPA-BCM top {int(fraction * 100)}%",
                "cells": round(agg.mean_cells, 1),
                "uncertainty_bits": round(agg.mean_uncertainty_bits, 3),
                "incorrectness_cells": round(agg.mean_incorrectness_cells, 2),
                "failure_rate": round(agg.failure_rate, 4),
            }
        )
    return rows


def _fig5_privacy_task(spec: Dict[str, object]) -> List[Dict[str, object]]:
    if spec["kind"] == "refs":
        return _fig5_reference_rows(spec)
    return _fig5_privacy_point(spec)


def fig5_privacy_sweep(
    config: Optional[ExperimentConfig] = None,
    *,
    area: int = 3,
    workers: Optional[int] = None,
    on_report: Optional[Callable[[SweepReport], None]] = None,
) -> List[Dict[str, object]]:
    """Panels (a)-(d): privacy metrics vs ``1 - p0`` and attacker fraction.

    Rows tagged ``attack = "BCM (no LPPA)"`` / ``"BPM (no LPPA)"`` are the
    unprotected references; the remaining rows are the anti-LPPA attacker at
    each configured fraction.
    """
    if config is None:
        config = default_config()
    specs: List[Dict[str, object]] = [
        {"kind": "refs", "config": config, "area": area}
    ]
    specs.extend(
        {
            "kind": "lppa",
            "config": config,
            "area": area,
            "replace_prob": replace_prob,
        }
        for replace_prob in config.zero_replace_probs
    )
    per_point = run_sweep(
        _fig5_privacy_task,
        specs,
        workers=workers,
        name="fig5-privacy",
        on_report=on_report,
    )
    return [row for rows in per_point for row in rows]


def _fig5_performance_point(spec: Dict[str, object]) -> Dict[str, object]:
    """One (N, zero-replace) point of the performance sweep (engine task)."""
    config: ExperimentConfig = spec["config"]
    area: int = spec["area"]
    n_users: int = spec["n_users"]
    replace_prob: float = spec["replace_prob"]
    database = cached_database(
        area, n_channels=config.n_channels, seed=config.seed
    )
    users = generate_users(
        database, n_users, spawn_rng(config.seed, "fig5ef", f"users-{n_users}")
    )
    revenue_ratios, satisfaction_ratios = [], []
    for round_idx in range(config.n_rounds):
        seed_val = spawn_rng(
            config.seed, "fig5ef", f"{n_users}-{replace_prob}-{round_idx}"
        ).random()
        plain = run_plain_auction(
            users, random.Random(seed_val), two_lambda=config.two_lambda
        )
        private = run_fast_lppa(
            users,
            two_lambda=config.two_lambda,
            bmax=config.bmax,
            policy=UniformReplacePolicy(replace_prob),
            rng=random.Random(seed_val),
        )
        plain_revenue = plain.sum_of_winning_bids()
        plain_satisfaction = plain.user_satisfaction()
        if plain_revenue > 0:
            revenue_ratios.append(
                private.outcome.sum_of_winning_bids() / plain_revenue
            )
        if plain_satisfaction > 0:
            satisfaction_ratios.append(
                private.outcome.user_satisfaction() / plain_satisfaction
            )
    row = {
        "n_users": n_users,
        "zero_replace": round(replace_prob, 2),
        "revenue_ratio": round(sum(revenue_ratios) / len(revenue_ratios), 4),
        "satisfaction_ratio": round(
            sum(satisfaction_ratios) / len(satisfaction_ratios), 4
        ),
    }
    if config.n_rounds >= 3:
        # Enough rounds for a meaningful bootstrap error bar.
        ci_rng = random.Random(
            spawn_rng(
                config.seed, "fig5ef-ci", f"{n_users}-{replace_prob}"
            ).random()
        )
        low, high = bootstrap_ci(revenue_ratios, ci_rng, resamples=500)
        row["revenue_ci95"] = f"[{low:.3f}, {high:.3f}]"
    return row


def fig5_performance_sweep(
    config: Optional[ExperimentConfig] = None,
    *,
    area: int = 3,
    workers: Optional[int] = None,
    on_report: Optional[Callable[[SweepReport], None]] = None,
) -> List[Dict[str, object]]:
    """Panels (e)-(f): revenue and satisfaction ratios vs ``1 - p0`` and N.

    Ratios are LPPA / plaintext baseline, averaged over ``n_rounds``
    independent rounds (fresh allocation randomness each round, same
    population per N so the comparison is paired).
    """
    if config is None:
        config = default_config()
    specs = [
        {
            "config": config,
            "area": area,
            "n_users": n_users,
            "replace_prob": replace_prob,
        }
        for n_users in config.n_users_sweep
        for replace_prob in config.zero_replace_probs
    ]
    return run_sweep(
        _fig5_performance_point,
        specs,
        workers=workers,
        name="fig5-performance",
        on_report=on_report,
    )
