"""Fig. 4 — effectiveness of the BCM and BPM attacks (no defence).

* **(a)** number of possible cells vs number of auctioned channels, Area 4,
  for BCM and for BPM keeping various fractions of the BCM cells;
* **(b)** attack success rate (1 - failure rate) for the same sweep;
* **(c)** BCM and BPM across all four areas at the full 129 channels.

Each harness returns a list of flat row dicts ready for
:func:`repro.experiments.tables.format_table`.

Both sweeps run on the parallel experiment engine
(:mod:`repro.experiments.engine`): one task per sweep point, all
randomness label-addressed by the point's own identity, so results are
bit-identical at any worker count.  ``workers=None`` honours
``REPRO_WORKERS`` and defaults to serial.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.attacks.bcm import bcm_attack
from repro.attacks.bpm import bpm_attack
from repro.attacks.metrics import AggregateScore, aggregate_scores, score_attack
from repro.auction.bidders import generate_users
from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.engine import SweepReport, run_sweep
from repro.geo.database import GeoLocationDatabase
from repro.geo.datasets import cached_database
from repro.utils.rng import spawn_rng

__all__ = ["attack_population", "fig4ab_channel_sweep", "fig4c_four_areas"]


def attack_population(
    database: GeoLocationDatabase,
    n_users: int,
    *,
    seed: str,
    bpm_fraction: Optional[float] = None,
    bpm_max_cells: Optional[int] = None,
    label: str = "population",
) -> Dict[str, AggregateScore]:
    """Run BCM (and optionally BPM on its output) over a fresh population.

    Returns ``{"bcm": ..., "bpm": ...}`` aggregates; the BPM entry is only
    present when ``bpm_fraction`` is given and covers users with at least
    one positive bid (BPM needs a reference channel).
    """
    rng = spawn_rng(seed, "fig4", label, "users")
    users = generate_users(database, n_users, rng)
    grid = database.coverage.grid
    bcm_scores, bpm_scores = [], []
    for user in users:
        possible = bcm_attack(database, user)
        bcm_scores.append(score_attack(possible, user.cell, grid))
        if bpm_fraction is not None and user.available_set():
            refined = bpm_attack(
                database,
                user,
                possible,
                keep_fraction=bpm_fraction,
                max_cells=bpm_max_cells,
            )
            bpm_scores.append(score_attack(refined, user.cell, grid))
    result = {"bcm": aggregate_scores(bcm_scores)}
    if bpm_scores:
        result["bpm"] = aggregate_scores(bpm_scores)
    return result


def _fig4ab_point(spec: Dict[str, object]) -> List[Dict[str, object]]:
    """One channel-count point of the Fig. 4(a)(b) sweep (engine task)."""
    config: ExperimentConfig = spec["config"]
    area: int = spec["area"]
    k: int = spec["k"]
    database = cached_database(area, n_channels=k, seed=config.seed)
    rows: List[Dict[str, object]] = []
    base = attack_population(
        database,
        config.n_users,
        seed=config.seed,
        label=f"area{area}-k{k}",
    )["bcm"]
    rows.append(
        {
            "channels": k,
            "attack": "BCM",
            "cells": round(base.mean_cells, 1),
            "success_rate": round(1.0 - base.failure_rate, 4),
        }
    )
    for fraction in config.bpm_fractions:
        agg = attack_population(
            database,
            config.n_users,
            seed=config.seed,
            bpm_fraction=fraction,
            bpm_max_cells=config.bpm_max_cells,
            label=f"area{area}-k{k}",
        )["bpm"]
        rows.append(
            {
                "channels": k,
                "attack": f"BPM-{fraction:g}",
                "cells": round(agg.mean_cells, 1),
                "success_rate": round(1.0 - agg.failure_rate, 4),
            }
        )
    return rows


def fig4ab_channel_sweep(
    config: Optional[ExperimentConfig] = None,
    *,
    area: int = 4,
    workers: Optional[int] = None,
    on_report: Optional[Callable[[SweepReport], None]] = None,
) -> List[Dict[str, object]]:
    """Fig. 4(a)(b): possible cells and success rate vs channel count.

    One row per (k, attack) combination: the BCM baseline plus one BPM
    variant per configured keep-fraction.  Success rate is ``1 - failure``.
    """
    if config is None:
        config = default_config()
    specs = [
        {"config": config, "area": area, "k": k} for k in config.channel_sweep
    ]
    per_point = run_sweep(
        _fig4ab_point,
        specs,
        workers=workers,
        name="fig4ab",
        on_report=on_report,
    )
    return [row for rows in per_point for row in rows]


def _fig4c_point(spec: Dict[str, object]) -> Dict[str, object]:
    """One area of the Fig. 4(c) comparison (engine task)."""
    config: ExperimentConfig = spec["config"]
    area: int = spec["area"]
    fraction = config.bpm_fractions[0]
    database = cached_database(
        area, n_channels=config.n_channels, seed=config.seed
    )
    aggs = attack_population(
        database,
        config.n_users,
        seed=config.seed,
        bpm_fraction=fraction,
        bpm_max_cells=config.bpm_max_cells,
        label=f"fig4c-area{area}",
    )
    row: Dict[str, object] = {
        "area": area,
        "character": {1: "urban-core", 2: "suburban", 3: "mixed", 4: "rural"}[
            area
        ],
        "bcm_cells": round(aggs["bcm"].mean_cells, 1),
        "bcm_success": round(1.0 - aggs["bcm"].failure_rate, 4),
    }
    if "bpm" in aggs:
        row["bpm_cells"] = round(aggs["bpm"].mean_cells, 1)
        row["bpm_success"] = round(1.0 - aggs["bpm"].failure_rate, 4)
    return row


def fig4c_four_areas(
    config: Optional[ExperimentConfig] = None,
    *,
    areas: Sequence[int] = (1, 2, 3, 4),
    workers: Optional[int] = None,
    on_report: Optional[Callable[[SweepReport], None]] = None,
) -> List[Dict[str, object]]:
    """Fig. 4(c): BCM + BPM over the four areas at the full channel count.

    The paper's observation to reproduce: the attack is more effective
    (fewer cells, comparable or better success) in rural areas than urban.
    """
    if config is None:
        config = default_config()
    specs = [{"config": config, "area": area} for area in areas]
    return run_sweep(
        _fig4c_point,
        specs,
        workers=workers,
        name="fig4c",
        on_report=on_report,
    )
