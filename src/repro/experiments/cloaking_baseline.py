"""Cloaking vs LPPA: the defence-baseline experiment.

For each cloak size ``g`` the baseline submits locations snapped to
``g x g`` super-cells and plaintext bids; LPPA submits exact-but-masked
everything.  Reported per row:

* the *location* privacy the cloak buys (the attacker's residual candidate
  set is at best the cloak area — but BPM still runs on the plaintext bids,
  so the bid channel's leak is untouched);
* the *interference violations* the wrong conflict graph causes;
* the performance relative to the exact-graph plain auction.

Expected shape: privacy grows ~quadratically in ``g``, but so do the
violations — whereas LPPA (the last row) gets privacy without either cost,
paying instead through the disguise mechanism's bounded revenue loss.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.attacks.bcm import bcm_attack
from repro.attacks.bpm import bpm_attack
from repro.attacks.metrics import aggregate_scores, score_attack
from repro.auction.bidders import generate_users
from repro.auction.interference import count_violations
from repro.auction.plain_auction import run_plain_auction
from repro.experiments.config import ExperimentConfig, default_config
from repro.geo.datasets import make_database
from repro.lppa.cloaking import run_cloaked_auction
from repro.lppa.fastsim import run_fast_lppa
from repro.lppa.policies import UniformReplacePolicy
from repro.utils.rng import spawn_rng

__all__ = ["cloaking_comparison_table"]


def cloaking_comparison_table(
    config: Optional[ExperimentConfig] = None,
    *,
    area: int = 3,
    cloak_sizes: Sequence[int] = (1, 5, 10, 20),
    lppa_replace: float = 0.5,
    n_users: int = 150,
    n_channels: int = 20,
    two_lambda: int = 10,
) -> List[Dict[str, object]]:
    """One row per cloak size plus an LPPA reference row.

    Density parameters default to a channel-scarce, interference-heavy
    world (150 users competing for 20 channels with wide interference
    squares): that is where conflict-graph *exactness* matters — in a
    sparse world co-channel winners are rarely neighbours and every defence
    looks violation-free.
    """
    if config is None:
        config = default_config()
    database = make_database(area, n_channels=n_channels, seed=config.seed)
    grid = database.coverage.grid
    users = generate_users(
        database, n_users, spawn_rng(config.seed, "cloak", "users")
    )
    true_cells = [u.cell for u in users]
    base_rng = spawn_rng(config.seed, "cloak", "rounds")
    plain = run_plain_auction(
        users, random.Random(base_rng.random()), two_lambda=two_lambda
    )
    plain_revenue = plain.sum_of_winning_bids()

    def bpm_scores(users_subset):
        scores = []
        for user in users_subset:
            if not user.available_set():
                continue
            possible = bcm_attack(database, user)
            refined = bpm_attack(
                database,
                user,
                possible,
                keep_fraction=config.bpm_fractions[0],
                max_cells=config.bpm_max_cells,
            )
            scores.append(score_attack(refined, user.cell, grid))
        return aggregate_scores(scores)

    rows: List[Dict[str, object]] = []
    for cloak in cloak_sizes:
        outcome, _ = run_cloaked_auction(
            users,
            grid,
            random.Random(base_rng.random()),
            two_lambda=two_lambda,
            cloak_size=cloak,
        )
        audit = count_violations(outcome, true_cells, two_lambda)
        # Location privacy floor: the direct submission reveals the cloak
        # cell; BPM on the still-plaintext bids can cut further but never
        # below one cell — report the BPM result for comparability.
        agg = bpm_scores(users)
        rows.append(
            {
                "defence": f"cloak {cloak}x{cloak}",
                "bpm_cells": round(agg.mean_cells, 1),
                "bpm_failure": round(agg.failure_rate, 3),
                "violations": audit.n_violations,
                "revenue_ratio": round(
                    outcome.sum_of_winning_bids() / plain_revenue, 4
                ),
            }
        )

    lppa = run_fast_lppa(
        users,
        two_lambda=two_lambda,
        bmax=config.bmax,
        policy=UniformReplacePolicy(lppa_replace),
        rng=random.Random(base_rng.random()),
    )
    audit = count_violations(lppa.outcome, true_cells, two_lambda)
    rows.append(
        {
            "defence": f"LPPA (1-p0={lppa_replace:g})",
            "bpm_cells": float("nan"),  # bids are masked: BPM impossible
            "bpm_failure": 1.0,
            "violations": audit.n_violations,
            "revenue_ratio": round(
                lppa.outcome.sum_of_winning_bids() / plain_revenue, 4
            ),
        }
    )
    return rows
